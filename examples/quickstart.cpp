// Quickstart: simulate one star image three ways and compare.
//
// Generates a random star field (the paper's benchmark workload format),
// renders it with the sequential, parallel, and adaptive simulators,
// verifies the three images agree, prints each simulator's timing
// breakdown, and writes the frame to quickstart.bmp / quickstart.pgm.
//
//   ./quickstart [--stars N] [--roi SIDE] [--size EDGE] [--out PREFIX]
#include <cstdio>

#include "gpusim/device.h"
#include "imageio/image.h"
#include "starsim/adaptive_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/render.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"
#include "support/cli.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim;
  namespace sup = starsim::support;

  sup::Cli cli("quickstart",
               "simulate one star image with all three simulators");
  cli.add_option("stars", "number of stars", "2048");
  cli.add_option("roi", "ROI side length in pixels", "10");
  cli.add_option("size", "image edge length in pixels", "1024");
  cli.add_option("out", "output file prefix", "quickstart");
  if (!cli.parse(argc, argv)) return 0;

  SceneConfig scene;
  scene.image_width = static_cast<int>(cli.integer("size"));
  scene.image_height = scene.image_width;
  scene.roi_side = static_cast<int>(cli.integer("roi"));

  WorkloadConfig workload;
  workload.star_count = static_cast<std::size_t>(cli.integer("stars"));
  workload.image_width = scene.image_width;
  workload.image_height = scene.image_height;
  const StarField stars = generate_stars(workload);
  std::printf("workload: %zu stars, %dx%d image, ROI %dx%d\n\n", stars.size(),
              scene.image_width, scene.image_height, scene.roi_side,
              scene.roi_side);

  // The simulated GPU: a modeled GTX480, the paper's platform.
  gpusim::Device device(gpusim::DeviceSpec::gtx480());

  SequentialSimulator sequential;
  ParallelSimulator parallel(device);
  AdaptiveSimulator adaptive(device);

  const SimulationResult seq = sequential.simulate(scene, stars);
  const SimulationResult par = parallel.simulate(scene, stars);
  const SimulationResult ada = adaptive.simulate(scene, stars);

  sup::ConsoleTable table({"simulator", "app time (modeled)", "kernel",
                           "non-kernel", "wall here", "max |diff| vs seq"});
  auto row = [&](const char* name, const SimulationResult& r) {
    table.add_row({name, sup::format_time(r.timing.application_s()),
                   sup::format_time(r.timing.kernel_s),
                   sup::format_time(r.timing.non_kernel_s()),
                   sup::format_time(r.timing.wall_s),
                   sup::compact(max_abs_difference(r.image, seq.image))});
  };
  row("sequential", seq);
  row("parallel", par);
  row("adaptive", ada);
  std::fputs(table.render().c_str(), stdout);

  const double seq_s = seq.timing.application_s();
  std::printf("\nmodeled speedup vs sequential: parallel %.1fx, adaptive %.1fx\n",
              seq_s / par.timing.application_s(),
              seq_s / ada.timing.application_s());

  const std::string prefix = cli.str("out");
  save_star_image(par.image, prefix);
  std::printf("wrote %s.bmp and %s.pgm\n", prefix.c_str(), prefix.c_str());
  return 0;
}
