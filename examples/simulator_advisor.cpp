// Table III as a tool: given a workload (star count, ROI side, image size),
// predict all three simulators' application time on the modeled hardware
// and recommend one — the paper's "selection criteria for different model
// parameters", generalized by the analytic work predictor.
//
//   ./simulator_advisor --stars 8192 --roi 10
//   ./simulator_advisor --stars 500 --roi 16 --bins 64 --phases 4
#include <cstdio>

#include "starsim/selector.h"
#include "support/cli.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim;
  namespace sup = starsim::support;

  sup::Cli cli("simulator_advisor",
               "predict and choose the best simulator for a workload");
  cli.add_option("stars", "number of stars in the FOV", "8192");
  cli.add_option("roi", "ROI side in pixels", "10");
  cli.add_option("size", "image edge in pixels", "1024");
  cli.add_option("bins", "adaptive LUT bins per magnitude", "1");
  cli.add_option("phases", "adaptive LUT subpixel phases per axis", "1");
  if (!cli.parse(argc, argv)) return 0;

  SceneConfig scene;
  scene.image_width = static_cast<int>(cli.integer("size"));
  scene.image_height = scene.image_width;
  scene.roi_side = static_cast<int>(cli.integer("roi"));

  LookupTableOptions lut;
  lut.bins_per_magnitude = static_cast<int>(cli.integer("bins"));
  lut.subpixel_phases = static_cast<int>(cli.integer("phases"));

  const SimulatorSelector selector(gpusim::DeviceSpec::gtx480(),
                                   gpusim::HostSpec::i7_860(), lut);
  const auto stars = static_cast<std::size_t>(cli.integer("stars"));
  const Prediction prediction = selector.predict(scene, stars);

  std::printf("workload: %zu stars, ROI %dx%d, image %dx%d\n\n", stars,
              scene.roi_side, scene.roi_side, scene.image_width,
              scene.image_height);

  sup::ConsoleTable table(
      {"simulator", "application", "kernel", "non-kernel", "GFLOPS"});
  table.add_row({"sequential (i7-860)",
                 sup::format_time(prediction.sequential_s), "-", "-", "-"});
  auto gpu_row = [&](const char* name, const TimingBreakdown& t) {
    table.add_row({name, sup::format_time(t.application_s()),
                   sup::format_time(t.kernel_s),
                   sup::format_time(t.non_kernel_s()),
                   sup::fixed(t.achieved_gflops, 1)});
  };
  gpu_row("parallel (GTX480)", prediction.parallel);
  gpu_row("adaptive (GTX480)", prediction.adaptive);
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nrecommendation: %s simulator\n",
              to_string(prediction.best).data());
  if (prediction.best != prediction.best_gpu) {
    std::printf("(best GPU option if a GPU is required: %s)\n",
                to_string(prediction.best_gpu).data());
  }
  std::puts(
      "\npaper's rule of thumb (Table III): parallel below 2^13 stars /"
      "\nROI 10, adaptive above; sequential for very small fields.");
  return 0;
}
