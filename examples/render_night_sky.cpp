// Fig. 2 reproduction: "a segment of simulated star image (1024*1024) with
// 2252 stars projected" — rendered with the parallel simulator on the
// modeled GTX480 and written as BMP/PGM, optionally through the sensor
// noise model.
//
//   ./render_night_sky [--stars 2252] [--sigma 1.7] [--roi 10]
//                      [--noise] [--out night_sky]
#include <cstdio>

#include "gpusim/device.h"
#include "starsim/parallel_simulator.h"
#include "starsim/psf.h"
#include "starsim/render.h"
#include "starsim/workload.h"
#include "support/cli.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim;
  namespace sup = starsim::support;

  sup::Cli cli("render_night_sky",
               "render the paper's Fig. 2 star image (1024x1024, 2252 stars)");
  cli.add_option("stars", "number of stars", "2252");
  cli.add_option("sigma", "Gaussian PSF sigma in pixels", "1.7");
  cli.add_option("roi", "ROI side in pixels (0 = derive from sigma)", "10");
  cli.add_option("out", "output file prefix", "night_sky");
  cli.add_option("seed", "workload seed", "2012");
  cli.add_flag("noise", "apply the sensor noise model");
  if (!cli.parse(argc, argv)) return 0;

  SceneConfig scene;
  scene.psf_sigma = cli.real("sigma");
  scene.roi_side = static_cast<int>(cli.integer("roi"));
  if (scene.roi_side == 0) {
    // Size the ROI to capture 99.9% of each star's flux (Section II's
    // "radius ... relevant with optical parameters to assure good
    // distribution effect").
    const GaussianPsf psf(scene.psf_sigma);
    scene.roi_side = 2 * psf.radius_for_energy(0.999);
    std::printf("derived ROI side %d from sigma %.2f\n", scene.roi_side,
                scene.psf_sigma);
  }

  WorkloadConfig workload;
  workload.star_count = static_cast<std::size_t>(cli.integer("stars"));
  workload.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  workload.integer_positions = false;
  const StarField stars = generate_stars(workload);

  gpusim::Device device(gpusim::DeviceSpec::gtx480());
  ParallelSimulator simulator(device);
  const SimulationResult result = simulator.simulate(scene, stars);

  std::printf(
      "simulated %zu stars on a %dx%d frame (ROI %dx%d)\n"
      "modeled GPU time: %s kernel + %s transfers; wall here: %s\n",
      stars.size(), scene.image_width, scene.image_height, scene.roi_side,
      scene.roi_side, sup::format_time(result.timing.kernel_s).c_str(),
      sup::format_time(result.timing.non_kernel_s()).c_str(),
      sup::format_time(result.timing.wall_s).c_str());

  RenderOptions render;
  render.tonemap.gamma = 2.2f;  // lift faint stars for display
  render.apply_noise = cli.flag("noise");
  save_star_image(result.image, cli.str("out"), render);
  std::printf("wrote %s.bmp and %s.pgm\n", cli.str("out").c_str(),
              cli.str("out").c_str());
  return 0;
}
