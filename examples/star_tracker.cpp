// Star-tracker scenario: the paper's motivating application. A synthetic
// celestial catalogue is viewed by a pinhole camera whose attitude slews
// over time; each frame retrieves the FOV stars (the paper's Star
// generation stage), simulates the intensity model on the GPU, applies
// sensor noise, and writes the frame sequence.
//
//   ./star_tracker [--frames 5] [--catalog 200000] [--rate 0.2]
//                  [--out tracker_frame]
#include <cstdio>
#include <numbers>

#include "gpusim/device.h"
#include "starsim/catalog.h"
#include "starsim/parallel_simulator.h"
#include "starsim/projection.h"
#include "starsim/render.h"
#include "support/cli.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim;
  namespace sup = starsim::support;

  sup::Cli cli("star_tracker",
               "attitude-driven star sensor frame sequence");
  cli.add_option("frames", "number of frames to simulate", "5");
  cli.add_option("catalog", "synthetic catalogue size", "200000");
  cli.add_option("rate", "slew rate in degrees per frame", "0.2");
  cli.add_option("maglimit", "detection magnitude limit", "6.0");
  cli.add_option("out", "output frame prefix", "tracker_frame");
  if (!cli.parse(argc, argv)) return 0;

  const auto frames = static_cast<int>(cli.integer("frames"));
  const Catalog catalog = Catalog::synthesize(
      static_cast<std::size_t>(cli.integer("catalog")), /*seed=*/1977);
  std::printf("catalogue: %zu stars, %zu brighter than the mag-%.1f limit\n",
              catalog.size(),
              catalog.count_brighter_than(cli.real("maglimit")),
              cli.real("maglimit"));

  CameraModel camera;
  camera.width = 1024;
  camera.height = 1024;
  camera.focal_length_px = 2500.0;
  camera.magnitude_limit = cli.real("maglimit");
  camera.frame_margin_px = 8;  // keep off-frame stars whose ROI leaks in
  std::printf("camera: %.1f deg diagonal half-FOV, f = %.0f px\n\n",
              camera.half_diagonal_fov() * 180.0 / std::numbers::pi,
              camera.focal_length_px);

  SceneConfig scene;
  scene.roi_side = 10;
  scene.magnitude_max = camera.magnitude_limit;

  gpusim::Device device(gpusim::DeviceSpec::gtx480());
  ParallelSimulator simulator(device);

  RenderOptions render;
  render.apply_noise = true;
  render.noise.gain_electrons_per_flux = 20.0;
  render.noise.read_noise_electrons = 2.0;
  render.tonemap.gamma = 2.2f;

  sup::ConsoleTable table({"frame", "attitude yaw", "stars in FOV",
                           "GPU time (modeled)", "wall here", "file"});
  const double rate_rad = cli.real("rate") * std::numbers::pi / 180.0;
  for (int frame = 0; frame < frames; ++frame) {
    const Quaternion attitude =
        Quaternion::from_euler(rate_rad * frame, 0.35, 0.0);
    const StarField stars =
        project_to_image(catalog.stars(), attitude, camera);
    const SimulationResult result = simulator.simulate(scene, stars);

    render.noise.seed = 9000u + static_cast<std::uint64_t>(frame);
    const std::string path =
        cli.str("out") + "_" + std::to_string(frame);
    save_star_image(result.image, path, render);

    table.add_row({std::to_string(frame),
                   sup::fixed(cli.real("rate") * frame, 2) + " deg",
                   std::to_string(stars.size()),
                   sup::format_time(result.timing.application_s()),
                   sup::format_time(result.timing.wall_s), path + ".bmp"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\n(each frame: catalogue FOV retrieval -> star-centric GPU"
            "\nkernel -> sensor noise -> 8-bit BMP/PGM output)");
  return 0;
}
