// starsim_cli — the library as a command-line workflow, mirroring the
// paper's four-stage pipeline as composable steps that exchange star files:
//
//   starsim_cli catalog  --count 200000 --out sky.cat
//   starsim_cli project  --catalog sky.cat --yaw 12 --pitch 3 --out fov.stars
//   starsim_cli generate --stars 8192 --out random.stars
//   starsim_cli simulate --in fov.stars --sim auto --out frame
//   starsim_cli autoschedule --roi 10 --schedule-cache schedules.txt
//   starsim_cli serve-bench --clients 8 --workers 2 --batch 8
//   starsim_cli serve-bench --shards 4 --replicas 2 --hedge-ms 5
//   starsim_cli trace-check --trace trace.json --metrics metrics.prom
//
// `simulate --sim auto` asks the SimulatorSelector (Table III) to pick the
// best simulator for the workload; `serve-bench` load-tests the concurrent
// FrameService (docs/serving.md). Both accept --trace=<file> to export a
// Chrome trace of the run, serve-bench adds --metrics=<file> for one
// Prometheus scrape, and trace-check validates either artifact
// (docs/observability.md).
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <limits>
#include <memory>
#include <numbers>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fleet/router.h"
#include "gpusim/device.h"
#include "gpusim/fault_injector.h"
#include "gpusim/sanitizer.h"
#include "sched/scheduler.h"
#include "serve/service.h"
#include "starsim/adaptive_simulator.h"
#include "starsim/openmp_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/projection.h"
#include "starsim/render.h"
#include "starsim/resilient_executor.h"
#include "starsim/selector.h"
#include "starsim/sequential_simulator.h"
#include "starsim/star_io.h"
#include "starsim/workload.h"
#include "support/cli.h"
#include "support/timer.h"
#include "support/units.h"
#include "trace/chrome_trace.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace {

using namespace starsim;
namespace sup = starsim::support;

/// Parse a --sanitize value; nullopt (after an stderr diagnostic) on junk.
std::optional<gpusim::SanitizerMode> parse_sanitize(const std::string& value) {
  try {
    return gpusim::sanitizer_mode_from_string(value);
  } catch (const std::exception&) {
    std::fprintf(stderr,
                 "bad --sanitize (want off|memcheck|race|sync|leak|all): %s\n",
                 value.c_str());
    return std::nullopt;
  }
}

/// Whole-file slurp for trace-check; nullopt (after a diagnostic) on failure.
std::optional<std::string> read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

/// Stop the recorder and export its snapshot as Chrome trace JSON.
int finish_trace(const std::string& path) {
  trace::TraceRecorder& recorder = trace::TraceRecorder::instance();
  recorder.stop();
  try {
    trace::write_chrome_trace(path, recorder.snapshot());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cannot write trace %s: %s\n", path.c_str(),
                 error.what());
    return 1;
  }
  std::printf("wrote trace to %s (load in Perfetto or chrome://tracing)\n",
              path.c_str());
  return 0;
}

int cmd_catalog(int argc, char** argv) {
  sup::Cli cli("starsim_cli catalog", "synthesize a celestial catalogue");
  cli.add_option("count", "catalogue size", "200000");
  cli.add_option("seed", "generator seed", "2012");
  cli.add_option("magmax", "faintest magnitude", "7.0");
  cli.add_option("out", "output catalogue file", "sky.cat");
  if (!cli.parse(argc, argv)) return 0;
  const Catalog catalog = Catalog::synthesize(
      static_cast<std::size_t>(cli.integer("count")),
      static_cast<std::uint64_t>(cli.integer("seed")), 0.0,
      cli.real("magmax"));
  write_catalog_file(catalog, cli.str("out"));
  std::printf("wrote %zu catalogue stars to %s\n", catalog.size(),
              cli.str("out").c_str());
  return 0;
}

int cmd_project(int argc, char** argv) {
  sup::Cli cli("starsim_cli project",
               "retrieve the FOV stars for an attitude");
  cli.add_option("catalog", "input catalogue file", "sky.cat");
  cli.add_option("yaw", "attitude yaw, degrees", "0");
  cli.add_option("pitch", "attitude pitch, degrees", "0");
  cli.add_option("roll", "attitude roll, degrees", "0");
  cli.add_option("size", "image edge, pixels", "1024");
  cli.add_option("focal", "focal length, pixels", "2500");
  cli.add_option("maglimit", "detection limit", "6.5");
  cli.add_option("out", "output star file", "fov.stars");
  if (!cli.parse(argc, argv)) return 0;
  const Catalog catalog = read_catalog_file(cli.str("catalog"));
  CameraModel camera;
  camera.width = static_cast<int>(cli.integer("size"));
  camera.height = camera.width;
  camera.focal_length_px = cli.real("focal");
  camera.magnitude_limit = cli.real("maglimit");
  constexpr double kDeg = std::numbers::pi / 180.0;
  const Quaternion attitude = Quaternion::from_euler(
      cli.real("yaw") * kDeg, cli.real("pitch") * kDeg,
      cli.real("roll") * kDeg);
  const StarField stars = project_to_image(catalog.stars(), attitude, camera);
  write_star_file(stars, cli.str("out"));
  std::printf("projected %zu of %zu stars into the FOV -> %s\n",
              stars.size(), catalog.size(), cli.str("out").c_str());
  return 0;
}

int cmd_generate(int argc, char** argv) {
  sup::Cli cli("starsim_cli generate",
               "generate a random benchmark star field");
  cli.add_option("stars", "number of stars", "8192");
  cli.add_option("size", "image edge, pixels", "1024");
  cli.add_option("seed", "generator seed", "42");
  cli.add_flag("subpixel", "continuous (non-integer) positions");
  cli.add_option("out", "output star file", "random.stars");
  if (!cli.parse(argc, argv)) return 0;
  WorkloadConfig workload;
  workload.star_count = static_cast<std::size_t>(cli.integer("stars"));
  workload.image_width = static_cast<int>(cli.integer("size"));
  workload.image_height = workload.image_width;
  workload.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  workload.integer_positions = !cli.flag("subpixel");
  const StarField stars = generate_stars(workload);
  write_star_file(stars, cli.str("out"));
  std::printf("wrote %zu stars to %s\n", stars.size(),
              cli.str("out").c_str());
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  sup::Cli cli("starsim_cli simulate", "render a star file to an image");
  cli.add_option("in", "input star file", "random.stars");
  cli.add_option(
      "sim", "auto | sequential | cpu | parallel | adaptive", "auto");
  cli.add_option("size", "image edge, pixels", "1024");
  cli.add_option("roi", "ROI side, pixels", "10");
  cli.add_option("sigma", "PSF sigma, pixels", "1.7");
  cli.add_flag("integrated", "pixel-integrated PSF response");
  cli.add_flag("noise", "apply sensor noise");
  cli.add_option("out", "output image prefix", "frame");
  cli.add_flag("inject-faults",
               "inject deterministic device faults (see docs/resilience.md)");
  cli.add_option("fault-rate", "per-operation fault probability", "0.05");
  cli.add_option("fault-seed", "fault-injection RNG seed", "2012");
  cli.add_option("max-retries", "retries per simulator before degrading",
                 "3");
  cli.add_option("sanitize",
                 "instrument the device: off | memcheck | race | sync | "
                 "leak | all (non-zero exit on findings)",
                 "off");
  cli.add_option("trace",
                 "write a Chrome trace of the render to this file "
                 "(docs/observability.md)",
                 "");
  if (!cli.parse(argc, argv)) return 0;
  const std::optional<gpusim::SanitizerMode> sanitize =
      parse_sanitize(cli.str("sanitize"));
  if (!sanitize.has_value()) return 1;

  const StarField stars = read_star_file(cli.str("in"));
  SceneConfig scene;
  scene.image_width = static_cast<int>(cli.integer("size"));
  scene.image_height = scene.image_width;
  scene.roi_side = static_cast<int>(cli.integer("roi"));
  scene.psf_sigma = cli.real("sigma");
  scene.pixel_integration = cli.flag("integrated");

  std::string which = cli.str("sim");
  if (which == "auto") {
    const SimulatorSelector selector;
    which = std::string(to_string(selector.choose(scene, stars.size())));
    std::printf("selector picked: %s\n", which.c_str());
  }

  gpusim::Device device(gpusim::DeviceSpec::gtx480());
  device.set_sanitizer(*sanitize);
  std::unique_ptr<Simulator> simulator;
  if (which == "sequential") {
    simulator = std::make_unique<SequentialSimulator>();
  } else if (which == "cpu" || which == "cpu-parallel") {
    simulator = std::make_unique<OpenMpSimulator>();
  } else if (which == "parallel") {
    simulator = std::make_unique<ParallelSimulator>(device);
  } else if (which == "adaptive") {
    simulator = std::make_unique<AdaptiveSimulator>(device);
  } else {
    std::fprintf(stderr, "unknown simulator: %s\n", which.c_str());
    return 1;
  }

  // With fault injection, the chosen simulator becomes the head of a
  // degradation chain (chosen -> cpu-parallel -> sequential) behind a
  // ResilientExecutor, and the device gets a seeded transient-fault oracle.
  std::unique_ptr<gpusim::FaultInjector> injector;
  if (cli.flag("inject-faults")) {
    injector = std::make_unique<gpusim::FaultInjector>(
        gpusim::FaultPolicy::transient(
            cli.real("fault-rate"),
            static_cast<std::uint64_t>(cli.integer("fault-seed"))));
    device.set_fault_injector(injector.get());
    RetryPolicy retry;
    retry.max_retries = static_cast<int>(cli.integer("max-retries"));
    std::vector<std::unique_ptr<Simulator>> chain;
    chain.push_back(std::move(simulator));
    chain.push_back(std::make_unique<OpenMpSimulator>());
    chain.push_back(std::make_unique<SequentialSimulator>());
    simulator =
        std::make_unique<ResilientExecutor>(std::move(chain), retry);
  }

  const std::string trace_path = cli.str("trace");
  if (!trace_path.empty()) {
    trace::TraceRecorder::instance().set_thread_name("main");
    trace::TraceRecorder::instance().start();
  }
  const SimulationResult result = simulator->simulate(scene, stars);
  if (!trace_path.empty() && finish_trace(trace_path) != 0) return 1;
  if (injector) {
    const auto& executor = static_cast<const ResilientExecutor&>(*simulator);
    const ResilienceReport& report = executor.last_report();
    std::printf(
        "resilience: %d attempt(s), %zu fault(s), %d fallback(s); "
        "final simulator: %s%s; modeled backoff %s\n",
        report.attempts, report.faults.size(), report.fallbacks,
        report.final_simulator.c_str(),
        report.degraded ? " (degraded)" : "",
        sup::format_time(report.backoff_total_s).c_str());
    for (const FaultEvent& fault : report.faults) {
      std::printf("  fault in %s: %s\n", fault.simulator.c_str(),
                  fault.error.c_str());
    }
  }
  std::printf(
      "%zu stars -> %dx%d frame with the %s simulator\n"
      "modeled: %s application (%s kernel, %s non-kernel); wall here: %s\n",
      stars.size(), scene.image_width, scene.image_height,
      simulator->name().data(),
      sup::format_time(result.timing.application_s()).c_str(),
      sup::format_time(result.timing.kernel_s).c_str(),
      sup::format_time(result.timing.non_kernel_s()).c_str(),
      sup::format_time(result.timing.wall_s).c_str());

  RenderOptions render;
  render.tonemap.gamma = 2.2f;
  render.apply_noise = cli.flag("noise");
  save_star_image(result.image, cli.str("out"), render);
  std::printf("wrote %s.bmp and %s.pgm\n", cli.str("out").c_str(),
              cli.str("out").c_str());

  if (*sanitize != gpusim::SanitizerMode::kOff) {
    gpusim::SanitizerReport report = device.sanitizer_report();
    report.mode = *sanitize;
    if (gpusim::sanitizer_enabled(*sanitize,
                                  gpusim::SanitizerMode::kLeakcheck)) {
      // Leakcheck judges teardown: a well-behaved simulator frees its
      // buffers and unbinds its textures when destroyed, so destroy it
      // first and audit what it left on the device.
      simulator.reset();
      report.merge(device.leak_report());
    }
    std::printf("%s\n", report.summary().c_str());
    if (!report.clean()) return 1;
  }
  return 0;
}

/// Map a --device name onto the specs DeviceSpec ships.
std::optional<gpusim::DeviceSpec> parse_device(const std::string& name) {
  if (name == "gtx480") return gpusim::DeviceSpec::gtx480();
  if (name == "gtx580") return gpusim::DeviceSpec::gtx580();
  if (name == "k20") return gpusim::DeviceSpec::k20();
  std::fprintf(stderr, "bad --device (want gtx480|gtx580|k20): %s\n",
               name.c_str());
  return std::nullopt;
}

int cmd_autoschedule(int argc, char** argv) {
  sup::Cli cli("starsim_cli autoschedule",
               "tune an execution schedule with the cost model "
               "(docs/scheduling.md)");
  cli.add_option("stars",
                 "star count to tune for (0 = sweep the paper's test1 "
                 "power-of-two grid)",
                 "0");
  cli.add_option("size", "image edge, pixels", "1024");
  cli.add_option("roi", "ROI side, pixels", "10");
  cli.add_option("sigma", "PSF sigma, pixels", "1.7");
  cli.add_flag("integrated", "pixel-integrated PSF response");
  cli.add_option("lut-bins", "adaptive LUT accuracy floor, bins/magnitude",
                 "1");
  cli.add_option("lut-phases", "adaptive LUT accuracy floor, subpixel phases",
                 "1");
  cli.add_option("batch", "frames batched per scene (setup amortization)",
                 "1");
  cli.add_option("device", "modeled GPU: gtx480 | gtx580 | k20", "gtx480");
  cli.add_option("seed", "tuner annealing seed", "1");
  cli.add_option("schedule-cache",
                 "warm-start file: load before tuning, save after ('' = "
                 "in-memory only)",
                 "");
  if (!cli.parse(argc, argv)) return 0;
  const std::optional<gpusim::DeviceSpec> device =
      parse_device(cli.str("device"));
  if (!device.has_value()) return 1;

  SceneConfig scene;
  scene.image_width = static_cast<int>(cli.integer("size"));
  scene.image_height = scene.image_width;
  scene.roi_side = static_cast<int>(cli.integer("roi"));
  scene.psf_sigma = cli.real("sigma");
  scene.pixel_integration = cli.flag("integrated");

  sched::SchedulerOptions options;
  options.device = *device;
  options.lut_floor.bins_per_magnitude =
      static_cast<int>(cli.integer("lut-bins"));
  options.lut_floor.subpixel_phases =
      static_cast<int>(cli.integer("lut-phases"));
  options.batch_hint = static_cast<std::size_t>(cli.integer("batch"));
  options.tuner.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  sched::Scheduler scheduler(options);

  const std::string cache_path = cli.str("schedule-cache");
  if (!cache_path.empty() && scheduler.load_cache(cache_path)) {
    std::printf("loaded schedule cache from %s\n", cache_path.c_str());
  }

  std::vector<std::size_t> counts;
  const auto pinned = static_cast<std::size_t>(cli.integer("stars"));
  if (pinned > 0) {
    counts.push_back(pinned);
  } else {
    for (std::size_t n = 32; n <= 131072; n *= 2) counts.push_back(n);
  }

  const sched::Tuner& tuner = scheduler.tuner();
  std::printf("device %s, %dx%d image, ROI %d, batch %zu\n",
              options.device.name.c_str(), scene.image_width,
              scene.image_height, scene.roi_side, options.batch_hint);
  std::printf("%9s  %-34s %12s %12s %12s %9s\n", "stars", "tuned schedule",
              "tuned", "parallel", "adaptive", "speedup");
  for (const std::size_t n : counts) {
    sched::Workload workload;
    workload.scene = scene;
    workload.star_count = n;
    workload.batch_hint = options.batch_hint;
    const sched::TuningOutcome outcome =
        tuner.tune(workload, options.lut_floor);
    // Route through the scheduler too so the cache file captures the sweep.
    (void)scheduler.schedule_for(scene, n);
    std::printf("%9zu  %-34s %12s %12s %12s %8.2fx\n", n,
                outcome.schedule.to_string().c_str(),
                sup::format_time(outcome.cost.application_s).c_str(),
                sup::format_time(outcome.fixed_parallel_s).c_str(),
                outcome.fixed_adaptive_s ==
                        std::numeric_limits<double>::infinity()
                    ? "n/a"
                    : sup::format_time(outcome.fixed_adaptive_s).c_str(),
                outcome.speedup_vs_fixed());
  }
  const sched::SchedulerStats stats = scheduler.stats();
  std::printf(
      "tuner: %llu invocations, %llu candidates scored; cache: %llu hits / "
      "%llu misses\n",
      static_cast<unsigned long long>(stats.tuner_invocations),
      static_cast<unsigned long long>(stats.candidates_evaluated),
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses));
  if (!cache_path.empty()) {
    if (!scheduler.save_cache(cache_path)) {
      std::fprintf(stderr, "cannot write schedule cache %s\n",
                   cache_path.c_str());
      return 1;
    }
    std::printf("saved schedule cache to %s\n", cache_path.c_str());
  }
  return 0;
}

int cmd_serve_bench(int argc, char** argv) {
  sup::Cli cli("starsim_cli serve-bench",
               "load-test the concurrent frame service (docs/serving.md)");
  cli.add_option("clients", "concurrent client threads", "8");
  cli.add_option("frames", "requests per client", "8");
  cli.add_option("workers", "render worker threads", "2");
  cli.add_option("batch", "max dynamic batch size", "8");
  cli.add_option("queue", "admission queue capacity", "128");
  cli.add_option("cache", "rendered-frame cache capacity (0 = off)", "0");
  cli.add_option("stars", "stars per frame", "256");
  cli.add_option("size", "image edge, pixels", "512");
  cli.add_option("roi", "ROI side, pixels", "10");
  cli.add_option("sim", "auto | sequential | cpu | parallel | adaptive",
                 "adaptive");
  cli.add_option("lut-bins", "adaptive LUT bins per magnitude", "100");
  cli.add_option("lut-phases", "adaptive LUT subpixel phases", "2");
  cli.add_option("seed", "star-field seed base", "42");
  cli.add_flag("shared-stream",
               "all clients replay one shared request stream (cacheable "
               "traffic; pair with --cache)");
  cli.add_flag("inject-faults",
               "chaos mode: seeded per-worker fault injection (transient "
               "faults + device loss) with resilient workers");
  cli.add_option("fault-rate", "per-consult fault probability", "0.05");
  cli.add_option("lost-rate",
                 "probability an injected fault takes the device down",
                 "0.1");
  cli.add_option("fault-seed", "fault-schedule seed base", "1");
  cli.add_option("deadline-ms",
                 "per-request deadline, milliseconds (0 = none)", "0");
  cli.add_option("priority-mix",
                 "low:normal:high request weights, e.g. 1:2:1", "0:1:0");
  cli.add_option("sanitize",
                 "worker-wide device instrumentation: off | memcheck | race "
                 "| sync | leak | all (non-zero exit on findings)",
                 "off");
  cli.add_option("trace",
                 "write a Chrome trace of the measured traffic to this file",
                 "");
  cli.add_option("metrics",
                 "write one Prometheus scrape of the final service state to "
                 "this file",
                 "");
  cli.add_option("shards",
                 "serve through a sharded fleet of this many FrameService "
                 "instances (0 = single service)",
                 "0");
  cli.add_option("replicas", "replicas per scene in fleet mode", "2");
  cli.add_option("router-threads", "fleet router threads", "2");
  cli.add_option("hedge-ms",
                 "fleet hedge trigger, ms (-1 = off, 0 = adaptive p95, >0 "
                 "fixed)",
                 "-1");
  cli.add_option("slow-shard",
                 "inject a straggler: this shard index renders slowly "
                 "(-1 = none)",
                 "-1");
  cli.add_option("slow-ms", "straggler delay per render, ms", "25");
  cli.add_option("proc-shards",
                 "serve through this many out-of-process starsim_shardd "
                 "hosts behind Unix sockets, supervised (0 = in-process "
                 "shards; overrides --shards)",
                 "0");
  cli.add_option("kill-shard",
                 "chaos: SIGKILL shard <i> <t> ms into the measured run, "
                 "written i@t (e.g. 1@50); supervised fleets respawn it",
                 "");
  cli.add_option("shardd",
                 "path to the starsim_shardd binary for --proc-shards",
                 STARSIM_SHARDD_PATH);
  cli.add_option("schedule-cache",
                 "auto-scheduler warm-start file: load before serving, save "
                 "after ('' = cold cache)",
                 "");
  if (!cli.parse(argc, argv)) return 0;
  const std::optional<gpusim::SanitizerMode> sanitize =
      parse_sanitize(cli.str("sanitize"));
  if (!sanitize.has_value()) return 1;

  const int clients = static_cast<int>(cli.integer("clients"));
  const std::size_t frames = static_cast<std::size_t>(cli.integer("frames"));
  const bool shared = cli.flag("shared-stream");
  const bool inject = cli.flag("inject-faults");
  const double deadline_ms = cli.real("deadline-ms");

  // "l:n:h" weights unroll into a repeating priority pattern; request i
  // takes pattern[i % size], so the mix holds per client stream.
  std::vector<serve::RequestPriority> priority_pattern;
  {
    const std::string mix = cli.str("priority-mix");
    long weights[3] = {0, 1, 0};
    if (std::sscanf(mix.c_str(), "%ld:%ld:%ld", &weights[0], &weights[1],
                    &weights[2]) != 3 ||
        weights[0] < 0 || weights[1] < 0 || weights[2] < 0 ||
        weights[0] + weights[1] + weights[2] == 0) {
      std::fprintf(stderr, "bad --priority-mix (want low:normal:high): %s\n",
                   mix.c_str());
      return 1;
    }
    for (int p = 0; p < 3; ++p) {
      for (long w = 0; w < weights[p]; ++w) {
        priority_pattern.push_back(static_cast<serve::RequestPriority>(p));
      }
    }
  }

  SceneConfig scene;
  scene.image_width = static_cast<int>(cli.integer("size"));
  scene.image_height = scene.image_width;
  scene.roi_side = static_cast<int>(cli.integer("roi"));

  std::optional<SimulatorKind> kind;
  const std::string which = cli.str("sim");
  if (which == "sequential") {
    kind = SimulatorKind::kSequential;
  } else if (which == "cpu" || which == "cpu-parallel") {
    kind = SimulatorKind::kCpuParallel;
  } else if (which == "parallel") {
    kind = SimulatorKind::kParallel;
  } else if (which == "adaptive") {
    kind = SimulatorKind::kAdaptive;
  } else if (which != "auto") {
    std::fprintf(stderr, "unknown simulator: %s\n", which.c_str());
    return 1;
  }

  // One star field per distinct request; with --shared-stream every client
  // replays stream 0 so repeat traffic can hit the frame cache.
  const std::size_t streams =
      shared ? 1 : static_cast<std::size_t>(clients);
  std::vector<StarField> fields;
  fields.reserve(streams * frames);
  for (std::size_t i = 0; i < streams * frames; ++i) {
    WorkloadConfig workload;
    workload.star_count = static_cast<std::size_t>(cli.integer("stars"));
    workload.image_width = scene.image_width;
    workload.image_height = scene.image_height;
    workload.seed = static_cast<std::uint64_t>(cli.integer("seed")) + i;
    fields.push_back(generate_stars(workload));
  }

  serve::FrameServiceOptions opts;
  opts.workers = static_cast<int>(cli.integer("workers"));
  opts.max_batch_size = static_cast<std::size_t>(cli.integer("batch"));
  opts.queue_capacity = static_cast<std::size_t>(cli.integer("queue"));
  opts.cache_capacity = static_cast<std::size_t>(cli.integer("cache"));
  opts.worker.lut.bins_per_magnitude =
      static_cast<int>(cli.integer("lut-bins"));
  opts.worker.lut.subpixel_phases =
      static_cast<int>(cli.integer("lut-phases"));
  opts.worker.sanitize = *sanitize;
  if (inject) {
    // Chaos serving: seeded faults at every device site, resilient workers
    // so a faulted frame degrades instead of failing its future, and the
    // supervisor's replacement ladder on device loss (docs/resilience.md).
    opts.worker.fault_policy = gpusim::FaultPolicy::chaos(
        cli.real("fault-rate"), cli.real("lost-rate"),
        static_cast<std::uint64_t>(cli.integer("fault-seed")));
    opts.worker.resilient = true;
  }
  const bool warm_cache = opts.cache_capacity > 0 && shared;

  // With --schedule-cache the auto-scheduler is shared (one schedule cache
  // across every shard/service) and warm-started from the file; the final
  // state is saved back so a second run hits instead of re-tuning.
  const std::string sched_cache_path = cli.str("schedule-cache");
  std::shared_ptr<sched::Scheduler> scheduler;
  if (!sched_cache_path.empty()) {
    sched::SchedulerOptions sched_options;
    sched_options.device = opts.selector.device();
    sched_options.host = opts.selector.host();
    sched_options.lut_floor = opts.selector.lut();
    sched_options.batch_hint = std::max<std::size_t>(1, opts.max_batch_size);
    scheduler = std::make_shared<sched::Scheduler>(sched_options);
    if (scheduler->load_cache(sched_cache_path)) {
      std::printf("loaded schedule cache from %s\n",
                  sched_cache_path.c_str());
    }
    opts.scheduler = scheduler;
  }
  const auto finish_schedule_cache = [&]() -> bool {
    if (!scheduler) return true;
    const sched::SchedulerStats s = scheduler->stats();
    const double lookups =
        static_cast<double>(s.cache.hits + s.cache.misses);
    std::printf(
        "scheduler: %llu cache hits / %llu misses (%.0f%% hit rate), %llu "
        "tunes, modeled speedup vs fixed %.2fx\n",
        static_cast<unsigned long long>(s.cache.hits),
        static_cast<unsigned long long>(s.cache.misses),
        lookups > 0.0 ? 100.0 * static_cast<double>(s.cache.hits) / lookups
                      : 0.0,
        static_cast<unsigned long long>(s.tuner_invocations),
        s.tuned_modeled_s_total > 0.0
            ? s.fallback_modeled_s_total / s.tuned_modeled_s_total
            : 1.0);
    if (!scheduler->save_cache(sched_cache_path)) {
      std::fprintf(stderr, "cannot write schedule cache %s\n",
                   sched_cache_path.c_str());
      return false;
    }
    std::printf("saved schedule cache to %s\n", sched_cache_path.c_str());
    return true;
  };

  const int proc_shards = static_cast<int>(cli.integer("proc-shards"));
  const int shard_count =
      proc_shards > 0 ? proc_shards : static_cast<int>(cli.integer("shards"));
  int kill_index = -1;
  double kill_at_ms = 0.0;
  {
    const std::string spec = cli.str("kill-shard");
    if (!spec.empty() &&
        (std::sscanf(spec.c_str(), "%d@%lf", &kill_index, &kill_at_ms) != 2 ||
         kill_index < 0 || kill_index >= shard_count || kill_at_ms < 0.0)) {
      std::fprintf(stderr, "bad --kill-shard (want i@t_ms): %s\n",
                   spec.c_str());
      return 1;
    }
  }
  if (shard_count > 0) {
    // Fleet mode: the same traffic through a sharded router instead of one
    // service. Routing keys are scene fingerprints, so each request gets an
    // imperceptible psf perturbation to spread the streams across the ring
    // (one scene would otherwise pin the whole bench to one shard).
    fleet::FleetOptions fleet_opts;
    fleet_opts.shards = shard_count;
    fleet_opts.replicas = static_cast<int>(cli.integer("replicas"));
    fleet_opts.router_threads =
        static_cast<int>(cli.integer("router-threads"));
    fleet_opts.hedge_ms = cli.real("hedge-ms");
    fleet_opts.straggler_shard = static_cast<int>(cli.integer("slow-shard"));
    fleet_opts.straggler_ms = cli.real("slow-ms");
    fleet_opts.shard = opts;
    if (proc_shards > 0) {
      // Each shard becomes a supervised starsim_shardd process; a kill
      // exercises the full ladder (detect -> respawn -> probe -> reinstate)
      // instead of permanent failover. docs/serving.md#process-shards.
      fleet_opts.process_shards = true;
      fleet_opts.shardd_path = cli.str("shardd");
      fleet_opts.socket_dir =
          "/tmp/starsim_serve_" + std::to_string(::getpid());
      ::mkdir(fleet_opts.socket_dir.c_str(), 0700);
      fleet_opts.supervise = true;
      fleet_opts.transport.heartbeat_period_s = 0.05;
      fleet_opts.supervision.poll_ms = 10.0;
      fleet_opts.supervision.respawn_backoff_ms = 10.0;
    }
    fleet::ShardRouter router(fleet_opts);

    const auto request_for = [&](std::size_t index) {
      serve::RenderRequest request;
      request.scene = scene;
      request.scene.psf_sigma += 1e-9 * static_cast<double>(index);
      request.stars = fields[index];
      request.simulator = kind;
      return request;
    };
    if (warm_cache) {
      for (std::size_t i = 0; i < fields.size(); ++i) {
        (void)router.render(request_for(i));
      }
    }

    const std::string trace_path = cli.str("trace");
    if (!trace_path.empty()) {
      trace::TraceRecorder::instance().set_thread_name("bench-main");
      trace::TraceRecorder::instance().start();
    }

    sup::WallTimer timer;
    std::thread assassin;
    if (kill_index >= 0) {
      assassin = std::thread([&router, kill_index, kill_at_ms] {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(kill_at_ms));
        router.crash_shard(kill_index);
      });
    }
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        if (trace::tracing_on()) {
          trace::TraceRecorder::instance().set_thread_name(
              "client-" + std::to_string(c));
        }
        const std::size_t base =
            shared ? 0 : static_cast<std::size_t>(c) * frames;
        std::vector<std::future<serve::RenderResponse>> futures;
        futures.reserve(frames);
        for (std::size_t i = 0; i < frames; ++i) {
          serve::RenderRequest request = request_for(base + i);
          request.priority = priority_pattern[i % priority_pattern.size()];
          if (deadline_ms > 0.0) request.deadline_s = deadline_ms / 1000.0;
          futures.push_back(router.submit(std::move(request)));
        }
        for (auto& future : futures) {
          try {
            (void)future.get();
          } catch (const std::exception&) {
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    if (assassin.joinable()) assassin.join();
    const double wall_s = timer.seconds();

    // Scrape before stop: socket shards answer the stats frames live, and
    // a stopped fleet has no processes left to ask.
    const std::string metrics_path = cli.str("metrics");
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path, std::ios::binary);
      out << router.scrape_metrics();
      if (!out) {
        std::fprintf(stderr, "cannot write metrics %s\n",
                     metrics_path.c_str());
        return 1;
      }
      std::printf("wrote metrics to %s\n", metrics_path.c_str());
    }
    router.stop();
    const fleet::FleetStats stats = router.stats();

    if (!trace_path.empty() && finish_trace(trace_path) != 0) return 1;

    std::printf(
        "fleet: %d shards x %d replicas, hedge %s\n"
        "served %llu requests for %d clients in %s (%.1f req/s): "
        "%llu frames, %llu failed, %llu rejected\n"
        "latency: p50 %s, p95 %s, p99 %s, mean %s\n"
        "hedges: %llu launched, %llu won, %llu discarded\n"
        "failovers: %llu attempted, %llu recovered\n"
        "shed: %llu displaced, %llu backpressure, %llu expired at the "
        "router; %llu shard sheds\n"
        "wire: %llu request bytes, %llu reply bytes\n",
        router.options().shards, router.options().replicas,
        fleet_opts.hedge_ms < 0.0
            ? "off"
            : (fleet_opts.hedge_ms == 0.0
                   ? "adaptive"
                   : (sup::format_time(fleet_opts.hedge_ms / 1000.0))
                         .c_str()),
        static_cast<unsigned long long>(stats.submitted), clients,
        sup::format_time(wall_s).c_str(),
        static_cast<double>(static_cast<std::size_t>(clients) * frames) /
            wall_s,
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.failed),
        static_cast<unsigned long long>(stats.rejected),
        sup::format_time(stats.latency.p50).c_str(),
        sup::format_time(stats.latency.p95).c_str(),
        sup::format_time(stats.latency.p99).c_str(),
        sup::format_time(stats.mean_latency_s).c_str(),
        static_cast<unsigned long long>(stats.hedges_launched),
        static_cast<unsigned long long>(stats.hedges_won),
        static_cast<unsigned long long>(stats.hedges_discarded),
        static_cast<unsigned long long>(stats.failovers),
        static_cast<unsigned long long>(stats.failover_successes),
        static_cast<unsigned long long>(stats.router_shed),
        static_cast<unsigned long long>(stats.backpressure_rejected),
        static_cast<unsigned long long>(stats.expired_router),
        static_cast<unsigned long long>(stats.shard_sheds),
        static_cast<unsigned long long>(stats.wire_request_bytes),
        static_cast<unsigned long long>(stats.wire_reply_bytes));
    if (proc_shards > 0) {
      std::printf(
          "proc: %llu crashes, %llu hangs detected; respawns %llu attempted "
          "%llu succeeded %llu exhausted (last %s); heartbeats %llu sent "
          "%llu missed; %llu transport timeouts, %llu reconnects\n",
          static_cast<unsigned long long>(stats.crashes_detected),
          static_cast<unsigned long long>(stats.hangs_detected),
          static_cast<unsigned long long>(stats.respawns_attempted),
          static_cast<unsigned long long>(stats.respawns_succeeded),
          static_cast<unsigned long long>(stats.respawns_exhausted),
          sup::format_time(stats.last_respawn_s).c_str(),
          static_cast<unsigned long long>(stats.heartbeats_sent),
          static_cast<unsigned long long>(stats.heartbeats_missed),
          static_cast<unsigned long long>(stats.transport_timeouts),
          static_cast<unsigned long long>(stats.reconnects));
    }
    std::uint64_t sanitizer_findings = 0;
    for (const fleet::ShardSnapshot& shard : stats.shards) {
      // Sanitizer findings live in the service; only in-process shards can
      // be asked directly (socket shards report through their scrapes).
      if (fleet::Shard* local = router.loopback_shard(shard.index)) {
        sanitizer_findings += local->stats().sanitizer_findings;
      }
      std::printf(
          "  shard %d: %s, %llu routed, %llu errors, %llu sheds, "
          "%llu quarantines, %llu probes, %llu reinstates, %llu respawns\n",
          shard.index, std::string(fleet::to_string(shard.state)).c_str(),
          static_cast<unsigned long long>(shard.routed),
          static_cast<unsigned long long>(shard.errors),
          static_cast<unsigned long long>(shard.sheds),
          static_cast<unsigned long long>(shard.quarantines),
          static_cast<unsigned long long>(shard.probes),
          static_cast<unsigned long long>(shard.reinstates),
          static_cast<unsigned long long>(shard.respawns));
    }
    if (*sanitize != gpusim::SanitizerMode::kOff) {
      std::printf("sanitizer (%s): %llu finding(s) across the fleet\n",
                  std::string(gpusim::to_string(*sanitize)).c_str(),
                  static_cast<unsigned long long>(sanitizer_findings));
      if (sanitizer_findings != 0) return 1;
    }
    if (!finish_schedule_cache()) return 1;
    // Stuck futures are the unconditional failure; chaos and deadlines
    // legitimately fail some requests.
    if (stats.in_flight() != 0) return 1;
    const bool failures_expected =
        inject || deadline_ms > 0.0 || kill_index >= 0;
    return failures_expected || stats.failed == 0 ? 0 : 1;
  }

  serve::FrameService service(std::move(opts));

  // Concurrent duplicates of an uncached scene all miss (the first render
  // is still in flight), so warm the cache with one serial pass before
  // timing the measured, cache-hitting traffic.
  if (warm_cache) {
    for (const StarField& stars : fields) {
      serve::RenderRequest request;
      request.scene = scene;
      request.stars = stars;
      request.simulator = kind;
      (void)service.render(std::move(request));
    }
  }

  // Trace only the measured traffic (the warm-up pass above is setup);
  // worker threads named themselves when the pool spun up, and thread names
  // are sticky across recorder sessions.
  const std::string trace_path = cli.str("trace");
  if (!trace_path.empty()) {
    trace::TraceRecorder::instance().set_thread_name("bench-main");
    trace::TraceRecorder::instance().start();
  }

  sup::WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      if (trace::tracing_on()) {
        trace::TraceRecorder::instance().set_thread_name(
            "client-" + std::to_string(c));
      }
      const std::size_t base =
          shared ? 0 : static_cast<std::size_t>(c) * frames;
      std::vector<std::future<serve::RenderResponse>> futures;
      futures.reserve(frames);
      for (std::size_t i = 0; i < frames; ++i) {
        serve::RenderRequest request;
        request.scene = scene;
        request.stars = fields[base + i];
        request.simulator = kind;
        request.priority = priority_pattern[i % priority_pattern.size()];
        if (deadline_ms > 0.0) request.deadline_s = deadline_ms / 1000.0;
        futures.push_back(service.submit(std::move(request)));
      }
      for (auto& future : futures) {
        // Under chaos or tight deadlines some futures resolve with typed
        // errors; the stats printed below account for every outcome.
        try {
          (void)future.get();
        } catch (const std::exception&) {
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double wall_s = timer.seconds();
  // Quiesce before reporting: supervision decisions for the final batches
  // may still be in flight, and stop() makes every counter final.
  service.stop();
  const serve::ServiceStats stats = service.stats();

  if (!trace_path.empty() && finish_trace(trace_path) != 0) return 1;
  const std::string metrics_path = cli.str("metrics");
  if (!metrics_path.empty()) {
    // Scrape after stop(): every counter is final once the queue drained.
    std::ofstream out(metrics_path, std::ios::binary);
    out << service.scrape_metrics();
    if (!out) {
      std::fprintf(stderr, "cannot write metrics %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }

  std::printf(
      "served %llu frames for %d clients in %s (%.1f frames/s)\n"
      "latency: p50 %s, p95 %s, p99 %s, mean %s\n"
      "batching: %llu batches, mean size %.2f\n"
      "cache: %llu hits / %llu misses (%.0f%% hit rate)\n"
      "failures: %llu failed, %llu rejected, %llu shed\n"
      "deadlines: %llu expired (%llu at admission, %llu in queue, %llu "
      "post-render)\n",
      static_cast<unsigned long long>(static_cast<std::size_t>(clients) *
                                      frames),
      clients, sup::format_time(wall_s).c_str(),
      static_cast<double>(static_cast<std::size_t>(clients) * frames) /
          wall_s,
      sup::format_time(stats.latency.p50).c_str(),
      sup::format_time(stats.latency.p95).c_str(),
      sup::format_time(stats.latency.p99).c_str(),
      sup::format_time(stats.mean_latency_s).c_str(),
      static_cast<unsigned long long>(stats.batches),
      stats.mean_batch_size(),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      stats.cache_hit_rate() * 100.0,
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.expired_total()),
      static_cast<unsigned long long>(stats.expired_admission),
      static_cast<unsigned long long>(stats.expired_batch),
      static_cast<unsigned long long>(stats.expired_post_render));

  const serve::PoolHealth health = service.health();
  std::printf("health: %d/%zu workers active, %d device replacements, "
              "%d quarantines, %llu sink exceptions%s\n",
              health.active_workers, health.workers.size(),
              health.total_device_replacements, health.total_quarantines,
              static_cast<unsigned long long>(health.sink_exceptions),
              health.degraded() ? " [DEGRADED]" : "");
  for (const serve::WorkerHealth& worker : health.workers) {
    if (worker.state == serve::WorkerState::kHealthy &&
        worker.device_replacements == 0) {
      continue;  // only the interesting rows
    }
    std::printf("  worker %d: %s, %d replacements, %llu ok / %llu failed "
                "batches\n",
                worker.index, to_string(worker.state).data(),
                worker.device_replacements,
                static_cast<unsigned long long>(worker.batches_ok),
                static_cast<unsigned long long>(worker.batches_failed));
  }

  if (*sanitize != gpusim::SanitizerMode::kOff) {
    std::printf("sanitizer (%s): %llu finding(s) across %llu batches\n",
                std::string(gpusim::to_string(*sanitize)).c_str(),
                static_cast<unsigned long long>(stats.sanitizer_findings),
                static_cast<unsigned long long>(stats.batches));
    if (stats.sanitizer_findings != 0) return 1;
  }

  if (!finish_schedule_cache()) return 1;
  // Chaos and tight deadlines legitimately fail futures; stuck (never
  // resolved) requests are the only unconditional bench failure.
  if (stats.in_flight() != 0) return 1;
  const bool failures_expected = inject || deadline_ms > 0.0;
  return failures_expected || stats.failed == 0 ? 0 : 1;
}

int cmd_trace_check(int argc, char** argv) {
  sup::Cli cli("starsim_cli trace-check",
               "validate trace/metrics artifacts (docs/observability.md)");
  cli.add_option("trace",
                 "Chrome trace JSON to validate: balanced B/E slices, "
                 "monotonic per-thread timestamps, closed flows ('' = skip)",
                 "");
  cli.add_option("metrics",
                 "Prometheus exposition to check for the required serve "
                 "metric families ('' = skip)",
                 "");
  cli.add_flag("fleet",
               "also require the fleet router families (scrapes produced by "
               "serve-bench --shards)");
  if (!cli.parse(argc, argv)) return 0;

  bool checked = false;
  bool ok = true;
  const std::string trace_path = cli.str("trace");
  if (!trace_path.empty()) {
    checked = true;
    const std::optional<std::string> json = read_whole_file(trace_path);
    if (!json.has_value()) return 1;
    const trace::TraceCheck check = trace::validate_chrome_trace(*json);
    std::printf("%s: %s\n", trace_path.c_str(), check.summary().c_str());
    for (const std::string& error : check.errors) {
      std::fprintf(stderr, "  trace error: %s\n", error.c_str());
    }
    ok = ok && check.ok;
  }
  const std::string metrics_path = cli.str("metrics");
  if (!metrics_path.empty()) {
    checked = true;
    const std::optional<std::string> exposition =
        read_whole_file(metrics_path);
    if (!exposition.has_value()) return 1;
    // The families the CI observability step treats as load-bearing: one
    // per subsystem the scrape unifies (queue, batching, render split,
    // cache, sanitizer).
    std::vector<std::string> required = {
        "starsim_serve_queue_depth",
        "starsim_serve_batch_size",
        "starsim_serve_render_seconds_total",
        "starsim_serve_cache_hits_total",
        "starsim_serve_sanitizer_findings_total",
        "starsim_sched_cache_events_total",
        "starsim_sched_tuner_invocations_total",
        "starsim_sched_modeled_seconds_total",
    };
    if (cli.flag("fleet")) {
      // A fleet scrape carries the router's own families on top of the
      // instance-labelled shard serve families above.
      required.push_back("starsim_fleet_requests_total");
      required.push_back("starsim_fleet_hedges_total");
      required.push_back("starsim_fleet_failovers_total");
      required.push_back("starsim_fleet_shard_state");
      required.push_back("starsim_fleet_latency_seconds");
      required.push_back("starsim_fleet_proc_respawns_total");
      required.push_back("starsim_fleet_heartbeats_total");
      // Network families (PR 9): emitted by every fleet — zeros for
      // loopback — so their absence always means a broken exposition.
      required.push_back("starsim_fleet_net_rtt_seconds");
      required.push_back("starsim_fleet_net_handshakes_total");
      required.push_back("starsim_fleet_net_dial_backoffs_total");
      required.push_back("starsim_fleet_net_partitions_total");
      required.push_back("starsim_fleet_net_faults_injected_total");
    }
    const std::vector<std::string> problems =
        trace::check_prometheus(*exposition, required);
    for (const std::string& problem : problems) {
      std::fprintf(stderr, "  metrics problem: %s\n", problem.c_str());
    }
    std::printf("%s: %zu required families %s\n", metrics_path.c_str(),
                required.size(), problems.empty() ? "present" : "MISSING");
    ok = ok && problems.empty();
  }
  if (!checked) {
    std::fprintf(stderr, "nothing to check: pass --trace and/or --metrics\n");
    return 1;
  }
  return ok ? 0 : 1;
}

void print_usage() {
  std::puts(
      "starsim_cli — star image simulation workflow\n"
      "\n"
      "subcommands:\n"
      "  catalog   synthesize a celestial catalogue file\n"
      "  project   attitude -> FOV star retrieval\n"
      "  generate  random benchmark star field\n"
      "  simulate  star file -> image (--sim auto uses the selector)\n"
      "  autoschedule  cost-model-tune an execution schedule\n"
      "  serve-bench  load-test the concurrent frame service\n"
      "  trace-check  validate exported trace/metrics artifacts\n"
      "\n"
      "run `starsim_cli <subcommand> --help` for options.");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand parses its own options.
  argv[1] = argv[0];
  if (command == "catalog") return cmd_catalog(argc - 1, argv + 1);
  if (command == "project") return cmd_project(argc - 1, argv + 1);
  if (command == "generate") return cmd_generate(argc - 1, argv + 1);
  if (command == "simulate") return cmd_simulate(argc - 1, argv + 1);
  if (command == "autoschedule") {
    return cmd_autoschedule(argc - 1, argv + 1);
  }
  if (command == "serve-bench") return cmd_serve_bench(argc - 1, argv + 1);
  if (command == "trace-check") return cmd_trace_check(argc - 1, argv + 1);
  if (command == "--help" || command == "help") {
    print_usage();
    return 0;
  }
  std::fprintf(stderr, "unknown subcommand: %s\n\n", command.c_str());
  print_usage();
  return 1;
}
