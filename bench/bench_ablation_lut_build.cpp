// Ablation — where to build the lookup table. Section IV-D builds it on
// the CPU "due to the small execution overhead and little data
// parallelism". This bench measures that trade across table sizes: the CPU
// build (modeled i7-860 cost + PCIe upload) against the rejected
// device-side kernel (no upload, but launch overhead and — for small
// tables — poor occupancy).
#include <cstdio>

#include "bench_common.h"
#include "gpusim/host_spec.h"
#include "gpusim/perf_model.h"
#include "starsim/workload.h"
#include "starsim/lut_device_build.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim;
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ablation_lut_build",
                       "ablation: CPU vs device-side lookup-table build",
                       options, csv_path)) {
    return 0;
  }

  std::puts("Ablation — lookup-table build site (modeled times)\n");
  sup::ConsoleTable table({"bins/mag", "phases", "entries",
                           "CPU build + upload", "GPU kernel",
                           "GPU occupancy", "winner"});
  sup::CsvWriter csv({"bins_per_mag", "phases", "entries", "cpu_s", "gpu_s",
                      "gpu_utilization"});

  const auto host = gpusim::HostSpec::i7_860();
  struct Config {
    int bins;
    int phases;
  };
  const Config configs[] = {{1, 1},  {4, 1},  {16, 1}, {64, 1},
                            {16, 4}, {64, 4}, {100, 4}};
  for (const Config& c : configs) {
    if (options.quick && (c.bins > 16 || c.phases > 1)) continue;
    SceneConfig scene = paper_scene(kTest1RoiSide);
    LookupTableOptions lut;
    lut.bins_per_magnitude = c.bins;
    lut.subpixel_phases = c.phases;

    gpusim::Device device(gpusim::DeviceSpec::gtx480());
    DeviceLutBuild gpu = build_lookup_table_on_device(device, scene, lut);
    const auto entries = static_cast<std::uint64_t>(gpu.width) *
                         static_cast<std::uint64_t>(gpu.height);
    const double cpu_s =
        host.lut_build_time_s(static_cast<double>(entries)) +
        gpusim::estimate_transfer_time(device.spec(),
                                       entries * sizeof(float));
    device.free(gpu.table);

    table.add_row({std::to_string(c.bins), std::to_string(c.phases),
                   std::to_string(entries), sup::format_time(cpu_s),
                   sup::format_time(gpu.kernel_s),
                   sup::fixed(gpu.utilization, 2),
                   gpu.kernel_s < cpu_s ? "GPU" : "CPU"});
    csv.add_row({std::to_string(c.bins), std::to_string(c.phases),
                 std::to_string(entries), sup::compact(cpu_s),
                 sup::compact(gpu.kernel_s),
                 sup::fixed(gpu.utilization, 4)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nreading: even at the paper's tiny table the modeled device build"
      "\nundercuts the CPU build's fixed cost (Table I's 0.71 ms) despite"
      "\nrunning occupancy-limited — but both are small next to the frame's"
      "\n~2.4 ms transfer, so the paper's CPU choice costs little and is"
      "\ndefensible on simplicity. For the extended tables (fine bins,"
      "\nsubpixel phases) the device build wins by ~6x and the choice starts"
      "\nto matter.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
