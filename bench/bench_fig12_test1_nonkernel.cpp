// Fig. 12 — non-kernel time of both GPU simulators across test1: dominated
// by the (nearly constant) CPU-GPU transmission, with the adaptive
// simulator paying an extra ~0.92 ms for lookup-table build + texture
// binding at every point.
#include <cstdio>

#include "bench_common.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_fig12_test1_nonkernel",
                       "Fig. 12: test1 non-kernel time", options, csv_path)) {
    return 0;
  }

  std::puts("Fig. 12 — test1 non-kernel overhead (modeled)\n");

  const auto points = run_test1(options);
  sup::ConsoleTable table({"stars", "parallel non-kernel",
                           "adaptive non-kernel", "adaptive extra"});
  sup::CsvWriter csv(
      {"stars", "parallel_nonkernel_s", "adaptive_nonkernel_s"});
  for (const SweepPoint& p : points) {
    const double par = p.parallel.non_kernel_s();
    const double ada = p.adaptive.non_kernel_s();
    table.add_row({star_label(p.stars), sup::format_time(par),
                   sup::format_time(ada), sup::format_time(ada - par)});
    csv.add_row({std::to_string(p.stars), sup::compact(par),
                 sup::compact(ada)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\npaper shape: near-constant in stars (image transfer dominates);"
      "\nadaptive sits ~0.9 ms above parallel (LUT build + binding).");
  maybe_write_csv(csv, csv_path);
  return 0;
}
