// Extension — the paper's future work, built: "scaling our simulators to
// multiple GPUs in order to obtain better performance and also more memory
// space". Sweeps device count at a large test1-style workload and reports
// kernel scaling, the shared-PCIe transfer penalty, and aggregate memory.
#include <cstdio>

#include "bench_common.h"
#include "starsim/multi_gpu_simulator.h"
#include "starsim/workload.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim;
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ext_multigpu_scaling",
                       "extension: multi-GPU strong scaling", options,
                       csv_path)) {
    return 0;
  }

  const std::size_t star_count = options.quick ? (1u << 12) : (1u << 15);
  const SceneConfig scene = paper_scene(kTest1RoiSide);
  WorkloadConfig workload;
  workload.star_count = star_count;
  workload.seed = options.seed;
  const StarField stars = generate_stars(workload);

  std::printf(
      "Extension — multi-GPU strong scaling (%zu stars, ROI 10, 1024^2)\n\n",
      star_count);
  sup::ConsoleTable table({"devices", "kernel", "kernel scaling",
                           "transfers", "application", "app speedup",
                           "aggregate memory"});
  sup::CsvWriter csv({"devices", "kernel_s", "transfer_s", "application_s"});

  double kernel_1 = 0.0;
  double app_1 = 0.0;
  for (int devices : {1, 2, 4, 8}) {
    if (options.quick && devices > 4) break;
    MultiGpuSimulator sim(devices);
    const auto timing = sim.simulate(scene, stars).timing;
    if (devices == 1) {
      kernel_1 = timing.kernel_s;
      app_1 = timing.application_s();
    }
    const double transfers = timing.h2d_s + timing.d2h_s;
    table.add_row(
        {std::to_string(devices), sup::format_time(timing.kernel_s),
         sup::fixed(kernel_1 / timing.kernel_s, 2) + "x",
         sup::format_time(transfers),
         sup::format_time(timing.application_s()),
         sup::fixed(app_1 / timing.application_s(), 2) + "x",
         sup::format_bytes(static_cast<std::uint64_t>(devices) *
                           gpusim::DeviceSpec::gtx480().global_memory_bytes)});
    csv.add_row({std::to_string(devices), sup::compact(timing.kernel_s),
                 sup::compact(transfers),
                 sup::compact(timing.application_s())});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nreading: kernels scale nearly linearly; the shared PCIe bus and"
      "\nthe host-side image reduction bound application-level speedup —"
      "\nthe Amdahl term the paper's future-work section anticipates.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
