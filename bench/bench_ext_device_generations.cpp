// Extension — the selection rule across GPU generations. Table III's
// turning points are properties of one chip, not of the algorithm; because
// the advisor predicts from a DeviceSpec, re-deriving the rule for newer
// hardware is free. On Kepler-class fp64 throughput the parallel kernel's
// per-pixel exp becomes cheap, the adaptive simulator's fixed overhead
// stops amortizing, and the inflection retreats or disappears — the
// forward-looking answer to the paper's future-work section.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "starsim/selector.h"
#include "starsim/workload.h"
#include "support/table.h"
#include "support/units.h"

namespace {

struct DeviceRow {
  const char* label;
  starsim::gpusim::DeviceSpec spec;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace starsim;
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ext_device_generations",
                       "extension: Table III across GPU generations",
                       options, csv_path)) {
    return 0;
  }

  const std::vector<DeviceRow> devices = {
      {"GTX480 (paper)", gpusim::DeviceSpec::gtx480()},
      {"GTX580", gpusim::DeviceSpec::gtx580()},
      {"Tesla K20", gpusim::DeviceSpec::k20()},
  };

  std::puts("Extension — selection rule vs GPU generation (predicted)\n");
  sup::ConsoleTable table({"device", "fp64 peak", "star inflection (ROI 10)",
                           "ROI inflection (8192 stars)",
                           "parallel speedup at 2^17",
                           "best GPU at 2^17"});
  sup::CsvWriter csv({"device", "fp64_peak_gflops", "star_inflection",
                      "roi_inflection", "speedup_2e17"});

  for (const DeviceRow& row : devices) {
    const SimulatorSelector selector(row.spec);

    std::size_t star_inflection = 0;
    for (std::size_t n : test1_star_counts()) {
      if (selector.predict(paper_scene(kTest1RoiSide), n).best_gpu ==
          SimulatorKind::kAdaptive) {
        star_inflection = n;
        break;
      }
    }
    int roi_inflection = 0;
    for (int side : test2_roi_sides()) {
      if (selector.predict(paper_scene(side), kTest2StarCount).best_gpu ==
          SimulatorKind::kAdaptive) {
        roi_inflection = side;
        break;
      }
    }
    const Prediction top =
        selector.predict(paper_scene(kTest1RoiSide), 1u << 17);
    const double speedup =
        top.sequential_s / top.parallel.application_s();

    table.add_row(
        {row.label, sup::fixed(row.spec.peak_fp64_flops() / 1e9, 0) + " GF",
         star_inflection ? star_label(star_inflection) : "never",
         roi_inflection ? std::to_string(roi_inflection) : "never",
         sup::fixed(speedup, 0) + "x",
         std::string(to_string(top.best_gpu))});
    csv.add_row({row.label,
                 sup::fixed(row.spec.peak_fp64_flops() / 1e9, 1),
                 std::to_string(star_inflection),
                 std::to_string(roi_inflection), sup::fixed(speedup, 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nreading: the inflection is a chip property. On Fermi the lookup"
      "\ntable pays for itself at the paper's thresholds; as fp64 arithmetic"
      "\ngets cheap (Kepler), precomputing it buys less and the parallel"
      "\nkernel stays the right choice far longer — Table III must be"
      "\nre-derived per device, which the SimulatorSelector does.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
