// Fig. 15 — "Breakdown of parallel simulator, adaptive simulator: test2":
// kernel time vs non-kernel overhead as the ROI side grows.
#include <cstdio>

#include "bench_common.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_fig15_test2_breakdown",
                       "Fig. 15: test2 kernel/non-kernel breakdown", options,
                       csv_path)) {
    return 0;
  }

  std::puts("Fig. 15 — test2 breakdown (modeled)\n");

  const auto points = run_test2(options);
  sup::ConsoleTable table({"roi side", "par kernel", "par non-kernel",
                           "ada kernel", "ada non-kernel"});
  sup::CsvWriter csv({"roi_side", "parallel_kernel_s", "parallel_nonkernel_s",
                      "adaptive_kernel_s", "adaptive_nonkernel_s"});
  for (const SweepPoint& p : points) {
    table.add_row({std::to_string(p.roi_side),
                   sup::format_time(p.parallel.kernel_s),
                   sup::format_time(p.parallel.non_kernel_s()),
                   sup::format_time(p.adaptive.kernel_s),
                   sup::format_time(p.adaptive.non_kernel_s())});
    csv.add_row({std::to_string(p.roi_side),
                 sup::compact(p.parallel.kernel_s),
                 sup::compact(p.parallel.non_kernel_s()),
                 sup::compact(p.adaptive.kernel_s),
                 sup::compact(p.adaptive.non_kernel_s())});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\npaper shape: at small ROI the non-kernel overhead dominates both;"
      "\nkernel share rises with ROI, fastest for the parallel simulator.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
