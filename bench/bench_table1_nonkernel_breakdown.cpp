// Table I — "The breakdown of non-kernel part for adaptive simulator:
// test1": CPU-GPU transmission, lookup-table build, and texture-memory
// binding at every test1 star count. Paper values: transmission 2.43 ms
// (2^5) rising to 3.01 ms (2^17); build ~0.71 ms; binding ~0.21 ms.
#include <cstdio>

#include "bench_common.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_table1_nonkernel_breakdown",
                       "Table I: adaptive simulator non-kernel breakdown",
                       options, csv_path)) {
    return 0;
  }

  std::puts("Table I — adaptive non-kernel breakdown, test1 (ms)\n");

  const auto points = run_test1(options);
  sup::ConsoleTable table({"stars", "CPU-GPU transmission",
                           "lookup table build", "texture binding"});
  sup::CsvWriter csv(
      {"stars", "transmission_ms", "lut_build_ms", "texture_bind_ms"});
  for (const SweepPoint& p : points) {
    const double transmission_ms =
        (p.adaptive.h2d_s + p.adaptive.d2h_s) * 1e3;
    const double build_ms = p.adaptive.lut_build_s * 1e3;
    const double bind_ms = p.adaptive.texture_bind_s * 1e3;
    table.add_row({star_label(p.stars), sup::fixed(transmission_ms, 2),
                   sup::fixed(build_ms, 2), sup::fixed(bind_ms, 2)});
    csv.add_row({std::to_string(p.stars), sup::fixed(transmission_ms, 4),
                 sup::fixed(build_ms, 4), sup::fixed(bind_ms, 4)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\npaper: transmission 2.43 -> 3.01 ms across the sweep (star array"
      "\ngrows to 2 MiB); build ~0.71 ms and binding ~0.21 ms constant.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
