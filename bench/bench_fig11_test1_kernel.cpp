// Fig. 11 — kernel execution time of the parallel and adaptive simulators
// across test1: small and flat below ~2^13 stars, then "rises in a rocket
// way compared to its non-kernel overhead", faster for the parallel kernel.
#include <cstdio>

#include "bench_common.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_fig11_test1_kernel",
                       "Fig. 11: test1 kernel-time breakdown", options,
                       csv_path)) {
    return 0;
  }

  std::puts("Fig. 11 — test1 kernel execution time (modeled GTX480)\n");

  const auto points = run_test1(options);
  sup::ConsoleTable table({"stars", "parallel kernel", "adaptive kernel",
                           "par/ada ratio", "par utilization"});
  sup::CsvWriter csv({"stars", "parallel_kernel_s", "adaptive_kernel_s",
                      "parallel_utilization"});
  for (const SweepPoint& p : points) {
    table.add_row(
        {star_label(p.stars), sup::format_time(p.parallel.kernel_s),
         sup::format_time(p.adaptive.kernel_s),
         sup::fixed(p.parallel.kernel_s / p.adaptive.kernel_s, 2),
         sup::fixed(p.parallel.utilization, 3)});
    csv.add_row({std::to_string(p.stars), sup::compact(p.parallel.kernel_s),
                 sup::compact(p.adaptive.kernel_s),
                 sup::fixed(p.parallel.utilization, 4)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\npaper shape: both kernels cheap below 2^13 stars; beyond, the"
      "\nparallel kernel (per-pixel fp64 exp) grows fastest.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
