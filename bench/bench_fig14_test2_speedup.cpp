// Fig. 14 — "Speedup of GPU simulators to sequential simulator: test2".
// The paper reports parallel up to 163x and adaptive ~200x at ROI 14, with
// the adaptive simulator taking the lead once the ROI side reaches 10.
#include <cstdio>

#include "bench_common.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_fig14_test2_speedup",
                       "Fig. 14: test2 speedup of the GPU simulators",
                       options, csv_path)) {
    return 0;
  }

  std::puts("Fig. 14 — test2 speedup vs sequential (modeled/modeled)\n");

  const auto points = run_test2(options);
  sup::ConsoleTable table(
      {"roi side", "parallel speedup", "adaptive speedup", "leader"});
  sup::CsvWriter csv({"roi_side", "parallel_speedup", "adaptive_speedup"});
  int inflection = 0;
  for (const SweepPoint& p : points) {
    const double seq = p.sequential.application_s();
    const double sp = seq / p.parallel.application_s();
    const double sa = seq / p.adaptive.application_s();
    if (inflection == 0 && sa > sp) inflection = p.roi_side;
    table.add_row({std::to_string(p.roi_side), sup::fixed(sp, 1) + "x",
                   sup::fixed(sa, 1) + "x",
                   sa > sp ? "adaptive" : "parallel"});
    csv.add_row({std::to_string(p.roi_side), sup::fixed(sp, 2),
                 sup::fixed(sa, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  if (inflection != 0) {
    std::printf(
        "\nadaptive overtakes parallel at ROI side %d (paper: 10)\n",
        inflection);
  } else {
    std::puts("\nadaptive never overtakes parallel in this sweep");
  }
  std::puts("paper at ROI 14: parallel 163x, adaptive ~200x.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
