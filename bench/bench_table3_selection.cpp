// Table III — "The GPU simulator selection": locate both inflection points
// from the measured sweeps and print the selection rule, plus the Section
// IV-D observation that the sequential simulator is competitive for very
// small star fields.
#include <cstdio>

#include "bench_common.h"
#include "starsim/selector.h"
#include "starsim/workload.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_table3_selection",
                       "Table III: GPU simulator selection rule", options,
                       csv_path)) {
    return 0;
  }

  // Measure both inflection points.
  const auto test1 = run_test1(options);
  const auto test2 = run_test2(options);

  std::size_t star_inflection = 0;
  for (const SweepPoint& p : test1) {
    if (p.adaptive.application_s() < p.parallel.application_s()) {
      star_inflection = p.stars;
      break;
    }
  }
  int roi_inflection = 0;
  for (const SweepPoint& p : test2) {
    if (p.adaptive.application_s() < p.parallel.application_s()) {
      roi_inflection = p.roi_side;
      break;
    }
  }

  std::puts("Table III — GPU simulator selection (measured sweeps)\n");
  sup::ConsoleTable table(
      {"simulator choice", "number of stars", "size of ROI"});
  const std::string star_turn = star_label(star_inflection);
  const std::string roi_turn = std::to_string(roi_inflection);
  table.add_row({"parallel simulator", "< " + star_turn, "= 10"});
  table.add_row({"parallel simulator", "= 2^13", "< " + roi_turn});
  table.add_row({"adaptive simulator", ">= " + star_turn, "= 10"});
  table.add_row({"adaptive simulator", "= 2^13", ">= " + roi_turn});
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nmeasured turning points: %s stars (paper: 2^13), ROI side %d "
      "(paper: 10)\n",
      star_turn.c_str(), roi_inflection);

  // Consistency check the paper calls out: both inflections should occur
  // at the same amount of work (stars x ROI area).
  const double work1 = static_cast<double>(star_inflection) * 10 * 10;
  const double work2 =
      static_cast<double>(starsim::kTest2StarCount) * roi_inflection *
      roi_inflection;
  std::printf(
      "work at inflection: test1 %.3g pixel-threads, test2 %.3g "
      "(paper: 'the two tests accord perfectly')\n",
      work1, work2);

  // Section IV-D: the sequential niche.
  const starsim::SimulatorSelector selector;
  std::size_t seq_limit = 0;
  for (std::size_t n = 1; n <= (1u << 12); n *= 2) {
    if (selector.choose(paper_scene(10), n) ==
        starsim::SimulatorKind::kSequential) {
      seq_limit = n;
    }
  }
  std::printf(
      "\nsequential simulator competitive up to ~%zu stars (paper: 0~2^7)\n",
      seq_limit);

  sup::CsvWriter csv({"quantity", "value"});
  csv.add_row({"star_inflection", std::to_string(star_inflection)});
  csv.add_row({"roi_inflection", std::to_string(roi_inflection)});
  csv.add_row({"sequential_niche_max_stars", std::to_string(seq_limit)});
  maybe_write_csv(csv, csv_path);
  return 0;
}
