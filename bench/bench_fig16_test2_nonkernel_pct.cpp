// Fig. 16 — "Percentage of non-kernel overhead for parallel simulator,
// adaptive simulator: test2". The parallel curve drops faster (its kernel
// grows faster), producing the inflection at ROI side 10.
#include <cstdio>

#include "bench_common.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_fig16_test2_nonkernel_pct",
                       "Fig. 16: test2 non-kernel percentage", options,
                       csv_path)) {
    return 0;
  }

  std::puts("Fig. 16 — test2 non-kernel share of application time\n");

  const auto points = run_test2(options);
  sup::ConsoleTable table(
      {"roi side", "parallel non-kernel %", "adaptive non-kernel %"});
  sup::CsvWriter csv({"roi_side", "parallel_pct", "adaptive_pct"});
  for (const SweepPoint& p : points) {
    const double par = p.parallel.non_kernel_fraction() * 100.0;
    const double ada = p.adaptive.non_kernel_fraction() * 100.0;
    table.add_row({std::to_string(p.roi_side), sup::fixed(par, 1) + "%",
                   sup::fixed(ada, 1) + "%"});
    csv.add_row({std::to_string(p.roi_side), sup::fixed(par, 2),
                 sup::fixed(ada, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\npaper shape: both shares fall as the ROI grows; the parallel"
      "\nsimulator's falls faster because its kernel time grows faster.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
