// Extension — fleet under network faults: what does injected wire latency
// cost, and how much of it does hedging claw back?
//
// The same request stream runs through a 3-shard, 2-replica ShardRouter
// three ways:
//   clean    — no fault injection (the network baseline);
//   delay    — shard 0's transport wrapped in a seeded ChaosTransport
//              adding 20 ms (+ jitter) to every reply, hedging OFF: the
//              full injected latency lands in the tail;
//   hedged   — the same 20 ms delay injection with a 5 ms fixed hedge:
//              a request silent past the trigger is re-launched on the
//              next replica, so the delayed shard's latency is capped by
//              (hedge trigger + one clean render).
//
// Clients are closed-loop (each waits for its frame before submitting
// the next), so latencies measure the network fault, not self-inflicted
// queueing — the regime the 2x acceptance bound is stated for. Each
// client renders two unmeasured warm-up frames first: a 50-sample p99 is
// effectively the maximum, and the cold first frame (thread spin-up,
// page faults) would otherwise own it.
//
// Three claims are checked: the chaos layer really injected delays (its
// fault counters say so), every future resolves and every frame stays
// bit-identical to a direct render through the fault path, and — the
// headline — the hedged p99 under 20 ms delay injection stays within 2x
// the clean-network p99.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "fleet/router.h"
#include "imageio/image.h"
#include "starsim/parallel_simulator.h"
#include "starsim/workload.h"
#include "support/table.h"
#include "support/timer.h"
#include "support/units.h"

namespace {

using namespace starsim;
namespace sup = starsim::support;
using serve::RenderRequest;
using serve::RenderResponse;

constexpr int kClients = 3;
constexpr int kShards = 3;
constexpr double kDelayMs = 20.0;
constexpr std::size_t kWarmupFrames = 2;  // per client, excluded from stats

struct NetLevel {
  const char* name;
  bool inject_delay = false;
  bool hedge = false;
};

struct LevelResult {
  double wall_s = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t typed_errors = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t delays_injected = 0;
  std::vector<double> latencies_s;  // measured client-side, warm-up excluded
  double p50_s = 0.0;
  double p99_s = 0.0;
  fleet::FleetStats stats;
};

double percentile(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

LevelResult run_level(const NetLevel& level,
                      const std::vector<SceneConfig>& scenes,
                      const std::vector<StarField>& fields,
                      const std::vector<imageio::ImageF>& references,
                      std::size_t frames_per_client, std::uint64_t seed) {
  fleet::FleetOptions options;
  options.shards = kShards;
  options.replicas = 2;
  options.router_threads = kClients;
  // Two workers per shard absorb the hedge level's duplicated load, so
  // the measured tail is the network fault, not hedge-induced queueing.
  options.shard.workers = 2;
  options.shard.cache_capacity = 0;  // every request must exercise a worker
  if (level.inject_delay) {
    options.chaos_shard = 0;
    options.net_chaos.seed = seed;
    options.net_chaos.delay_ms = kDelayMs;
    options.net_chaos.delay_jitter_ms = 5.0;
  }
  // Fixed 5 ms hedge: far inside the injected 20 ms delay, so a delayed
  // reply is re-launched almost immediately. A busy clean render may
  // hedge too — the second worker per shard absorbs that duplicate.
  options.hedge_ms = level.hedge ? 5.0 : -1.0;
  fleet::ShardRouter router(options);

  LevelResult result;
  std::mutex result_mutex;
  const sup::WallTimer timer;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kWarmupFrames + frames_per_client; ++i) {
        const bool warmup = i < kWarmupFrames;
        const std::size_t field =
            (static_cast<std::size_t>(c) + i * 3) % fields.size();
        RenderRequest request;
        request.scene = scenes[field];
        request.stars = fields[field];
        request.simulator = SimulatorKind::kParallel;
        request.deadline_s = 30.0;
        const sup::WallTimer frame_timer;
        try {
          const RenderResponse response = router.render(std::move(request));
          const double latency_s = frame_timer.seconds();
          const bool mismatch =
              imageio::max_abs_difference(response.result->image,
                                          references[field]) != 0.0;
          std::lock_guard<std::mutex> lock(result_mutex);
          if (mismatch) result.mismatches += 1;
          if (warmup) continue;
          result.frames += 1;
          result.latencies_s.push_back(latency_s);
        } catch (const std::exception&) {
          std::lock_guard<std::mutex> lock(result_mutex);
          if (warmup) continue;
          result.typed_errors += 1;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  result.wall_s = timer.seconds();
  result.p50_s = percentile(result.latencies_s, 0.50);
  result.p99_s = percentile(result.latencies_s, 0.99);
  if (fleet::ChaosTransport* chaos = router.chaos_transport(0)) {
    result.delays_injected = chaos->net_stats().faults_delayed;
  }
  router.stop();
  result.stats = router.stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace starsim::bench;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ext_fleet_net",
                       "extension: fleet under injected network faults — "
                       "delay cost and hedged tail recovery",
                       options, csv_path)) {
    return 0;
  }
  const std::size_t frames_per_client = options.quick ? 16 : 40;

  // Imperceptible psf deltas spread routing keys across the ring; the
  // references render the exact same perturbed scenes.
  std::vector<SceneConfig> scenes;
  std::vector<StarField> fields;
  for (std::size_t i = 0; i < 12; ++i) {
    // Frame weight is tuned so a clean render (~8 ms) sits between the
    // 5 ms hedge trigger and the 20 ms injected delay: heavy enough that
    // scheduler jitter is small relative to render time, light enough
    // that the injected delay still dominates the unhedged tail.
    SceneConfig scene;
    scene.image_width = 112;
    scene.image_height = 112;
    scene.roi_side = 10;
    scene.psf_sigma += 1e-9 * static_cast<double>(i);
    scenes.push_back(scene);
    WorkloadConfig workload;
    workload.star_count = 96;
    workload.image_width = scene.image_width;
    workload.image_height = scene.image_height;
    workload.seed = options.seed + i;
    fields.push_back(generate_stars(workload));
  }
  std::vector<imageio::ImageF> references;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    gpusim::Device device(gpusim::DeviceSpec::gtx480());
    references.push_back(
        ParallelSimulator(device).simulate(scenes[i], fields[i]).image);
  }

  const NetLevel levels[] = {
      {"clean", false, false},
      {"delay", true, false},
      {"hedged", true, true},
  };

  std::printf(
      "Extension — fleet under network faults (%d shards x 2 replicas, "
      "%d clients x %zu frames, %.0f ms reply delay on shard 0)\n\n",
      kShards, kClients, frames_per_client, kDelayMs);
  sup::ConsoleTable table({"level", "wall", "frames", "errors", "p50", "p99",
                           "hedges", "hedge wins", "delays"});
  sup::CsvWriter csv({"level", "wall_s", "frames", "typed_errors",
                      "mismatches", "latency_p50_s", "latency_p99_s",
                      "hedges_launched", "hedges_won", "delays_injected",
                      "stuck_futures"});

  const std::uint64_t total =
      static_cast<std::uint64_t>(kClients) * frames_per_client;
  std::uint64_t stuck_total = 0;
  std::uint64_t mismatch_total = 0;
  double clean_p99 = 0.0;
  double delay_p99 = 0.0;
  double hedged_p99 = 0.0;
  std::uint64_t fault_delays = 0;
  std::uint64_t hedges_won = 0;
  for (const NetLevel& level : levels) {
    const LevelResult r = run_level(level, scenes, fields, references,
                                    frames_per_client, options.seed);
    stuck_total += r.stats.in_flight();
    if (r.frames + r.typed_errors != total) stuck_total += 1;
    mismatch_total += r.mismatches;
    const std::string name(level.name);
    if (name == "clean") clean_p99 = r.p99_s;
    if (name == "delay") delay_p99 = r.p99_s;
    if (name == "hedged") {
      hedged_p99 = r.p99_s;
      hedges_won = r.stats.hedges_won;
    }
    if (level.inject_delay) fault_delays += r.delays_injected;
    table.add_row({level.name, sup::format_time(r.wall_s),
                   std::to_string(r.frames), std::to_string(r.typed_errors),
                   sup::format_time(r.p50_s), sup::format_time(r.p99_s),
                   std::to_string(r.stats.hedges_launched),
                   std::to_string(r.stats.hedges_won),
                   std::to_string(r.delays_injected)});
    csv.add_row({level.name, sup::compact(r.wall_s), std::to_string(r.frames),
                 std::to_string(r.typed_errors),
                 std::to_string(r.mismatches),
                 sup::compact(r.p50_s), sup::compact(r.p99_s),
                 std::to_string(r.stats.hedges_launched),
                 std::to_string(r.stats.hedges_won),
                 std::to_string(r.delays_injected),
                 std::to_string(r.stats.in_flight())});
  }
  std::fputs(table.render().c_str(), stdout);

  const bool tail_held = hedged_p99 <= 2.0 * clean_p99;
  std::printf(
      "\nchaos layer injected reply delays: %s (%llu delayed)\n"
      "every future resolved, frames bit-identical through faults: %s "
      "(%llu stuck, %llu mismatches)\n"
      "hedged p99 under %.0f ms delay within 2x clean p99: %s "
      "(%s hedged vs %s clean; unhedged delay p99 %s, %llu hedge wins)\n",
      fault_delays > 0 ? "PASS" : "FAIL",
      static_cast<unsigned long long>(fault_delays),
      stuck_total == 0 && mismatch_total == 0 ? "PASS" : "FAIL",
      static_cast<unsigned long long>(stuck_total),
      static_cast<unsigned long long>(mismatch_total), kDelayMs,
      tail_held ? "PASS" : "FAIL", sup::format_time(hedged_p99).c_str(),
      sup::format_time(clean_p99).c_str(),
      sup::format_time(delay_p99).c_str(),
      static_cast<unsigned long long>(hedges_won));
  std::puts(
      "\nreading: a 20 ms reply delay on one shard lands squarely in the\n"
      "unhedged tail — every request whose primary replica is the slow\n"
      "shard pays it in full. A 5 ms hedge re-launches any silent request\n"
      "on the next replica, so the delayed shard's contribution to the\n"
      "tail collapses to (hedge trigger + one clean render) and the p99\n"
      "returns to the clean network's neighbourhood.");
  maybe_write_csv(csv, csv_path);
  return fault_delays > 0 && stuck_total == 0 && mismatch_total == 0 &&
                 tail_held
             ? 0
             : 1;
}
