// Ablation — lookup-table resolution: accuracy vs cost of the adaptive
// simulator's quantization knobs (Section III-C extensions). Sweeps
// magnitude bins and subpixel phases on a fixed subpixel workload and
// reports image error against the sequential reference together with the
// induced non-kernel cost (table build + upload), exposing the
// accuracy/overhead trade the paper's fixed-geometry table hides.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "gpusim/device.h"
#include "starsim/adaptive_simulator.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim;
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ablation_lut_resolution",
                       "ablation: lookup-table resolution vs accuracy",
                       options, csv_path)) {
    return 0;
  }

  constexpr int kEdge = 256;
  SceneConfig scene;
  scene.image_width = kEdge;
  scene.image_height = kEdge;
  scene.roi_side = 10;
  scene.magnitude_min = 2.0;
  scene.magnitude_max = 6.0;  // narrow range so fine tables stay bindable

  WorkloadConfig workload;
  workload.star_count = 400;
  workload.image_width = kEdge;
  workload.image_height = kEdge;
  workload.integer_positions = false;  // subpixel positions stress the LUT
  workload.magnitude_min = 2.0;
  workload.magnitude_max = 6.0;
  workload.seed = options.seed;
  const StarField stars = generate_stars(workload);

  SequentialSimulator sequential;
  const auto reference = sequential.simulate(scene, stars).image;
  double peak = 0.0;
  for (float v : reference.pixels()) {
    peak = std::max(peak, static_cast<double>(v));
  }

  std::puts(
      "Ablation — adaptive LUT resolution (400 subpixel stars, 256x256,"
      " ROI 10, magnitudes 2..6)\n");
  sup::ConsoleTable table({"bins/mag", "phases", "table size",
                           "max rel error", "LUT non-kernel cost"});
  sup::CsvWriter csv(
      {"bins_per_mag", "phases", "table_bytes", "max_rel_error",
       "lut_cost_s"});

  struct Config {
    int bins;
    int phases;
  };
  // Phase counts are bounded by the texture-extent rule
  // (AdaptiveSimulator::max_magnitude_bins): at 8 phases and ROI 10 the
  // device binds at most 102 bins, so the finest-magnitude configs stop
  // at 4 phases.
  const Config configs[] = {{1, 1}, {4, 1}, {16, 1}, {64, 1},
                            {16, 2}, {16, 4}, {16, 8}, {64, 4}};
  for (const Config& c : configs) {
    if (options.quick && (c.bins > 16 || c.phases > 2)) continue;
    gpusim::Device device(gpusim::DeviceSpec::gtx480());
    LookupTableOptions lut;
    lut.bins_per_magnitude = c.bins;
    lut.subpixel_phases = c.phases;
    AdaptiveSimulator adaptive(device, lut);
    const auto result = adaptive.simulate(scene, stars);
    const double error =
        max_abs_difference(reference, result.image) / peak;
    const auto table_obj = LookupTable::build(scene, lut);
    const double lut_cost =
        result.timing.lut_build_s + result.timing.texture_bind_s;
    table.add_row({std::to_string(c.bins), std::to_string(c.phases),
                   sup::format_bytes(table_obj.bytes()),
                   sup::compact(error), sup::format_time(lut_cost)});
    csv.add_row({std::to_string(c.bins), std::to_string(c.phases),
                 std::to_string(table_obj.bytes()), sup::compact(error),
                 sup::compact(lut_cost)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nreading: error falls with both knobs; cost (build + binding) grows"
      "\nwith table size — the same kernel-vs-non-kernel balance as the"
      "\npaper's inflection analysis, now along the accuracy axis.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
