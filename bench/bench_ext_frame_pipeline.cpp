// Extension — frame-sequence pipelining with CUDA streams. The paper's
// per-frame non-kernel overhead (~2.4 ms of PCIe traffic) gates the frame
// rate of a continuously running star simulator; stream overlap hides it.
// Includes the Fermi false-dependency pitfall as a measured row: the same
// two streams with naive depth-first issue gain nothing.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gpusim/stream.h"
#include "starsim/pipeline.h"
#include "starsim/workload.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim;
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ext_frame_pipeline",
                       "extension: stream-pipelined frame sequences",
                       options, csv_path)) {
    return 0;
  }

  const int frame_count = options.quick ? 4 : 12;
  const SceneConfig scene = paper_scene(kTest1RoiSide);

  std::printf(
      "Extension — pipelined frame sequences (%d frames, 1024^2, ROI 10)\n\n",
      frame_count);
  sup::ConsoleTable table({"stars/frame", "serial", "pipelined", "speedup",
                           "fps", "copy util", "compute util"});
  sup::CsvWriter csv({"stars", "serial_s", "pipelined_s", "speedup", "fps"});

  for (std::size_t stars : {std::size_t{512}, std::size_t{8192},
                            std::size_t{65536}}) {
    if (options.quick && stars > 8192) break;
    std::vector<StarField> frames;
    for (int f = 0; f < frame_count; ++f) {
      WorkloadConfig workload;
      workload.star_count = stars;
      workload.seed = options.seed + static_cast<std::uint64_t>(f);
      frames.push_back(generate_stars(workload));
    }
    gpusim::Device device(gpusim::DeviceSpec::gtx480());
    const PipelineResult result =
        simulate_frame_sequence(device, scene, frames);
    table.add_row({std::to_string(stars),
                   sup::format_time(result.serial_s),
                   sup::format_time(result.pipelined_s),
                   sup::fixed(result.speedup(), 2) + "x",
                   sup::fixed(result.frames_per_second(), 0),
                   sup::fixed(result.copy_utilization * 100, 0) + "%",
                   sup::fixed(result.compute_utilization * 100, 0) + "%"});
    csv.add_row({std::to_string(stars), sup::compact(result.serial_s),
                 sup::compact(result.pipelined_s),
                 sup::fixed(result.speedup(), 3),
                 sup::fixed(result.frames_per_second(), 1)});
  }
  std::fputs(table.render().c_str(), stdout);

  // The pitfall row: same streams, naive (depth-first) issue order.
  {
    gpusim::StreamScheduler naive(1);
    const auto s0 = naive.create_stream();
    const auto s1 = naive.create_stream();
    gpusim::StreamScheduler piped(1);
    const auto p0 = piped.create_stream();
    const auto p1 = piped.create_stream();
    const double h2d = 1.3e-3;
    const double kernel = 1.0e-3;
    const double d2h = 1.2e-3;
    (void)piped.enqueue_h2d(p0, h2d);
    for (int f = 0; f < 12; ++f) {
      const auto sn = (f % 2 == 0) ? s0 : s1;
      (void)naive.enqueue_h2d(sn, h2d);
      (void)naive.enqueue_kernel(sn, kernel);
      (void)naive.enqueue_d2h(sn, d2h);
      const auto sp = (f % 2 == 0) ? p0 : p1;
      if (f + 1 < 12) (void)piped.enqueue_h2d((f % 2 == 0) ? p1 : p0, h2d);
      (void)piped.enqueue_kernel(sp, kernel);
      (void)piped.enqueue_d2h(sp, d2h);
    }
    std::printf(
        "\nissue-order pitfall (12 synthetic frames, one copy engine):\n"
        "  depth-first issue: %s (false dependency, fully serial)\n"
        "  prefetched issue:  %s\n",
        sup::format_time(naive.makespan()).c_str(),
        sup::format_time(piped.makespan()).c_str());
  }
  maybe_write_csv(csv, csv_path);
  return 0;
}
