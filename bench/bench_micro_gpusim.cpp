// Micro-benchmarks (google-benchmark) for the simulator's building blocks:
// the functional engine's per-thread cost, cache/texture machinery, the
// PSF/brightness arithmetic, and workload generation. These measure *this
// repository's* host-side execution speed (how fast the simulation of the
// GPU runs), not the modeled GTX480 times the paper benches report.
#include <benchmark/benchmark.h>

#include <vector>

#include "gpusim/cache.h"
#include "gpusim/device.h"
#include "gpusim/morton.h"
#include "starsim/cost_model.h"
#include "starsim/lookup_table.h"
#include "starsim/magnitude.h"
#include "starsim/psf.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"
#include "support/rng.h"
#include "trace/trace.h"

namespace {

namespace gs = starsim::gpusim;

void BM_Pcg32Uniform(benchmark::State& state) {
  starsim::support::Pcg32 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_Pcg32Uniform);

void BM_MortonEncode(benchmark::State& state) {
  std::uint32_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::morton_encode(x & 0xffff, (x >> 16)));
    ++x;
  }
}
BENCHMARK(BM_MortonEncode);

void BM_CacheAccess(benchmark::State& state) {
  gs::SetAssociativeCache cache(12 << 10, 32, 4);
  std::uint64_t address = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(address));
    address = (address + 96) % (64 << 10);
  }
}
BENCHMARK(BM_CacheAccess);

void BM_PsfIntensityRate(benchmark::State& state) {
  const starsim::GaussianPsf psf(1.7);
  double d = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(psf.intensity_rate(d, -d));
    d += 1e-6;
  }
}
BENCHMARK(BM_PsfIntensityRate);

void BM_PsfIntegratedRate(benchmark::State& state) {
  const starsim::GaussianPsf psf(1.7);
  double d = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(psf.integrated_rate(d, -d));
    d += 1e-6;
  }
}
BENCHMARK(BM_PsfIntegratedRate);

void BM_Brightness(benchmark::State& state) {
  const starsim::BrightnessModel model;
  double m = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.brightness(m));
    m = m < 15.0 ? m + 1e-6 : 0.0;
  }
}
BENCHMARK(BM_Brightness);

void BM_LookupTableBuild(benchmark::State& state) {
  starsim::SceneConfig scene;
  scene.roi_side = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(starsim::LookupTable::build(scene));
  }
  state.SetItemsProcessed(state.iterations() * 15 * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_LookupTableBuild)->Arg(10)->Arg(20)->Arg(32);

void BM_WorkloadGeneration(benchmark::State& state) {
  starsim::WorkloadConfig config;
  config.star_count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(starsim::generate_stars(config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WorkloadGeneration)->Arg(1024)->Arg(8192);

// Host-side cost of simulating one GPU thread (coroutine create/resume,
// counter updates, one atomic) — the figure that determines how long the
// paper-scale sweeps take on this machine.
void BM_FunctionalEngineThreadCost(benchmark::State& state) {
  gs::Device device(gs::DeviceSpec::gtx480());
  auto image = device.malloc<float>(1 << 16);
  device.memset_zero(image);
  auto kernel = [&image](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(1);
    if (ctx.thread_linear() == 0) shared.set(0, 1.0f);
    co_await ctx.syncthreads();
    ctx.count_flops(10);
    ctx.atomic_add(image,
                   (ctx.block_linear() * 97 + ctx.thread_linear()) & 0xffff,
                   shared.get(0));
    co_return;
  };
  const gs::LaunchConfig config{gs::Dim3(64), gs::Dim3(10, 10)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.launch(config, kernel));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(config.total_threads()));
  device.free(image);
}
BENCHMARK(BM_FunctionalEngineThreadCost);

// The same kernel with the sanitizer armed — the on/off delta is the
// instrumentation cost documented in docs/gpusim.md. range(0) selects the
// mode: 0 = off (the near-zero-overhead contract), 1 = memcheck+synccheck,
// 2 = all four tools (racecheck's shadow words dominate).
void BM_FunctionalEngineThreadCostSanitized(benchmark::State& state) {
  gs::Device device(gs::DeviceSpec::gtx480());
  switch (state.range(0)) {
    case 0: device.set_sanitizer(gs::SanitizerMode::kOff); break;
    case 1:
      device.set_sanitizer(gs::SanitizerMode::kMemcheck |
                           gs::SanitizerMode::kSynccheck);
      break;
    default: device.set_sanitizer(gs::SanitizerMode::kAll); break;
  }
  auto image = device.malloc<float>(1 << 16);
  device.memset_zero(image);
  auto kernel = [&image](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(1);
    if (ctx.thread_linear() == 0) shared.set(0, 1.0f);
    co_await ctx.syncthreads();
    ctx.count_flops(10);
    ctx.atomic_add(image,
                   (ctx.block_linear() * 97 + ctx.thread_linear()) & 0xffff,
                   shared.get(0));
    co_return;
  };
  const gs::LaunchConfig config{gs::Dim3(64), gs::Dim3(10, 10)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.launch(config, kernel));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(config.total_threads()));
  device.free(image);
}
BENCHMARK(BM_FunctionalEngineThreadCostSanitized)->Arg(0)->Arg(1)->Arg(2);

// The same kernel under the tracer — the on/off delta is the observability
// cost documented in docs/observability.md. range(0) = 0 measures the
// disabled path (one relaxed atomic load per instrumented site; the contract
// is "within noise of BM_FunctionalEngineThreadCost"), 1 measures live
// recording of every kernel_launch span. The buffer is cleared periodically
// (off the clock) so long runs stay memory-bounded.
void BM_FunctionalEngineThreadCostTraced(benchmark::State& state) {
  starsim::trace::TraceRecorder& recorder =
      starsim::trace::TraceRecorder::instance();
  const bool traced = state.range(0) != 0;
  if (traced) {
    recorder.start();
  } else {
    recorder.stop();
  }
  gs::Device device(gs::DeviceSpec::gtx480());
  auto image = device.malloc<float>(1 << 16);
  device.memset_zero(image);
  auto kernel = [&image](gs::ThreadCtx& ctx) -> gs::ThreadProgram {
    auto shared = ctx.shared_array<float>(1);
    if (ctx.thread_linear() == 0) shared.set(0, 1.0f);
    co_await ctx.syncthreads();
    ctx.count_flops(10);
    ctx.atomic_add(image,
                   (ctx.block_linear() * 97 + ctx.thread_linear()) & 0xffff,
                   shared.get(0));
    co_return;
  };
  const gs::LaunchConfig config{gs::Dim3(64), gs::Dim3(10, 10)};
  std::int64_t since_clear = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.launch(config, kernel));
    if (traced && ++since_clear == 1024) {
      state.PauseTiming();
      recorder.clear();
      since_clear = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(config.total_threads()));
  device.free(image);
  recorder.stop();
  recorder.clear();
}
BENCHMARK(BM_FunctionalEngineThreadCostTraced)->Arg(0)->Arg(1);

void BM_SequentialSimulatorPixelRate(benchmark::State& state) {
  starsim::SceneConfig scene;
  scene.image_width = 256;
  scene.image_height = 256;
  scene.roi_side = 10;
  starsim::WorkloadConfig workload;
  workload.star_count = 512;
  workload.image_width = 256;
  workload.image_height = 256;
  const starsim::StarField stars = generate_stars(workload);
  starsim::SequentialSimulator sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(scene, stars));
  }
  state.SetItemsProcessed(state.iterations() * 512 * 100);
}
BENCHMARK(BM_SequentialSimulatorPixelRate);

}  // namespace

BENCHMARK_MAIN();
