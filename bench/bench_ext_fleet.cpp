// Extension — fleet serving: does sharded routing keep the serving
// contract, and does hedging actually buy back the latency tail?
//
// The same request stream runs through a 4-shard, 2-replica ShardRouter
// three times:
//   clean     — healthy shards (frames must be bit-identical to direct
//               renders through the wire boundary and back);
//   slow      — shard 0 is a straggler (every render sleeps); hedging off.
//               The tail belongs to the straggler's keyspace share;
//   hedged    — same straggler, hedging on: after a fixed silence the
//               router duplicates the request on the next replica and the
//               first reply wins.
// A fourth pass injects device faults and kills one shard plus
// quarantines another mid-run.
//
// Three claims are checked: every frame served by the fleet is
// bit-identical to a direct render of the same request, the hedged p99 at
// least halves the unhedged straggler p99, and the chaos pass (kill +
// quarantine under fault injection) resolves every admitted future.
#include <cstdio>
#include <exception>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "fleet/router.h"
#include "gpusim/fault_injector.h"
#include "imageio/image.h"
#include "starsim/parallel_simulator.h"
#include "starsim/workload.h"
#include "support/error.h"
#include "support/table.h"
#include "support/timer.h"
#include "support/units.h"

namespace {

using namespace starsim;
namespace sup = starsim::support;
using serve::RenderRequest;
using serve::RenderResponse;
using serve::RequestPriority;

constexpr int kClients = 4;
constexpr int kShards = 4;
constexpr double kStragglerMs = 40.0;
constexpr double kHedgeMs = 4.0;

struct FleetLevel {
  const char* name;
  double hedge_ms = -1.0;
  int straggler_shard = -1;
  bool chaos = false;
};

struct LevelResult {
  double wall_s = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t typed_errors = 0;
  std::uint64_t degraded_frames = 0;
  std::uint64_t exact = 0;
  std::uint64_t mismatches = 0;
  fleet::FleetStats stats;
};

LevelResult run_level(const FleetLevel& level,
                      const std::vector<SceneConfig>& scenes,
                      const std::vector<StarField>& fields,
                      const std::vector<imageio::ImageF>& references,
                      std::size_t frames_per_client, std::uint64_t seed) {
  fleet::FleetOptions options;
  options.shards = kShards;
  options.replicas = 2;
  options.router_threads = kClients;
  options.hedge_ms = level.hedge_ms;
  options.straggler_shard = level.straggler_shard;
  options.straggler_ms = kStragglerMs;
  options.shard.workers = 1;
  options.shard.cache_capacity = 0;  // every request must exercise a worker
  if (level.chaos) {
    options.shard.worker.fault_policy =
        gpusim::FaultPolicy::chaos(0.05, 0.25, seed);
    options.shard.worker.resilient = true;
  }
  fleet::ShardRouter router(options);

  std::vector<std::vector<std::future<RenderResponse>>> futures(kClients);
  std::vector<std::vector<std::size_t>> field_of(kClients);
  const sup::WallTimer timer;
  const auto run_wave = [&](std::size_t wave) {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c, wave] {
        const std::size_t half = frames_per_client / 2;
        const std::size_t begin = wave == 0 ? 0 : half;
        const std::size_t end = wave == 0 ? half : frames_per_client;
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t field =
              (static_cast<std::size_t>(c) + i * 3) % fields.size();
          RenderRequest request;
          request.scene = scenes[field];
          request.stars = fields[field];
          request.simulator = SimulatorKind::kParallel;
          request.priority = static_cast<RequestPriority>(i % 3);
          request.deadline_s = 30.0;  // generous: exercised, never binding
          futures[static_cast<std::size_t>(c)].push_back(
              router.submit(std::move(request)));
          field_of[static_cast<std::size_t>(c)].push_back(field);
        }
      });
    }
    for (auto& t : clients) t.join();
  };

  run_wave(0);
  if (level.chaos) {
    // Mid-run fleet damage: the routing plan must absorb both without
    // stranding a single future.
    router.kill_shard(0);
    router.quarantine_shard(1);
  }
  run_wave(1);

  LevelResult result;
  for (int c = 0; c < kClients; ++c) {
    auto& mine = futures[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < mine.size(); ++i) {
      try {
        const RenderResponse response = mine[i].get();
        result.frames += 1;
        if (response.degraded) {
          result.degraded_frames += 1;  // different simulator, not comparable
        } else if (imageio::max_abs_difference(
                       response.result->image,
                       references[field_of[static_cast<std::size_t>(c)][i]]) ==
                   0.0) {
          result.exact += 1;
        } else {
          result.mismatches += 1;
        }
      } catch (const std::exception&) {
        result.typed_errors += 1;
      }
    }
  }
  result.wall_s = timer.seconds();
  router.stop();  // final accounting before the stats snapshot
  result.stats = router.stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace starsim::bench;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ext_fleet",
                       "extension: sharded fleet serving — hedged tail "
                       "latency, failover, and chaos survival",
                       options, csv_path)) {
    return 0;
  }
  const std::size_t frames_per_client = options.quick ? 8 : 24;

  // Per-field scene perturbations (imperceptible psf deltas) spread the
  // routing keys across the ring; the references render the exact same
  // perturbed scenes, so bit-identity still means bit-identity.
  std::vector<SceneConfig> scenes;
  std::vector<StarField> fields;
  for (std::size_t i = 0; i < 12; ++i) {
    SceneConfig scene;
    scene.image_width = 128;
    scene.image_height = 128;
    scene.roi_side = 10;
    scene.psf_sigma += 1e-9 * static_cast<double>(i);
    scenes.push_back(scene);
    WorkloadConfig workload;
    workload.star_count = 96;
    workload.image_width = scene.image_width;
    workload.image_height = scene.image_height;
    workload.seed = options.seed + i;
    fields.push_back(generate_stars(workload));
  }
  std::vector<imageio::ImageF> references;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    gpusim::Device device(gpusim::DeviceSpec::gtx480());
    references.push_back(
        ParallelSimulator(device).simulate(scenes[i], fields[i]).image);
  }

  const FleetLevel levels[] = {
      {"clean", -1.0, -1, false},
      {"slow", -1.0, 0, false},
      {"hedged", kHedgeMs, 0, false},
      {"chaos", -1.0, -1, true},
  };

  std::printf(
      "Extension — fleet serving (%d shards x 2 replicas, %d clients x %zu "
      "frames, 96 stars, 128^2, parallel, straggler %+.0f ms, hedge %.0f "
      "ms)\n\n",
      kShards, kClients, frames_per_client, kStragglerMs, kHedgeMs);
  sup::ConsoleTable table({"level", "wall", "frames", "errors", "exact",
                           "p50", "p99", "hedges", "won", "failovers"});
  sup::CsvWriter csv({"level", "wall_s", "frames", "typed_errors",
                      "degraded_frames", "exact_frames", "mismatches",
                      "latency_p50_s", "latency_p99_s", "hedges_launched",
                      "hedges_won", "failovers", "quarantines",
                      "stuck_futures"});

  const std::uint64_t total =
      static_cast<std::uint64_t>(kClients) * frames_per_client;
  std::uint64_t stuck_total = 0;
  std::uint64_t mismatch_total = 0;
  double slow_p99 = 0.0;
  double hedged_p99 = 0.0;
  std::uint64_t chaos_frames = 0;
  for (const FleetLevel& level : levels) {
    const LevelResult r = run_level(level, scenes, fields, references,
                                    frames_per_client, options.seed);
    const std::uint64_t stuck = r.stats.in_flight();
    stuck_total += stuck;
    mismatch_total += r.mismatches;
    if (r.frames + r.typed_errors != total) stuck_total += 1;
    const std::string name(level.name);
    if (name == "slow") slow_p99 = r.stats.latency.p99;
    if (name == "hedged") hedged_p99 = r.stats.latency.p99;
    if (name == "chaos") chaos_frames = r.frames;
    table.add_row({level.name, sup::format_time(r.wall_s),
                   std::to_string(r.frames), std::to_string(r.typed_errors),
                   std::to_string(r.exact),
                   sup::format_time(r.stats.latency.p50),
                   sup::format_time(r.stats.latency.p99),
                   std::to_string(r.stats.hedges_launched),
                   std::to_string(r.stats.hedges_won),
                   std::to_string(r.stats.failovers)});
    csv.add_row({level.name, sup::compact(r.wall_s), std::to_string(r.frames),
                 std::to_string(r.typed_errors),
                 std::to_string(r.degraded_frames), std::to_string(r.exact),
                 std::to_string(r.mismatches), sup::compact(r.stats.latency.p50),
                 sup::compact(r.stats.latency.p99),
                 std::to_string(r.stats.hedges_launched),
                 std::to_string(r.stats.hedges_won),
                 std::to_string(r.stats.failovers),
                 std::to_string(r.stats.quarantines),
                 std::to_string(stuck)});
  }
  std::fputs(table.render().c_str(), stdout);

  const bool tail_reclaimed = hedged_p99 < 0.5 * slow_p99;
  std::printf(
      "\nfleet frames bit-identical to direct renders: %s (%llu "
      "mismatches)\n"
      "hedged p99 at least halves the straggler p99: %s (%s vs %s)\n"
      "chaos pass resolved every future: %s (%llu stuck, %llu frames)\n",
      mismatch_total == 0 ? "PASS" : "FAIL",
      static_cast<unsigned long long>(mismatch_total),
      tail_reclaimed ? "PASS" : "FAIL", sup::format_time(hedged_p99).c_str(),
      sup::format_time(slow_p99).c_str(), stuck_total == 0 ? "PASS" : "FAIL",
      static_cast<unsigned long long>(stuck_total),
      static_cast<unsigned long long>(chaos_frames));
  std::puts(
      "\nreading: consistent hashing pins each scene to a replica set, so\n"
      "frames stay bit-identical through the wire boundary no matter which\n"
      "replica answers; a fixed hedge trigger caps how long a straggler\n"
      "replica can hold a request hostage (the duplicate lands on the next\n"
      "replica and the first reply wins); and the health ladder routes\n"
      "around a killed shard and a quarantined one without stranding any\n"
      "admitted future.");
  maybe_write_csv(csv, csv_path);
  return stuck_total == 0 && mismatch_total == 0 && tail_reclaimed &&
                 chaos_frames > 0
             ? 0
             : 1;
}
