// Extension — chaos serving: what does resilience cost, and does the
// service keep its contract while devices fail under it?
//
// The same concurrent request stream runs through the frame service four
// times with a seeded per-worker fault schedule of increasing hostility:
//   clean        — no injection (the throughput baseline);
//   transient    — 5% per-consult faults, no device loss (resilient workers
//                  retry/degrade frame by frame);
//   device-loss  — 5% faults, 25% of them take the device down (the
//                  supervisor replaces devices mid-run);
//   hostile      — 20% faults, 50% loss: replacement budgets exhaust and
//                  the pool degrades (retire -> CPU fallback).
// Deadlines and a low:normal:high priority mix ride along on every pass.
//
// Three claims are checked: every admitted future resolves (no stuck
// requests at any hostility), every surviving healthy frame is
// bit-identical to a direct render of the same request, and the service
// survives to the end of the most hostile pass still emitting frames.
#include <cstdio>
#include <exception>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "gpusim/fault_injector.h"
#include "imageio/image.h"
#include "serve/service.h"
#include "starsim/parallel_simulator.h"
#include "starsim/workload.h"
#include "support/error.h"
#include "support/table.h"
#include "support/timer.h"
#include "support/units.h"

namespace {

using namespace starsim;
namespace sup = starsim::support;
using serve::FrameService;
using serve::FrameServiceOptions;
using serve::PoolHealth;
using serve::RenderRequest;
using serve::RenderResponse;
using serve::RequestPriority;
using serve::ServiceStats;

constexpr int kClients = 6;

struct ChaosLevel {
  const char* name;
  std::optional<gpusim::FaultPolicy> policy;
};

struct LevelResult {
  double wall_s = 0.0;
  std::uint64_t frames = 0;          ///< futures resolved with a frame
  std::uint64_t typed_errors = 0;    ///< futures resolved with an exception
  std::uint64_t degraded_frames = 0;
  std::uint64_t exact = 0;           ///< healthy frames, bit-identical
  std::uint64_t mismatches = 0;      ///< healthy frames that differ (bug)
  ServiceStats stats;
  PoolHealth health;
};

LevelResult run_level(const ChaosLevel& level, const SceneConfig& scene,
                      const std::vector<StarField>& fields,
                      const std::vector<imageio::ImageF>& references,
                      std::size_t frames_per_client) {
  FrameServiceOptions opts;
  opts.workers = 2;
  opts.max_batch_size = 4;
  opts.queue_capacity = 128;
  opts.cache_capacity = 0;  // every request must exercise a worker
  opts.worker.fault_policy = level.policy;
  opts.worker.resilient = level.policy.has_value();
  FrameService service(std::move(opts));

  std::vector<std::vector<std::future<RenderResponse>>> futures(kClients);
  std::vector<std::vector<std::size_t>> field_of(kClients);
  const sup::WallTimer timer;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < frames_per_client; ++i) {
        const std::size_t field = (static_cast<std::size_t>(c) + i * 3) %
                                  fields.size();
        RenderRequest request;
        request.scene = scene;
        request.stars = fields[field];
        request.simulator = SimulatorKind::kParallel;
        request.priority = static_cast<RequestPriority>(i % 3);
        request.deadline_s = 30.0;  // generous: exercised, never binding
        futures[static_cast<std::size_t>(c)].push_back(
            service.submit(std::move(request)));
        field_of[static_cast<std::size_t>(c)].push_back(field);
      }
    });
  }
  for (auto& t : clients) t.join();

  LevelResult result;
  for (int c = 0; c < kClients; ++c) {
    auto& mine = futures[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < mine.size(); ++i) {
      try {
        const RenderResponse response = mine[i].get();
        result.frames += 1;
        if (response.degraded) {
          result.degraded_frames += 1;  // different simulator, not comparable
        } else if (imageio::max_abs_difference(
                       response.result->image,
                       references[field_of[static_cast<std::size_t>(c)][i]]) ==
                   0.0) {
          result.exact += 1;
        } else {
          result.mismatches += 1;
        }
      } catch (const std::exception&) {
        result.typed_errors += 1;
      }
    }
  }
  result.wall_s = timer.seconds();
  service.stop();  // final accounting: supervision for the last batches
  result.stats = service.stats();
  result.health = service.health();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace starsim::bench;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ext_chaos_serving",
                       "extension: serving resilience under seeded fault "
                       "injection and device loss",
                       options, csv_path)) {
    return 0;
  }
  const std::size_t frames_per_client = options.quick ? 6 : 16;

  SceneConfig scene;
  scene.image_width = 256;
  scene.image_height = 256;
  scene.roi_side = 10;

  std::vector<StarField> fields;
  for (std::size_t i = 0; i < 12; ++i) {
    WorkloadConfig workload;
    workload.star_count = 128;
    workload.image_width = scene.image_width;
    workload.image_height = scene.image_height;
    workload.seed = options.seed + i;
    fields.push_back(generate_stars(workload));
  }

  // Direct renders: the bit-identity oracle for healthy (non-degraded)
  // frames at every chaos level.
  std::vector<imageio::ImageF> references;
  for (const StarField& stars : fields) {
    gpusim::Device device(gpusim::DeviceSpec::gtx480());
    references.push_back(
        ParallelSimulator(device).simulate(scene, stars).image);
  }

  const std::uint64_t seed = options.seed;
  const ChaosLevel levels[] = {
      {"clean", std::nullopt},
      {"transient", gpusim::FaultPolicy::transient(0.05, seed)},
      {"device-loss", gpusim::FaultPolicy::chaos(0.05, 0.25, seed)},
      {"hostile", gpusim::FaultPolicy::chaos(0.20, 0.50, seed)},
  };

  std::printf(
      "Extension — chaos serving (%d clients x %zu frames, 128 stars, "
      "256^2, parallel, 2 workers)\n\n",
      kClients, frames_per_client);
  sup::ConsoleTable table({"level", "wall", "frames", "errors", "degraded",
                           "exact", "replaced", "quarantines", "active"});
  sup::CsvWriter csv({"level", "wall_s", "frames", "typed_errors",
                      "degraded_frames", "exact_frames", "mismatches",
                      "device_replacements", "quarantines", "active_workers",
                      "stuck_futures"});

  const std::uint64_t total =
      static_cast<std::uint64_t>(kClients) * frames_per_client;
  std::uint64_t stuck_total = 0;
  std::uint64_t mismatch_total = 0;
  std::uint64_t hostile_frames = 0;
  for (const ChaosLevel& level : levels) {
    const LevelResult r =
        run_level(level, scene, fields, references, frames_per_client);
    const std::uint64_t stuck = r.stats.in_flight();
    stuck_total += stuck;
    mismatch_total += r.mismatches;
    if (std::string(level.name) == "hostile") hostile_frames = r.frames;
    if (r.frames + r.typed_errors != total) stuck_total += 1;
    table.add_row({level.name, sup::format_time(r.wall_s),
                   std::to_string(r.frames), std::to_string(r.typed_errors),
                   std::to_string(r.degraded_frames), std::to_string(r.exact),
                   std::to_string(r.health.total_device_replacements),
                   std::to_string(r.health.total_quarantines),
                   std::to_string(r.health.active_workers)});
    csv.add_row({level.name, sup::compact(r.wall_s), std::to_string(r.frames),
                 std::to_string(r.typed_errors),
                 std::to_string(r.degraded_frames), std::to_string(r.exact),
                 std::to_string(r.mismatches),
                 std::to_string(r.health.total_device_replacements),
                 std::to_string(r.health.total_quarantines),
                 std::to_string(r.health.active_workers),
                 std::to_string(stuck)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nevery admitted future resolved: %s (%llu stuck)\n"
      "healthy-frame bit-identity vs direct renders: %s (%llu mismatches)\n"
      "service alive at max hostility: %s (%llu frames emitted)\n",
      stuck_total == 0 ? "PASS" : "FAIL",
      static_cast<unsigned long long>(stuck_total),
      mismatch_total == 0 ? "PASS" : "FAIL",
      static_cast<unsigned long long>(mismatch_total),
      hostile_frames > 0 ? "PASS" : "FAIL",
      static_cast<unsigned long long>(hostile_frames));
  std::puts(
      "\nreading: resilient workers absorb transient faults by retrying or\n"
      "degrading frame by frame, the supervisor replaces lost devices from\n"
      "a bounded budget, and when the budget exhausts the pool retires\n"
      "workers down to a CPU-fallback floor — so even the hostile schedule\n"
      "resolves every future and keeps emitting frames.");
  maybe_write_csv(csv, csv_path);
  return stuck_total == 0 && mismatch_total == 0 && hostile_frames > 0 ? 0
                                                                       : 1;
}
