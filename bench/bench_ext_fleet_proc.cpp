// Extension — out-of-process fleet: what does the socket boundary cost,
// and how fast does the supervision ladder bring a killed shard back?
//
// The same request stream runs through a 3-shard, 2-replica ShardRouter
// four ways:
//   loopback — in-process shards (the stage-1 fleet baseline);
//   socket   — each shard a real starsim_shardd process behind a
//              Unix-domain socket (frames must stay bit-identical through
//              the byte boundary);
//   kill     — socket shards, one SIGKILLed mid-run with no supervisor:
//              the stream fails over and every admitted future resolves;
//   respawn  — socket shards under the ProcessSupervisor: one shard is
//              SIGKILLed, and the crash -> respawn -> probe -> reinstate
//              round trip is timed.
//
// Three claims are checked: socket frames are bit-identical to direct
// renders, the kill pass strands no future, and the supervised respawn
// reinstates the shard within the reporting budget.
#include <cstdio>
#include <exception>
#include <future>
#include <string>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include <sys/stat.h>

#include "bench_common.h"
#include "fleet/router.h"
#include "imageio/image.h"
#include "starsim/parallel_simulator.h"
#include "starsim/workload.h"
#include "support/error.h"
#include "support/table.h"
#include "support/timer.h"
#include "support/units.h"

namespace {

using namespace starsim;
namespace sup = starsim::support;
using serve::RenderRequest;
using serve::RenderResponse;

constexpr int kClients = 3;
constexpr int kShards = 3;

struct ProcLevel {
  const char* name;
  bool process_shards = false;
  int kill_shard = -1;  ///< SIGKILL this shard between the two waves
  bool supervise = false;
};

struct LevelResult {
  double wall_s = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t typed_errors = 0;
  std::uint64_t exact = 0;
  std::uint64_t mismatches = 0;
  double respawn_s = 0.0;    ///< crash observed -> respawn succeeded
  double reinstate_s = 0.0;  ///< crash observed -> shard healthy again
  fleet::FleetStats stats;
};

std::string socket_dir(const char* tag) {
  const std::string dir = "/tmp/starsim_bench_" + std::string(tag) + "_" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0700);
  return dir;
}

LevelResult run_level(const ProcLevel& level,
                      const std::vector<SceneConfig>& scenes,
                      const std::vector<StarField>& fields,
                      const std::vector<imageio::ImageF>& references,
                      std::size_t frames_per_client) {
  fleet::FleetOptions options;
  options.shards = kShards;
  options.replicas = 2;
  options.router_threads = kClients;
  options.probe_after_ms = 1.0;
  options.shard.workers = 1;
  options.shard.cache_capacity = 0;  // every request must exercise a worker
  if (level.process_shards) {
    options.process_shards = true;
    options.shardd_path = STARSIM_SHARDD_PATH;
    options.socket_dir = socket_dir(level.name);
    options.transport.heartbeat_period_s = 0.05;
  }
  if (level.supervise) {
    options.supervise = true;
    options.supervision.poll_ms = 10.0;
    options.supervision.respawn_backoff_ms = 10.0;
  }
  fleet::ShardRouter router(options);

  std::vector<std::vector<std::future<RenderResponse>>> futures(kClients);
  std::vector<std::vector<std::size_t>> field_of(kClients);
  const sup::WallTimer timer;
  const auto run_wave = [&](std::size_t wave) {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c, wave] {
        const std::size_t half = frames_per_client / 2;
        const std::size_t begin = wave == 0 ? 0 : half;
        const std::size_t end = wave == 0 ? half : frames_per_client;
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t field =
              (static_cast<std::size_t>(c) + i * 3) % fields.size();
          RenderRequest request;
          request.scene = scenes[field];
          request.stars = fields[field];
          request.simulator = SimulatorKind::kParallel;
          request.deadline_s = 30.0;
          futures[static_cast<std::size_t>(c)].push_back(
              router.submit(std::move(request)));
          field_of[static_cast<std::size_t>(c)].push_back(field);
        }
      });
    }
    for (auto& t : clients) t.join();
  };

  LevelResult result;
  run_wave(0);
  if (level.kill_shard >= 0 && !level.supervise) {
    router.kill_shard(level.kill_shard);  // terminal: pure failover
  }
  if (level.kill_shard >= 0 && level.supervise) {
    const sup::WallTimer ladder;
    router.crash_shard(level.kill_shard);  // the supervisor must notice
    while (router.stats().respawns_succeeded < 1 && ladder.seconds() < 30.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    result.respawn_s = ladder.seconds();
    // Probes need live traffic; the second wave below provides it.
    std::thread reinstate_watch([&] {
      while (router.shard_state(level.kill_shard) !=
                 fleet::ShardState::kHealthy &&
             ladder.seconds() < 30.0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      result.reinstate_s = ladder.seconds();
    });
    run_wave(1);
    reinstate_watch.join();
  } else {
    run_wave(1);
  }

  for (int c = 0; c < kClients; ++c) {
    auto& mine = futures[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < mine.size(); ++i) {
      try {
        const RenderResponse response = mine[i].get();
        result.frames += 1;
        if (imageio::max_abs_difference(
                response.result->image,
                references[field_of[static_cast<std::size_t>(c)][i]]) == 0.0) {
          result.exact += 1;
        } else {
          result.mismatches += 1;
        }
      } catch (const std::exception&) {
        result.typed_errors += 1;
      }
    }
  }
  result.wall_s = timer.seconds();
  router.stop();
  result.stats = router.stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace starsim::bench;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ext_fleet_proc",
                       "extension: out-of-process shard fleet — socket "
                       "overhead, SIGKILL failover, and respawn time",
                       options, csv_path)) {
    return 0;
  }
  const std::size_t frames_per_client = options.quick ? 8 : 24;

  // Imperceptible psf deltas spread routing keys across the ring; the
  // references render the exact same perturbed scenes.
  std::vector<SceneConfig> scenes;
  std::vector<StarField> fields;
  for (std::size_t i = 0; i < 12; ++i) {
    SceneConfig scene;
    scene.image_width = 96;
    scene.image_height = 96;
    scene.roi_side = 10;
    scene.psf_sigma += 1e-9 * static_cast<double>(i);
    scenes.push_back(scene);
    WorkloadConfig workload;
    workload.star_count = 64;
    workload.image_width = scene.image_width;
    workload.image_height = scene.image_height;
    workload.seed = options.seed + i;
    fields.push_back(generate_stars(workload));
  }
  std::vector<imageio::ImageF> references;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    gpusim::Device device(gpusim::DeviceSpec::gtx480());
    references.push_back(
        ParallelSimulator(device).simulate(scenes[i], fields[i]).image);
  }

  const ProcLevel levels[] = {
      {"loopback", false, -1, false},
      {"socket", true, -1, false},
      {"kill", true, 1, false},
      {"respawn", true, 1, true},
  };

  std::printf(
      "Extension — out-of-process fleet (%d shardd processes x 2 replicas, "
      "%d clients x %zu frames, 64 stars, 96^2, parallel)\n\n",
      kShards, kClients, frames_per_client);
  sup::ConsoleTable table({"level", "wall", "frames", "errors", "exact",
                           "p50", "p99", "failovers", "respawn",
                           "reinstate"});
  sup::CsvWriter csv({"level", "wall_s", "frames", "typed_errors",
                      "exact_frames", "mismatches", "latency_p50_s",
                      "latency_p99_s", "failovers", "transport_timeouts",
                      "respawn_s", "reinstate_s", "stuck_futures"});

  const std::uint64_t total =
      static_cast<std::uint64_t>(kClients) * frames_per_client;
  std::uint64_t stuck_total = 0;
  std::uint64_t mismatch_total = 0;
  double loopback_mean = 0.0;
  double socket_mean = 0.0;
  double respawn_s = 0.0;
  double reinstate_s = 0.0;
  std::uint64_t kill_frames = 0;
  for (const ProcLevel& level : levels) {
    const LevelResult r =
        run_level(level, scenes, fields, references, frames_per_client);
    stuck_total += r.stats.in_flight();
    if (r.frames + r.typed_errors != total) stuck_total += 1;
    mismatch_total += r.mismatches;
    const std::string name(level.name);
    if (name == "loopback") loopback_mean = r.stats.mean_latency_s;
    if (name == "socket") socket_mean = r.stats.mean_latency_s;
    if (name == "kill") kill_frames = r.frames;
    if (name == "respawn") {
      respawn_s = r.respawn_s;
      reinstate_s = r.reinstate_s;
    }
    table.add_row({level.name, sup::format_time(r.wall_s),
                   std::to_string(r.frames), std::to_string(r.typed_errors),
                   std::to_string(r.exact),
                   sup::format_time(r.stats.latency.p50),
                   sup::format_time(r.stats.latency.p99),
                   std::to_string(r.stats.failovers),
                   r.respawn_s > 0.0 ? sup::format_time(r.respawn_s) : "-",
                   r.reinstate_s > 0.0 ? sup::format_time(r.reinstate_s)
                                       : "-"});
    csv.add_row({level.name, sup::compact(r.wall_s), std::to_string(r.frames),
                 std::to_string(r.typed_errors), std::to_string(r.exact),
                 std::to_string(r.mismatches),
                 sup::compact(r.stats.latency.p50),
                 sup::compact(r.stats.latency.p99),
                 std::to_string(r.stats.failovers),
                 std::to_string(r.stats.transport_timeouts),
                 sup::compact(r.respawn_s), sup::compact(r.reinstate_s),
                 std::to_string(r.stats.in_flight())});
  }
  std::fputs(table.render().c_str(), stdout);

  const bool recovered = respawn_s > 0.0 && reinstate_s < 30.0;
  std::printf(
      "\nsocket frames bit-identical to direct renders: %s (%llu "
      "mismatches)\n"
      "socket-vs-loopback mean overhead: %s (%s vs %s)\n"
      "SIGKILL pass resolved every future: %s (%llu stuck, %llu frames)\n"
      "supervised respawn + reinstate within budget: %s (respawn %s, "
      "reinstate %s)\n",
      mismatch_total == 0 ? "PASS" : "FAIL",
      static_cast<unsigned long long>(mismatch_total),
      sup::format_time(socket_mean - loopback_mean).c_str(),
      sup::format_time(socket_mean).c_str(),
      sup::format_time(loopback_mean).c_str(),
      stuck_total == 0 ? "PASS" : "FAIL",
      static_cast<unsigned long long>(stuck_total),
      static_cast<unsigned long long>(kill_frames),
      recovered ? "PASS" : "FAIL", sup::format_time(respawn_s).c_str(),
      sup::format_time(reinstate_s).c_str());
  std::puts(
      "\nreading: the socket boundary costs one frame encode + two copies\n"
      "per hop, flat per request and invisible next to render time; a\n"
      "SIGKILLed process resolves to typed errors and failover because the\n"
      "transport turns EOF into ShardDownError the instant the kernel\n"
      "closes the socket; and the supervision ladder (waitpid + heartbeat\n"
      "-> kill/reap -> backoff respawn -> shadow probe) reinstates a\n"
      "murdered shard in well under a second of wall time.");
  maybe_write_csv(csv, csv_path);
  return stuck_total == 0 && mismatch_total == 0 && kill_frames > 0 &&
                 recovered
             ? 0
             : 1;
}
