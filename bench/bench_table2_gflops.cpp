// Table II — "The execution GFLOPS: test1" at 2^17 stars. The paper reports
// parallel 95.07, adaptive 93.8 GFLOPS against the GTX480's 168 GFLOPS fp64
// peak, and an application-level throughput of 9.507 billion pixel float
// computations per second for the parallel simulator.
#include <cstdio>

#include "bench_common.h"
#include "gpusim/device_spec.h"
#include "starsim/workload.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_table2_gflops",
                       "Table II: kernel GFLOPS at 2^17 stars", options,
                       csv_path)) {
    return 0;
  }
  options.skip_measured_sequential = true;  // only the top point matters

  std::puts("Table II — execution GFLOPS, test1 at 2^17 stars\n");

  const auto points = run_test1(options);
  const SweepPoint& top = points.back();
  std::printf("(sweep topped out at %s stars%s)\n\n",
              star_label(top.stars).c_str(),
              options.quick ? " — quick mode" : "");

  sup::ConsoleTable table(
      {"simulator", "GFLOPS", "kernel time", "flops executed"});
  sup::CsvWriter csv({"simulator", "gflops", "kernel_s", "flops"});
  auto row = [&](const char* name, const starsim::TimingBreakdown& t) {
    table.add_row({name, sup::fixed(t.achieved_gflops, 2),
                   sup::format_time(t.kernel_s),
                   sup::compact(static_cast<double>(t.counters.flops))});
    csv.add_row({name, sup::fixed(t.achieved_gflops, 3),
                 sup::compact(t.kernel_s),
                 std::to_string(t.counters.flops)});
  };
  row("parallel", top.parallel);
  row("adaptive", top.adaptive);
  std::fputs(table.render().c_str(), stdout);

  const auto spec = starsim::gpusim::DeviceSpec::gtx480();
  std::printf("\nfp64 theoretical peak: %.0f GFLOPS (paper: 168)\n",
              spec.peak_fp64_flops() / 1e9);
  const double pixel_ops =
      static_cast<double>(top.parallel.counters.atomic_ops);
  std::printf(
      "parallel pixel throughput: %.3f billion pixel updates/s over kernel "
      "time,\n  %.1f billion flop-equivalents/s at application level\n",
      pixel_ops / top.parallel.kernel_s / 1e9,
      static_cast<double>(top.parallel.counters.flops) /
          top.parallel.application_s() / 1e9);
  std::puts(
      "paper: parallel 95.07, adaptive 93.8 GFLOPS (and '9.507 billion\n"
      "float computations on pixel per second', a metric whose implied\n"
      "~10-flop pixel cost does not match its own GFLOPS/kernel times; we\n"
      "report counted rates). Our adaptive kernel executes fewer\n"
      "flop-equivalents per pixel than the paper's, so its GFLOPS figure\n"
      "is lower; the ranking (parallel > adaptive) reproduces.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
