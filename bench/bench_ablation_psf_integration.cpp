// Ablation — pixel response model: the paper's point-sampled Eq. (2) vs the
// exact pixel-integrated response, across PSF widths. Point sampling
// mis-measures total flux for narrow PSFs (it samples the peak instead of
// averaging over the pixel); integration fixes it at the price of four erf
// evaluations per pixel, visible in the modeled kernel time.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "starsim/selector.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim;
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ablation_psf_integration",
                       "ablation: point-sampled vs pixel-integrated PSF",
                       options, csv_path)) {
    return 0;
  }

  std::puts(
      "Ablation — PSF pixel model (single interior star, 64x64, ROI 20)\n");
  sup::ConsoleTable table({"sigma", "flux error (point)",
                           "flux error (integrated)",
                           "kernel cost ratio (int/point)"});
  sup::CsvWriter csv({"sigma", "point_flux_error", "integrated_flux_error",
                      "kernel_cost_ratio"});

  SequentialSimulator sim;
  const SimulatorSelector selector;
  for (double sigma : {0.3, 0.5, 0.8, 1.2, 1.7, 2.5, 4.0}) {
    SceneConfig scene;
    scene.image_width = 64;
    scene.image_height = 64;
    scene.roi_side = 20;
    scene.psf_sigma = sigma;
    const StarField star{Star{4.0f, 32.0f, 32.0f, 1.0f}};
    const double brightness = scene.brightness.brightness(4.0);

    scene.pixel_integration = false;
    const double point_flux = total_flux(sim.simulate(scene, star).image);
    scene.pixel_integration = true;
    const double integrated_flux =
        total_flux(sim.simulate(scene, star).image);

    SceneConfig paper = paper_scene(kTest1RoiSide);
    paper.psf_sigma = sigma;
    const double t_point =
        selector.predict(paper, 8192).parallel.kernel_s;
    paper.pixel_integration = true;
    const double t_integrated =
        selector.predict(paper, 8192).parallel.kernel_s;

    const double point_error =
        std::abs(point_flux - brightness) / brightness;
    const double integrated_error =
        std::abs(integrated_flux - brightness) / brightness;
    table.add_row({sup::fixed(sigma, 2), sup::compact(point_error),
                   sup::compact(integrated_error),
                   sup::fixed(t_integrated / t_point, 2) + "x"});
    csv.add_row({sup::fixed(sigma, 2), sup::compact(point_error),
                 sup::compact(integrated_error),
                 sup::fixed(t_integrated / t_point, 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nreading: below sigma ~0.8 px the point-sampled model inflates the"
      "\nstar's total flux severely; the integrated model is exact at every"
      "\nwidth for ~2.7x the modeled kernel arithmetic.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
