#include "bench_common.h"

#include <cmath>
#include <cstdio>

#include "gpusim/device.h"
#include "starsim/adaptive_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"
#include "support/log.h"

namespace starsim::bench {

SceneConfig paper_scene(int roi_side) {
  SceneConfig scene;
  scene.image_width = kBenchImageEdge;
  scene.image_height = kBenchImageEdge;
  scene.roi_side = roi_side;
  return scene;
}

namespace {

SweepPoint run_point(gpusim::Device& device, const SceneConfig& scene,
                     std::size_t star_count, const SweepOptions& options) {
  WorkloadConfig workload;
  workload.star_count = star_count;
  workload.image_width = scene.image_width;
  workload.image_height = scene.image_height;
  workload.seed = options.seed;
  const StarField stars = generate_stars(workload);

  SweepPoint point;
  point.stars = star_count;
  point.roi_side = scene.roi_side;

  SequentialSimulator sequential;
  if (!options.skip_measured_sequential) {
    point.sequential = sequential.simulate(scene, stars).timing;
  } else {
    // Still need the modeled time: meter a single-star run and scale by the
    // exact per-star flop linearity (verified by the unit tests).
    const StarField probe(stars.begin(), stars.begin() + 1);
    TimingBreakdown one = sequential.simulate(scene, probe).timing;
    point.sequential.host_compute_s =
        one.host_compute_s * static_cast<double>(star_count);
    point.sequential.counters.flops =
        one.counters.flops * static_cast<std::uint64_t>(star_count);
  }

  ParallelSimulator parallel(device);
  point.parallel = parallel.simulate(scene, stars).timing;

  AdaptiveSimulator adaptive(device);
  point.adaptive = adaptive.simulate(scene, stars).timing;
  return point;
}

}  // namespace

std::vector<SweepPoint> run_test1(const SweepOptions& options) {
  gpusim::Device device(gpusim::DeviceSpec::gtx480());
  const SceneConfig scene = paper_scene(kTest1RoiSide);
  std::vector<SweepPoint> points;
  for (std::size_t stars : test1_star_counts()) {
    if (options.quick && stars > (1u << 12)) break;
    STARSIM_DEBUG << "test1 point: " << stars << " stars";
    points.push_back(run_point(device, scene, stars, options));
  }
  return points;
}

std::vector<SweepPoint> run_test2(const SweepOptions& options) {
  gpusim::Device device(gpusim::DeviceSpec::gtx480());
  std::vector<SweepPoint> points;
  for (int side : test2_roi_sides()) {
    if (options.quick && side > 16) break;
    STARSIM_DEBUG << "test2 point: ROI side " << side;
    points.push_back(
        run_point(device, paper_scene(side), kTest2StarCount, options));
  }
  return points;
}

bool parse_bench_cli(int argc, const char* const* argv,
                     const std::string& name, const std::string& summary,
                     SweepOptions& options, std::string& csv_path) {
  support::Cli cli(name, summary);
  cli.add_flag("quick", "run a shortened sweep (smoke test)");
  cli.add_flag("no-measure", "skip measured sequential runs (model only)");
  cli.add_option("csv", "also write results to this CSV file", "");
  cli.add_option("seed", "workload seed", "42");
  if (!cli.parse(argc, argv)) return false;
  options.quick = cli.flag("quick");
  options.skip_measured_sequential = cli.flag("no-measure");
  options.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  csv_path = cli.str("csv");
  return true;
}

void maybe_write_csv(const support::CsvWriter& csv,
                     const std::string& csv_path) {
  if (csv_path.empty()) return;
  csv.write_file(csv_path);
  std::printf("\ncsv written to %s\n", csv_path.c_str());
}

std::string star_label(std::size_t stars) {
  const int power = static_cast<int>(std::lround(
      std::log2(static_cast<double>(stars))));
  return "2^" + std::to_string(power);
}

}  // namespace starsim::bench
