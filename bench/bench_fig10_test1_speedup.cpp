// Fig. 10 — "Speedup of parallel simulator, adaptive simulator to sequential
// simulator: test1". The paper reports 1-2 orders of magnitude, average ~97x,
// with the adaptive simulator overtaking the parallel one at 2^13 stars.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_fig10_test1_speedup",
                       "Fig. 10: test1 speedup of the GPU simulators",
                       options, csv_path)) {
    return 0;
  }

  std::puts("Fig. 10 — test1 speedup vs sequential (modeled/modeled)\n");

  const auto points = run_test1(options);
  sup::ConsoleTable table(
      {"stars", "parallel speedup", "adaptive speedup", "leader"});
  sup::CsvWriter csv({"stars", "parallel_speedup", "adaptive_speedup"});
  std::vector<double> parallel_speedups;
  std::size_t inflection = 0;
  for (const SweepPoint& p : points) {
    const double seq = p.sequential.application_s();
    const double sp = seq / p.parallel.application_s();
    const double sa = seq / p.adaptive.application_s();
    parallel_speedups.push_back(sp);
    if (inflection == 0 && sa > sp) inflection = p.stars;
    table.add_row({star_label(p.stars), sup::fixed(sp, 1) + "x",
                   sup::fixed(sa, 1) + "x",
                   sa > sp ? "adaptive" : "parallel"});
    csv.add_row({std::to_string(p.stars), sup::fixed(sp, 2),
                 sup::fixed(sa, 2)});
  }
  std::fputs(table.render().c_str(), stdout);

  const auto summary = sup::summarize(parallel_speedups);
  std::printf(
      "\nparallel speedup: max %.0fx, mean %.0fx (paper: max 270x, avg ~97x)\n",
      summary.max, summary.mean);
  if (inflection != 0) {
    std::printf("adaptive overtakes parallel at %s stars (paper: 2^13)\n",
                star_label(inflection).c_str());
  } else {
    std::puts("adaptive never overtakes parallel in this sweep");
  }
  maybe_write_csv(csv, csv_path);
  return 0;
}
