// Extension — what does resilience cost? A frame service that wraps its
// simulator in a ResilientExecutor pays (a) a fixed wrapper cost on every
// clean frame and (b) retry re-execution plus modeled backoff on faulted
// ones. This bench measures both against the bare parallel simulator at
// injected transient-fault rates of 0%, 1% and 10% (the acceptance envelope
// of docs/resilience.md), on one test1-style workload.
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "gpusim/fault_injector.h"
#include "starsim/openmp_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/resilient_executor.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"
#include "support/table.h"
#include "support/timer.h"
#include "support/units.h"

namespace {

using namespace starsim;
namespace sup = starsim::support;

std::unique_ptr<ResilientExecutor> make_executor(gpusim::Device& device) {
  std::vector<std::unique_ptr<Simulator>> chain;
  chain.push_back(std::make_unique<ParallelSimulator>(device));
  chain.push_back(std::make_unique<OpenMpSimulator>());
  chain.push_back(std::make_unique<SequentialSimulator>());
  return std::make_unique<ResilientExecutor>(std::move(chain));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace starsim::bench;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ext_fault_recovery",
                       "extension: resilience wrapper overhead vs fault rate",
                       options, csv_path)) {
    return 0;
  }
  const int frames = options.quick ? 8 : 40;

  const SceneConfig scene = paper_scene(kTest1RoiSide);
  WorkloadConfig workload;
  workload.star_count = 4096;
  workload.seed = options.seed;
  const StarField field = generate_stars(workload);

  gpusim::Device device(gpusim::DeviceSpec::gtx480());

  // Baseline: the bare simulator, no wrapper, no injector.
  ParallelSimulator bare(device);
  const sup::WallTimer bare_timer;
  for (int f = 0; f < frames; ++f) (void)bare.simulate(scene, field);
  const double bare_s = bare_timer.seconds() / frames;

  std::printf(
      "Extension — resilience overhead (%d frames, 4096 stars, 1024^2)\n\n",
      frames);
  sup::ConsoleTable table({"fault rate", "wall/frame", "overhead", "attempts",
                           "recovered", "degraded", "modeled backoff"});
  sup::CsvWriter csv({"fault_rate", "wall_per_frame_s", "overhead_pct",
                      "attempts", "recovered_frames", "degraded_frames",
                      "backoff_s"});

  for (const double rate : {0.0, 0.01, 0.1}) {
    gpusim::FaultInjector injector(
        gpusim::FaultPolicy::transient(rate, options.seed));
    device.set_fault_injector(rate > 0.0 ? &injector : nullptr);
    auto executor = make_executor(device);

    int attempts = 0;
    int recovered = 0;
    int degraded = 0;
    double backoff_s = 0.0;
    const sup::WallTimer timer;
    for (int f = 0; f < frames; ++f) {
      (void)executor->simulate(scene, field);
      const ResilienceReport& report = executor->last_report();
      attempts += report.attempts;
      if (report.recovered()) ++recovered;
      if (report.degraded) ++degraded;
      backoff_s += report.backoff_total_s;
    }
    const double per_frame_s = timer.seconds() / frames;
    device.set_fault_injector(nullptr);

    const double overhead = (per_frame_s - bare_s) / bare_s * 100.0;
    table.add_row({sup::fixed(rate * 100.0, 0) + "%",
                   sup::format_time(per_frame_s),
                   sup::fixed(overhead, 1) + "%", std::to_string(attempts),
                   std::to_string(recovered), std::to_string(degraded),
                   sup::format_time(backoff_s)});
    csv.add_row({sup::fixed(rate, 2), sup::compact(per_frame_s),
                 sup::fixed(overhead, 2), std::to_string(attempts),
                 std::to_string(recovered), std::to_string(degraded),
                 sup::compact(backoff_s)});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nbare parallel baseline: %s/frame\n",
              sup::format_time(bare_s).c_str());
  std::puts(
      "reading: at 0% the wrapper is one virtual call and a report reset —"
      "\nnoise against the frame cost; faulted frames pay one full re-run"
      "\nper retry, so wall cost scales with the injected rate while every"
      "\nframe still completes (backoff is modeled, not slept).");
  maybe_write_csv(csv, csv_path);
  return 0;
}
