// Shared sweep driver for the paper-reproduction benches.
//
// Every bench binary regenerates its table/figure from one of the paper's
// two sweeps (Section IV):
//   test1 — stars 2^5..2^17, ROI 10x10, image 1024^2;
//   test2 — ROI side 2..32, 8192 stars, image 1024^2.
// The driver runs the sequential simulator (measured wall + modeled i7-860
// time), and the parallel and adaptive simulators on a modeled GTX480, and
// returns per-point timing breakdowns. GPU times are the performance
// model's output; see DESIGN.md for provenance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "starsim/breakdown.h"
#include "starsim/scene.h"
#include "support/cli.h"
#include "support/csv.h"

namespace starsim::bench {

struct SweepPoint {
  std::size_t stars = 0;
  int roi_side = 0;
  TimingBreakdown sequential;  ///< host_compute_s modeled, wall_s measured
  TimingBreakdown parallel;
  TimingBreakdown adaptive;
};

struct SweepOptions {
  /// Cut both sweeps short (quick smoke run): test1 stops at 2^12, test2
  /// at ROI 16.
  bool quick = false;
  /// Skip the measured sequential run for very large points (the modeled
  /// number is reported either way). Default off: measure everything.
  bool skip_measured_sequential = false;
  std::uint64_t seed = 42;
};

/// The paper's scene: 1024x1024 image, magnitudes 0..15.
[[nodiscard]] SceneConfig paper_scene(int roi_side);

/// Run the test1 sweep (fixed ROI 10, star count doubling 2^5..2^17).
[[nodiscard]] std::vector<SweepPoint> run_test1(const SweepOptions& options);

/// Run the test2 sweep (fixed 8192 stars, ROI side 2..32).
[[nodiscard]] std::vector<SweepPoint> run_test2(const SweepOptions& options);

/// Standard bench CLI (--quick, --csv FILE, --seed N); returns false when
/// --help was printed.
[[nodiscard]] bool parse_bench_cli(int argc, const char* const* argv,
                                   const std::string& name,
                                   const std::string& summary,
                                   SweepOptions& options,
                                   std::string& csv_path);

/// Write the CSV mirror when --csv was given.
void maybe_write_csv(const support::CsvWriter& csv,
                     const std::string& csv_path);

/// "2^13 (8192)" style star-count label used in the test1 tables.
[[nodiscard]] std::string star_label(std::size_t stars);

}  // namespace starsim::bench
