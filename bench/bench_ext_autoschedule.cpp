// Extension — auto-scheduler acceptance sweep (docs/scheduling.md).
//
// Crosses the paper's two sweep axes into one star-count x ROI grid and, at
// every point, compares the tuned schedule's modeled time against the two
// fixed GPU simulators the legacy Table III selector chooses between. The
// scene is a large 2048^2 frame: PCIe transfers dominate small star fields
// there, which is exactly the regime where a cost-model scheduler pays off
// by routing work to CPU schedules the fixed policy never considers.
//
// Acceptance gates (non-zero exit on violation):
//   1. tuned <= best fixed simulator at EVERY grid point (both fixed
//      schedules are tuner seeds, so a regression here is a search bug);
//   2. tuned strictly faster (modeled) on >= 25% of the grid;
//   3. warm start: a schedule cache saved after the sweep and reloaded into
//      a fresh scheduler serves every grid point without re-tuning.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sched/scheduler.h"
#include "sched/tuner.h"
#include "support/table.h"

namespace {

starsim::SceneConfig grid_scene(int roi_side) {
  starsim::SceneConfig scene;
  scene.image_width = 2048;
  scene.image_height = 2048;
  scene.roi_side = roi_side;
  scene.psf_sigma = 1.7;
  return scene;
}

struct GridPoint {
  std::size_t stars = 0;
  int roi_side = 0;
  starsim::sched::TuningOutcome outcome;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace starsim::bench;
  namespace sup = starsim::support;
  namespace sched = starsim::sched;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ext_autoschedule",
                       "Auto-scheduler acceptance: tuned vs fixed schedules "
                       "over the star-count x ROI grid",
                       options, csv_path)) {
    return 0;
  }

  // Star counts 2^3..2^15 x ROI sides 2..32: the small-field corner where
  // CPU schedules win is as well represented as the adaptive-simulator
  // corner the paper's Table III covers. --quick thins both axes 2x.
  std::vector<std::size_t> star_counts;
  for (std::size_t n = 8; n <= (1u << 15); n *= options.quick ? 4 : 2) {
    star_counts.push_back(n);
  }
  std::vector<int> roi_sides;
  for (int r = 2; r <= 32; r += options.quick ? 4 : 2) {
    roi_sides.push_back(r);
  }

  sched::TunerOptions tuner_options;
  tuner_options.seed = options.seed;
  const sched::Tuner tuner(sched::CostModel{}, tuner_options);

  std::vector<GridPoint> grid;
  std::size_t strict_wins = 0;
  std::size_t violations = 0;
  for (std::size_t n : star_counts) {
    for (int roi : roi_sides) {
      sched::Workload workload;
      workload.scene = grid_scene(roi);
      workload.star_count = n;
      GridPoint point{n, roi, tuner.tune(workload)};
      const double tuned = point.outcome.cost.application_s;
      const double fixed = point.outcome.best_fixed_s();
      if (tuned > fixed * (1.0 + 1e-12)) {
        std::fprintf(stderr,
                     "VIOLATION: tuned %.6e s > best fixed %.6e s at "
                     "%zu stars, ROI %d (%s)\n",
                     tuned, fixed, n, roi,
                     point.outcome.schedule.to_string().c_str());
        ++violations;
      } else if (tuned < fixed * (1.0 - 1e-9)) {
        ++strict_wins;
      }
      grid.push_back(std::move(point));
    }
  }

  // Speedup table: rows = star counts, a column per sampled ROI side.
  const std::vector<int> shown_rois =
      options.quick ? std::vector<int>{2, 6, 10, 18, 26}
                    : std::vector<int>{2, 6, 10, 16, 24, 32};
  std::vector<std::string> header{"stars"};
  for (int roi : shown_rois) header.push_back("roi " + std::to_string(roi));
  sup::ConsoleTable table(header);
  for (std::size_t n : star_counts) {
    std::vector<std::string> row{star_label(n)};
    for (int roi : shown_rois) {
      for (const GridPoint& p : grid) {
        if (p.stars != n || p.roi_side != roi) continue;
        char cell[64];
        std::snprintf(cell, sizeof(cell), "%.2fx %s",
                      p.outcome.speedup_vs_fixed(),
                      p.outcome.schedule.simulator ==
                              starsim::SimulatorKind::kAdaptive
                          ? "adap"
                          : p.outcome.schedule.simulator ==
                                    starsim::SimulatorKind::kParallel
                                ? "par"
                                : "cpu");
        row.push_back(cell);
        break;
      }
    }
    table.add_row(row);
  }
  std::puts(
      "Auto-scheduler acceptance (2048^2 frame, modeled speedup vs best "
      "fixed GPU simulator)\n");
  std::fputs(table.render().c_str(), stdout);

  const double win_rate =
      static_cast<double>(strict_wins) / static_cast<double>(grid.size());
  std::printf(
      "\ngrid: %zu points (%zu star counts x %zu ROI sides); tuned <= fixed "
      "everywhere: %s; strict wins: %zu (%.0f%%, gate >= 25%%)\n",
      grid.size(), star_counts.size(), roi_sides.size(),
      violations == 0 ? "yes" : "NO", strict_wins, win_rate * 100.0);

  // Warm start: tune everything through a scheduler, persist, reload into a
  // fresh scheduler, and re-query the whole grid — every point must hit.
  const std::string cache_path =
      (std::filesystem::temp_directory_path() /
       "starsim_bench_autoschedule_cache.txt")
          .string();
  sched::SchedulerOptions sched_options;
  sched_options.tuner = tuner_options;
  bool warm_ok = true;
  {
    sched::Scheduler cold(sched_options);
    for (const GridPoint& p : grid) {
      (void)cold.schedule_for(grid_scene(p.roi_side), p.stars);
    }
    warm_ok = cold.save_cache(cache_path);
  }
  sched::Scheduler warm(sched_options);
  warm_ok = warm_ok && warm.load_cache(cache_path);
  for (const GridPoint& p : grid) {
    (void)warm.schedule_for(grid_scene(p.roi_side), p.stars);
  }
  const sched::SchedulerStats warm_stats = warm.stats();
  const double hit_rate =
      warm_stats.cache.hits + warm_stats.cache.misses > 0
          ? static_cast<double>(warm_stats.cache.hits) /
                static_cast<double>(warm_stats.cache.hits +
                                    warm_stats.cache.misses)
          : 0.0;
  warm_ok = warm_ok && warm_stats.cache.misses == 0 &&
            warm_stats.tuner_invocations == 0;
  std::printf(
      "warm start: %zu lookups after reload, %llu hits / %llu misses "
      "(%.0f%% hit rate), %llu re-tunes (gate: 0)\n",
      grid.size(),
      static_cast<unsigned long long>(warm_stats.cache.hits),
      static_cast<unsigned long long>(warm_stats.cache.misses),
      hit_rate * 100.0,
      static_cast<unsigned long long>(warm_stats.tuner_invocations));
  std::error_code ec;
  std::filesystem::remove(cache_path, ec);

  sup::CsvWriter csv({"stars", "roi_side", "tuned_s", "fixed_parallel_s",
                      "fixed_adaptive_s", "sequential_s", "speedup",
                      "schedule"});
  for (const GridPoint& p : grid) {
    csv.add_row({std::to_string(p.stars), std::to_string(p.roi_side),
                 std::to_string(p.outcome.cost.application_s),
                 std::to_string(p.outcome.fixed_parallel_s),
                 std::to_string(p.outcome.fixed_adaptive_s),
                 std::to_string(p.outcome.sequential_s),
                 std::to_string(p.outcome.speedup_vs_fixed()),
                 p.outcome.schedule.to_string()});
  }
  maybe_write_csv(csv, csv_path);

  const bool pass = violations == 0 && win_rate >= 0.25 && warm_ok;
  std::printf("\n%s\n", pass ? "PASS: tuned never loses to a fixed schedule "
                               "and the warm-start cache replays every point"
                             : "FAIL: see gates above");
  return pass ? 0 : 1;
}
