// Extension — beyond the ROI limit. The paper's empirical ROI radius range
// is 2..20 pixels (sides up to 40), yet its parallel simulator caps the
// side at 32 (1024 threads per block, Section IV-D). The tiled kernel
// lifts the cap; this bench extends the test2 sweep past the limit and
// reports the modeled speedup over the sequential baseline out to side 64.
#include <cstdio>

#include "bench_common.h"
#include "gpusim/device.h"
#include "starsim/parallel_simulator.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim;
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ext_large_roi",
                       "extension: tiled kernel beyond the ROI block limit",
                       options, csv_path)) {
    return 0;
  }

  const std::size_t stars = options.quick ? 1024 : 4096;
  std::printf(
      "Extension — tiled star-centric kernel, ROI sides past the block "
      "limit (%zu stars, 1024^2)\n\n",
      stars);
  sup::ConsoleTable table({"roi side", "blocks/star", "kernel",
                           "application", "speedup vs sequential"});
  sup::CsvWriter csv({"roi_side", "kernel_s", "application_s", "speedup"});

  gpusim::Device device(gpusim::DeviceSpec::gtx480());
  ParallelOptions tiling;
  tiling.allow_tiling = true;
  tiling.tile_side = 16;
  ParallelSimulator tiled(device, tiling);
  SequentialSimulator sequential;

  for (int side : {24, 32, 40, 48, 64}) {
    if (options.quick && side > 40) break;
    SceneConfig scene = paper_scene(side);
    scene.psf_sigma = side / 6.0;  // wide defocus to motivate the wide ROI

    WorkloadConfig workload;
    workload.star_count = stars;
    workload.seed = options.seed;
    const StarField field = generate_stars(workload);

    const auto gpu = tiled.simulate(scene, field).timing;
    const auto seq = sequential.simulate(scene, field).timing;
    const int tiles = (side + tiling.tile_side - 1) / tiling.tile_side;
    table.add_row({std::to_string(side),
                   std::to_string(tiles * tiles),
                   sup::format_time(gpu.kernel_s),
                   sup::format_time(gpu.application_s()),
                   sup::fixed(seq.application_s() / gpu.application_s(), 1) +
                       "x"});
    csv.add_row({std::to_string(side), sup::compact(gpu.kernel_s),
                 sup::compact(gpu.application_s()),
                 sup::fixed(seq.application_s() / gpu.application_s(), 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nreading: past side 32 the untiled kernel cannot launch at all; the"
      "\ntiled decomposition keeps scaling, so the full empirical ROI range"
      "\n(radius 2..20 => sides up to 40+) is simulatable on the GPU.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
