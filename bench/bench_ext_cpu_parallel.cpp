// Extension — the multicore CPU rung of the ladder. The paper's host "has
// eight cores" but its baseline uses one; this bench places the OpenMP
// simulator between that baseline and the GPU on the test1 speedup axis
// (modeled i7-860 times; wall times on this container additionally shown).
#include <cstdio>

#include "bench_common.h"
#include "starsim/openmp_simulator.h"
#include "starsim/selector.h"
#include "starsim/sequential_simulator.h"
#include "starsim/workload.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim;
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ext_cpu_parallel",
                       "extension: multicore CPU simulator vs GPU", options,
                       csv_path)) {
    return 0;
  }

  std::puts(
      "Extension — sequential vs 8-core CPU vs GPU (test1 points, modeled)\n");
  sup::ConsoleTable table({"stars", "sequential", "cpu x8", "parallel GPU",
                           "cpu x8 speedup", "GPU vs cpu x8"});
  sup::CsvWriter csv(
      {"stars", "sequential_s", "cpu8_s", "gpu_s", "cpu8_speedup"});

  const SceneConfig scene = paper_scene(kTest1RoiSide);
  SequentialSimulator sequential;
  OpenMpSimulator cpu8(8);
  const SimulatorSelector selector;

  for (std::size_t stars : {std::size_t{1} << 8, std::size_t{1} << 11,
                            std::size_t{1} << 14, std::size_t{1} << 17}) {
    if (options.quick && stars > (1u << 11)) break;
    WorkloadConfig workload;
    workload.star_count = stars;
    workload.seed = options.seed;
    const StarField field = generate_stars(workload);

    const double seq_s =
        sequential.simulate(scene, field).timing.application_s();
    const double cpu8_s = cpu8.simulate(scene, field).timing.application_s();
    const double gpu_s =
        selector.predict(scene, stars).parallel.application_s();

    table.add_row({star_label(stars), sup::format_time(seq_s),
                   sup::format_time(cpu8_s), sup::format_time(gpu_s),
                   sup::fixed(seq_s / cpu8_s, 1) + "x",
                   sup::fixed(cpu8_s / gpu_s, 1) + "x"});
    csv.add_row({std::to_string(stars), sup::compact(seq_s),
                 sup::compact(cpu8_s), sup::compact(gpu_s),
                 sup::fixed(seq_s / cpu8_s, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nreading: eight cores buy the expected ~6.8x (85% efficiency), but"
      "\nthe GPU stays 1-2 orders ahead at scale — using all CPU cores does"
      "\nnot change the paper's conclusion.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
