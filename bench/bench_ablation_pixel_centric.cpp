// Ablation — Fig. 3's design decision, measured: star-centric vs
// pixel-centric decomposition on identical (ablation-scale) workloads.
// The pixel-centric kernel is the paper's rejected alternative: every
// thread scans all stars, producing heavy warp divergence and O(pixels x
// stars) redundant loads. Work is quadratic, so this bench uses a reduced
// image; the comparison is per-workload, not against the paper's absolute
// numbers.
#include <cstdio>

#include "bench_common.h"
#include "gpusim/device.h"
#include "starsim/parallel_simulator.h"
#include "starsim/pixel_centric_simulator.h"
#include "starsim/workload.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim;
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ablation_pixel_centric",
                       "ablation: star-centric vs pixel-centric kernels",
                       options, csv_path)) {
    return 0;
  }

  constexpr int kEdge = 128;
  SceneConfig scene;
  scene.image_width = kEdge;
  scene.image_height = kEdge;
  scene.roi_side = 10;

  std::puts(
      "Ablation — star-centric (chosen) vs pixel-centric (rejected), "
      "128x128 image, ROI 10\n");
  sup::ConsoleTable table({"stars", "star-centric kernel",
                           "pixel-centric kernel", "slowdown",
                           "sc divergence", "pc divergence"});
  sup::CsvWriter csv({"stars", "star_centric_s", "pixel_centric_s",
                      "star_divergence", "pixel_divergence"});

  gpusim::Device device(gpusim::DeviceSpec::gtx480());
  ParallelSimulator star_centric(device);
  PixelCentricSimulator pixel_centric(device);

  for (std::size_t stars : {16u, 64u, 256u, 1024u}) {
    if (options.quick && stars > 256u) break;
    WorkloadConfig workload;
    workload.star_count = stars;
    workload.image_width = kEdge;
    workload.image_height = kEdge;
    workload.seed = options.seed;
    const StarField field = generate_stars(workload);

    const auto sc = star_centric.simulate(scene, field).timing;
    const auto pc = pixel_centric.simulate(scene, field).timing;
    table.add_row(
        {std::to_string(stars), sup::format_time(sc.kernel_s),
         sup::format_time(pc.kernel_s),
         sup::fixed(pc.kernel_s / sc.kernel_s, 1) + "x",
         sup::fixed(sc.counters.divergence_rate(), 3),
         sup::fixed(pc.counters.divergence_rate(), 3)});
    csv.add_row({std::to_string(stars), sup::compact(sc.kernel_s),
                 sup::compact(pc.kernel_s),
                 sup::fixed(sc.counters.divergence_rate(), 4),
                 sup::fixed(pc.counters.divergence_rate(), 4)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\npaper's argument (Section III-B): pixel-centric threads 'identify"
      "\nall stars', causing divergent warps — measured above as the"
      "\ndivergence rate — and its kernel cost grows with stars per pixel.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
