// Extension — pinned-host transfers: the concrete "CUDA transmission
// optimization strategy" the paper points at its reference [10] for.
// Page-locked staging raises effective PCIe bandwidth (3.6 -> 5.9 GB/s on
// the modeled host), shrinking exactly the non-kernel overhead the paper's
// small-workload regime is dominated by.
#include <cstdio>

#include "bench_common.h"
#include "gpusim/device.h"
#include "starsim/parallel_simulator.h"
#include "starsim/workload.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim;
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ext_pinned_memory",
                       "extension: pageable vs pinned host transfers",
                       options, csv_path)) {
    return 0;
  }

  std::puts(
      "Extension — pinned-host transfers (parallel simulator, test1 "
      "points)\n");
  sup::ConsoleTable table({"stars", "pageable app", "pinned app",
                           "non-kernel saved", "app gain"});
  sup::CsvWriter csv({"stars", "pageable_s", "pinned_s"});

  const SceneConfig scene = paper_scene(kTest1RoiSide);
  for (std::size_t stars : {std::size_t{1} << 8, std::size_t{1} << 13,
                            std::size_t{1} << 17}) {
    if (options.quick && stars > (1u << 13)) break;
    WorkloadConfig workload;
    workload.star_count = stars;
    workload.seed = options.seed;
    const StarField field = generate_stars(workload);

    gpusim::Device device(gpusim::DeviceSpec::gtx480());
    ParallelSimulator simulator(device);
    device.set_pinned_transfers(false);
    const auto pageable = simulator.simulate(scene, field).timing;
    device.set_pinned_transfers(true);
    const auto pinned = simulator.simulate(scene, field).timing;

    table.add_row(
        {star_label(stars), sup::format_time(pageable.application_s()),
         sup::format_time(pinned.application_s()),
         sup::format_time(pageable.non_kernel_s() - pinned.non_kernel_s()),
         sup::fixed(pageable.application_s() / pinned.application_s(), 2) +
             "x"});
    csv.add_row({std::to_string(stars),
                 sup::compact(pageable.application_s()),
                 sup::compact(pinned.application_s())});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nreading: pinning saves ~0.9 ms of transfer per frame — decisive in"
      "\nthe transfer-dominated small-workload regime, marginal once the"
      "\nkernel dominates; combine with streams (bench_ext_frame_pipeline)"
      "\nto hide the remainder.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
