// Fig. 13 — "The overall performance for sequential, parallel, adaptive
// simulators: test2": application time vs ROI side at 8192 stars.
#include <cstdio>

#include "bench_common.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_fig13_test2_time",
                       "Fig. 13: test2 application time per simulator",
                       options, csv_path)) {
    return 0;
  }

  std::puts("Fig. 13 — test2 application time (8192 stars, image 1024x1024)\n");

  const auto points = run_test2(options);
  sup::ConsoleTable table({"roi side", "sequential", "seq wall (here)",
                           "parallel", "adaptive"});
  sup::CsvWriter csv({"roi_side", "sequential_s", "sequential_wall_s",
                      "parallel_s", "adaptive_s"});
  for (const SweepPoint& p : points) {
    table.add_row({std::to_string(p.roi_side),
                   sup::format_time(p.sequential.application_s()),
                   sup::format_time(p.sequential.wall_s),
                   sup::format_time(p.parallel.application_s()),
                   sup::format_time(p.adaptive.application_s())});
    csv.add_row({std::to_string(p.roi_side),
                 sup::compact(p.sequential.application_s()),
                 sup::compact(p.sequential.wall_s),
                 sup::compact(p.parallel.application_s()),
                 sup::compact(p.adaptive.application_s())});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\npaper shape: sequential cost linear in ROI area; the two GPU"
      "\nsimulators track each other closely across the sweep.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
