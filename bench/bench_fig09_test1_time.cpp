// Fig. 9 — "Simulation performance for sequential, parallel, adaptive
// simulators: test1": application time vs number of stars at ROI 10x10.
#include <cstdio>

#include "bench_common.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_fig09_test1_time",
                       "Fig. 9: test1 application time per simulator",
                       options, csv_path)) {
    return 0;
  }

  std::puts("Fig. 9 — test1 application time (ROI 10x10, image 1024x1024)");
  std::puts("GPU times modeled on a GTX480; sequential modeled on an i7-860");
  std::puts("(wall = measured on this machine, for reference)\n");

  const auto points = run_test1(options);
  sup::ConsoleTable table({"stars", "sequential", "seq wall (here)",
                           "parallel", "adaptive"});
  sup::CsvWriter csv({"stars", "sequential_s", "sequential_wall_s",
                      "parallel_s", "adaptive_s"});
  for (const SweepPoint& p : points) {
    table.add_row({star_label(p.stars),
                   sup::format_time(p.sequential.application_s()),
                   sup::format_time(p.sequential.wall_s),
                   sup::format_time(p.parallel.application_s()),
                   sup::format_time(p.adaptive.application_s())});
    csv.add_row({std::to_string(p.stars),
                 sup::compact(p.sequential.application_s()),
                 sup::compact(p.sequential.wall_s),
                 sup::compact(p.parallel.application_s()),
                 sup::compact(p.adaptive.application_s())});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\npaper shape: sequential rises linearly (fast); both GPU curves rise"
      "\nslowly, with the GPU advantage appearing as star count grows.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
