// Extension — serving throughput: what does the starsim::serve stack buy?
//
// The same request stream (distinct star fields, one shared scene, adaptive
// simulator) is pushed through three execution modes:
//   direct      — one simulator, one device, plain simulate() per request
//                 (the pre-serving baseline);
//   serve-1x1   — FrameService with one worker and batching disabled, one
//                 closed-loop client (measures the service's own overhead);
//   serve-batch — FrameService with a worker fleet and dynamic batching,
//                 8+ concurrent clients (the serving configuration).
// A fourth pass replays the stream against a warm frame cache.
//
// Two claims are checked: batched concurrent serving beats one-at-a-time
// submission on wall-clock throughput, and every frame that came out of the
// service is bit-identical to the direct render of the same request.
#include <cstdio>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "gpusim/frame_pool.h"
#include "imageio/image.h"
#include "serve/service.h"
#include "starsim/adaptive_simulator.h"
#include "starsim/workload.h"
#include "support/table.h"
#include "support/timer.h"
#include "support/units.h"

namespace {

using namespace starsim;
namespace sup = starsim::support;
using serve::FrameService;
using serve::FrameServiceOptions;
using serve::RenderRequest;
using serve::RenderResponse;
using serve::ServiceStats;

constexpr int kClients = 8;

RenderRequest request_for(const SceneConfig& scene, const StarField& stars) {
  RenderRequest request;
  request.scene = scene;
  request.stars = stars;
  request.simulator = SimulatorKind::kAdaptive;
  return request;
}

struct ModeResult {
  double wall_s = 0.0;
  ServiceStats stats;  // zeroed for the direct mode
};

}  // namespace

int main(int argc, char** argv) {
  using namespace starsim::bench;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ext_serving",
                       "extension: frame-serving throughput, batching and "
                       "cache effects",
                       options, csv_path)) {
    return 0;
  }
  const std::size_t frames = options.quick ? 12 : 48;
  const int workers = static_cast<int>(
      std::min<unsigned>(4, std::max(2u, std::thread::hardware_concurrency())));

  SceneConfig scene;
  scene.image_width = 512;
  scene.image_height = 512;
  scene.roi_side = 10;

  // A fine lookup table: the accuracy configuration whose per-frame build
  // cost batching amortizes (see docs/serving.md).
  LookupTableOptions lut;
  lut.bins_per_magnitude = 100;
  lut.subpixel_phases = 2;

  std::vector<StarField> fields;
  for (std::size_t i = 0; i < frames; ++i) {
    WorkloadConfig workload;
    workload.star_count = 256;
    workload.image_width = scene.image_width;
    workload.image_height = scene.image_height;
    workload.seed = options.seed + i;
    fields.push_back(generate_stars(workload));
  }

  // Direct baseline + bit-identity references.
  std::vector<imageio::ImageF> references;
  references.reserve(frames);
  ModeResult direct;
  {
    gpusim::Device device(gpusim::DeviceSpec::gtx480());
    AdaptiveSimulator simulator(device, lut);
    const sup::WallTimer timer;
    for (const StarField& stars : fields) {
      references.push_back(simulator.simulate(scene, stars).image);
    }
    direct.wall_s = timer.seconds();
  }

  // Service, one worker, batching and caching off, one closed-loop client.
  ModeResult serial;
  {
    FrameServiceOptions opts;
    opts.workers = 1;
    opts.max_batch_size = 1;
    opts.cache_capacity = 0;
    opts.worker.lut = lut;
    FrameService service(std::move(opts));
    const sup::WallTimer timer;
    for (const StarField& stars : fields) {
      (void)service.render(request_for(scene, stars));
    }
    serial.wall_s = timer.seconds();
    serial.stats = service.stats();
  }

  // Service, worker fleet, dynamic batching, kClients concurrent clients.
  ModeResult batched;
  std::size_t mismatches = 0;
  gpusim::detail::frame_pool_stats_reset();
  {
    FrameServiceOptions opts;
    opts.workers = workers;
    opts.max_batch_size = 8;
    opts.queue_capacity = 2 * frames;
    opts.cache_capacity = 0;
    opts.worker.lut = lut;
    FrameService service(std::move(opts));

    std::vector<std::vector<std::future<RenderResponse>>> futures(kClients);
    const sup::WallTimer timer;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        // Client c owns every kClients-th request of the shared stream.
        for (std::size_t i = static_cast<std::size_t>(c); i < frames;
             i += kClients) {
          futures[static_cast<std::size_t>(c)].push_back(
              service.submit(request_for(scene, fields[i])));
        }
      });
    }
    for (auto& t : clients) t.join();
    for (int c = 0; c < kClients; ++c) {
      auto& mine = futures[static_cast<std::size_t>(c)];
      for (std::size_t j = 0; j < mine.size(); ++j) {
        const std::size_t i = static_cast<std::size_t>(c) + j * kClients;
        const RenderResponse response = mine[j].get();
        if (max_abs_difference(response.result->image, references[i]) != 0.0) {
          ++mismatches;
        }
      }
    }
    batched.wall_s = timer.seconds();
    batched.stats = service.stats();
  }
  const auto pool = gpusim::detail::frame_pool_stats();

  // Replay against a warm cache: repeat traffic never reaches a device.
  ModeResult cached;
  {
    FrameServiceOptions opts;
    opts.workers = workers;
    opts.max_batch_size = 8;
    opts.cache_capacity = frames;
    opts.worker.lut = lut;
    FrameService service(std::move(opts));
    for (const StarField& stars : fields) {
      (void)service.render(request_for(scene, stars));  // cold pass
    }
    const sup::WallTimer timer;
    for (const StarField& stars : fields) {
      (void)service.render(request_for(scene, stars));  // warm pass
    }
    cached.wall_s = timer.seconds();
    cached.stats = service.stats();
  }

  std::printf(
      "Extension — serving throughput (%zu frames, 256 stars, 512^2, "
      "adaptive, %d workers, %d clients)\n\n",
      frames, workers, kClients);
  sup::ConsoleTable table({"mode", "wall", "frames/s", "p50", "p95", "p99",
                           "mean batch", "cache hits"});
  sup::CsvWriter csv({"mode", "wall_s", "throughput_fps", "p50_s", "p95_s",
                      "p99_s", "mean_batch", "cache_hit_rate"});
  const auto add = [&](const char* mode, const ModeResult& r) {
    const double fps = static_cast<double>(frames) / r.wall_s;
    table.add_row({mode, sup::format_time(r.wall_s), sup::fixed(fps, 1),
                   sup::format_time(r.stats.latency.p50),
                   sup::format_time(r.stats.latency.p95),
                   sup::format_time(r.stats.latency.p99),
                   sup::fixed(r.stats.mean_batch_size(), 2),
                   sup::fixed(r.stats.cache_hit_rate() * 100.0, 0) + "%"});
    csv.add_row({mode, sup::compact(r.wall_s), sup::fixed(fps, 2),
                 sup::compact(r.stats.latency.p50),
                 sup::compact(r.stats.latency.p95),
                 sup::compact(r.stats.latency.p99),
                 sup::fixed(r.stats.mean_batch_size(), 2),
                 sup::fixed(r.stats.cache_hit_rate(), 3)});
  };
  add("direct", direct);
  add("serve-1x1", serial);
  add("serve-batch", batched);
  add("serve-cached", cached);
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nbatch-size histogram (serve-batch): ");
  const auto& histogram = batched.stats.batch_size_histogram;
  for (std::size_t size = 1; size < histogram.size(); ++size) {
    if (histogram[size] > 0) {
      std::printf("%zux%llu ", size,
                  static_cast<unsigned long long>(histogram[size]));
    }
  }
  std::printf(
      "\nframe pool (serve-batch): %llu acquisitions, %.0f%% reused\n",
      static_cast<unsigned long long>(pool.acquired),
      pool.reuse_rate() * 100.0);
  std::printf("bit-identity vs direct renders: %s (%zu mismatching frames)\n",
              mismatches == 0 ? "PASS" : "FAIL", mismatches);
  const double speedup = serial.wall_s / batched.wall_s;
  std::printf("throughput: serve-batch is %.2fx serve-1x1\n", speedup);
  std::puts(
      "\nreading: batching shares one LUT build/upload/bind per compatible"
      "\nrun and the worker fleet renders runs concurrently, so batched"
      "\nsubmission clears the stream in a fraction of the one-at-a-time"
      "\nwall; the warm cache replays the stream without touching a device.");
  maybe_write_csv(csv, csv_path);
  return mismatches == 0 && speedup > 1.0 ? 0 : 1;
}
