// Extension — a third sweep axis the paper fixes: image size. Both GPU
// simulators' non-kernel overhead is dominated by the image transfers
// (Table I), so application time at fixed work becomes transfer-bound as
// the frame grows — quantifying how far the 1024^2 results generalize to
// larger detectors.
#include <cstdio>

#include "bench_common.h"
#include "gpusim/device.h"
#include "starsim/parallel_simulator.h"
#include "starsim/workload.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace starsim;
  using namespace starsim::bench;
  namespace sup = starsim::support;

  SweepOptions options;
  std::string csv_path;
  if (!parse_bench_cli(argc, argv, "bench_ext_image_size",
                       "extension: image-size sweep (transfer-bound regime)",
                       options, csv_path)) {
    return 0;
  }

  const std::size_t stars = 8192;
  std::printf(
      "Extension — image-size sweep (%zu stars, ROI 10, parallel sim)\n\n",
      stars);
  sup::ConsoleTable table({"image", "kernel", "transfers", "application",
                           "non-kernel share"});
  sup::CsvWriter csv({"edge", "kernel_s", "transfer_s", "application_s",
                      "nonkernel_share"});

  for (int edge : {256, 512, 1024, 2048, 4096}) {
    if (options.quick && edge > 1024) break;
    SceneConfig scene;
    scene.image_width = edge;
    scene.image_height = edge;
    scene.roi_side = kTest1RoiSide;

    WorkloadConfig workload;
    workload.star_count = stars;
    workload.image_width = edge;
    workload.image_height = edge;
    workload.seed = options.seed;
    const StarField field = generate_stars(workload);

    gpusim::Device device(gpusim::DeviceSpec::gtx480());
    ParallelSimulator simulator(device);
    const auto timing = simulator.simulate(scene, field).timing;
    const double transfers = timing.h2d_s + timing.d2h_s;
    table.add_row(
        {std::to_string(edge) + "x" + std::to_string(edge),
         sup::format_time(timing.kernel_s), sup::format_time(transfers),
         sup::format_time(timing.application_s()),
         sup::fixed(timing.non_kernel_fraction() * 100, 1) + "%"});
    csv.add_row({std::to_string(edge), sup::compact(timing.kernel_s),
                 sup::compact(transfers),
                 sup::compact(timing.application_s()),
                 sup::fixed(timing.non_kernel_fraction(), 4)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nreading: kernel time tracks stars x ROI (fixed here); transfers"
      "\ngrow with image area, so large detectors push both simulators into"
      "\nthe transfer-bound regime where pipelining (see"
      "\nbench_ext_frame_pipeline) matters most.");
  maybe_write_csv(csv, csv_path);
  return 0;
}
