#include "sched/tuner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "support/error.h"
#include "support/rng.h"
#include "trace/trace.h"

namespace starsim::sched {

namespace {

struct Scored {
  Schedule schedule;
  CostBreakdown cost;
};

bool better(const Scored& a, const Scored& b) {
  return a.cost.application_s < b.cost.application_s;
}

}  // namespace

Tuner::Tuner(CostModel model, TunerOptions options)
    : model_(std::move(model)),
      space_(model_.device(), model_.host(), options.space),
      options_(options) {}

TuningOutcome Tuner::tune(const Workload& workload,
                          const LookupTableOptions& lut_floor) const {
  const SceneConfig& scene = workload.scene;
  scene.validate();
  STARSIM_REQUIRE(workload.star_count > 0, "tuning needs at least one star");
  trace::TraceSpan span("sched", "tune");

  std::size_t evaluated = 0;
  std::unordered_set<std::string> seen;
  auto evaluate = [&](const Schedule& s) {
    ++evaluated;
    return model_.score(scene, workload.star_count, s);
  };

  // --- Seeds: one per simulator family (includes both fixed baselines).
  std::vector<Scored> beam;
  for (Schedule& s :
       space_.seeds(scene, workload.star_count, lut_floor,
                    workload.batch_hint)) {
    if (!seen.insert(s.to_string()).second) continue;
    CostBreakdown cost = evaluate(s);
    beam.push_back(Scored{std::move(s), cost});
  }
  STARSIM_REQUIRE(!beam.empty(), "schedule space produced no candidates");
  std::sort(beam.begin(), beam.end(), better);
  Scored best = beam.front();

  // --- Beam search: expand the top candidates' neighborhoods.
  for (int round = 0; round < options_.beam_rounds; ++round) {
    if (beam.size() > static_cast<std::size_t>(options_.beam_width)) {
      beam.resize(static_cast<std::size_t>(options_.beam_width));
    }
    std::vector<Scored> frontier;
    for (const Scored& parent : beam) {
      for (Schedule& s : space_.neighbors(parent.schedule, scene,
                                          workload.star_count, lut_floor)) {
        if (!seen.insert(s.to_string()).second) continue;
        CostBreakdown cost = evaluate(s);
        frontier.push_back(Scored{std::move(s), cost});
      }
    }
    if (frontier.empty()) break;
    beam.insert(beam.end(), frontier.begin(), frontier.end());
    std::sort(beam.begin(), beam.end(), better);
    if (better(beam.front(), best)) best = beam.front();
  }

  // --- Simulated-annealing refinement from the beam winner. The PCG
  // stream is the workload fingerprint, so two workloads sharing a seed
  // still walk independent (but individually reproducible) paths.
  support::Pcg32 rng(options_.seed,
                     fingerprint_workload(workload, lut_floor,
                                          model_.device()));
  Scored current = best;
  double temperature = options_.anneal_initial_temp;
  for (int it = 0; it < options_.anneal_iterations; ++it) {
    std::vector<Schedule> moves = space_.neighbors(
        current.schedule, scene, workload.star_count, lut_floor);
    if (moves.empty()) break;
    Schedule& pick = moves[rng.bounded(static_cast<std::uint32_t>(moves.size()))];
    CostBreakdown cost = evaluate(pick);
    seen.insert(pick.to_string());
    const double relative_delta =
        (cost.application_s - current.cost.application_s) /
        std::max(current.cost.application_s,
                 std::numeric_limits<double>::min());
    if (relative_delta < 0.0 ||
        rng.uniform() < std::exp(-relative_delta / temperature)) {
      current = Scored{std::move(pick), cost};
      if (better(current, best)) best = current;
    }
    temperature *= options_.anneal_cooling;
  }

  // --- Baselines, scored by the same model (exactness contract: the
  // untiled parallel and floor-LUT adaptive scores here are bit-identical
  // to SimulatorSelector::predict).
  TuningOutcome outcome;
  outcome.schedule = best.schedule;
  outcome.cost = best.cost;
  outcome.candidates_evaluated = evaluated;

  const Schedule fixed_parallel =
      fixed_schedule(SimulatorKind::kParallel, scene, workload.star_count,
                     lut_floor, workload.batch_hint);
  outcome.fixed_parallel_s =
      space_.legal(fixed_parallel, scene, workload.star_count)
          ? model_.score(scene, workload.star_count, fixed_parallel)
                .application_s
          : std::numeric_limits<double>::infinity();
  const Schedule fixed_adaptive =
      fixed_schedule(SimulatorKind::kAdaptive, scene, workload.star_count,
                     lut_floor, workload.batch_hint);
  outcome.fixed_adaptive_s =
      space_.legal(fixed_adaptive, scene, workload.star_count)
          ? model_.score(scene, workload.star_count, fixed_adaptive)
                .application_s
          : std::numeric_limits<double>::infinity();
  outcome.sequential_s =
      model_
          .score(scene, workload.star_count,
                 fixed_schedule(SimulatorKind::kSequential, scene,
                                workload.star_count, lut_floor,
                                workload.batch_hint))
          .application_s;

  if (span.armed()) [[unlikely]] {
    span.arg("stars", static_cast<std::int64_t>(workload.star_count))
        .arg("roi", static_cast<std::int64_t>(scene.roi_side))
        .arg("candidates", static_cast<std::int64_t>(evaluated))
        .arg("winner", outcome.schedule.to_string())
        .arg("modeled_s", outcome.cost.application_s)
        .arg("speedup_vs_fixed", outcome.speedup_vs_fixed());
  }
  return outcome;
}

}  // namespace starsim::sched
