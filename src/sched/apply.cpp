#include "sched/apply.h"

#include "starsim/adaptive_simulator.h"
#include "starsim/openmp_simulator.h"
#include "starsim/pixel_centric_simulator.h"
#include "starsim/sequential_simulator.h"
#include "support/error.h"

namespace starsim::sched {

ParallelOptions parallel_options(const Schedule& schedule) {
  ParallelOptions options;
  if (schedule.simulator == SimulatorKind::kParallel && schedule.tiled()) {
    options.allow_tiling = true;
    options.tile_side = schedule.tile_side;
  }
  return options;
}

PipelineOptions pipeline_options(const Schedule& schedule,
                                 PipelineOptions base) {
  base.parallel = parallel_options(schedule);
  return base;
}

std::unique_ptr<Simulator> build_simulator(gpusim::Device& device,
                                           const Schedule& schedule) {
  switch (schedule.simulator) {
    case SimulatorKind::kSequential:
      return std::make_unique<SequentialSimulator>();
    case SimulatorKind::kCpuParallel:
      return std::make_unique<OpenMpSimulator>(schedule.cpu_threads);
    case SimulatorKind::kParallel:
      return std::make_unique<ParallelSimulator>(device,
                                                 parallel_options(schedule));
    case SimulatorKind::kAdaptive:
      return std::make_unique<AdaptiveSimulator>(device, schedule.lut);
    case SimulatorKind::kPixelCentric:
      return std::make_unique<PixelCentricSimulator>(device);
    default:
      STARSIM_THROW(support::PreconditionError,
                    "schedule names a simulator build_simulator cannot "
                    "instantiate");
  }
}

}  // namespace starsim::sched
