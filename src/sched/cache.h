// ScheduleCache — memoized tuning decisions, keyed by workload fingerprint.
//
// A tune costs microseconds, but the serving layer asks on every admitted
// request; the cache turns that into one hash lookup on the hot path and
// gives operators a warm-start file so a restarted server never re-tunes
// workloads it has already seen. Entries are LRU-evicted at capacity.
//
// Persistence is a versioned line-oriented text file stamped with the
// DeviceSpec fingerprint it was tuned for. Loading is all-or-nothing into
// a staging list first: a truncated, corrupted, version-skewed or
// wrong-device file is rejected whole and the in-memory cache is left
// untouched (a stale schedule silently applied to new hardware would be a
// correctness-of-performance bug the operator cannot see).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sched/schedule.h"

namespace starsim::sched {

/// One cached decision: the winning schedule plus the modeled costs of it
/// and the legacy fixed baseline at tune time (serving metrics report the
/// aggregate modeled win; drift detection compares re-scored costs).
struct CachedSchedule {
  Schedule schedule;
  double modeled_s = 0.0;
  double fallback_s = 0.0;  ///< best fixed simulator's modeled time
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
};

class ScheduleCache {
 public:
  explicit ScheduleCache(std::size_t capacity = 256);

  /// Find `key`, refreshing its LRU position. Counts a hit or a miss.
  [[nodiscard]] std::optional<CachedSchedule> lookup(std::uint64_t key);

  /// Insert (or overwrite) `key`, evicting the least-recently-used entry
  /// beyond capacity.
  void insert(std::uint64_t key, const CachedSchedule& entry);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] CacheStats stats() const;
  void clear();

  /// Write every entry (LRU-first, so reloading reproduces recency order)
  /// stamped with `device_fingerprint`. False on I/O failure.
  [[nodiscard]] bool save(const std::string& path,
                          std::uint64_t device_fingerprint) const;

  /// Replace the cache contents from `path`. Returns false — leaving the
  /// cache unchanged — when the file is missing, truncated, corrupted, a
  /// different format version, or stamped for a different device.
  [[nodiscard]] bool load(const std::string& path,
                          std::uint64_t device_fingerprint);

 private:
  struct Entry {
    std::uint64_t key = 0;
    CachedSchedule value;
  };

  void insert_locked(std::uint64_t key, const CachedSchedule& entry);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> order_;  ///< front = least recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace starsim::sched
