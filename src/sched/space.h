// ScheduleSpace — the legal candidate schedules for one workload.
//
// The space is small by design: every axis is grounded in a decision the
// codebase can actually execute. Simulator kind (the paper's decomposition
// axis), ROI tiling of the star-centric kernel (exact divisors only, so
// counter predictions stay exact), lookup-table resolution (searched
// *upward* from the workload's accuracy floor — coarser tables would change
// rendered output), and OpenMP thread count. Legality comes from the same
// DeviceSpec constraints the functional engine enforces at launch:
// block-dim and threads-per-block limits, grid extents, a nonzero
// occupancy, and the adaptive simulator's texture-height and memory caps.
#pragma once

#include <vector>

#include "gpusim/device_spec.h"
#include "gpusim/host_spec.h"
#include "sched/schedule.h"

namespace starsim::sched {

struct SpaceOptions {
  /// Lookup-table search ceiling: bins_per_magnitude up to
  /// floor * lut_bins_scale_cap, subpixel_phases up to lut_phases_cap
  /// (never below the floor on either axis).
  int lut_bins_scale_cap = 8;
  int lut_phases_cap = 4;
};

class ScheduleSpace {
 public:
  explicit ScheduleSpace(gpusim::DeviceSpec device = gpusim::DeviceSpec::gtx480(),
                         gpusim::HostSpec host = gpusim::HostSpec::i7_860(),
                         SpaceOptions options = {});

  /// One seed per simulator family the tuner's beam starts from. Always
  /// contains the legacy fixed schedules (untiled parallel, floor-LUT
  /// adaptive when legal, sequential, all-cores CPU-parallel) — which is
  /// what guarantees the tuner never returns anything worse than the
  /// paper's Table III policy.
  [[nodiscard]] std::vector<Schedule> seeds(
      const SceneConfig& scene, std::size_t star_count,
      const LookupTableOptions& lut_floor, std::size_t batch_hint) const;

  /// One-step mutations of `schedule` (adjacent tile side, halved/doubled
  /// thread count, refined LUT), already filtered through legal().
  [[nodiscard]] std::vector<Schedule> neighbors(
      const Schedule& schedule, const SceneConfig& scene,
      std::size_t star_count, const LookupTableOptions& lut_floor) const;

  /// Whether the device could actually launch (or the host run) `schedule`.
  [[nodiscard]] bool legal(const Schedule& schedule, const SceneConfig& scene,
                           std::size_t star_count) const;

  /// Tile sides the star-centric kernel can use on this scene: exact
  /// divisors t of roi_side with 2 <= t < roi_side (t == roi_side is the
  /// untiled kernel; partial tiles are never proposed).
  [[nodiscard]] std::vector<int> tile_candidates(const SceneConfig& scene) const;

  [[nodiscard]] const gpusim::DeviceSpec& device() const { return device_; }
  [[nodiscard]] const gpusim::HostSpec& host() const { return host_; }
  [[nodiscard]] const SpaceOptions& options() const { return options_; }

 private:
  [[nodiscard]] Schedule make_parallel(const SceneConfig& scene,
                                       std::size_t star_count, int tile_side,
                                       const LookupTableOptions& lut_floor,
                                       std::size_t batch_hint) const;

  gpusim::DeviceSpec device_;
  gpusim::HostSpec host_;
  SpaceOptions options_;
};

}  // namespace starsim::sched
