// Mapping a Schedule onto the machinery that executes it.
//
// The tuner decides; these helpers carry the decision into existing types
// without new execution paths: a Simulator instance for direct rendering,
// ParallelOptions / PipelineOptions for the frame-sequence pipeline, and
// LookupTableOptions for the adaptive path. Anything a Schedule cannot
// express for a given simulator (tile side on the adaptive kernel, LUT
// resolution on the parallel one) is simply ignored by construction.
#pragma once

#include <memory>

#include "gpusim/device.h"
#include "sched/schedule.h"
#include "starsim/parallel_simulator.h"
#include "starsim/pipeline.h"
#include "starsim/simulator.h"

namespace starsim::sched {

/// ParallelOptions realizing the schedule's ROI tiling (the paper's
/// untiled kernel when tile_side == 0).
[[nodiscard]] ParallelOptions parallel_options(const Schedule& schedule);

/// PipelineOptions with the schedule's launch geometry applied on top of
/// `base` (stream/copy-engine settings and resilience are kept).
[[nodiscard]] PipelineOptions pipeline_options(const Schedule& schedule,
                                               PipelineOptions base = {});

/// Instantiate the simulator the schedule names, configured by it.
/// kMultiGpu is not schedulable and throws PreconditionError.
[[nodiscard]] std::unique_ptr<Simulator> build_simulator(
    gpusim::Device& device, const Schedule& schedule);

}  // namespace starsim::sched
