#include "sched/cost.h"

#include <algorithm>
#include <cmath>

#include "gpusim/perf_model.h"
#include "starsim/device_frame.h"
#include "starsim/kernel_cost.h"
#include "starsim/magnitude.h"
#include "starsim/psf.h"
#include "starsim/star.h"
#include "support/error.h"

namespace starsim::sched {

namespace {

namespace kc = kernel_cost;

/// Flop-equivalents of one PSF evaluation (same constants the selector and
/// both kernels meter).
std::uint64_t psf_eval_flops(const gpusim::DeviceSpec& device,
                             const SceneConfig& scene) {
  if (scene.pixel_integration) {
    return kIntegratedRateArithmeticFlops +
           4 * static_cast<std::uint64_t>(device.erf_flop_equiv);
  }
  return kGaussRateArithmeticFlops +
         static_cast<std::uint64_t>(device.exp_flop_equiv);
}

std::uint64_t image_bytes_of(const SceneConfig& scene) {
  return static_cast<std::uint64_t>(scene.image_width) *
         static_cast<std::uint64_t>(scene.image_height) * sizeof(float);
}

std::uint64_t lut_bytes_of(const SceneConfig& scene,
                           const LookupTableOptions& lut) {
  const double span = scene.magnitude_max - scene.magnitude_min;
  const int bins = std::max(
      1, static_cast<int>(std::ceil(span * lut.bins_per_magnitude)));
  const std::uint64_t entries =
      static_cast<std::uint64_t>(bins) *
      static_cast<std::uint64_t>(lut.subpixel_phases) *
      static_cast<std::uint64_t>(lut.subpixel_phases) *
      static_cast<std::uint64_t>(scene.roi_side) *
      static_cast<std::uint64_t>(scene.roi_side);
  return entries * sizeof(float);
}

}  // namespace

CostModel::CostModel(gpusim::DeviceSpec device, gpusim::HostSpec host)
    : device_(std::move(device)),
      host_(host),
      selector_(device_, host_, LookupTableOptions{}) {}

gpusim::KernelCounters CostModel::predict_tiled_parallel_counters(
    const SceneConfig& scene, std::size_t star_count, int tile_side) const {
  scene.validate();
  STARSIM_REQUIRE(star_count > 0, "prediction needs at least one star");
  STARSIM_REQUIRE(tile_side > 0 && scene.roi_side % tile_side == 0,
                  "tile side must divide the ROI side exactly");
  const auto n = static_cast<std::uint64_t>(star_count);
  const auto side = static_cast<std::uint64_t>(scene.roi_side);
  const auto tile = static_cast<std::uint64_t>(tile_side);
  const std::uint64_t tiles_per_axis = side / tile;
  const std::uint64_t tiles = tiles_per_axis * tiles_per_axis;
  const std::uint64_t blocks = n * tiles;
  const std::uint64_t tpb = tile * tile;
  const std::uint64_t wpb =
      (tpb + static_cast<std::uint64_t>(device_.warp_size) - 1) /
      static_cast<std::uint64_t>(device_.warp_size);
  const gpusim::LaunchConfig config = star_centric_config(blocks, tile_side);

  gpusim::KernelCounters c;
  c.blocks_launched = config.total_blocks();
  c.threads_launched = c.blocks_launched * tpb;
  c.warps_launched = c.blocks_launched * wpb;

  // Thread (0,0) of each active block re-stages the star — the redundancy
  // a multi-block star costs over the untiled kernel.
  c.global_reads = blocks;
  c.global_bytes_read = blocks * sizeof(Star);
  c.global_transactions = blocks;
  c.shared_bank_conflicts = 0;
  c.shared_writes = blocks * 3;
  c.flops += blocks * (BrightnessModel::kArithmeticFlops +
                       static_cast<std::uint64_t>(device_.pow_flop_equiv) +
                       kc::kWeightFlops);

  // Every thread of each active block; tile-coordinate arithmetic adds two
  // flops over the untiled kernel.
  const std::uint64_t threads = blocks * tpb;  // == n * roi_side^2
  c.shared_reads = threads * 3;
  c.flops += threads * (kc::kCoordFlops + kc::kBoundsFlops + 2);
  // Exact tiling: every thread is in the ROI, and interior stars pass the
  // image-bounds test — both branch sites are warp-uniform.
  c.flops += threads * (psf_eval_flops(device_, scene) + kc::kAccumFlops);
  c.atomic_ops = threads;
  c.global_bytes_read += threads * sizeof(float);
  c.global_bytes_written += threads * sizeof(float);
  c.atomic_conflicts = 0;

  c.barriers = blocks * wpb;
  c.branch_sites_evaluated = 2 * blocks * wpb;  // in-ROI then in-image
  c.divergent_warp_branches = 0;
  return c;
}

CostBreakdown CostModel::score_parallel(const SceneConfig& scene,
                                        std::size_t star_count,
                                        const Schedule& schedule) const {
  CostBreakdown cost;
  if (!schedule.tiled()) {
    // Bit-identical to the legacy advisor's parallel column.
    const Prediction p = selector_.predict(scene, star_count);
    cost.kernel_s = p.parallel.kernel_s;
    cost.transfer_s = p.parallel.h2d_s + p.parallel.d2h_s;
    cost.counters = p.parallel.counters;
    cost.application_s = p.parallel.application_s();
    return cost;
  }
  cost.counters =
      predict_tiled_parallel_counters(scene, star_count, schedule.tile_side);
  const std::uint64_t tiles_per_axis =
      static_cast<std::uint64_t>(scene.roi_side / schedule.tile_side);
  const gpusim::LaunchConfig config = star_centric_config(
      star_count * tiles_per_axis * tiles_per_axis, schedule.tile_side);
  const gpusim::KernelTiming timing =
      gpusim::estimate_kernel_time(device_, config, cost.counters);
  cost.kernel_s = timing.kernel_s;
  const std::uint64_t star_bytes = star_count * sizeof(Star);
  const std::uint64_t image_bytes = image_bytes_of(scene);
  cost.transfer_s = gpusim::estimate_transfer_time(device_, star_bytes) +
                    gpusim::estimate_transfer_time(device_, image_bytes) +
                    gpusim::estimate_transfer_time(device_, image_bytes);
  cost.application_s = cost.kernel_s + cost.transfer_s;
  return cost;
}

CostBreakdown CostModel::score_adaptive(const SceneConfig& scene,
                                        std::size_t star_count,
                                        const Schedule& schedule) const {
  CostBreakdown cost;
  const Prediction p = selector_.predict(scene, star_count, schedule.lut);
  cost.kernel_s = p.adaptive.kernel_s;
  cost.counters = p.adaptive.counters;
  const std::uint64_t star_bytes = star_count * sizeof(Star);
  const std::uint64_t image_bytes = image_bytes_of(scene);
  cost.transfer_s = gpusim::estimate_transfer_time(device_, star_bytes) +
                    gpusim::estimate_transfer_time(device_, image_bytes) +
                    gpusim::estimate_transfer_time(device_, image_bytes);
  // The per-scene setup a batch pays once: table upload, CPU-side build,
  // texture bind (AdaptiveSimulator::simulate_batch's amortization).
  const double shared_setup =
      gpusim::estimate_transfer_time(device_,
                                     lut_bytes_of(scene, schedule.lut)) +
      p.adaptive.lut_build_s + p.adaptive.texture_bind_s;
  cost.setup_s =
      shared_setup / static_cast<double>(std::max<std::size_t>(
                         1, schedule.batch_hint));
  cost.application_s = cost.kernel_s + cost.transfer_s + cost.setup_s;
  return cost;
}

CostBreakdown CostModel::score_pixel_centric(const SceneConfig& scene,
                                             std::size_t star_count) const {
  // Approximate: the pixel-centric ablation's divergence and load pattern
  // depend on star placement, so this column is an estimate (uniform
  // broadcast loads, ROI-boundary divergence), unlike the exact
  // star-centric predictions. It completes the decomposition axis; its
  // O(pixels x stars) load traffic keeps it far from winning any workload
  // the paper studies, which matches the ablation bench's measurements.
  constexpr std::uint64_t kTile = 16;
  const auto n = static_cast<std::uint64_t>(star_count);
  const auto width = static_cast<std::uint64_t>(scene.image_width);
  const auto height = static_cast<std::uint64_t>(scene.image_height);
  const auto roi = static_cast<std::uint64_t>(scene.roi_side);

  gpusim::LaunchConfig config;
  config.grid = gpusim::Dim3(
      static_cast<std::uint32_t>((width + kTile - 1) / kTile),
      static_cast<std::uint32_t>((height + kTile - 1) / kTile));
  config.block = gpusim::Dim3(kTile, kTile);

  gpusim::KernelCounters c;
  const std::uint64_t tpb = kTile * kTile;
  const std::uint64_t wpb = tpb / static_cast<std::uint64_t>(device_.warp_size);
  c.blocks_launched = config.total_blocks();
  c.threads_launched = c.blocks_launched * tpb;
  c.warps_launched = c.blocks_launched * wpb;

  const std::uint64_t active = width * height;
  c.flops = c.threads_launched * kc::kCoordFlops;
  // Every active thread walks the whole star list.
  c.global_reads = active * n;
  c.global_bytes_read = active * n * sizeof(Star);
  // All threads of a warp load the same star: one broadcast transaction
  // per warp per star.
  c.global_transactions = c.warps_launched * n;
  c.flops += active * n * (kc::kBoundsFlops + 2);
  // Each interior star's ROI covers roi^2 pixels, which evaluate the full
  // brightness + PSF path.
  const std::uint64_t hits = n * roi * roi;
  c.flops += hits * (BrightnessModel::kArithmeticFlops +
                     static_cast<std::uint64_t>(device_.pow_flop_equiv) +
                     kc::kWeightFlops + psf_eval_flops(device_, scene) +
                     kc::kAccumFlops);
  c.branch_sites_evaluated = c.warps_launched * n;
  c.divergent_warp_branches =
      n * ((roi * roi + 31) / 32 + roi);  // warps straddling the ROI edge
  c.global_writes = active;
  c.global_bytes_written = active * sizeof(float);

  CostBreakdown cost;
  cost.counters = c;
  const gpusim::KernelTiming timing =
      gpusim::estimate_kernel_time(device_, config, c);
  cost.kernel_s = timing.kernel_s;
  const std::uint64_t star_bytes = n * sizeof(Star);
  const std::uint64_t image_bytes = image_bytes_of(scene);
  cost.transfer_s = gpusim::estimate_transfer_time(device_, star_bytes) +
                    gpusim::estimate_transfer_time(device_, image_bytes) +
                    gpusim::estimate_transfer_time(device_, image_bytes);
  cost.application_s = cost.kernel_s + cost.transfer_s;
  return cost;
}

CostBreakdown CostModel::score(const SceneConfig& scene,
                               std::size_t star_count,
                               const Schedule& schedule) const {
  scene.validate();
  STARSIM_REQUIRE(star_count > 0, "scoring needs at least one star");
  switch (schedule.simulator) {
    case SimulatorKind::kSequential: {
      CostBreakdown cost;
      cost.host_s = host_.scalar_time_s(static_cast<double>(
          selector_.predict_sequential_flops(scene, star_count)));
      cost.application_s = cost.host_s;
      return cost;
    }
    case SimulatorKind::kCpuParallel: {
      CostBreakdown cost;
      const int threads =
          schedule.cpu_threads > 0 ? schedule.cpu_threads : host_.cores;
      const int used = std::clamp(threads, 1, host_.cores);
      const auto flops = static_cast<double>(
          selector_.predict_sequential_flops(scene, star_count));
      // Same loops as sequential split over `used` cores, plus streaming
      // the worker-private partial images through host memory once
      // (OpenMpSimulator's reduction).
      cost.host_s =
          host_.parallel_time_s(flops, used) +
          host_.memory_stream_time_s(
              static_cast<double>(used) *
              static_cast<double>(image_bytes_of(scene)));
      cost.application_s = cost.host_s;
      return cost;
    }
    case SimulatorKind::kParallel:
      return score_parallel(scene, star_count, schedule);
    case SimulatorKind::kAdaptive:
      return score_adaptive(scene, star_count, schedule);
    case SimulatorKind::kPixelCentric:
      return score_pixel_centric(scene, star_count);
    default:
      STARSIM_THROW(support::PreconditionError,
                    "simulator kind is not schedulable");
  }
}

}  // namespace starsim::sched
