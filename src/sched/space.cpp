#include "sched/space.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "gpusim/occupancy.h"
#include "starsim/device_frame.h"
#include "support/error.h"

namespace starsim::sched {

namespace {

/// The adaptive simulator's texture-height cap (mirrors
/// AdaptiveSimulator::max_magnitude_bins): table rows cannot exceed the
/// 2-D texture height limit, and the table must leave most of device
/// memory to frames.
constexpr std::uint64_t kMaxTextureRows = 65536;

std::uint64_t lut_rows(const SceneConfig& scene,
                       const LookupTableOptions& lut) {
  const double span = scene.magnitude_max - scene.magnitude_min;
  const int bins =
      std::max(1, static_cast<int>(std::ceil(span * lut.bins_per_magnitude)));
  return static_cast<std::uint64_t>(bins) *
         static_cast<std::uint64_t>(lut.subpixel_phases) *
         static_cast<std::uint64_t>(lut.subpixel_phases) *
         static_cast<std::uint64_t>(scene.roi_side);
}

}  // namespace

ScheduleSpace::ScheduleSpace(gpusim::DeviceSpec device, gpusim::HostSpec host,
                             SpaceOptions options)
    : device_(std::move(device)), host_(host), options_(options) {}

std::vector<int> ScheduleSpace::tile_candidates(
    const SceneConfig& scene) const {
  std::vector<int> tiles;
  for (int t = 2; t < scene.roi_side; ++t) {
    if (scene.roi_side % t != 0) continue;
    if (static_cast<std::uint32_t>(t) * static_cast<std::uint32_t>(t) >
        device_.max_threads_per_block) {
      continue;
    }
    tiles.push_back(t);
  }
  return tiles;
}

Schedule ScheduleSpace::make_parallel(const SceneConfig& scene,
                                      std::size_t star_count, int tile_side,
                                      const LookupTableOptions& lut_floor,
                                      std::size_t batch_hint) const {
  Schedule s;
  s.simulator = SimulatorKind::kParallel;
  s.tile_side = tile_side;
  s.lut = lut_floor;
  s.batch_hint = batch_hint;
  if (tile_side > 0) {
    const std::size_t tiles_per_axis =
        static_cast<std::size_t>(scene.roi_side / tile_side);
    s.launch = star_centric_config(star_count * tiles_per_axis * tiles_per_axis,
                                   tile_side);
  } else {
    s.launch = star_centric_config(star_count, scene.roi_side);
  }
  return s;
}

bool ScheduleSpace::legal(const Schedule& schedule, const SceneConfig& scene,
                          std::size_t star_count) const {
  if (star_count == 0) return false;
  switch (schedule.simulator) {
    case SimulatorKind::kSequential:
    case SimulatorKind::kPixelCentric:
      return true;
    case SimulatorKind::kCpuParallel:
      return schedule.cpu_threads >= 0 && schedule.cpu_threads <= host_.cores;
    case SimulatorKind::kParallel:
    case SimulatorKind::kAdaptive: {
      if (schedule.tiled() &&
          (schedule.simulator == SimulatorKind::kAdaptive ||
           scene.roi_side % schedule.tile_side != 0)) {
        return false;  // tiling is a star-centric-kernel axis only
      }
      // Mirror Device::launch's validation: threads per block, block dims,
      // total grid blocks — then require the launch to actually occupy SMs.
      const gpusim::LaunchConfig& c = schedule.launch;
      if (c.threads_per_block() == 0 ||
          c.threads_per_block() > device_.max_threads_per_block) {
        return false;
      }
      if (c.block.x > device_.max_block_dim_x ||
          c.block.y > device_.max_block_dim_y ||
          c.block.z > device_.max_block_dim_z) {
        return false;
      }
      if (c.total_blocks() == 0 || c.total_blocks() > device_.max_grid_blocks) {
        return false;
      }
      if (gpusim::compute_occupancy(device_, c).resident_blocks_per_sm < 1) {
        return false;
      }
      if (schedule.simulator == SimulatorKind::kAdaptive) {
        if (schedule.lut.bins_per_magnitude < 1 ||
            schedule.lut.subpixel_phases < 1) {
          return false;
        }
        const std::uint64_t rows = lut_rows(scene, schedule.lut);
        if (rows > kMaxTextureRows) return false;
        const std::uint64_t bytes =
            rows * static_cast<std::uint64_t>(scene.roi_side) * sizeof(float);
        if (bytes > device_.global_memory_bytes / 4) return false;
      }
      return true;
    }
    default:
      return false;  // kMultiGpu is out of scope for the single-device tuner
  }
}

std::vector<Schedule> ScheduleSpace::seeds(
    const SceneConfig& scene, std::size_t star_count,
    const LookupTableOptions& lut_floor, std::size_t batch_hint) const {
  scene.validate();
  STARSIM_REQUIRE(star_count > 0, "schedule space needs at least one star");
  std::vector<Schedule> out;

  out.push_back(fixed_schedule(SimulatorKind::kSequential, scene, star_count,
                               lut_floor, batch_hint));

  Schedule cpu = fixed_schedule(SimulatorKind::kCpuParallel, scene, star_count,
                                lut_floor, batch_hint);
  cpu.cpu_threads = host_.cores;
  out.push_back(cpu);

  const Schedule untiled =
      make_parallel(scene, star_count, 0, lut_floor, batch_hint);
  if (legal(untiled, scene, star_count)) out.push_back(untiled);
  for (int t : tile_candidates(scene)) {
    Schedule tiled = make_parallel(scene, star_count, t, lut_floor, batch_hint);
    if (legal(tiled, scene, star_count)) out.push_back(tiled);
  }

  Schedule adaptive = fixed_schedule(SimulatorKind::kAdaptive, scene,
                                     star_count, lut_floor, batch_hint);
  if (legal(adaptive, scene, star_count)) out.push_back(adaptive);

  out.push_back(fixed_schedule(SimulatorKind::kPixelCentric, scene, star_count,
                               lut_floor, batch_hint));
  return out;
}

std::vector<Schedule> ScheduleSpace::neighbors(
    const Schedule& schedule, const SceneConfig& scene, std::size_t star_count,
    const LookupTableOptions& lut_floor) const {
  std::vector<Schedule> out;
  auto push_if_legal = [&](Schedule s) {
    if (legal(s, scene, star_count)) out.push_back(std::move(s));
  };

  switch (schedule.simulator) {
    case SimulatorKind::kCpuParallel: {
      const int threads =
          schedule.cpu_threads > 0 ? schedule.cpu_threads : host_.cores;
      for (int next : {threads / 2, threads * 2}) {
        if (next < 1 || next > host_.cores || next == threads) continue;
        Schedule s = schedule;
        s.cpu_threads = next;
        push_if_legal(std::move(s));
      }
      break;
    }
    case SimulatorKind::kParallel: {
      // Step to the adjacent tile side in {divisors..., untiled}.
      std::vector<int> ladder = tile_candidates(scene);
      ladder.push_back(0);  // untiled is the coarsest rung
      const auto it =
          std::find(ladder.begin(), ladder.end(), schedule.tile_side);
      if (it != ladder.end()) {
        if (it != ladder.begin()) {
          push_if_legal(make_parallel(scene, star_count, *(it - 1), lut_floor,
                                      schedule.batch_hint));
        }
        if (it + 1 != ladder.end()) {
          push_if_legal(make_parallel(scene, star_count, *(it + 1), lut_floor,
                                      schedule.batch_hint));
        }
      }
      break;
    }
    case SimulatorKind::kAdaptive: {
      // Refine (never coarsen below the accuracy floor).
      const int bins_cap =
          lut_floor.bins_per_magnitude * options_.lut_bins_scale_cap;
      const int halved = schedule.lut.bins_per_magnitude / 2;
      for (int bins : {halved, schedule.lut.bins_per_magnitude * 2}) {
        if (bins < lut_floor.bins_per_magnitude || bins > bins_cap ||
            bins == schedule.lut.bins_per_magnitude) {
          continue;
        }
        Schedule s = schedule;
        s.lut.bins_per_magnitude = bins;
        push_if_legal(std::move(s));
      }
      const int phases_cap =
          std::max(lut_floor.subpixel_phases, options_.lut_phases_cap);
      const int phalved = schedule.lut.subpixel_phases / 2;
      for (int phases : {phalved, schedule.lut.subpixel_phases * 2}) {
        if (phases < lut_floor.subpixel_phases || phases > phases_cap ||
            phases == schedule.lut.subpixel_phases) {
          continue;
        }
        Schedule s = schedule;
        s.lut.subpixel_phases = phases;
        push_if_legal(std::move(s));
      }
      break;
    }
    default:
      break;  // sequential / pixel-centric have no tunable axes
  }
  return out;
}

}  // namespace starsim::sched
