// Tuner — beam search + simulated-annealing refinement over ScheduleSpace,
// scored purely by CostModel (no real-GPU runs; a full tune is microseconds
// of arithmetic). Deterministic: the annealer's PCG stream is derived from
// (options.seed, workload fingerprint), so the same seed and workload
// always produce the same schedule — which is what lets the schedule cache
// persist across processes without replay drift.
//
// The search is overkill for today's space (a few dozen candidates — beam
// search alone visits most of them) and is structured the way auto-tuners
// like OpenTuner are: seeds per simulator family, one-step neighborhood
// moves, an acceptance temperature for escaping local minima once the
// space grows new axes (multi-GPU splits, stream counts).
#pragma once

#include <cstdint>

#include "sched/cost.h"
#include "sched/schedule.h"
#include "sched/space.h"

namespace starsim::sched {

struct TunerOptions {
  int beam_width = 6;
  int beam_rounds = 3;
  int anneal_iterations = 48;
  /// Initial acceptance temperature, in relative-cost units (a move 25%
  /// worse is accepted with probability 1/e at temperature 0.25).
  double anneal_initial_temp = 0.25;
  double anneal_cooling = 0.92;
  std::uint64_t seed = 0x5eed0001u;
  SpaceOptions space{};
};

struct TuningOutcome {
  Schedule schedule;     ///< the winner
  CostBreakdown cost;    ///< its modeled per-frame cost
  /// The legacy fixed alternatives, scored by the same model (adaptive is
  /// +inf when its lookup table cannot fit the device).
  double fixed_parallel_s = 0.0;
  double fixed_adaptive_s = 0.0;
  double sequential_s = 0.0;
  std::size_t candidates_evaluated = 0;

  /// The better of the two fixed GPU simulators — the Table III baseline.
  [[nodiscard]] double best_fixed_s() const {
    return fixed_parallel_s < fixed_adaptive_s ? fixed_parallel_s
                                               : fixed_adaptive_s;
  }
  /// Modeled speedup of the tuned schedule over that baseline (>= 1 by
  /// construction: both fixed schedules are seeds).
  [[nodiscard]] double speedup_vs_fixed() const {
    return cost.application_s > 0.0 ? best_fixed_s() / cost.application_s
                                    : 1.0;
  }
};

class Tuner {
 public:
  explicit Tuner(CostModel model = CostModel{}, TunerOptions options = {});

  /// Search the schedule space for `workload`. `lut_floor` is the accuracy
  /// floor for the adaptive path's lookup table (the tuner only refines
  /// upward). Deterministic given (options.seed, workload).
  [[nodiscard]] TuningOutcome tune(const Workload& workload,
                                   const LookupTableOptions& lut_floor = {}) const;

  [[nodiscard]] const CostModel& model() const { return model_; }
  [[nodiscard]] const ScheduleSpace& space() const { return space_; }
  [[nodiscard]] const TunerOptions& options() const { return options_; }

 private:
  CostModel model_;
  ScheduleSpace space_;
  TunerOptions options_;
};

}  // namespace starsim::sched
