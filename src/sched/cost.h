// The schedule cost model: modeled per-frame application time of any
// Schedule, priced purely by gpusim::perf_model / HostSpec — no real-GPU
// runs, microseconds per evaluation.
//
// Exactness contract: for the paper's fixed schedules (untiled parallel,
// adaptive at the floor LUT resolution, batch 1, sequential CPU) this model
// delegates to SimulatorSelector::predict and therefore produces *the same
// doubles* as the legacy Table III advisor — which is what guarantees a
// tuned schedule is never worse than either fixed simulator: both fixed
// points are in the search space with unchanged scores. Tiled star-centric
// launches get their own counter prediction mirroring
// tiled_parallel_kernel arithmetic step for step (exact for interior stars
// because the space only proposes tile sides dividing the ROI — no partial
// tiles, no divergence). The pixel-centric ablation is priced with an
// approximate divergence/cache estimate, documented as such; it exists so
// the decomposition axis is complete, not because it ever wins.
#pragma once

#include <cstdint>

#include "gpusim/counters.h"
#include "gpusim/device_spec.h"
#include "gpusim/host_spec.h"
#include "sched/schedule.h"
#include "starsim/selector.h"

namespace starsim::sched {

struct CostBreakdown {
  /// Per-frame modeled application time with per-scene setup amortized
  /// over the schedule's batch hint — the tuner's objective.
  double application_s = 0.0;
  double kernel_s = 0.0;    ///< GPU kernel (zero for CPU schedules)
  double transfer_s = 0.0;  ///< per-frame PCIe traffic
  /// Per-batch shared setup (LUT build + upload + texture bind), already
  /// divided by batch_hint.
  double setup_s = 0.0;
  double host_s = 0.0;  ///< CPU compute + reduction
  /// Predicted kernel counters (GPU schedules; zero otherwise).
  gpusim::KernelCounters counters;
};

class CostModel {
 public:
  explicit CostModel(gpusim::DeviceSpec device = gpusim::DeviceSpec::gtx480(),
                     gpusim::HostSpec host = gpusim::HostSpec::i7_860());

  /// Modeled cost of running `schedule` on this workload. star_count must
  /// be >= 1 (empty fields render identically fast everywhere).
  [[nodiscard]] CostBreakdown score(const SceneConfig& scene,
                                    std::size_t star_count,
                                    const Schedule& schedule) const;

  /// Counters the tiled star-centric kernel produces for interior stars
  /// when tile_side divides the ROI side exactly (the only tilings the
  /// schedule space proposes). Mirrors tiled_parallel_kernel's arithmetic;
  /// the test suite checks it counter-for-counter against a real launch.
  [[nodiscard]] gpusim::KernelCounters predict_tiled_parallel_counters(
      const SceneConfig& scene, std::size_t star_count, int tile_side) const;

  [[nodiscard]] const gpusim::DeviceSpec& device() const { return device_; }
  [[nodiscard]] const gpusim::HostSpec& host() const { return host_; }
  [[nodiscard]] const SimulatorSelector& selector() const { return selector_; }

 private:
  [[nodiscard]] CostBreakdown score_parallel(const SceneConfig& scene,
                                             std::size_t star_count,
                                             const Schedule& schedule) const;
  [[nodiscard]] CostBreakdown score_adaptive(const SceneConfig& scene,
                                             std::size_t star_count,
                                             const Schedule& schedule) const;
  [[nodiscard]] CostBreakdown score_pixel_centric(
      const SceneConfig& scene, std::size_t star_count) const;

  gpusim::DeviceSpec device_;
  gpusim::HostSpec host_;
  SimulatorSelector selector_;  ///< the legacy analytic predictor, reused
};

}  // namespace starsim::sched
