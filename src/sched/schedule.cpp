#include "sched/schedule.h"

#include <sstream>
#include <type_traits>

#include "starsim/device_frame.h"

namespace starsim::sched {

namespace {

class Fnv1a {
 public:
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ull;
    }
  }
  template <typename T>
  void value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(v));
  }
  [[nodiscard]] std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

}  // namespace

std::string Schedule::to_string() const {
  std::ostringstream out;
  out << starsim::to_string(simulator);
  switch (simulator) {
    case SimulatorKind::kParallel:
      out << (tiled() ? " tile=" + std::to_string(tile_side) : " untiled");
      [[fallthrough]];
    case SimulatorKind::kAdaptive:
    case SimulatorKind::kPixelCentric:
      out << " grid=" << launch.grid.x << "x" << launch.grid.y << " block="
          << launch.block.x << "x" << launch.block.y;
      break;
    case SimulatorKind::kCpuParallel:
      out << " threads=" << cpu_threads;
      break;
    default:
      break;
  }
  if (simulator == SimulatorKind::kAdaptive) {
    out << " lut=" << lut.bins_per_magnitude << "bpm/"
        << lut.subpixel_phases << "ph";
  }
  out << " batch=" << batch_hint;
  return out.str();
}

std::uint32_t Workload::star_bucket() const {
  std::uint32_t bucket = 0;
  for (std::size_t n = star_count; n > 1; n >>= 1) ++bucket;
  return bucket;
}

std::uint64_t fingerprint_workload(const Workload& workload,
                                   const LookupTableOptions& lut_floor,
                                   const gpusim::DeviceSpec& device) {
  const SceneConfig& scene = workload.scene;
  Fnv1a h;
  h.value(workload.star_bucket());
  h.value(workload.batch_hint);
  h.value(scene.image_width);
  h.value(scene.image_height);
  h.value(scene.roi_side);
  h.value(scene.psf_sigma);
  h.value(scene.pixel_integration);
  h.value(scene.brightness.proportion_factor);
  h.value(scene.brightness.magnitude_base);
  h.value(scene.magnitude_min);
  h.value(scene.magnitude_max);
  h.value(lut_floor.bins_per_magnitude);
  h.value(lut_floor.subpixel_phases);
  h.value(device.fingerprint());
  return h.hash();
}

Schedule fixed_schedule(SimulatorKind kind, const SceneConfig& scene,
                        std::size_t star_count,
                        const LookupTableOptions& lut_floor,
                        std::size_t batch_hint) {
  Schedule s;
  s.simulator = kind;
  s.lut = lut_floor;
  s.batch_hint = batch_hint;
  switch (kind) {
    case SimulatorKind::kParallel:
    case SimulatorKind::kAdaptive:
      s.launch = star_centric_config(star_count, scene.roi_side);
      break;
    default:
      break;
  }
  return s;
}

}  // namespace starsim::sched
