// Scheduler — the serving-facing facade over ScheduleCache + Tuner.
//
// This is what replaces the hand-tuned SimulatorSelector at decision
// sites: one choose() call resolves a workload to a simulator through the
// schedule cache (hash lookup on the hot path, a microsecond tune on a
// miss), composes with per-request pinning (the override always wins, but
// its modeled cost is still recorded against the tuned decision so
// operators can see pinning drift), and degrades to the legacy Table III
// inflection-point selector if the tuner ever throws. All counters needed
// for the starsim_sched_* Prometheus families accumulate here.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "sched/cache.h"
#include "sched/tuner.h"
#include "starsim/selector.h"

namespace starsim::sched {

struct SchedulerOptions {
  gpusim::DeviceSpec device = gpusim::DeviceSpec::gtx480();
  gpusim::HostSpec host = gpusim::HostSpec::i7_860();
  TunerOptions tuner{};
  /// Accuracy floor for the adaptive path's lookup table (what the
  /// workload's consumers require; the tuner only searches finer).
  LookupTableOptions lut_floor{};
  std::size_t cache_capacity = 256;
  /// Frames a batch is expected to amortize per-scene setup over when the
  /// caller does not say (FrameService passes its observed batch size).
  std::size_t batch_hint = 1;
};

struct SchedulerStats {
  CacheStats cache;
  std::uint64_t tuner_invocations = 0;
  std::uint64_t candidates_evaluated = 0;
  std::uint64_t overrides_recorded = 0;
  std::uint64_t fallbacks = 0;
  /// Sum of modeled per-frame seconds of every tuned decision and of the
  /// legacy fixed baseline for the same workloads — their ratio is the
  /// aggregate modeled speedup the scheduler claims.
  double tuned_modeled_s_total = 0.0;
  double fallback_modeled_s_total = 0.0;
  /// Sum of (override cost - tuned cost): how much modeled time pinned
  /// requests are leaving on the table.
  double override_drift_s_total = 0.0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options = {});

  /// The simulator the tuned schedule picks for this workload. `preference`
  /// (a pinned request) always wins when set; the tuned decision is still
  /// computed/cached so drift is recorded. Empty fields are kSequential by
  /// convention (nothing to render — matches FrameService). Never throws:
  /// tuner failures fall back to the legacy selector.
  [[nodiscard]] SimulatorKind choose(
      const SceneConfig& scene, std::size_t star_count,
      std::optional<SimulatorKind> preference = std::nullopt);

  /// The full tuned schedule (cache hit or fresh tune). batch_hint == 0
  /// uses the option default. Throws on invalid workloads.
  [[nodiscard]] CachedSchedule schedule_for(const SceneConfig& scene,
                                            std::size_t star_count,
                                            std::size_t batch_hint = 0);

  /// Warm-start persistence (see ScheduleCache::save/load). The file is
  /// stamped with this scheduler's device fingerprint.
  [[nodiscard]] bool save_cache(const std::string& path) const;
  [[nodiscard]] bool load_cache(const std::string& path);

  [[nodiscard]] SchedulerStats stats() const;
  [[nodiscard]] const Tuner& tuner() const { return tuner_; }
  [[nodiscard]] const SimulatorSelector& legacy_selector() const {
    return legacy_;
  }
  [[nodiscard]] const SchedulerOptions& options() const { return options_; }

 private:
  [[nodiscard]] CachedSchedule schedule_locked(const SceneConfig& scene,
                                               std::size_t star_count,
                                               std::size_t batch_hint);

  SchedulerOptions options_;
  Tuner tuner_;
  SimulatorSelector legacy_;
  mutable std::mutex mutex_;  ///< serializes tune-on-miss and stats
  ScheduleCache cache_;
  SchedulerStats stats_;
};

}  // namespace starsim::sched
