// Schedule — the auto-scheduler's decision vector.
//
// The paper fixes its execution strategy per experiment: star-centric
// blocks of roi_side^2 threads, one simulator chosen at Table III's
// inflection points, the default lookup-table resolution. Following the
// algorithm/schedule split of Halide and the search-based tuning of
// OpenTuner, starsim::sched turns all of those into one searchable value:
// which simulator runs, how its launch is shaped (ROI tiling for the
// star-centric kernel), how finely the adaptive path's lookup table is
// sampled, how many CPU threads the OpenMP path uses, and how many frames
// a batch is expected to amortize per-scene setup over. Every field maps
// onto machinery that already exists (ParallelOptions, LookupTableOptions,
// OpenMpSimulator, AdaptiveSimulator::simulate_batch) — a Schedule never
// changes *what* is rendered, only how the work is decomposed.
#pragma once

#include <cstdint>
#include <string>

#include "gpusim/device_spec.h"
#include "gpusim/dim.h"
#include "starsim/lookup_table.h"
#include "starsim/scene.h"
#include "starsim/simulator.h"

namespace starsim::sched {

struct Schedule {
  SimulatorKind simulator = SimulatorKind::kParallel;
  /// Star-centric tiling: 0 runs the paper's untiled kernel (one block per
  /// star, roi_side^2 threads); t > 0 runs one block per (star, tile) with
  /// t^2 threads. The schedule space only proposes exact divisors of the
  /// ROI side, so tiled launches have no partial tiles and the cost model's
  /// counter predictions stay exact.
  int tile_side = 0;
  /// Launch geometry implied by the workload this schedule was tuned for
  /// (GPU simulators only; zero-sized for CPU schedules).
  gpusim::LaunchConfig launch;
  /// Lookup-table resolution (adaptive simulator only). The tuner treats
  /// the workload's requested resolution as an accuracy floor and searches
  /// upward from it, never below.
  LookupTableOptions lut{};
  /// OpenMP worker threads (cpu-parallel only; 0 = all modeled cores).
  int cpu_threads = 0;
  /// Frames the serving layer is expected to batch against one scene; the
  /// adaptive path's table build/upload/bind amortizes over this many.
  std::size_t batch_hint = 1;

  [[nodiscard]] bool tiled() const { return tile_side > 0; }
  /// Stable human-readable identity, e.g.
  /// "parallel tile=4 grid=256x4 block=4x4 batch=1". Equal strings mean
  /// equal schedules; the tuner dedups candidates on it and the cache file
  /// round-trips through the same fields.
  [[nodiscard]] std::string to_string() const;
};

/// The workload class a schedule is tuned (and cached) for. Star counts
/// are bucketed by floor(log2) — the paper's own sweeps step in powers of
/// two, and a tuned decision is stable well within a 2x band.
struct Workload {
  SceneConfig scene;
  std::size_t star_count = 0;
  std::size_t batch_hint = 1;

  [[nodiscard]] std::uint32_t star_bucket() const;
};

/// Cache key: star-count bucket x image size x ROI x PSF/brightness
/// parameters x LUT floor x batch hint x device-spec fingerprint. FNV-1a
/// over exact bit patterns, like serve's request fingerprints.
[[nodiscard]] std::uint64_t fingerprint_workload(
    const Workload& workload, const LookupTableOptions& lut_floor,
    const gpusim::DeviceSpec& device);

/// The legacy fixed schedule for `kind`: untiled star-centric launch,
/// floor lookup-table resolution, all CPU cores. The paper's Table III
/// policy is exactly a choice among these degenerate schedules.
[[nodiscard]] Schedule fixed_schedule(SimulatorKind kind,
                                      const SceneConfig& scene,
                                      std::size_t star_count,
                                      const LookupTableOptions& lut_floor = {},
                                      std::size_t batch_hint = 1);

}  // namespace starsim::sched
