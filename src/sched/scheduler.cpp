#include "sched/scheduler.h"

#include <utility>

#include "support/error.h"

namespace starsim::sched {

Scheduler::Scheduler(SchedulerOptions options)
    : options_(std::move(options)),
      tuner_(CostModel(options_.device, options_.host), options_.tuner),
      legacy_(options_.device, options_.host, options_.lut_floor),
      cache_(options_.cache_capacity) {}

CachedSchedule Scheduler::schedule_locked(const SceneConfig& scene,
                                          std::size_t star_count,
                                          std::size_t batch_hint) {
  Workload workload;
  workload.scene = scene;
  workload.star_count = star_count;
  workload.batch_hint = batch_hint == 0 ? options_.batch_hint : batch_hint;

  const std::uint64_t key =
      fingerprint_workload(workload, options_.lut_floor, options_.device);
  if (std::optional<CachedSchedule> hit = cache_.lookup(key)) {
    return *hit;
  }
  const TuningOutcome outcome = tuner_.tune(workload, options_.lut_floor);
  ++stats_.tuner_invocations;
  stats_.candidates_evaluated += outcome.candidates_evaluated;
  stats_.tuned_modeled_s_total += outcome.cost.application_s;
  stats_.fallback_modeled_s_total += outcome.best_fixed_s();

  CachedSchedule entry;
  entry.schedule = outcome.schedule;
  entry.modeled_s = outcome.cost.application_s;
  entry.fallback_s = outcome.best_fixed_s();
  cache_.insert(key, entry);
  return entry;
}

CachedSchedule Scheduler::schedule_for(const SceneConfig& scene,
                                       std::size_t star_count,
                                       std::size_t batch_hint) {
  scene.validate();
  STARSIM_REQUIRE(star_count > 0, "scheduling needs at least one star");
  std::lock_guard<std::mutex> lock(mutex_);
  return schedule_locked(scene, star_count, batch_hint);
}

SimulatorKind Scheduler::choose(const SceneConfig& scene,
                                std::size_t star_count,
                                std::optional<SimulatorKind> preference) {
  if (star_count == 0) return SimulatorKind::kSequential;
  if (preference) {
    // The pin always wins, but the tuned decision is still computed (and
    // cached) so the modeled cost of honoring the pin is visible.
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.overrides_recorded;
    try {
      const CachedSchedule tuned =
          schedule_locked(scene, star_count, /*batch_hint=*/0);
      if (*preference != SimulatorKind::kMultiGpu) {
        const CostBreakdown pinned = tuner_.model().score(
            scene, star_count,
            fixed_schedule(*preference, scene, star_count, options_.lut_floor,
                           options_.batch_hint));
        stats_.override_drift_s_total +=
            pinned.application_s - tuned.modeled_s;
      }
    } catch (const support::Error&) {
      ++stats_.fallbacks;  // drift unrecordable; the pin still stands
    }
    return *preference;
  }
  try {
    std::lock_guard<std::mutex> lock(mutex_);
    return schedule_locked(scene, star_count, /*batch_hint=*/0).schedule
        .simulator;
  } catch (const support::Error&) {
    // Degrade to the legacy Table III advisor rather than failing the
    // request: a scheduling bug must never take serving down.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.fallbacks;
    }
    return legacy_.choose(scene, star_count);
  }
}

bool Scheduler::save_cache(const std::string& path) const {
  return cache_.save(path, options_.device.fingerprint());
}

bool Scheduler::load_cache(const std::string& path) {
  return cache_.load(path, options_.device.fingerprint());
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SchedulerStats out = stats_;
  out.cache = cache_.stats();
  return out;
}

}  // namespace starsim::sched
