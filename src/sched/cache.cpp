#include "sched/cache.h"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "support/error.h"

namespace starsim::sched {

namespace {

constexpr const char* kMagic = "starsim-sched-cache";
constexpr int kVersion = 1;

}  // namespace

ScheduleCache::ScheduleCache(std::size_t capacity) : capacity_(capacity) {
  STARSIM_REQUIRE(capacity >= 1, "schedule cache needs capacity >= 1");
}

std::optional<CachedSchedule> ScheduleCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  order_.splice(order_.end(), order_, it->second);  // refresh to MRU
  return it->second->value;
}

void ScheduleCache::insert(std::uint64_t key, const CachedSchedule& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  insert_locked(key, entry);
}

void ScheduleCache::insert_locked(std::uint64_t key,
                                  const CachedSchedule& entry) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = entry;
    order_.splice(order_.end(), order_, it->second);
    return;
  }
  order_.push_back(Entry{key, entry});
  index_[key] = std::prev(order_.end());
  ++stats_.insertions;
  if (index_.size() > capacity_) {
    index_.erase(order_.front().key);
    order_.pop_front();
    ++stats_.evictions;
  }
}

std::size_t ScheduleCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

CacheStats ScheduleCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ScheduleCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  order_.clear();
  index_.clear();
}

bool ScheduleCache::save(const std::string& path,
                         std::uint64_t device_fingerprint) const {
  std::ostringstream out;
  out << kMagic << ' ' << kVersion << '\n';
  out << "device " << std::hex << device_fingerprint << std::dec << '\n';
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out << "entries " << order_.size() << '\n';
    for (const Entry& e : order_) {
      const Schedule& s = e.value.schedule;
      out << std::hex << e.key << std::dec << ' '
          << static_cast<int>(s.simulator) << ' ' << s.tile_side << ' '
          << s.lut.bins_per_magnitude << ' ' << s.lut.subpixel_phases << ' '
          << s.cpu_threads << ' ' << s.batch_hint << ' ' << s.launch.grid.x
          << ' ' << s.launch.grid.y << ' ' << s.launch.block.x << ' '
          << s.launch.block.y << ' ';
      // Hex float round-trips doubles exactly — modeled costs must survive
      // a save/load cycle bit-for-bit or drift detection would self-trigger.
      out << std::hexfloat << e.value.modeled_s << ' ' << e.value.fallback_s
          << std::defaultfloat << '\n';
    }
  }
  out << "end\n";
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << out.str();
  return static_cast<bool>(file.flush());
}

bool ScheduleCache::load(const std::string& path,
                         std::uint64_t device_fingerprint) {
  std::ifstream file(path);
  if (!file) return false;

  std::string magic;
  int version = -1;
  if (!(file >> magic >> version) || magic != kMagic || version != kVersion) {
    return false;
  }
  std::string tag;
  std::uint64_t stamped = 0;
  if (!(file >> tag >> std::hex >> stamped >> std::dec) || tag != "device") {
    return false;
  }
  if (stamped != device_fingerprint) return false;
  std::size_t count = 0;
  if (!(file >> tag >> count) || tag != "entries") return false;

  // Stage everything before touching the live cache: any malformed or
  // missing field rejects the whole file.
  std::vector<Entry> staged;
  staged.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Entry e;
    int kind = -1;
    std::string modeled_hex;
    std::string fallback_hex;
    Schedule& s = e.value.schedule;
    if (!(file >> std::hex >> e.key >> std::dec >> kind >> s.tile_side >>
          s.lut.bins_per_magnitude >> s.lut.subpixel_phases >> s.cpu_threads >>
          s.batch_hint >> s.launch.grid.x >> s.launch.grid.y >>
          s.launch.block.x >> s.launch.block.y >> modeled_hex >>
          fallback_hex)) {
      return false;
    }
    if (kind < 0 || kind > static_cast<int>(SimulatorKind::kCpuParallel)) {
      return false;
    }
    s.simulator = static_cast<SimulatorKind>(kind);
    try {
      // std::hexfloat extraction is unreliable across standard libraries;
      // strtod handles the 0x1.xp-n form everywhere.
      std::size_t used = 0;
      e.value.modeled_s = std::stod(modeled_hex, &used);
      if (used != modeled_hex.size()) return false;
      e.value.fallback_s = std::stod(fallback_hex, &used);
      if (used != fallback_hex.size()) return false;
    } catch (const std::exception&) {
      return false;
    }
    staged.push_back(std::move(e));
  }
  if (!(file >> tag) || tag != "end") return false;

  std::lock_guard<std::mutex> lock(mutex_);
  order_.clear();
  index_.clear();
  for (Entry& e : staged) {
    insert_locked(e.key, e.value);  // LRU-first file order reproduces recency
  }
  return true;
}

}  // namespace starsim::sched
