#include "support/units.h"

#include <cmath>
#include <cstdio>

namespace starsim::support {

namespace {

std::string printf_string(const char* fmt, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, value);
  return buffer;
}

}  // namespace

std::string fixed(double value, int digits) {
  char fmt[16];
  std::snprintf(fmt, sizeof(fmt), "%%.%df", digits);
  return printf_string(fmt, value);
}

std::string compact(double value) {
  const double mag = std::abs(value);
  if (mag != 0.0 && (mag >= 1e6 || mag < 1e-3)) {
    return printf_string("%.3e", value);
  }
  return printf_string("%.4g", value);
}

std::string format_time(double seconds) {
  const double mag = std::abs(seconds);
  if (mag < 1e-6) return fixed(seconds * 1e9, 1) + " ns";
  if (mag < 1e-3) return fixed(seconds * 1e6, 2) + " us";
  if (mag < 1.0) return fixed(seconds * 1e3, 3) + " ms";
  return fixed(seconds, 3) + " s";
}

std::string format_bytes(std::uint64_t bytes) {
  constexpr std::uint64_t kKiB = 1024;
  constexpr std::uint64_t kMiB = kKiB * 1024;
  constexpr std::uint64_t kGiB = kMiB * 1024;
  const auto b = static_cast<double>(bytes);
  if (bytes >= kGiB) return fixed(b / static_cast<double>(kGiB), 2) + " GiB";
  if (bytes >= kMiB) return fixed(b / static_cast<double>(kMiB), 2) + " MiB";
  if (bytes >= kKiB) return fixed(b / static_cast<double>(kKiB), 2) + " KiB";
  return std::to_string(bytes) + " B";
}

std::string format_rate(double bytes_per_second) {
  const double mag = std::abs(bytes_per_second);
  if (mag >= 1e9) return fixed(bytes_per_second / 1e9, 2) + " GB/s";
  if (mag >= 1e6) return fixed(bytes_per_second / 1e6, 2) + " MB/s";
  if (mag >= 1e3) return fixed(bytes_per_second / 1e3, 2) + " KB/s";
  return fixed(bytes_per_second, 1) + " B/s";
}

}  // namespace starsim::support
