#include "support/cli.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "support/error.h"

namespace starsim::support {

Cli::Cli(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void Cli::add_flag(const std::string& name, const std::string& help) {
  STARSIM_REQUIRE(find(name) == nullptr, "duplicate option: " + name);
  Opt opt;
  opt.name = name;
  opt.help = help;
  opt.is_flag = true;
  opt.value = "false";
  opts_.push_back(std::move(opt));
}

void Cli::add_option(const std::string& name, const std::string& help,
                     const std::string& fallback) {
  STARSIM_REQUIRE(find(name) == nullptr, "duplicate option: " + name);
  Opt opt;
  opt.name = name;
  opt.help = help;
  opt.value = fallback;
  opt.fallback = fallback;
  opts_.push_back(std::move(opt));
}

Cli::Opt* Cli::find(const std::string& name) {
  for (auto& opt : opts_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

const Cli::Opt& Cli::get(const std::string& name, bool want_flag) const {
  for (const auto& opt : opts_) {
    if (opt.name == name) {
      STARSIM_REQUIRE(opt.is_flag == want_flag,
                      "option kind mismatch for: " + name);
      return opt;
    }
  }
  throw PreconditionError("unknown option queried: " + name);
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    Opt* opt = find(name);
    STARSIM_REQUIRE(opt != nullptr, "unknown option: --" + name);
    if (opt->is_flag) {
      STARSIM_REQUIRE(!inline_value.has_value(),
                      "flag --" + name + " does not take a value");
      opt->value = "true";
    } else if (inline_value.has_value()) {
      opt->value = *inline_value;
    } else {
      STARSIM_REQUIRE(i + 1 < argc, "option --" + name + " needs a value");
      opt->value = argv[++i];
    }
    opt->seen = true;
  }
  return true;
}

bool Cli::flag(const std::string& name) const {
  return get(name, /*want_flag=*/true).value == "true";
}

std::string Cli::str(const std::string& name) const {
  return get(name, /*want_flag=*/false).value;
}

long Cli::integer(const std::string& name) const {
  const std::string raw = str(name);
  try {
    std::size_t used = 0;
    const long value = std::stol(raw, &used, 0);
    STARSIM_REQUIRE(used == raw.size(), "--" + name + ": trailing junk");
    return value;
  } catch (const std::logic_error&) {
    throw PreconditionError("--" + name + " expects an integer, got: " + raw);
  }
}

double Cli::real(const std::string& name) const {
  const std::string raw = str(name);
  try {
    std::size_t used = 0;
    const double value = std::stod(raw, &used);
    STARSIM_REQUIRE(used == raw.size(), "--" + name + ": trailing junk");
    return value;
  } catch (const std::logic_error&) {
    throw PreconditionError("--" + name + " expects a number, got: " + raw);
  }
}

std::string Cli::help_text() const {
  std::ostringstream out;
  out << program_ << " — " << summary_ << "\n\noptions:\n";
  for (const auto& opt : opts_) {
    out << "  --" << opt.name;
    if (!opt.is_flag) out << " <value>";
    out << "\n      " << opt.help;
    if (!opt.is_flag && !opt.fallback.empty()) {
      out << " (default: " << opt.fallback << ")";
    }
    out << '\n';
  }
  out << "  --help\n      show this message\n";
  return out.str();
}

}  // namespace starsim::support
