// Deterministic pseudo-random number generation.
//
// All stochastic inputs in the repository (benchmark workloads, catalogue
// synthesis, noise injection) flow through Pcg32 so that every experiment is
// reproducible from a single seed. PCG-XSH-RR 64/32 (O'Neill 2014) is used:
// it is tiny, fast, and statistically far stronger than LCGs while staying
// header-light (no <random> engine state bloat in hot loops).
#pragma once

#include <cstdint>
#include <limits>

namespace starsim::support {

/// PCG-XSH-RR 64/32 generator. Satisfies std::uniform_random_bit_generator.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Default stream constant from the PCG reference implementation.
  static constexpr std::uint64_t kDefaultStream = 0xda3e39cb94b95bdbULL;

  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = kDefaultStream);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 32 uniformly distributed bits.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) without modulo bias (Lemire rejection).
  std::uint32_t bounded(std::uint32_t n);

  /// Standard normal variate (Marsaglia polar method, cached spare).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double sigma);

  /// Poisson variate; Knuth's method below 30, normal approximation above
  /// (adequate for photon-count noise where lambda is large).
  std::uint64_t poisson(double lambda);

  /// Re-seed, discarding all cached state.
  void seed(std::uint64_t seed, std::uint64_t stream = kDefaultStream);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace starsim::support
