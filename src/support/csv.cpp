#include "support/csv.h"

#include <fstream>
#include <sstream>

#include "support/error.h"

namespace starsim::support {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  STARSIM_REQUIRE(!header_.empty(), "CSV needs at least one column");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  STARSIM_REQUIRE(row.size() == header_.size(),
                  "CSV row arity must match header arity");
  rows_.push_back(std::move(row));
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::render() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << escape(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) throw IoError("cannot open CSV output file: " + path);
  file << render();
  if (!file.good()) throw IoError("failed writing CSV file: " + path);
}

}  // namespace starsim::support
