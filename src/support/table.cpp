#include "support/table.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "support/error.h"

namespace starsim::support {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  bool digit_seen = false;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != 'x' && c != '^' && c != '%') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  STARSIM_REQUIRE(!header_.empty(), "table needs at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> row) {
  STARSIM_REQUIRE(row.size() == header_.size(),
                  "row arity must match header arity");
  rows_.push_back(std::move(row));
}

std::string ConsoleTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_right) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      const std::size_t pad = widths[c] - row[c].size();
      const bool right = align_right && looks_numeric(row[c]);
      if (right) out << std::string(pad, ' ');
      out << row[c];
      if (!right && c + 1 != row.size()) out << std::string(pad, ' ');
    }
    out << '\n';
  };

  emit_row(header_, /*align_right=*/false);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c ? 2 : 0);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row, /*align_right=*/true);
  return out.str();
}

}  // namespace starsim::support
