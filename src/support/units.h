// Human-readable formatting of times, byte counts and rates, plus fixed
// precision numeric formatting used by the table/CSV emitters.
#pragma once

#include <cstdint>
#include <string>

namespace starsim::support {

/// "123.4 us" / "12.34 ms" / "1.234 s" style; input in seconds.
std::string format_time(double seconds);

/// "512 B" / "4.00 MiB" style.
std::string format_bytes(std::uint64_t bytes);

/// "3.60 GB/s" style; input in bytes per second.
std::string format_rate(double bytes_per_second);

/// Fixed-precision decimal rendering ("%.{digits}f").
std::string fixed(double value, int digits);

/// Scientific-ish compact rendering for wide dynamic ranges.
std::string compact(double value);

}  // namespace starsim::support
