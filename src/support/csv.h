// CSV emission for benchmark results.
//
// Each bench binary can mirror its console table into a CSV file (via the
// --csv flag) so figures can be re-plotted downstream. Quoting follows RFC
// 4180: fields containing commas, quotes, or newlines are quoted and inner
// quotes doubled.
#pragma once

#include <string>
#include <vector>

namespace starsim::support {

/// In-memory CSV document; write_file() flushes it atomically-ish (full
/// rewrite) to disk.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render the document as a string (header + rows, LF line endings).
  [[nodiscard]] std::string render() const;

  /// Write to `path`; throws IoError on failure.
  void write_file(const std::string& path) const;

  /// Quote a single field per RFC 4180 if needed.
  static std::string escape(const std::string& field);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace starsim::support
