// Minimal command-line parser shared by examples and bench binaries.
//
// Supports `--flag`, `--key value`, and `--key=value` forms plus positional
// arguments. Unknown options are an error (benchmark invocations should fail
// loudly rather than silently ignore a typo in a sweep parameter).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace starsim::support {

/// Declarative option set + parsed results.
class Cli {
 public:
  /// `program` and `summary` feed the --help text.
  Cli(std::string program, std::string summary);

  /// Declare a boolean flag (present/absent).
  void add_flag(const std::string& name, const std::string& help);

  /// Declare an option that takes a value; `fallback` is used when absent.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& fallback);

  /// Parse argv. Returns false when --help was requested (help text printed
  /// to stdout); throws PreconditionError on malformed input.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] long integer(const std::string& name) const;
  [[nodiscard]] double real(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string help_text() const;

 private:
  struct Opt {
    std::string name;
    std::string help;
    std::string value;     // current (fallback or parsed) value
    std::string fallback;  // printed in help
    bool is_flag = false;
    bool seen = false;
  };

  Opt* find(const std::string& name);
  const Opt& get(const std::string& name, bool want_flag) const;

  std::string program_;
  std::string summary_;
  std::vector<Opt> opts_;
  std::vector<std::string> positional_;
};

}  // namespace starsim::support
