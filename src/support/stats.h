// Small statistics toolkit used by the benchmark harnesses and tests:
// summary statistics, linear regression (for "does time scale linearly in
// stars?" checks), and geometric means (for speedup aggregation, which is
// the correct mean for ratios).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace starsim::support {

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n-1 denominator).
};

/// Compute a Summary; empty input yields a zeroed Summary.
Summary summarize(std::span<const double> values);

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> values);

/// Sample standard deviation; 0 for fewer than two values.
double stddev(std::span<const double> values);

/// Median (average of central pair for even sizes); 0 for empty input.
double median(std::span<const double> values);

/// Quantile `q` in [0, 1] with linear interpolation between order statistics
/// (the common "type 7" definition: quantile(0.5) == median). 0 for empty
/// input.
double quantile(std::span<const double> values, double q);

/// The tail-latency triple every serving report wants (p50/p95/p99).
struct TailQuantiles {
  std::size_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Compute p50/p95/p99 in one sort; empty input yields a zeroed result.
TailQuantiles tail_quantiles(std::span<const double> values);

/// Geometric mean; requires all values strictly positive.
double geometric_mean(std::span<const double> values);

/// Least-squares line fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< Coefficient of determination.
};

/// Fit a line through (x, y) pairs; requires sizes to match and >= 2 points.
LinearFit fit_line(std::span<const double> x, std::span<const double> y);

/// Pearson correlation coefficient; requires matching sizes >= 2.
double correlation(std::span<const double> x, std::span<const double> y);

/// Relative error |a-b| / max(|a|,|b|,eps); symmetric and safe near zero.
double relative_error(double a, double b, double eps = 1e-300);

}  // namespace starsim::support
