#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace starsim::support {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double accum = 0.0;
  for (double v : values) accum += (v - m) * (v - m);
  return std::sqrt(accum / static_cast<double>(values.size() - 1));
}

double median(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

namespace {

/// Type-7 quantile of an already sorted sample.
double sorted_quantile(std::span<const double> sorted, double q) {
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double rank = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= n) return sorted[n - 1];
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

double quantile(std::span<const double> values, double q) {
  STARSIM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile requires q in [0, 1]");
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_quantile(sorted, q);
}

TailQuantiles tail_quantiles(std::span<const double> values) {
  TailQuantiles t;
  t.count = values.size();
  if (values.empty()) return t;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  t.p50 = sorted_quantile(sorted, 0.50);
  t.p95 = sorted_quantile(sorted, 0.95);
  t.p99 = sorted_quantile(sorted, 0.99);
  return t;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  s.min = *lo;
  s.max = *hi;
  s.mean = mean(values);
  s.median = median(values);
  s.stddev = stddev(values);
  return s;
}

double geometric_mean(std::span<const double> values) {
  STARSIM_REQUIRE(!values.empty(), "geometric_mean of empty sample");
  double log_sum = 0.0;
  for (double v : values) {
    STARSIM_REQUIRE(v > 0.0, "geometric_mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  STARSIM_REQUIRE(x.size() == y.size(), "fit_line size mismatch");
  STARSIM_REQUIRE(x.size() >= 2, "fit_line needs at least two points");
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  STARSIM_REQUIRE(sxx > 0.0, "fit_line requires non-constant x");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

double correlation(std::span<const double> x, std::span<const double> y) {
  STARSIM_REQUIRE(x.size() == y.size(), "correlation size mismatch");
  STARSIM_REQUIRE(x.size() >= 2, "correlation needs at least two points");
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  STARSIM_REQUIRE(sxx > 0.0 && syy > 0.0,
                  "correlation requires non-constant samples");
  return sxy / std::sqrt(sxx * syy);
}

double relative_error(double a, double b, double eps) {
  const double scale = std::max({std::abs(a), std::abs(b), eps});
  return std::abs(a - b) / scale;
}

}  // namespace starsim::support
