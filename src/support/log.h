// Leveled stderr logging.
//
// The simulators themselves never log on hot paths; logging exists for the
// harnesses and examples (progress of long sweeps, configuration echo).
// Level is process-global and can be preset via the STARSIM_LOG environment
// variable (trace|debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string>

namespace starsim::support {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Current process-global level (initialized from STARSIM_LOG, default info).
LogLevel log_level();

/// Override the process-global level.
void set_log_level(LogLevel level);

/// Parse a level name; unknown names yield kInfo.
LogLevel parse_log_level(const std::string& name);

/// Emit one line at `level` (no-op when below the global level).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LineLogger {
 public:
  explicit LineLogger(LogLevel level) : level_(level) {}
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;
  ~LineLogger() { log_message(level_, stream_.str()); }
  template <typename T>
  LineLogger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace starsim::support

#define STARSIM_LOG(level) \
  ::starsim::support::detail::LineLogger(::starsim::support::LogLevel::level)
#define STARSIM_INFO STARSIM_LOG(kInfo)
#define STARSIM_WARN STARSIM_LOG(kWarn)
#define STARSIM_DEBUG STARSIM_LOG(kDebug)
