#include "support/rng.h"

#include <cmath>

#include "support/error.h"

namespace starsim::support {

Pcg32::Pcg32(std::uint64_t seed_value, std::uint64_t stream) {
  seed(seed_value, stream);
}

void Pcg32::seed(std::uint64_t seed_value, std::uint64_t stream) {
  state_ = 0;
  inc_ = (stream << 1u) | 1u;
  (void)(*this)();
  state_ += seed_value;
  (void)(*this)();
  has_spare_ = false;
}

Pcg32::result_type Pcg32::operator()() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Pcg32::uniform() {
  // 32 random bits scaled by 2^-32; strictly inside [0, 1).
  return static_cast<double>((*this)()) * 0x1.0p-32;
}

double Pcg32::uniform(double lo, double hi) {
  STARSIM_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint32_t Pcg32::bounded(std::uint32_t n) {
  STARSIM_REQUIRE(n > 0, "bounded(n) requires n > 0");
  // Lemire's multiply-shift rejection method: unbiased and division-free in
  // the common case.
  std::uint64_t m = static_cast<std::uint64_t>((*this)()) * n;
  auto lo = static_cast<std::uint32_t>(m);
  if (lo < n) {
    const std::uint32_t threshold = (0u - n) % n;
    while (lo < threshold) {
      m = static_cast<std::uint64_t>((*this)()) * n;
      lo = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32u);
}

double Pcg32::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Pcg32::normal(double mean, double sigma) {
  STARSIM_REQUIRE(sigma >= 0.0, "normal sigma must be non-negative");
  return mean + sigma * normal();
}

std::uint64_t Pcg32::poisson(double lambda) {
  STARSIM_REQUIRE(lambda >= 0.0, "poisson lambda must be non-negative");
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-lambda.
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction; clamp at zero.
  const double sample = normal(lambda, std::sqrt(lambda)) + 0.5;
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample);
}

}  // namespace starsim::support
