// Wall-clock timing for the measured (CPU) side of the experiments.
//
// The GPU side of every benchmark reports *modeled* time (see
// gpusim/perf_model.h); only the sequential simulator and the host-side
// stages are measured with these timers. Keeping the two kinds of time in
// separate types at the call sites would be overkill — the experiment
// harnesses label provenance instead — but all wall measurements go through
// WallTimer so the clock source is uniform (steady_clock).
#pragma once

#include <chrono>

namespace starsim::support {

/// Monotonic wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  /// Public so tests can assert the clock source stays monotonic: a switch
  /// to high_resolution_clock (which may alias the adjustable wall clock)
  /// would let NTP steps corrupt every measured breakdown.
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "WallTimer must be backed by a monotonic clock");

  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double on destruction; used to attribute
/// wall time to a breakdown slot without littering call sites with timers.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink_seconds) : sink_(sink_seconds) {}
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }

 private:
  double& sink_;
  WallTimer timer_;
};

}  // namespace starsim::support
