// Error-handling primitives shared by every starsim module.
//
// The library reports recoverable contract violations with exceptions derived
// from `support::Error` so callers can distinguish our failures from generic
// std errors. `STARSIM_REQUIRE` is the standard precondition guard: it is
// always on (not assert-style), because the simulators are driven by external
// configuration and silent out-of-range launches would corrupt results.
#pragma once

#include <stdexcept>
#include <string>

namespace starsim::support {

/// Base class for all starsim exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Raised when a simulated device resource (memory, texture units, thread
/// limits) is exhausted or misused.
class DeviceError : public Error {
 public:
  explicit DeviceError(const std::string& what) : Error(what) {}
};

/// Raised on I/O failures (image files, CSV output).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

}  // namespace starsim::support

/// Precondition guard: throws PreconditionError with location info when the
/// condition does not hold. Always enabled.
#define STARSIM_REQUIRE(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      throw ::starsim::support::PreconditionError(                          \
          std::string(__FILE__) + ":" + std::to_string(__LINE__) + ": " +   \
          (msg) + " (violated: " #cond ")");                                \
    }                                                                       \
  } while (false)
