// Error-handling primitives shared by every starsim module.
//
// The library reports recoverable contract violations with exceptions derived
// from `support::Error` so callers can distinguish our failures from generic
// std errors. `STARSIM_REQUIRE` is the standard precondition guard: it is
// always on (not assert-style), because the simulators are driven by external
// configuration and silent out-of-range launches would corrupt results.
//
// Device-side failures carry a `retryable()` flag consumed by the resilience
// layer (starsim::ResilientExecutor): transient faults (PCIe transfer errors,
// kernel watchdog timeouts, injected allocator failures) are worth retrying
// on the same device; persistent ones (a lost device, a real capacity OOM)
// are not and trigger graceful degradation instead. See docs/resilience.md.
#pragma once

#include <stdexcept>
#include <string>

namespace starsim::support {

/// Base class for all starsim exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, bool retryable = false)
      : std::runtime_error(what), retryable_(retryable) {}

  /// True when the operation may succeed if simply re-issued (transient
  /// fault); false for contract violations and persistent resource failures.
  [[nodiscard]] bool retryable() const { return retryable_; }

 private:
  bool retryable_ = false;
};

/// Raised when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Raised when a simulated device resource (memory, texture units, thread
/// limits) is exhausted or misused.
class DeviceError : public Error {
 public:
  explicit DeviceError(const std::string& what, bool retryable = false)
      : Error(what, retryable) {}
};

/// Raised when a host<->device transfer fails or its payload arrives
/// corrupted (modeled PCIe error). Transient: the same copy can be
/// re-issued, so retryable by default.
class TransferError : public DeviceError {
 public:
  explicit TransferError(const std::string& what, bool retryable = true)
      : DeviceError(what, retryable) {}
};

/// Raised when a kernel launch exceeds the watchdog budget (hung kernel).
/// Retryable by default: a timeout caused by transient contention may pass
/// on re-launch; a deterministic budget overrun will exhaust its retries and
/// degrade instead.
class KernelTimeoutError : public DeviceError {
 public:
  explicit KernelTimeoutError(const std::string& what, bool retryable = true)
      : DeviceError(what, retryable) {}
};

/// Raised when the device has dropped off the bus entirely. Never
/// retryable on the same device — callers must quarantine it and fail over.
class DeviceLostError : public DeviceError {
 public:
  explicit DeviceLostError(const std::string& what)
      : DeviceError(what, /*retryable=*/false) {}
};

/// Raised when the gpusim sanitizer (or its always-on host-side memory
/// checks: double free, unknown handle, oversized copies) detects a real
/// program defect. Never retryable — unlike an injected transient fault,
/// re-issuing a defective operation reproduces the defect, so the
/// resilience layer must surface it instead of burning retries.
class SanitizerError : public DeviceError {
 public:
  explicit SanitizerError(const std::string& what)
      : DeviceError(what, /*retryable=*/false) {}
};

/// Raised on I/O failures (image files, CSV output).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Raised by the serving layer when a request's deadline passed before a
/// frame could be delivered — at admission, at batch formation (the request
/// is never rendered), or after a render that finished too late. Never
/// retryable: re-issuing the identical request cannot un-expire it; the
/// client must submit a fresh request with a fresh deadline.
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : Error(what, /*retryable=*/false) {}
};

/// Raised into a queued request's future when overload shedding displaced
/// it in favour of higher-priority work. Retryable: the same request may
/// well be admitted once the burst passes.
class OverloadShedError : public Error {
 public:
  explicit OverloadShedError(const std::string& what)
      : Error(what, /*retryable=*/true) {}
};

/// Raised by the fleet layer when a request targets a shard that has been
/// killed (or when every replica of a scene is down). Retryable: another
/// replica of the same scene may serve it — the router's failover path
/// consumes exactly this signal.
class ShardDownError : public Error {
 public:
  explicit ShardDownError(const std::string& what)
      : Error(what, /*retryable=*/true) {}
};

/// Raised when a fleet wire frame cannot be decoded (truncation, bad magic,
/// CRC mismatch, unknown version or message kind). Never retryable:
/// re-parsing the same bytes reproduces the defect; the sender's encoder
/// (or the transport's integrity story) is the bug.
class WireFormatError : public Error {
 public:
  explicit WireFormatError(const std::string& what)
      : Error(what, /*retryable=*/false) {}
};

/// Raised when a fleet transport read or write missed its deadline — a hung
/// shard process, a wedged socket, a connect that never completed. The
/// transport closes the connection; the router counts the timeout and fails
/// over. Retryable: another replica (or the respawned process) can serve
/// the same request.
class TransportTimeoutError : public Error {
 public:
  explicit TransportTimeoutError(const std::string& what)
      : Error(what, /*retryable=*/true) {}
};

/// Raised when a fleet connection handshake fails — protocol version skew,
/// a shard answering for the wrong index (misrouted endpoint), or an auth
/// token mismatch. Never retryable on the same endpoint: redialing a shard
/// that speaks the wrong protocol or rejects our token reproduces the
/// failure; the deployment (or the routing table) is the bug.
class HandshakeError : public Error {
 public:
  explicit HandshakeError(const std::string& what)
      : Error(what, /*retryable=*/false) {}
};

}  // namespace starsim::support

/// Precondition guard: throws PreconditionError with location info when the
/// condition does not hold. Always enabled.
#define STARSIM_REQUIRE(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      throw ::starsim::support::PreconditionError(                          \
          std::string(__FILE__) + ":" + std::to_string(__LINE__) + ": " +   \
          (msg) + " (violated: " #cond ")");                                \
    }                                                                       \
  } while (false)

/// Throw any starsim error type with a file:line-bearing message, matching
/// the STARSIM_REQUIRE message format so every failure is locatable.
#define STARSIM_THROW(ErrorType, msg)                                       \
  throw ErrorType(std::string(__FILE__) + ":" + std::to_string(__LINE__) +  \
                  ": " + (msg))
