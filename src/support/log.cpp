#include "support/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace starsim::support {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::once_flag g_env_once;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void init_from_env() {
  if (const char* env = std::getenv("STARSIM_LOG")) {
    g_level.store(parse_log_level(env));
  }
}

}  // namespace

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return g_level.load();
}

void set_log_level(LogLevel level) {
  std::call_once(g_env_once, init_from_env);
  g_level.store(level);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level() || level == LogLevel::kOff) return;
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace starsim::support
