// Console table rendering for the benchmark harnesses.
//
// Every bench binary prints the same rows/series the paper's table or figure
// reports; ConsoleTable keeps that output aligned and diff-friendly. Values
// are stored as strings so callers control numeric formatting (see units.h).
#pragma once

#include <string>
#include <vector>

namespace starsim::support {

/// Column-aligned plain-text table with a header row and a rule under it.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with two-space column gutters; numeric-looking cells are
  /// right-aligned, text cells left-aligned.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace starsim::support
