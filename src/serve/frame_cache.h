// Thread-safe LRU cache of rendered frames keyed by request fingerprint.
//
// Large-scale simulation traffic repeats itself — star sensor test benches
// replay attitude sequences, load generators cycle scene sets — and a
// repeat render of a bit-identical request is pure waste. Frames are
// megabytes, so hits hand out shared ownership of the stored result rather
// than copies, and capacity is counted in frames (the natural budget unit:
// one 1024^2 float frame is 4 MiB).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "serve/request.h"

namespace starsim::serve {

/// A completed render, shared between the cache and every response it backs.
struct CachedFrame {
  std::shared_ptr<const SimulationResult> result;
  SimulatorKind simulator = SimulatorKind::kParallel;
};

class FrameCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;

    [[nodiscard]] double hit_rate() const {
      const std::uint64_t lookups = hits + misses;
      return lookups > 0
                 ? static_cast<double>(hits) / static_cast<double>(lookups)
                 : 0.0;
    }
  };

  /// Capacity in frames; 0 disables the cache (lookups always miss and are
  /// not counted, insertions are dropped).
  explicit FrameCache(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }

  /// Hit promotes the entry to most-recently-used.
  [[nodiscard]] std::optional<CachedFrame> lookup(std::uint64_t key);

  /// Insert or refresh; evicts the least-recently-used entry when full.
  void insert(std::uint64_t key, CachedFrame frame);

  /// Drop one entry; true when it existed.
  bool invalidate(std::uint64_t key);

  /// Drop everything (counters survive; size goes to zero).
  void clear();

  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    CachedFrame frame;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  mutable std::mutex mutex_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::size_t capacity_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace starsim::serve
