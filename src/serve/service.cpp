#include "serve/service.h"

#include <chrono>
#include <exception>
#include <string>
#include <utility>

#include "serve/fingerprint.h"
#include "support/error.h"

namespace starsim::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

double ServiceStats::mean_batch_size() const {
  std::uint64_t total_batches = 0;
  std::uint64_t total_requests = 0;
  for (std::size_t size = 0; size < batch_size_histogram.size(); ++size) {
    total_batches += batch_size_histogram[size];
    total_requests += batch_size_histogram[size] * size;
  }
  return total_batches > 0 ? static_cast<double>(total_requests) /
                                 static_cast<double>(total_batches)
                           : 0.0;
}

FrameService::FrameService(FrameServiceOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity),
      cache_(options_.cache_capacity),
      batcher_(options_.max_batch_size) {
  STARSIM_REQUIRE(options_.workers >= 0, "worker count must be non-negative");
  pool_ = std::make_unique<WorkerPool>(
      options_.workers, options_.worker,
      [this] { return batcher_.next_batch(queue_); },
      [this](Batch&& batch, Worker& worker) {
        execute_batch(std::move(batch), worker);
      });
}

FrameService::~FrameService() { stop(); }

QueuedRequest FrameService::admit(RenderRequest&& request) {
  request.scene.validate();
  if (request.stars.empty() && request.attitude.has_value()) {
    STARSIM_REQUIRE(options_.catalog.has_value(),
                    "attitude-driven request needs a service catalog");
    request.stars = project_to_image(options_.catalog->stars(),
                                     *request.attitude, options_.camera);
  }
  SimulatorKind kind = SimulatorKind::kSequential;
  if (request.simulator.has_value()) {
    kind = *request.simulator;
  } else if (!request.stars.empty()) {
    // The selector's analytic predictions require at least one star; an
    // empty field renders a blank frame identically fast everywhere.
    kind = options_.selector.choose(request.scene, request.stars.size());
  }
  if (kind == SimulatorKind::kMultiGpu) {
    STARSIM_THROW(support::PreconditionError,
                  "multi-gpu simulation owns its own devices and cannot be "
                  "served by single-device workers");
  }
  QueuedRequest queued;
  queued.simulator = kind;
  queued.scene_key = fingerprint_scene(request.scene);
  queued.key = fingerprint_request(request.scene, request.stars, kind);
  queued.request = std::move(request);
  queued.submitted = std::chrono::steady_clock::now();
  return queued;
}

std::optional<std::future<RenderResponse>> FrameService::serve_from_cache(
    QueuedRequest& queued) {
  if (!cache_.enabled()) return std::nullopt;
  std::optional<CachedFrame> hit = cache_.lookup(queued.key);
  if (!hit.has_value()) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    cache_misses_ += 1;
    return std::nullopt;
  }
  RenderResponse response;
  response.result = std::move(hit->result);
  response.simulator = hit->simulator;
  response.fingerprint = queued.key;
  response.from_cache = true;
  response.batch_size = 0;
  response.latency.total_s = seconds_between(
      queued.submitted, std::chrono::steady_clock::now());
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    submitted_ += 1;
    cache_hits_ += 1;
    completed_ += 1;
    latency_samples_.push_back(response.latency.total_s);
  }
  queued.promise.set_value(std::move(response));
  return queued.promise.get_future();
}

std::future<RenderResponse> FrameService::submit(RenderRequest request) {
  QueuedRequest queued = admit(std::move(request));
  if (auto hit = serve_from_cache(queued)) return std::move(*hit);
  std::future<RenderResponse> future = queued.promise.get_future();
  if (!queue_.push(std::move(queued))) {
    STARSIM_THROW(support::Error, "FrameService is stopped");
  }
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  submitted_ += 1;
  return future;
}

std::optional<std::future<RenderResponse>> FrameService::try_submit(
    RenderRequest request) {
  QueuedRequest queued = admit(std::move(request));
  if (auto hit = serve_from_cache(queued)) return std::move(*hit);
  std::future<RenderResponse> future = queued.promise.get_future();
  if (!queue_.try_push(queued)) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    rejected_ += 1;
    return std::nullopt;
  }
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  submitted_ += 1;
  return future;
}

RenderResponse FrameService::render(RenderRequest request) {
  return submit(std::move(request)).get();
}

void FrameService::execute_batch(Batch&& batch, Worker& worker) {
  const auto exec_start = std::chrono::steady_clock::now();
  const std::size_t count = batch.size();
  std::vector<StarField> fields;
  fields.reserve(count);
  for (QueuedRequest& queued : batch.requests) {
    fields.push_back(std::move(queued.request.stars));
  }

  std::vector<SimulationResult> results;
  try {
    results = worker.render(batch.scene(), batch.simulator, fields);
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    // Account before delivering: a client that wakes on its future must
    // already see itself in the stats.
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      failed_ += count;
    }
    for (QueuedRequest& queued : batch.requests) {
      queued.promise.set_exception(error);
    }
    return;
  }

  const auto finish = std::chrono::steady_clock::now();
  std::vector<RenderResponse> responses;
  responses.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const QueuedRequest& queued = batch.requests[i];
    RenderResponse response;
    response.simulator = batch.simulator;
    response.fingerprint = queued.key;
    response.batch_size = count;
    response.latency.queue_wait_s =
        seconds_between(queued.submitted, batch.formed);
    response.latency.batch_wait_s = seconds_between(batch.formed, exec_start);
    response.latency.render_wall_s = results[i].timing.wall_s;
    response.latency.kernel_s = results[i].timing.kernel_s;
    response.latency.non_kernel_s = results[i].timing.non_kernel_s();
    response.latency.total_s = seconds_between(queued.submitted, finish);
    response.result =
        std::make_shared<const SimulationResult>(std::move(results[i]));
    responses.push_back(std::move(response));
  }

  // Account before delivering (same reason as the failure path).
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    completed_ += count;
    batches_ += 1;
    if (batch_size_histogram_.size() <= count) {
      batch_size_histogram_.resize(count + 1, 0);
    }
    batch_size_histogram_[count] += 1;
    for (const RenderResponse& response : responses) {
      latency_samples_.push_back(response.latency.total_s);
    }
  }

  for (std::size_t i = 0; i < count; ++i) {
    cache_.insert(batch.requests[i].key,
                  CachedFrame{responses[i].result, batch.simulator});
    batch.requests[i].promise.set_value(std::move(responses[i]));
  }
}

void FrameService::stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Close admission; workers drain every already-admitted request (pop_run
  // keeps returning queued items after close), then exit on empty.
  queue_.close();
  pool_->join();
  // With zero workers nothing drained the queue — fail those futures rather
  // than leaving clients blocked forever.
  std::vector<QueuedRequest> orphaned;
  while (std::optional<QueuedRequest> leftover = queue_.pop()) {
    orphaned.push_back(std::move(*leftover));
  }
  if (!orphaned.empty()) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      failed_ += orphaned.size();
    }
    for (QueuedRequest& queued : orphaned) {
      queued.promise.set_exception(
          std::make_exception_ptr(support::Error(
              "FrameService stopped before the request was executed")));
    }
  }
}

bool FrameService::stopped() const {
  const std::lock_guard<std::mutex> lock(stop_mutex_);
  return stopped_;
}

void FrameService::invalidate_cache() { cache_.clear(); }

bool FrameService::invalidate_cached_frame(std::uint64_t fingerprint) {
  return cache_.invalidate(fingerprint);
}

ServiceStats FrameService::stats() const {
  ServiceStats s;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.failed = failed_;
    s.cache_hits = cache_hits_;
    s.cache_misses = cache_misses_;
    s.batches = batches_;
    s.batch_size_histogram = batch_size_histogram_;
    s.latency = support::tail_quantiles(latency_samples_);
    double sum = 0.0;
    for (const double sample : latency_samples_) sum += sample;
    s.mean_latency_s = latency_samples_.empty()
                           ? 0.0
                           : sum / static_cast<double>(latency_samples_.size());
  }
  s.elapsed_s = lifetime_.seconds();
  s.throughput_rps = s.elapsed_s > 0.0
                         ? static_cast<double>(s.completed) / s.elapsed_s
                         : 0.0;
  s.cache = cache_.stats();
  return s;
}

}  // namespace starsim::serve
