#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <utility>

#include "serve/fingerprint.h"
#include "support/error.h"

namespace starsim::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::size_t band_of(RequestPriority priority) {
  return static_cast<std::size_t>(priority);
}

}  // namespace

double ServiceStats::mean_batch_size() const {
  std::uint64_t total_batches = 0;
  std::uint64_t total_requests = 0;
  for (std::size_t size = 0; size < batch_size_histogram.size(); ++size) {
    total_batches += batch_size_histogram[size];
    total_requests += batch_size_histogram[size] * size;
  }
  return total_batches > 0 ? static_cast<double>(total_requests) /
                                 static_cast<double>(total_batches)
                           : 0.0;
}

FrameService::FrameService(FrameServiceOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity, kPriorityClasses),
      cache_(options_.cache_capacity),
      batcher_(options_.max_batch_size) {
  STARSIM_REQUIRE(options_.workers >= 0, "worker count must be non-negative");
  pool_ = std::make_unique<WorkerPool>(
      options_.workers, options_.worker,
      [this] { return batcher_.next_batch(queue_); },
      [this](Batch&& batch, Worker& worker) {
        return execute_batch(std::move(batch), worker);
      });
}

FrameService::~FrameService() { stop(); }

QueuedRequest FrameService::admit(RenderRequest&& request) {
  request.scene.validate();
  if (request.stars.empty() && request.attitude.has_value()) {
    STARSIM_REQUIRE(options_.catalog.has_value(),
                    "attitude-driven request needs a service catalog");
    request.stars = project_to_image(options_.catalog->stars(),
                                     *request.attitude, options_.camera);
  }
  SimulatorKind kind = SimulatorKind::kSequential;
  if (request.simulator.has_value()) {
    kind = *request.simulator;
  } else if (!request.stars.empty()) {
    // The selector's analytic predictions require at least one star; an
    // empty field renders a blank frame identically fast everywhere.
    kind = options_.selector.choose(request.scene, request.stars.size());
  }
  if (kind == SimulatorKind::kMultiGpu) {
    STARSIM_THROW(support::PreconditionError,
                  "multi-gpu simulation owns its own devices and cannot be "
                  "served by single-device workers");
  }
  QueuedRequest queued;
  queued.simulator = kind;
  queued.scene_key = fingerprint_scene(request.scene);
  queued.key = fingerprint_request(request.scene, request.stars, kind);
  queued.priority = request.priority;
  queued.submitted = std::chrono::steady_clock::now();
  if (request.deadline_s.has_value()) {
    queued.deadline =
        queued.submitted + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   std::max(*request.deadline_s, 0.0)));
  }
  queued.request = std::move(request);
  return queued;
}

void FrameService::expire_request(QueuedRequest& queued,
                                  std::uint64_t& counter, const char* stage) {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    counter += 1;
    failed_ += 1;
  }
  queued.promise.set_exception(std::make_exception_ptr(
      support::DeadlineExceededError(
          "request deadline expired " + std::string(stage) +
          " (budget " +
          std::to_string(queued.request.deadline_s.value_or(0.0)) + " s)")));
}

std::optional<std::future<RenderResponse>> FrameService::serve_from_cache(
    QueuedRequest& queued) {
  if (!cache_.enabled()) return std::nullopt;
  // A sanitized request wants the instrumented render itself, not a frame
  // that happens to match bit-for-bit; bypass the cache without touching
  // its hit/miss counters.
  if (queued.request.sanitize) return std::nullopt;
  std::optional<CachedFrame> hit = cache_.lookup(queued.key);
  if (!hit.has_value()) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    cache_misses_ += 1;
    return std::nullopt;
  }
  RenderResponse response;
  response.result = std::move(hit->result);
  response.simulator = hit->simulator;
  response.fingerprint = queued.key;
  response.from_cache = true;
  response.batch_size = 0;
  response.latency.total_s = seconds_between(
      queued.submitted, std::chrono::steady_clock::now());
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    submitted_ += 1;
    cache_hits_ += 1;
    completed_ += 1;
    latency_samples_.push_back(response.latency.total_s);
  }
  queued.promise.set_value(std::move(response));
  return queued.promise.get_future();
}

std::future<RenderResponse> FrameService::submit(RenderRequest request) {
  QueuedRequest queued = admit(std::move(request));
  if (queued.expired(std::chrono::steady_clock::now())) {
    // A zero-or-negative budget cannot be met even by a cache hit: the
    // request is admitted (counted) and failed before it costs anything.
    std::future<RenderResponse> future = queued.promise.get_future();
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      submitted_ += 1;
    }
    expire_request(queued, expired_admission_, "at admission");
    return future;
  }
  if (auto hit = serve_from_cache(queued)) return std::move(*hit);
  std::future<RenderResponse> future = queued.promise.get_future();
  const std::size_t band = band_of(queued.priority);
  if (!queue_.push(std::move(queued), band)) {
    STARSIM_THROW(support::Error, "FrameService is stopped");
  }
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  submitted_ += 1;
  return future;
}

std::optional<std::future<RenderResponse>> FrameService::try_submit(
    RenderRequest request) {
  QueuedRequest queued = admit(std::move(request));
  if (queued.expired(std::chrono::steady_clock::now())) {
    std::future<RenderResponse> future = queued.promise.get_future();
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      submitted_ += 1;
    }
    expire_request(queued, expired_admission_, "at admission");
    return future;
  }
  if (auto hit = serve_from_cache(queued)) return std::move(*hit);
  std::future<RenderResponse> future = queued.promise.get_future();
  const RequestPriority priority = queued.priority;
  const std::size_t band = band_of(priority);
  std::optional<QueuedRequest> displaced;
  const auto outcome = queue_.try_push_shedding(queued, band, displaced);
  if (outcome == BoundedQueue<QueuedRequest>::PushOutcome::kRejected) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    rejected_ += 1;
    return std::nullopt;
  }
  if (displaced.has_value()) {
    // Overload shedding: the youngest lowest-priority queued request made
    // room for this higher-priority one. Account before delivering.
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      shed_ += 1;
      failed_ += 1;
    }
    displaced->promise.set_exception(std::make_exception_ptr(
        support::OverloadShedError(
            "request shed under overload: displaced by a " +
            std::string(to_string(priority)) + "-priority admission")));
  }
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  submitted_ += 1;
  return future;
}

RenderResponse FrameService::render(RenderRequest request) {
  return submit(std::move(request)).get();
}

bool FrameService::execute_batch(Batch&& batch, Worker& worker) {
  const auto exec_start = std::chrono::steady_clock::now();

  // Deadline check at batch formation: an expired request is dropped here,
  // before any device work, so it is never rendered.
  std::vector<QueuedRequest> live;
  live.reserve(batch.requests.size());
  for (QueuedRequest& queued : batch.requests) {
    if (queued.expired(exec_start)) {
      expire_request(queued, expired_batch_, "in queue (skipped at batch "
                                             "formation, never rendered)");
    } else {
      live.push_back(std::move(queued));
    }
  }
  if (live.empty()) return true;  // nothing to render is not a device failure

  const std::size_t count = live.size();
  std::vector<StarField> fields;
  fields.reserve(count);
  for (QueuedRequest& queued : live) {
    fields.push_back(std::move(queued.request.stars));
  }

  // batch.scene() would read a moved-from request after the expiry
  // partition above; the live requests still own their scenes.
  const SceneConfig& scene = live.front().request.scene;
  // Batcher::compatible keeps sanitize uniform across a batch, so the
  // first live request speaks for all of them.
  const bool sanitized = live.front().request.sanitize;
  Worker::RenderOutcome outcome;
  try {
    outcome = worker.render(scene, batch.simulator, fields, sanitized);
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    // Account before delivering: a client that wakes on its future must
    // already see itself in the stats.
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      failed_ += count;
    }
    for (QueuedRequest& queued : live) {
      queued.promise.set_exception(error);
    }
    return false;
  }

  const auto finish = std::chrono::steady_clock::now();
  // One report per batch, shared by every response it rendered (the batch
  // ran as one instrumented device scope).
  std::shared_ptr<const gpusim::SanitizerReport> sanitizer_report;
  if (outcome.sanitizer.mode != gpusim::SanitizerMode::kOff) {
    sanitizer_report = std::make_shared<const gpusim::SanitizerReport>(
        std::move(outcome.sanitizer));
  }
  std::vector<RenderResponse> responses;
  responses.reserve(count);
  std::vector<bool> late(count, false);
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const QueuedRequest& queued = live[i];
    late[i] = queued.expired(finish);
    if (late[i]) {
      responses.emplace_back();  // placeholder; the future gets an error
      continue;
    }
    RenderResponse response;
    response.simulator = outcome.executed[i];
    response.degraded = outcome.executed[i] != batch.simulator;
    response.fingerprint = queued.key;
    response.batch_size = count;
    response.latency.queue_wait_s =
        seconds_between(queued.submitted, batch.formed);
    response.latency.batch_wait_s = seconds_between(batch.formed, exec_start);
    response.latency.render_wall_s = outcome.results[i].timing.wall_s;
    response.latency.kernel_s = outcome.results[i].timing.kernel_s;
    response.latency.non_kernel_s = outcome.results[i].timing.non_kernel_s();
    response.latency.total_s = seconds_between(queued.submitted, finish);
    response.sanitizer = sanitizer_report;
    response.result =
        std::make_shared<const SimulationResult>(std::move(outcome.results[i]));
    responses.push_back(std::move(response));
    delivered += 1;
  }

  // Account before delivering (same reason as the failure path).
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    completed_ += delivered;
    batches_ += 1;
    if (batch_size_histogram_.size() <= count) {
      batch_size_histogram_.resize(count + 1, 0);
    }
    batch_size_histogram_[count] += 1;
    if (sanitized) sanitized_requests_ += count;
    if (sanitizer_report != nullptr) {
      sanitizer_findings_ += sanitizer_report->total_findings;
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (!late[i]) latency_samples_.push_back(responses[i].latency.total_s);
    }
  }

  for (std::size_t i = 0; i < count; ++i) {
    if (late[i]) {
      // The frame exists but missed its deadline; the render is honest
      // waste the stats make visible.
      expire_request(live[i], expired_post_render_,
                     "post-render (frame finished too late)");
      continue;
    }
    // A degraded frame is not bit-identical to the requested simulator's
    // output; caching it under the request fingerprint would poison later
    // healthy hits. Sanitized frames stay out too: a defective kernel's
    // suppressed accesses can alter pixels, and the cache must only ever
    // hold frames the production path would have produced.
    if (!responses[i].degraded && !sanitized) {
      cache_.insert(live[i].key,
                    CachedFrame{responses[i].result, responses[i].simulator});
    }
    live[i].promise.set_value(std::move(responses[i]));
  }
  return true;
}

void FrameService::stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Close admission; workers drain every already-admitted request (pop_run
  // keeps returning queued items after close), then exit on empty. close()
  // also wakes any submitter blocked on a full queue — its push returns
  // false and submit() throws instead of deadlocking against stop().
  queue_.close();
  pool_->join();
  // If workers retired (or the pool was built with zero workers) nothing
  // drained the queue — fail those futures rather than leaving clients
  // blocked forever.
  std::vector<QueuedRequest> orphaned;
  while (std::optional<QueuedRequest> leftover = queue_.pop()) {
    orphaned.push_back(std::move(*leftover));
  }
  if (!orphaned.empty()) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      failed_ += orphaned.size();
    }
    for (QueuedRequest& queued : orphaned) {
      queued.promise.set_exception(
          std::make_exception_ptr(support::Error(
              "FrameService stopped before the request was executed")));
    }
  }
}

bool FrameService::stopped() const {
  const std::lock_guard<std::mutex> lock(stop_mutex_);
  return stopped_;
}

void FrameService::invalidate_cache() { cache_.clear(); }

bool FrameService::invalidate_cached_frame(std::uint64_t fingerprint) {
  return cache_.invalidate(fingerprint);
}

PoolHealth FrameService::health() const { return pool_->health(); }

ServiceStats FrameService::stats() const {
  ServiceStats s;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.failed = failed_;
    s.shed = shed_;
    s.expired_admission = expired_admission_;
    s.expired_batch = expired_batch_;
    s.expired_post_render = expired_post_render_;
    s.cache_hits = cache_hits_;
    s.cache_misses = cache_misses_;
    s.batches = batches_;
    s.sanitized_requests = sanitized_requests_;
    s.sanitizer_findings = sanitizer_findings_;
    s.batch_size_histogram = batch_size_histogram_;
    s.latency = support::tail_quantiles(latency_samples_);
    double sum = 0.0;
    for (const double sample : latency_samples_) sum += sample;
    s.mean_latency_s = latency_samples_.empty()
                           ? 0.0
                           : sum / static_cast<double>(latency_samples_.size());
  }
  s.sink_exceptions = pool_->sink_exceptions();
  s.elapsed_s = lifetime_.seconds();
  s.throughput_rps = s.elapsed_s > 0.0
                         ? static_cast<double>(s.completed) / s.elapsed_s
                         : 0.0;
  s.cache = cache_.stats();
  return s;
}

}  // namespace starsim::serve
