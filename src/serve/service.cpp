#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <utility>

#include "serve/fingerprint.h"
#include "support/error.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace starsim::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::size_t band_of(RequestPriority priority) {
  return static_cast<std::size_t>(priority);
}

/// Terminate a request's trace flow (promise delivery, expiry, shed, or
/// orphaning). All phases of one flow share "serve"/"request" so viewers
/// bind the arrow from the submitter's slice to this thread's slice.
void end_request_flow(const QueuedRequest& queued) {
  trace::flow(trace::Phase::kFlowEnd, "serve", "request", queued.trace_flow);
}

}  // namespace

double ServiceStats::mean_batch_size() const {
  std::uint64_t total_batches = 0;
  std::uint64_t total_requests = 0;
  for (std::size_t size = 0; size < batch_size_histogram.size(); ++size) {
    total_batches += batch_size_histogram[size];
    total_requests += batch_size_histogram[size] * size;
  }
  return total_batches > 0 ? static_cast<double>(total_requests) /
                                 static_cast<double>(total_batches)
                           : 0.0;
}

FrameService::FrameService(FrameServiceOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity, kPriorityClasses),
      cache_(options_.cache_capacity),
      batcher_(options_.max_batch_size) {
  STARSIM_REQUIRE(options_.workers >= 0, "worker count must be non-negative");
  if (options_.use_scheduler && !options_.scheduler) {
    // Default scheduler: same modeled device/host (and lookup-table
    // accuracy floor) as the legacy selector, with the dynamic-batching
    // cap as the batch hint the adaptive path's setup amortizes over.
    sched::SchedulerOptions sched_options;
    sched_options.device = options_.selector.device();
    sched_options.host = options_.selector.host();
    sched_options.lut_floor = options_.selector.lut();
    sched_options.batch_hint = std::max<std::size_t>(1, options_.max_batch_size);
    options_.scheduler = std::make_shared<sched::Scheduler>(sched_options);
  }
  if (!options_.use_scheduler) options_.scheduler.reset();
  pool_ = std::make_unique<WorkerPool>(
      options_.workers, options_.worker,
      [this] { return batcher_.next_batch(queue_); },
      [this](Batch&& batch, Worker& worker) {
        return execute_batch(std::move(batch), worker);
      });
}

FrameService::~FrameService() { stop(); }

QueuedRequest FrameService::admit(RenderRequest&& request) {
  request.scene.validate();
  if (request.stars.empty() && request.attitude.has_value()) {
    STARSIM_REQUIRE(options_.catalog.has_value(),
                    "attitude-driven request needs a service catalog");
    request.stars = project_to_image(options_.catalog->stars(),
                                     *request.attitude, options_.camera);
  }
  SimulatorKind kind = SimulatorKind::kSequential;
  if (request.simulator.has_value()) {
    kind = *request.simulator;
    if (kind == SimulatorKind::kMultiGpu) {
      STARSIM_THROW(support::PreconditionError,
                    "multi-gpu simulation owns its own devices and cannot be "
                    "served by single-device workers");
    }
    if (options_.scheduler && !request.stars.empty()) {
      // The pin wins, but routing it through the scheduler records the
      // modeled cost of honoring it against the tuned decision (and keeps
      // the schedule cache warm for unpinned traffic on this workload).
      kind = options_.scheduler->choose(request.scene, request.stars.size(),
                                        kind);
    }
  } else if (!request.stars.empty()) {
    // The predictions require at least one star; an empty field renders a
    // blank frame identically fast everywhere.
    kind = options_.scheduler
               ? options_.scheduler->choose(request.scene,
                                            request.stars.size())
               : options_.selector.choose(request.scene,
                                          request.stars.size());
  }
  QueuedRequest queued;
  queued.simulator = kind;
  queued.scene_key = fingerprint_scene(request.scene);
  queued.key = fingerprint_request(request.scene, request.stars, kind);
  queued.priority = request.priority;
  queued.submitted = std::chrono::steady_clock::now();
  if (request.deadline_s.has_value()) {
    queued.deadline =
        queued.submitted + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   std::max(*request.deadline_s, 0.0)));
  }
  queued.request = std::move(request);
  return queued;
}

void FrameService::expire_request(QueuedRequest& queued,
                                  std::uint64_t& counter, const char* stage) {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    counter += 1;
    failed_ += 1;
  }
  end_request_flow(queued);
  queued.promise.set_exception(std::make_exception_ptr(
      support::DeadlineExceededError(
          "request deadline expired " + std::string(stage) +
          " (budget " +
          std::to_string(queued.request.deadline_s.value_or(0.0)) + " s)")));
}

std::optional<std::future<RenderResponse>> FrameService::serve_from_cache(
    QueuedRequest& queued) {
  if (!cache_.enabled()) return std::nullopt;
  // A sanitized request wants the instrumented render itself, not a frame
  // that happens to match bit-for-bit; bypass the cache without touching
  // its hit/miss counters.
  if (queued.request.sanitize) return std::nullopt;
  std::optional<CachedFrame> hit = cache_.lookup(queued.key);
  if (!hit.has_value()) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    cache_misses_ += 1;
    return std::nullopt;
  }
  if (trace::tracing_on()) [[unlikely]] {
    trace::instant("serve", "cache_hit",
                   {{"fingerprint",
                     static_cast<std::int64_t>(queued.key)}});
  }
  RenderResponse response;
  response.result = std::move(hit->result);
  response.simulator = hit->simulator;
  response.fingerprint = queued.key;
  response.from_cache = true;
  response.batch_size = 0;
  response.latency.total_s = seconds_between(
      queued.submitted, std::chrono::steady_clock::now());
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    submitted_ += 1;
    cache_hits_ += 1;
    completed_ += 1;
    latency_samples_.push_back(response.latency.total_s);
  }
  queued.promise.set_value(std::move(response));
  return queued.promise.get_future();
}

std::future<RenderResponse> FrameService::submit(RenderRequest request) {
  trace::TraceSpan span("serve", "submit");
  QueuedRequest queued = admit(std::move(request));
  if (span.armed()) [[unlikely]] {
    span.arg("priority", to_string(queued.priority))
        .arg("stars", queued.request.stars.size())
        .arg("simulator", to_string(queued.simulator))
        .arg("sanitize", queued.request.sanitize);
  }
  if (queued.expired(std::chrono::steady_clock::now())) {
    // A zero-or-negative budget cannot be met even by a cache hit: the
    // request is admitted (counted) and failed before it costs anything.
    std::future<RenderResponse> future = queued.promise.get_future();
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      submitted_ += 1;
    }
    expire_request(queued, expired_admission_, "at admission");
    return future;
  }
  if (auto hit = serve_from_cache(queued)) return std::move(*hit);
  std::future<RenderResponse> future = queued.promise.get_future();
  const std::size_t band = band_of(queued.priority);
  if (span.armed()) [[unlikely]] {
    queued.trace_flow = trace::TraceRecorder::instance().next_flow_id();
  }
  const std::uint64_t flow_id = queued.trace_flow;
  if (!queue_.push(std::move(queued), band)) {
    STARSIM_THROW(support::Error, "FrameService is stopped");
  }
  trace::flow(trace::Phase::kFlowStart, "serve", "request", flow_id);
  if (trace::tracing_on()) [[unlikely]] {
    trace::counter("serve", "queue_depth",
                   static_cast<double>(queue_.size()));
  }
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  submitted_ += 1;
  return future;
}

std::optional<std::future<RenderResponse>> FrameService::try_submit(
    RenderRequest request) {
  trace::TraceSpan span("serve", "try_submit");
  QueuedRequest queued = admit(std::move(request));
  if (span.armed()) [[unlikely]] {
    span.arg("priority", to_string(queued.priority))
        .arg("stars", queued.request.stars.size())
        .arg("simulator", to_string(queued.simulator))
        .arg("sanitize", queued.request.sanitize);
  }
  if (queued.expired(std::chrono::steady_clock::now())) {
    std::future<RenderResponse> future = queued.promise.get_future();
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      submitted_ += 1;
    }
    expire_request(queued, expired_admission_, "at admission");
    return future;
  }
  if (auto hit = serve_from_cache(queued)) return std::move(*hit);
  std::future<RenderResponse> future = queued.promise.get_future();
  const RequestPriority priority = queued.priority;
  const std::size_t band = band_of(priority);
  if (span.armed()) [[unlikely]] {
    queued.trace_flow = trace::TraceRecorder::instance().next_flow_id();
  }
  const std::uint64_t flow_id = queued.trace_flow;
  std::optional<QueuedRequest> displaced;
  const auto outcome = queue_.try_push_shedding(queued, band, displaced);
  if (outcome == BoundedQueue<QueuedRequest>::PushOutcome::kRejected) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    rejected_ += 1;
    return std::nullopt;
  }
  trace::flow(trace::Phase::kFlowStart, "serve", "request", flow_id);
  if (displaced.has_value()) {
    // Overload shedding: the youngest lowest-priority queued request made
    // room for this higher-priority one. A displaced request whose own
    // deadline already passed while it waited is attributed to both causes
    // (shed + shed_expired) — shedding must not erase the evidence that
    // its budget was blown in the queue. Account before delivering.
    const bool was_expired =
        displaced->expired(std::chrono::steady_clock::now());
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      shed_ += 1;
      shed_by_priority_[band_of(displaced->priority)] += 1;
      if (was_expired) shed_expired_ += 1;
      failed_ += 1;
    }
    if (trace::tracing_on()) [[unlikely]] {
      trace::instant(
          "serve", "shed",
          {{"priority", std::string(to_string(displaced->priority))},
           {"expired", was_expired}});
    }
    end_request_flow(*displaced);
    displaced->promise.set_exception(std::make_exception_ptr(
        support::OverloadShedError(
            "request shed under overload: displaced by a " +
            std::string(to_string(priority)) + "-priority admission")));
  }
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  submitted_ += 1;
  return future;
}

RenderResponse FrameService::render(RenderRequest request) {
  return submit(std::move(request)).get();
}

bool FrameService::execute_batch(Batch&& batch, Worker& worker) {
  trace::TraceSpan span("serve", "render_batch");
  if (span.armed()) [[unlikely]] {
    span.arg("batch_size", batch.requests.size())
        .arg("simulator", to_string(batch.simulator))
        .arg("worker", worker.index())
        .arg("priority", to_string(batch.priority));
  }
  const auto exec_start = std::chrono::steady_clock::now();

  // Deadline check at batch formation: an expired request is dropped here,
  // before any device work, so it is never rendered.
  std::vector<QueuedRequest> live;
  live.reserve(batch.requests.size());
  for (QueuedRequest& queued : batch.requests) {
    if (queued.expired(exec_start)) {
      expire_request(queued, expired_batch_, "in queue (skipped at batch "
                                             "formation, never rendered)");
    } else {
      live.push_back(std::move(queued));
    }
  }
  if (live.empty()) return true;  // nothing to render is not a device failure

  const std::size_t count = live.size();
  std::vector<StarField> fields;
  fields.reserve(count);
  for (QueuedRequest& queued : live) {
    fields.push_back(std::move(queued.request.stars));
  }

  // batch.scene() would read a moved-from request after the expiry
  // partition above; the live requests still own their scenes.
  const SceneConfig& scene = live.front().request.scene;
  // Batcher::compatible keeps sanitize uniform across a batch, so the
  // first live request speaks for all of them.
  const bool sanitized = live.front().request.sanitize;
  Worker::RenderOutcome outcome;
  try {
    outcome = worker.render(scene, batch.simulator, fields, sanitized);
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    // Account before delivering: a client that wakes on its future must
    // already see itself in the stats.
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      failed_ += count;
    }
    for (QueuedRequest& queued : live) {
      end_request_flow(queued);
      queued.promise.set_exception(error);
    }
    return false;
  }

  const auto finish = std::chrono::steady_clock::now();
  // Per-batch render totals for stats()/scrape_metrics(), summed while the
  // results are still intact (they are moved into responses below). Late
  // frames count too: the device did the work whether or not it delivered.
  double batch_kernel_s = 0.0;
  double batch_non_kernel_s = 0.0;
  double batch_wall_s = 0.0;
  std::uint64_t batch_flops = 0;
  std::uint64_t batch_global_bytes = 0;
  std::uint64_t batch_atomic_ops = 0;
  std::uint64_t batch_texture_fetches = 0;
  for (const SimulationResult& rendered : outcome.results) {
    batch_kernel_s += rendered.timing.kernel_s;
    batch_non_kernel_s += rendered.timing.non_kernel_s();
    batch_wall_s += rendered.timing.wall_s;
    batch_flops += rendered.timing.counters.flops;
    batch_global_bytes += rendered.timing.counters.global_bytes();
    batch_atomic_ops += rendered.timing.counters.atomic_ops;
    batch_texture_fetches += rendered.timing.counters.texture_fetches;
  }
  // One report per batch, shared by every response it rendered (the batch
  // ran as one instrumented device scope).
  std::shared_ptr<const gpusim::SanitizerReport> sanitizer_report;
  if (outcome.sanitizer.mode != gpusim::SanitizerMode::kOff) {
    sanitizer_report = std::make_shared<const gpusim::SanitizerReport>(
        std::move(outcome.sanitizer));
  }
  std::vector<RenderResponse> responses;
  responses.reserve(count);
  std::vector<bool> late(count, false);
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const QueuedRequest& queued = live[i];
    late[i] = queued.expired(finish);
    if (late[i]) {
      responses.emplace_back();  // placeholder; the future gets an error
      continue;
    }
    RenderResponse response;
    response.simulator = outcome.executed[i];
    response.degraded = outcome.executed[i] != batch.simulator;
    response.fingerprint = queued.key;
    response.batch_size = count;
    response.latency.queue_wait_s =
        seconds_between(queued.submitted, batch.formed);
    response.latency.batch_wait_s = seconds_between(batch.formed, exec_start);
    response.latency.render_wall_s = outcome.results[i].timing.wall_s;
    response.latency.kernel_s = outcome.results[i].timing.kernel_s;
    response.latency.non_kernel_s = outcome.results[i].timing.non_kernel_s();
    response.latency.total_s = seconds_between(queued.submitted, finish);
    response.sanitizer = sanitizer_report;
    response.result =
        std::make_shared<const SimulationResult>(std::move(outcome.results[i]));
    responses.push_back(std::move(response));
    delivered += 1;
  }

  // Account before delivering (same reason as the failure path).
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    completed_ += delivered;
    batches_ += 1;
    if (batch_size_histogram_.size() <= count) {
      batch_size_histogram_.resize(count + 1, 0);
    }
    batch_size_histogram_[count] += 1;
    if (sanitized) sanitized_requests_ += count;
    if (sanitizer_report != nullptr) {
      sanitizer_findings_ += sanitizer_report->total_findings;
    }
    render_kernel_s_ += batch_kernel_s;
    render_non_kernel_s_ += batch_non_kernel_s;
    render_wall_s_ += batch_wall_s;
    kernel_flops_ += batch_flops;
    kernel_global_bytes_ += batch_global_bytes;
    kernel_atomic_ops_ += batch_atomic_ops;
    kernel_texture_fetches_ += batch_texture_fetches;
    for (std::size_t i = 0; i < count; ++i) {
      if (!late[i]) latency_samples_.push_back(responses[i].latency.total_s);
    }
  }

  for (std::size_t i = 0; i < count; ++i) {
    if (late[i]) {
      // The frame exists but missed its deadline; the render is honest
      // waste the stats make visible.
      expire_request(live[i], expired_post_render_,
                     "post-render (frame finished too late)");
      continue;
    }
    // A degraded frame is not bit-identical to the requested simulator's
    // output; caching it under the request fingerprint would poison later
    // healthy hits. Sanitized frames stay out too: a defective kernel's
    // suppressed accesses can alter pixels, and the cache must only ever
    // hold frames the production path would have produced.
    if (!responses[i].degraded && !sanitized) {
      cache_.insert(live[i].key,
                    CachedFrame{responses[i].result, responses[i].simulator});
      if (trace::tracing_on()) [[unlikely]] {
        trace::instant("serve", "cache_insert",
                       {{"fingerprint",
                         static_cast<std::int64_t>(live[i].key)}});
      }
    }
    end_request_flow(live[i]);
    live[i].promise.set_value(std::move(responses[i]));
  }
  return true;
}

void FrameService::stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Close admission; workers drain every already-admitted request (pop_run
  // keeps returning queued items after close), then exit on empty. close()
  // also wakes any submitter blocked on a full queue — its push returns
  // false and submit() throws instead of deadlocking against stop().
  queue_.close();
  pool_->join();
  // If workers retired (or the pool was built with zero workers) nothing
  // drained the queue — fail those futures rather than leaving clients
  // blocked forever.
  std::vector<QueuedRequest> orphaned;
  while (std::optional<QueuedRequest> leftover = queue_.pop()) {
    orphaned.push_back(std::move(*leftover));
  }
  if (!orphaned.empty()) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      failed_ += orphaned.size();
    }
    for (QueuedRequest& queued : orphaned) {
      end_request_flow(queued);
      queued.promise.set_exception(
          std::make_exception_ptr(support::Error(
              "FrameService stopped before the request was executed")));
    }
  }
}

bool FrameService::stopped() const {
  const std::lock_guard<std::mutex> lock(stop_mutex_);
  return stopped_;
}

void FrameService::invalidate_cache() { cache_.clear(); }

bool FrameService::invalidate_cached_frame(std::uint64_t fingerprint) {
  return cache_.invalidate(fingerprint);
}

PoolHealth FrameService::health() const { return pool_->health(); }

ServiceStats FrameService::stats() const {
  ServiceStats s;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.failed = failed_;
    s.shed = shed_;
    s.shed_expired = shed_expired_;
    s.shed_by_priority = shed_by_priority_;
    s.expired_admission = expired_admission_;
    s.expired_batch = expired_batch_;
    s.expired_post_render = expired_post_render_;
    s.cache_hits = cache_hits_;
    s.cache_misses = cache_misses_;
    s.batches = batches_;
    s.sanitized_requests = sanitized_requests_;
    s.sanitizer_findings = sanitizer_findings_;
    s.render_kernel_s = render_kernel_s_;
    s.render_non_kernel_s = render_non_kernel_s_;
    s.render_wall_s = render_wall_s_;
    s.kernel_flops = kernel_flops_;
    s.kernel_global_bytes = kernel_global_bytes_;
    s.kernel_atomic_ops = kernel_atomic_ops_;
    s.kernel_texture_fetches = kernel_texture_fetches_;
    s.batch_size_histogram = batch_size_histogram_;
    s.latency = support::tail_quantiles(latency_samples_);
    double sum = 0.0;
    for (const double sample : latency_samples_) sum += sample;
    s.mean_latency_s = latency_samples_.empty()
                           ? 0.0
                           : sum / static_cast<double>(latency_samples_.size());
  }
  s.sink_exceptions = pool_->sink_exceptions();
  s.elapsed_s = lifetime_.seconds();
  s.throughput_rps = s.elapsed_s > 0.0
                         ? static_cast<double>(s.completed) / s.elapsed_s
                         : 0.0;
  s.cache = cache_.stats();
  if (options_.scheduler) s.sched = options_.scheduler->stats();
  return s;
}

std::vector<trace::MetricFamily> FrameService::metric_families(
    std::string_view instance) const {
  using trace::MetricFamily;
  using trace::MetricType;
  const ServiceStats s = stats();
  const PoolHealth pool = health();
  std::vector<MetricFamily> families;

  {
    MetricFamily f{"starsim_serve_requests_total",
                   "Requests by terminal outcome since service start",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.submitted), {{"outcome", "submitted"}})
        .add(static_cast<double>(s.rejected), {{"outcome", "rejected"}})
        .add(static_cast<double>(s.completed), {{"outcome", "completed"}})
        .add(static_cast<double>(s.failed), {{"outcome", "failed"}})
        .add(static_cast<double>(s.shed), {{"outcome", "shed"}});
    families.push_back(std::move(f));
  }
  {
    // stage="shed": displaced requests whose deadline had already passed
    // when they were shed — the attribution ServiceStats used to lose.
    MetricFamily f{"starsim_serve_deadline_expired_total",
                   "Deadline expiries by the stage that detected them",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.expired_admission), {{"stage", "admission"}})
        .add(static_cast<double>(s.expired_batch), {{"stage", "batch"}})
        .add(static_cast<double>(s.expired_post_render),
             {{"stage", "post_render"}})
        .add(static_cast<double>(s.shed_expired), {{"stage", "shed"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_serve_shed_total",
                   "Requests shed under overload, by their priority",
                   MetricType::kCounter, {}};
    for (std::size_t band = 0; band < kPriorityClasses; ++band) {
      f.add(static_cast<double>(s.shed_by_priority[band]),
            {{"priority",
              std::string(to_string(static_cast<RequestPriority>(band)))}});
    }
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_serve_queue_depth",
                   "Requests currently waiting for a worker",
                   MetricType::kGauge, {}};
    f.add(static_cast<double>(queue_depth()));
    families.push_back(std::move(f));
  }
  families.push_back(trace::histogram_from_counts(
      "starsim_serve_batch_size", "Batch sizes formed by dynamic batching",
      s.batch_size_histogram));
  {
    MetricFamily f{"starsim_serve_batches_total",
                   "Batches executed by the worker pool",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.batches));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_serve_latency_seconds",
                   "Request latency quantiles (submit to response)",
                   MetricType::kGauge, {}};
    f.add(s.latency.p50, {{"quantile", "0.5"}})
        .add(s.latency.p95, {{"quantile", "0.95"}})
        .add(s.latency.p99, {{"quantile", "0.99"}});
    families.push_back(std::move(f));
  }
  {
    // The paper's kernel vs non-kernel decomposition, live: a trace's
    // kernel_launch spans must sum to the kernel component within 5%.
    MetricFamily f{"starsim_serve_render_seconds_total",
                   "Modeled render time by component, summed over frames",
                   MetricType::kCounter, {}};
    f.add(s.render_kernel_s, {{"component", "kernel"}})
        .add(s.render_non_kernel_s, {{"component", "non_kernel"}})
        .add(s.render_wall_s, {{"component", "wall"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_serve_cache_hits_total",
                   "Frame-cache hits", MetricType::kCounter, {}};
    f.add(static_cast<double>(s.cache_hits));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_serve_cache_misses_total",
                   "Frame-cache misses", MetricType::kCounter, {}};
    f.add(static_cast<double>(s.cache_misses));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_serve_cache_evictions_total",
                   "Frames evicted from the LRU cache",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.cache.evictions));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_serve_cache_frames",
                   "Frames currently cached (and the configured capacity)",
                   MetricType::kGauge, {}};
    f.add(static_cast<double>(s.cache.size), {{"kind", "cached"}})
        .add(static_cast<double>(s.cache.capacity), {{"kind", "capacity"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_serve_sanitized_requests_total",
                   "Requests rendered under the gpusim sanitizer",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.sanitized_requests));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_serve_sanitizer_findings_total",
                   "Sanitizer findings reported by sanitized batches",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.sanitizer_findings));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_gpusim_kernel_work_total",
                   "gpusim kernel-counter totals over rendered frames",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.kernel_flops), {{"counter", "flops"}})
        .add(static_cast<double>(s.kernel_global_bytes),
             {{"counter", "global_bytes"}})
        .add(static_cast<double>(s.kernel_atomic_ops),
             {{"counter", "atomic_ops"}})
        .add(static_cast<double>(s.kernel_texture_fetches),
             {{"counter", "texture_fetches"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_serve_workers",
                   "Workers by supervision state", MetricType::kGauge, {}};
    std::array<int, 4> by_state{};
    for (const WorkerHealth& w : pool.workers) {
      by_state[static_cast<std::size_t>(w.state)] += 1;
    }
    for (std::size_t state = 0; state < by_state.size(); ++state) {
      f.add(static_cast<double>(by_state[state]),
            {{"state",
              std::string(to_string(static_cast<WorkerState>(state)))}});
    }
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_serve_worker_device_replacements_total",
                   "Fresh devices handed to quarantined workers",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(pool.total_device_replacements));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_serve_sink_exceptions_total",
                   "Exceptions that escaped the worker batch sink",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.sink_exceptions));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_serve_throughput_rps",
                   "Completed requests per second of service lifetime",
                   MetricType::kGauge, {}};
    f.add(s.throughput_rps);
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_sched_cache_events_total",
                   "Schedule-cache traffic of the auto-scheduler",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.sched.cache.hits), {{"event", "hit"}})
        .add(static_cast<double>(s.sched.cache.misses), {{"event", "miss"}})
        .add(static_cast<double>(s.sched.cache.evictions),
             {{"event", "eviction"}})
        .add(static_cast<double>(s.sched.cache.insertions),
             {{"event", "insertion"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_sched_tuner_invocations_total",
                   "Schedule tunes run on cache misses",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.sched.tuner_invocations));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_sched_candidates_evaluated_total",
                   "Candidate schedules the tuner's cost model scored",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.sched.candidates_evaluated));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_sched_overrides_total",
                   "Pinned-simulator requests recorded against the tuned "
                   "schedule",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.sched.overrides_recorded));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_sched_fallbacks_total",
                   "Admissions that fell back to the legacy Table III "
                   "selector",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.sched.fallbacks));
    families.push_back(std::move(f));
  }
  {
    // schedule="tuned" vs "fallback": summed modeled per-frame seconds of
    // the tuned decisions and of the best fixed simulator for the same
    // workloads. Their ratio is the aggregate modeled speedup.
    MetricFamily f{"starsim_sched_modeled_seconds_total",
                   "Modeled per-frame seconds, tuned vs legacy fixed",
                   MetricType::kCounter, {}};
    f.add(s.sched.tuned_modeled_s_total, {{"schedule", "tuned"}})
        .add(s.sched.fallback_modeled_s_total, {{"schedule", "fallback"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_sched_modeled_speedup",
                   "Aggregate modeled speedup of tuned schedules over the "
                   "fixed baseline (1.0 when nothing was tuned)",
                   MetricType::kGauge, {}};
    f.add(s.sched.tuned_modeled_s_total > 0.0
              ? s.sched.fallback_modeled_s_total /
                    s.sched.tuned_modeled_s_total
              : 1.0);
    families.push_back(std::move(f));
  }
  if (!instance.empty()) {
    for (MetricFamily& family : families) {
      for (trace::MetricSample& sample : family.samples) {
        sample.labels.push_back({"instance", std::string(instance)});
      }
    }
  }
  return families;
}

std::string FrameService::scrape_metrics(std::string_view instance) const {
  return trace::render_prometheus(metric_families(instance));
}

}  // namespace starsim::serve
