// Dynamic request batching: coalesce compatible queued requests so the
// per-scene setup is paid once per batch.
//
// The paper's non-kernel analysis (Table I) is the motivation: for the
// adaptive simulator, every simulate() call pays the lookup-table build,
// upload and texture bind on top of the kernel. Requests that share a scene
// and a simulator can share that setup; the batcher drains the longest
// immediate run of such requests from the admission queue (up to a cap) and
// hands them to a worker as one Batch. Under light load batches degenerate
// to size 1 (no added latency — there is no batching timer); under heavy
// load they grow toward the cap and the amortization kicks in.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <vector>

#include "serve/request.h"
#include "serve/request_queue.h"

namespace starsim::serve {

/// One admitted request waiting for execution.
struct QueuedRequest {
  RenderRequest request;  ///< stars resolved (attitude already projected)
  SimulatorKind simulator = SimulatorKind::kParallel;  ///< resolved kind
  std::uint64_t scene_key = 0;  ///< fingerprint_scene — batch compatibility
  std::uint64_t key = 0;        ///< fingerprint_request — cache identity
  std::promise<RenderResponse> promise;
  std::chrono::steady_clock::time_point submitted{};
  /// Absolute expiry (submit time + RenderRequest::deadline_s); nullopt
  /// when the request carries no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  RequestPriority priority = RequestPriority::kNormal;
  /// Trace flow id stitching this request's submit-side span to the worker
  /// thread that renders it; 0 when the request was admitted untraced.
  std::uint64_t trace_flow = 0;

  [[nodiscard]] bool expired(std::chrono::steady_clock::time_point now) const {
    return deadline.has_value() && now >= *deadline;
  }
};

/// Requests coalesced for one simulate_batch call: same scene bits, same
/// simulator, so one lookup-table/texture setup serves them all.
struct Batch {
  SimulatorKind simulator = SimulatorKind::kParallel;
  /// Runs never span priority bands, so a batch has one priority.
  RequestPriority priority = RequestPriority::kNormal;
  std::vector<QueuedRequest> requests;
  std::chrono::steady_clock::time_point formed{};

  [[nodiscard]] std::size_t size() const { return requests.size(); }
  [[nodiscard]] const SceneConfig& scene() const {
    return requests.front().request.scene;
  }
};

class Batcher {
 public:
  explicit Batcher(std::size_t max_batch_size);

  /// Two requests may share a batch iff their scenes are bit-identical,
  /// they resolved to the same simulator, and they agree on sanitizing
  /// (a sanitized batch runs the whole device instrumented; an unsanitized
  /// rider would silently pay for — and an unsanitized batch would silently
  /// skip — the instrumentation).
  [[nodiscard]] static bool compatible(const QueuedRequest& a,
                                       const QueuedRequest& b) {
    return a.scene_key == b.scene_key && a.simulator == b.simulator &&
           a.request.sanitize == b.request.sanitize;
  }

  /// Block for the next request and coalesce its compatible followers.
  /// nullopt when the queue is closed and drained (worker shutdown signal).
  [[nodiscard]] std::optional<Batch> next_batch(
      BoundedQueue<QueuedRequest>& queue) const;

  [[nodiscard]] std::size_t max_batch_size() const { return max_batch_size_; }

 private:
  std::size_t max_batch_size_;
};

}  // namespace starsim::serve
