#include "serve/fingerprint.h"

#include <cstring>
#include <type_traits>

namespace starsim::serve {

namespace {

/// Incremental 64-bit FNV-1a.
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= static_cast<std::uint64_t>(p[i]);
      hash_ *= 1099511628211ull;
    }
  }

  template <typename T>
  void value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(v));
  }

  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;
};

void hash_scene(Fnv1a& fnv, const SceneConfig& scene) {
  fnv.value(scene.image_width);
  fnv.value(scene.image_height);
  fnv.value(scene.roi_side);
  fnv.value(scene.psf_sigma);
  fnv.value(static_cast<std::uint8_t>(scene.pixel_integration));
  fnv.value(scene.brightness.proportion_factor);
  fnv.value(scene.brightness.magnitude_base);
  fnv.value(scene.magnitude_min);
  fnv.value(scene.magnitude_max);
}

}  // namespace

std::uint64_t fingerprint_scene(const SceneConfig& scene) {
  Fnv1a fnv;
  hash_scene(fnv, scene);
  return fnv.digest();
}

std::uint64_t fingerprint_request(const SceneConfig& scene,
                                  std::span<const Star> stars,
                                  SimulatorKind simulator) {
  Fnv1a fnv;
  hash_scene(fnv, scene);
  fnv.value(static_cast<std::uint32_t>(simulator));
  fnv.value(static_cast<std::uint64_t>(stars.size()));
  // Star is a padding-free 16-byte POD (static_asserted in star.h), so the
  // whole span hashes as one contiguous byte run.
  if (!stars.empty()) fnv.bytes(stars.data(), stars.size_bytes());
  return fnv.digest();
}

}  // namespace starsim::serve
