// Bounded MPMC queue with close semantics and priority bands — the serving
// layer's admission control.
//
// Backpressure comes in two grades: try_push rejects immediately when the
// queue is full (hard admission control, the caller sees the overload), and
// push blocks until space frees (cooperative backpressure for clients that
// would rather wait than shed). pop_run is the dynamic batcher's drain
// step: it blocks for the first item, then greedily takes the longest
// immediate run of compatible followers without waiting for more to arrive —
// batch size adapts to instantaneous load instead of a timer.
//
// Priority: the queue is partitioned into `bands` classes (band 0 lowest).
// Capacity is shared across bands, pops always drain the highest non-empty
// band first (FIFO within a band), and try_push_shedding implements
// importance-aware overload shedding: when the queue is full, an arriving
// item may displace the *youngest item of the lowest non-empty band below
// its own* instead of being rejected — overload sheds lowest-priority-first
// rather than arrival-order. A single-band queue (the default) degenerates
// to the plain FIFO behaviour.
//
// close() transitions the queue to drain mode: pushes fail and every
// blocked pusher wakes (returning false, so a submitter blocked on a full
// queue can never deadlock against shutdown), while pops keep returning
// queued items until the queue is empty, then report exhaustion. Workers
// therefore finish every admitted request before shutting down.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "support/error.h"

namespace starsim::serve {

template <typename T>
class BoundedQueue {
 public:
  /// Outcome of a shedding admission attempt.
  enum class PushOutcome {
    kAccepted,   ///< space was free (or freed by close-race), item queued
    kDisplaced,  ///< item queued; a lower-band item was shed to make room
    kRejected,   ///< full of equal-or-higher-band work (or closed)
  };

  explicit BoundedQueue(std::size_t capacity, std::size_t bands = 1)
      : bands_(bands), capacity_(capacity) {
    STARSIM_REQUIRE(capacity > 0, "queue capacity must be positive");
    STARSIM_REQUIRE(bands > 0, "queue needs at least one priority band");
  }

  /// Non-blocking admission: false when the queue is full or closed (the
  /// item is consumed only on success).
  [[nodiscard]] bool try_push(T& item, std::size_t band = 0) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || count_ >= capacity_) return false;
      band_at(band).push_back(std::move(item));
      ++count_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking admission with priority shedding. When the queue is full
  /// and some band strictly below `band` holds an item, the *youngest* item
  /// of the *lowest* such band is moved into `displaced` and the new item
  /// takes its place (kDisplaced). The caller owns failing the displaced
  /// item's promise. Full of equal-or-higher work => kRejected, item
  /// untouched.
  [[nodiscard]] PushOutcome try_push_shedding(T& item, std::size_t band,
                                              std::optional<T>& displaced) {
    displaced.reset();
    bool was_displacement = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushOutcome::kRejected;
      if (count_ >= capacity_) {
        std::deque<T>* victim_band = nullptr;
        for (std::size_t b = 0; b < band && b < bands_.size(); ++b) {
          if (!bands_[b].empty()) {
            victim_band = &bands_[b];
            break;
          }
        }
        if (victim_band == nullptr) return PushOutcome::kRejected;
        displaced.emplace(std::move(victim_band->back()));
        victim_band->pop_back();
        --count_;
        was_displacement = true;
      }
      band_at(band).push_back(std::move(item));
      ++count_;
    }
    not_empty_.notify_one();
    return was_displacement ? PushOutcome::kDisplaced : PushOutcome::kAccepted;
  }

  /// Blocking admission: waits while full; false when the queue closes
  /// before space frees (close() wakes every blocked pusher).
  [[nodiscard]] bool push(T item, std::size_t band = 0) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock, [this] { return closed_ || count_ < capacity_; });
      if (closed_) return false;
      band_at(band).push_back(std::move(item));
      ++count_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking take: highest non-empty band first; nullopt only when the
  /// queue is closed and drained.
  [[nodiscard]] std::optional<T> pop() {
    std::optional<T> item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return closed_ || count_ > 0; });
      std::deque<T>* band = highest_non_empty();
      if (band == nullptr) return std::nullopt;
      item.emplace(std::move(band->front()));
      band->pop_front();
      --count_;
    }
    not_full_.notify_one();
    return item;
  }

  /// Blocking take of a coalescable run: waits for the first item (always
  /// from the highest non-empty band), then greedily pops up to `max_run`
  /// total items from that band while `compatible(first, next)` holds for
  /// the immediate front. Runs never span bands — a batch has one priority.
  /// Empty result only when the queue is closed and drained.
  template <typename Compatible>
  [[nodiscard]] std::vector<T> pop_run(std::size_t max_run,
                                       Compatible&& compatible) {
    STARSIM_REQUIRE(max_run > 0, "run length must be positive");
    std::vector<T> run;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return closed_ || count_ > 0; });
      std::deque<T>* band = highest_non_empty();
      if (band == nullptr) return run;
      run.push_back(std::move(band->front()));
      band->pop_front();
      --count_;
      while (run.size() < max_run && !band->empty() &&
             compatible(run.front(), band->front())) {
        run.push_back(std::move(band->front()));
        band->pop_front();
        --count_;
      }
    }
    not_full_.notify_all();
    return run;
  }

  /// Stop admitting; wake every waiter (blocked pushers return false).
  /// Queued items stay poppable.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

  /// Queued items in one priority band.
  [[nodiscard]] std::size_t band_size(std::size_t band) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return band < bands_.size() ? bands_[band].size() : 0;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t bands() const { return bands_.size(); }

 private:
  /// Clamps out-of-range bands to the top class rather than throwing midway
  /// through an admission that already consumed the item.
  [[nodiscard]] std::deque<T>& band_at(std::size_t band) {
    return bands_[band < bands_.size() ? band : bands_.size() - 1];
  }

  [[nodiscard]] std::deque<T>* highest_non_empty() {
    for (std::size_t b = bands_.size(); b-- > 0;) {
      if (!bands_[b].empty()) return &bands_[b];
    }
    return nullptr;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<std::deque<T>> bands_;
  std::size_t count_ = 0;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace starsim::serve
