// Bounded MPMC queue with close semantics — the serving layer's admission
// control.
//
// Backpressure comes in two grades: try_push rejects immediately when the
// queue is full (hard admission control, the caller sees the overload), and
// push blocks until space frees (cooperative backpressure for clients that
// would rather wait than shed). pop_run is the dynamic batcher's drain
// step: it blocks for the first item, then greedily takes the longest
// immediate run of compatible followers without waiting for more to arrive —
// batch size adapts to instantaneous load instead of a timer.
//
// close() transitions the queue to drain mode: pushes fail, pops keep
// returning queued items until the queue is empty, then report exhaustion.
// Workers therefore finish every admitted request before shutting down.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "support/error.h"

namespace starsim::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    STARSIM_REQUIRE(capacity > 0, "queue capacity must be positive");
  }

  /// Non-blocking admission: false when the queue is full or closed (the
  /// item is consumed only on success).
  [[nodiscard]] bool try_push(T& item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking admission: waits while full; false when the queue closes
  /// before space frees.
  [[nodiscard]] bool push(T item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock, [this] {
        return closed_ || items_.size() < capacity_;
      });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking take: nullopt only when the queue is closed and drained.
  [[nodiscard]] std::optional<T> pop() {
    std::optional<T> item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Blocking take of a coalescable run: waits for the first item, then
  /// greedily pops up to `max_run` total items while `compatible(first,
  /// next)` holds for the immediate front. Empty result only when the queue
  /// is closed and drained.
  template <typename Compatible>
  [[nodiscard]] std::vector<T> pop_run(std::size_t max_run,
                                       Compatible&& compatible) {
    STARSIM_REQUIRE(max_run > 0, "run length must be positive");
    std::vector<T> run;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
      if (items_.empty()) return run;
      run.push_back(std::move(items_.front()));
      items_.pop_front();
      while (run.size() < max_run && !items_.empty() &&
             compatible(run.front(), items_.front())) {
        run.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    not_full_.notify_all();
    return run;
  }

  /// Stop admitting; wake every waiter. Queued items stay poppable.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace starsim::serve
