#include "serve/batcher.h"

#include <utility>

#include "trace/trace.h"

namespace starsim::serve {

Batcher::Batcher(std::size_t max_batch_size)
    : max_batch_size_(max_batch_size) {
  STARSIM_REQUIRE(max_batch_size > 0, "batch size cap must be positive");
}

std::optional<Batch> Batcher::next_batch(
    BoundedQueue<QueuedRequest>& queue) const {
  std::vector<QueuedRequest> run =
      queue.pop_run(max_batch_size_, &Batcher::compatible);
  if (run.empty()) return std::nullopt;
  Batch batch;
  batch.simulator = run.front().simulator;
  batch.priority = run.front().priority;
  batch.requests = std::move(run);
  batch.formed = std::chrono::steady_clock::now();
  if (trace::tracing_on()) [[unlikely]] {
    trace::instant(
        "serve", "batch_formed",
        {{"batch_size", static_cast<std::int64_t>(batch.requests.size())},
         {"simulator", std::string(to_string(batch.simulator))},
         {"priority", std::string(to_string(batch.priority))}});
  }
  return batch;
}

}  // namespace starsim::serve
