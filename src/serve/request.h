// The serving layer's wire types: what a client submits to a FrameService
// and what it gets back.
//
// A RenderRequest names a scene, the stars to render (either an explicit
// image-plane field or an attitude resolved against the service's shared
// catalog), and an optional pinned simulator. The response carries the
// rendered frame plus the per-request latency breakdown the paper's
// evaluation vocabulary maps onto a server: queue wait and batch wait are
// the serving layer's own costs, kernel and non-kernel time are the
// simulator's modeled breakdown (non-kernel amortized by batching).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "gpusim/sanitizer.h"
#include "starsim/attitude.h"
#include "starsim/breakdown.h"
#include "starsim/scene.h"
#include "starsim/simulator.h"
#include "starsim/star.h"

namespace starsim::serve {

/// Importance classes for admission and load shedding. Under overload the
/// service sheds lowest-priority-first (a displaced request's future fails
/// with support::OverloadShedError), and workers drain higher classes
/// before lower ones. Within a class, order stays FIFO.
enum class RequestPriority : std::uint8_t {
  kLow = 0,     ///< bulk / speculative traffic, first to shed
  kNormal = 1,  ///< the default
  kHigh = 2,    ///< hardware-in-the-loop frame deadlines ride here
};

inline constexpr std::size_t kPriorityClasses = 3;

[[nodiscard]] constexpr std::string_view to_string(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kLow: return "low";
    case RequestPriority::kNormal: return "normal";
    case RequestPriority::kHigh: return "high";
  }
  return "unknown";
}

struct RenderRequest {
  SceneConfig scene;
  /// Explicit image-plane star field. May be empty when `attitude` is set
  /// and the service was configured with a catalog.
  StarField stars;
  /// Attitude-driven request: the service projects its catalog through its
  /// camera model at admission (the per-image "catalog prep" the batch
  /// amortization literature pays once).
  std::optional<Quaternion> attitude;
  /// Pinned simulator; nullopt asks the SimulatorSelector (Table III).
  std::optional<SimulatorKind> simulator;
  /// Importance class consulted by admission, shedding and batch pickup.
  RequestPriority priority = RequestPriority::kNormal;
  /// Response-time budget measured from submit, in seconds. When it expires
  /// the request fails with support::DeadlineExceededError — at admission
  /// (<= 0 budgets fail immediately), at batch formation (an expired
  /// request is never rendered), or post-render when the frame finished too
  /// late. nullopt means no deadline.
  std::optional<double> deadline_s;
  /// Debugging aid: render this request under the full gpusim sanitizer
  /// (SanitizerMode::kAll on the worker's device for the duration of the
  /// batch) and return the findings in RenderResponse::sanitizer. Sanitized
  /// requests never batch with unsanitized ones and bypass the frame cache
  /// in both directions — the point is the instrumented render itself.
  bool sanitize = false;
};

/// Where one request's response time went.
struct LatencyBreakdown {
  double queue_wait_s = 0.0;   ///< submit -> coalesced into a batch
  double batch_wait_s = 0.0;   ///< batch formed -> worker starts rendering
  double render_wall_s = 0.0;  ///< measured wall inside the simulator
  double kernel_s = 0.0;       ///< modeled kernel time of this frame
  double non_kernel_s = 0.0;   ///< modeled non-kernel overhead (amortized)
  double total_s = 0.0;        ///< submit -> response ready
};

struct RenderResponse {
  /// Shared, not copied: a cached frame may back many responses.
  std::shared_ptr<const SimulationResult> result;
  /// The simulator that actually produced the frame. Equal to the resolved
  /// request simulator unless recovery degraded the render (see `degraded`).
  SimulatorKind simulator = SimulatorKind::kParallel;
  LatencyBreakdown latency;
  /// Request identity (scene + stars + simulator); the frame-cache key.
  std::uint64_t fingerprint = 0;
  /// Number of requests rendered together; 0 for cache hits.
  std::size_t batch_size = 0;
  bool from_cache = false;
  /// True when a fallback rung (worker CPU fallback, resilient-chain
  /// degradation) produced the frame instead of the requested simulator.
  /// Degraded frames are pixel-equivalent up to the executed simulator's
  /// accumulation order, not bit-identical to the requested kind, and are
  /// never inserted into the frame cache.
  bool degraded = false;
  /// Sanitizer findings of the batch that rendered this frame. Set when the
  /// request asked for a sanitized render or the worker pool runs with a
  /// worker-wide SanitizerMode; null otherwise. Shared across the batch.
  std::shared_ptr<const gpusim::SanitizerReport> sanitizer;
};

}  // namespace starsim::serve
