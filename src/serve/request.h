// The serving layer's wire types: what a client submits to a FrameService
// and what it gets back.
//
// A RenderRequest names a scene, the stars to render (either an explicit
// image-plane field or an attitude resolved against the service's shared
// catalog), and an optional pinned simulator. The response carries the
// rendered frame plus the per-request latency breakdown the paper's
// evaluation vocabulary maps onto a server: queue wait and batch wait are
// the serving layer's own costs, kernel and non-kernel time are the
// simulator's modeled breakdown (non-kernel amortized by batching).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "starsim/attitude.h"
#include "starsim/breakdown.h"
#include "starsim/scene.h"
#include "starsim/simulator.h"
#include "starsim/star.h"

namespace starsim::serve {

struct RenderRequest {
  SceneConfig scene;
  /// Explicit image-plane star field. May be empty when `attitude` is set
  /// and the service was configured with a catalog.
  StarField stars;
  /// Attitude-driven request: the service projects its catalog through its
  /// camera model at admission (the per-image "catalog prep" the batch
  /// amortization literature pays once).
  std::optional<Quaternion> attitude;
  /// Pinned simulator; nullopt asks the SimulatorSelector (Table III).
  std::optional<SimulatorKind> simulator;
};

/// Where one request's response time went.
struct LatencyBreakdown {
  double queue_wait_s = 0.0;   ///< submit -> coalesced into a batch
  double batch_wait_s = 0.0;   ///< batch formed -> worker starts rendering
  double render_wall_s = 0.0;  ///< measured wall inside the simulator
  double kernel_s = 0.0;       ///< modeled kernel time of this frame
  double non_kernel_s = 0.0;   ///< modeled non-kernel overhead (amortized)
  double total_s = 0.0;        ///< submit -> response ready
};

struct RenderResponse {
  /// Shared, not copied: a cached frame may back many responses.
  std::shared_ptr<const SimulationResult> result;
  SimulatorKind simulator = SimulatorKind::kParallel;
  LatencyBreakdown latency;
  /// Request identity (scene + stars + simulator); the frame-cache key.
  std::uint64_t fingerprint = 0;
  /// Number of requests rendered together; 0 for cache hits.
  std::size_t batch_size = 0;
  bool from_cache = false;
};

}  // namespace starsim::serve
