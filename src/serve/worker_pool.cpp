#include "serve/worker_pool.h"

#include <utility>

#include "starsim/adaptive_simulator.h"
#include "starsim/openmp_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/pixel_centric_simulator.h"
#include "starsim/sequential_simulator.h"
#include "support/error.h"

namespace starsim::serve {

namespace {

std::unique_ptr<Simulator> make_simulator(gpusim::Device& device,
                                          const WorkerOptions& options,
                                          SimulatorKind kind) {
  switch (kind) {
    case SimulatorKind::kSequential:
      return std::make_unique<SequentialSimulator>();
    case SimulatorKind::kCpuParallel:
      return std::make_unique<OpenMpSimulator>();
    case SimulatorKind::kParallel:
      return std::make_unique<ParallelSimulator>(device);
    case SimulatorKind::kAdaptive:
      return std::make_unique<AdaptiveSimulator>(device, options.lut);
    case SimulatorKind::kPixelCentric:
      return std::make_unique<PixelCentricSimulator>(device);
    case SimulatorKind::kMultiGpu:
      break;
  }
  STARSIM_THROW(support::PreconditionError,
                "simulator kind '" + std::string(to_string(kind)) +
                    "' cannot run on a single-device serving worker");
}

}  // namespace

Worker::Worker(int index, const WorkerOptions& options)
    : index_(index),
      options_(options),
      device_(std::make_unique<gpusim::Device>(options.device)) {}

Simulator& Worker::simulator(SimulatorKind kind) {
  auto& slot = simulators_.at(static_cast<std::size_t>(kind));
  if (slot == nullptr) {
    if (options_.resilient) {
      // The requested kind stays the chain head so fault-free resilient
      // renders are bit-identical to non-resilient ones (the invariant the
      // resilience layer documents); CPU rungs complete every frame.
      std::vector<std::unique_ptr<Simulator>> chain;
      chain.push_back(make_simulator(*device_, options_, kind));
      if (kind != SimulatorKind::kCpuParallel) {
        chain.push_back(
            make_simulator(*device_, options_, SimulatorKind::kCpuParallel));
      }
      if (kind != SimulatorKind::kSequential) {
        chain.push_back(
            make_simulator(*device_, options_, SimulatorKind::kSequential));
      }
      slot = std::make_unique<ResilientExecutor>(std::move(chain),
                                                 options_.retry);
    } else {
      slot = make_simulator(*device_, options_, kind);
    }
  }
  return *slot;
}

std::vector<SimulationResult> Worker::render(
    const SceneConfig& scene, SimulatorKind kind,
    std::span<const StarField> fields) {
  return simulator(kind).simulate_batch(scene, fields);
}

WorkerPool::WorkerPool(int workers, const WorkerOptions& options,
                       BatchSource source, BatchSink sink)
    : source_(std::move(source)), sink_(std::move(sink)) {
  STARSIM_REQUIRE(workers >= 0, "worker count must be non-negative");
  STARSIM_REQUIRE(source_ != nullptr && sink_ != nullptr,
                  "worker pool needs a batch source and sink");
  workers_.reserve(static_cast<std::size_t>(workers));
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(i, options));
  }
  // Spawn only after every Worker exists: a throwing Worker constructor
  // must not leave earlier threads running against a half-built pool.
  for (auto& worker : workers_) {
    threads_.emplace_back([this, w = worker.get()] { run(*w); });
  }
}

WorkerPool::~WorkerPool() { join(); }

void WorkerPool::join() {
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void WorkerPool::run(Worker& worker) {
  while (std::optional<Batch> batch = source_()) {
    try {
      sink_(std::move(*batch), worker);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
      // The sink owns promise delivery; whatever escaped has already been
      // reported through the batch's futures or is unreportable. A worker
      // thread must outlive any single bad batch.
    }
  }
}

}  // namespace starsim::serve
