#include "serve/worker_pool.h"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "starsim/adaptive_simulator.h"
#include "starsim/openmp_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/pixel_centric_simulator.h"
#include "starsim/sequential_simulator.h"
#include "support/error.h"
#include "support/log.h"
#include "trace/trace.h"

namespace starsim::serve {

namespace {

std::unique_ptr<Simulator> make_simulator(gpusim::Device& device,
                                          const WorkerOptions& options,
                                          SimulatorKind kind) {
  switch (kind) {
    case SimulatorKind::kSequential:
      return std::make_unique<SequentialSimulator>();
    case SimulatorKind::kCpuParallel:
      return std::make_unique<OpenMpSimulator>();
    case SimulatorKind::kParallel:
      return std::make_unique<ParallelSimulator>(device);
    case SimulatorKind::kAdaptive:
      return std::make_unique<AdaptiveSimulator>(device, options.lut);
    case SimulatorKind::kPixelCentric:
      return std::make_unique<PixelCentricSimulator>(device);
    case SimulatorKind::kMultiGpu:
      break;
  }
  STARSIM_THROW(support::PreconditionError,
                "simulator kind '" + std::string(to_string(kind)) +
                    "' cannot run on a single-device serving worker");
}

bool needs_device(SimulatorKind kind) {
  return kind == SimulatorKind::kParallel || kind == SimulatorKind::kAdaptive ||
         kind == SimulatorKind::kPixelCentric;
}

}  // namespace

std::string_view to_string(WorkerState state) {
  switch (state) {
    case WorkerState::kHealthy: return "healthy";
    case WorkerState::kQuarantined: return "quarantined";
    case WorkerState::kCpuFallback: return "cpu-fallback";
    case WorkerState::kRetired: return "retired";
  }
  return "unknown";
}

Worker::Worker(int index, const WorkerOptions& options)
    : index_(index),
      options_(options),
      device_(std::make_unique<gpusim::Device>(options.device)) {
  device_->set_sanitizer(options_.sanitize);
  if (options_.fault_policy.has_value()) {
    gpusim::FaultPolicy policy = *options_.fault_policy;
    policy.seed = injector_seed(0);
    injector_ = std::make_unique<gpusim::FaultInjector>(policy);
    device_->set_fault_injector(injector_.get());
  }
}

std::uint64_t Worker::injector_seed(int generation) const {
  // Decorrelate workers and device generations from one user-facing seed:
  // golden-ratio stride per worker, odd stride per replacement.
  const std::uint64_t base =
      options_.fault_policy.has_value() ? options_.fault_policy->seed : 0;
  return base +
         std::uint64_t{0x9E3779B97F4A7C15} *
             static_cast<std::uint64_t>(index_ + 1) +
         std::uint64_t{0xD1B54A32D192ED03} *
             static_cast<std::uint64_t>(generation);
}

Simulator& Worker::simulator(SimulatorKind kind) {
  auto& slot = simulators_.at(static_cast<std::size_t>(kind));
  if (slot == nullptr) {
    if (options_.resilient) {
      // The requested kind stays the chain head so fault-free resilient
      // renders are bit-identical to non-resilient ones (the invariant the
      // resilience layer documents); CPU rungs complete every frame.
      std::vector<std::unique_ptr<Simulator>> chain;
      chain.push_back(make_simulator(*device_, options_, kind));
      if (kind != SimulatorKind::kCpuParallel) {
        chain.push_back(
            make_simulator(*device_, options_, SimulatorKind::kCpuParallel));
      }
      if (kind != SimulatorKind::kSequential) {
        chain.push_back(
            make_simulator(*device_, options_, SimulatorKind::kSequential));
      }
      slot = std::make_unique<ResilientExecutor>(std::move(chain),
                                                 options_.retry);
    } else {
      slot = make_simulator(*device_, options_, kind);
    }
  }
  return *slot;
}

Worker::RenderOutcome Worker::render(const SceneConfig& scene,
                                     SimulatorKind kind,
                                     std::span<const StarField> fields,
                                     bool sanitize) {
  if (options_.debug_straggler_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.debug_straggler_ms));
  }
  SimulatorKind effective = kind;
  if (state_.load() == WorkerState::kCpuFallback && needs_device(kind)) {
    // The device budget is spent; keep emitting frames on the CPU. The
    // service marks these responses degraded (different accumulation
    // order => not bit-identical to the requested GPU kind).
    effective = SimulatorKind::kCpuParallel;
  }
  // Per-batch sanitizer scope: escalate to kAll for a sanitized request,
  // reset the cumulative report so the outcome covers exactly this batch,
  // and restore the worker's standing mode on the way out (including when
  // the render throws — the supervisor may reuse this device).
  const gpusim::SanitizerMode standing = device_->sanitizer();
  const gpusim::SanitizerMode mode =
      sanitize ? gpusim::SanitizerMode::kAll : standing;
  struct SanitizerScope {
    gpusim::Device* device = nullptr;
    gpusim::SanitizerMode standing = gpusim::SanitizerMode::kOff;
    ~SanitizerScope() {
      if (device != nullptr) {
        device->clear_sanitizer_report();
        device->set_sanitizer(standing);
      }
    }
  } scope;
  if (mode != gpusim::SanitizerMode::kOff) {
    device_->set_sanitizer(mode);
    device_->clear_sanitizer_report();
    scope.device = device_.get();
    scope.standing = standing;
  }
  RenderOutcome outcome;
  outcome.executed.reserve(fields.size());
  Simulator& sim = simulator(effective);
  if (options_.resilient) {
    // The resilient executor recovers frame by frame; run it that way and
    // read each frame's report so a degraded frame is attributed to the
    // rung that actually rendered it.
    auto& executor = static_cast<ResilientExecutor&>(sim);
    outcome.results.reserve(fields.size());
    for (const StarField& field : fields) {
      outcome.results.push_back(executor.simulate(scene, field));
      const ResilienceReport& report = executor.last_report();
      outcome.executed.push_back(
          simulator_kind_from_string(report.final_simulator)
              .value_or(effective));
    }
  } else {
    outcome.results = sim.simulate_batch(scene, fields);
    outcome.executed.assign(fields.size(), effective);
  }
  if (mode != gpusim::SanitizerMode::kOff) {
    outcome.sanitizer = device_->sanitizer_report();
    outcome.sanitizer.mode = mode;
  }
  return outcome;
}

void Worker::replace_device() {
  // Simulators hold references into the old device; they must die first.
  for (auto& slot : simulators_) slot.reset();
  device_ = std::make_unique<gpusim::Device>(options_.device);
  device_->set_sanitizer(options_.sanitize);
  const int generation = replacements_.load() + 1;
  if (injector_ != nullptr) {
    injector_->reseed(injector_seed(generation));
    device_->set_fault_injector(injector_.get());
  }
  replacements_.store(generation);
  consecutive_failures_.store(0);
  state_.store(WorkerState::kHealthy);
}

void Worker::note_quarantined() {
  quarantines_.fetch_add(1);
  state_.store(WorkerState::kQuarantined);
}

void Worker::enter_cpu_fallback() {
  // CPU simulators never touch the (dead) device, so the lost latch can
  // stay; drop the device's simulators so nothing dereferences it again.
  for (auto& slot : simulators_) slot.reset();
  consecutive_failures_.store(0);
  state_.store(WorkerState::kCpuFallback);
}

void Worker::retire() {
  for (auto& slot : simulators_) slot.reset();
  state_.store(WorkerState::kRetired);
}

void Worker::note_batch(bool ok) {
  if (ok) {
    batches_ok_.fetch_add(1);
    consecutive_failures_.store(0);
  } else {
    batches_failed_.fetch_add(1);
    consecutive_failures_.fetch_add(1);
  }
}

WorkerHealth Worker::health() const {
  WorkerHealth h;
  h.index = index_;
  h.state = state_.load();
  h.device_replacements = replacements_.load();
  h.quarantines = quarantines_.load();
  h.consecutive_failures = consecutive_failures_.load();
  h.batches_ok = batches_ok_.load();
  h.batches_failed = batches_failed_.load();
  return h;
}

WorkerPool::WorkerPool(int workers, const WorkerOptions& options,
                       BatchSource source, BatchSink sink)
    : options_(options), source_(std::move(source)), sink_(std::move(sink)) {
  STARSIM_REQUIRE(workers >= 0, "worker count must be non-negative");
  STARSIM_REQUIRE(source_ != nullptr && sink_ != nullptr,
                  "worker pool needs a batch source and sink");
  STARSIM_REQUIRE(options_.supervision.max_device_replacements >= 0,
                  "device replacement budget must be non-negative");
  STARSIM_REQUIRE(options_.supervision.circuit_breaker_threshold >= 0,
                  "circuit breaker threshold must be non-negative");
  workers_.reserve(static_cast<std::size_t>(workers));
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(i, options));
  }
  active_workers_.store(workers);
  // Spawn only after every Worker exists: a throwing Worker constructor
  // must not leave earlier threads running against a half-built pool.
  for (auto& worker : workers_) {
    threads_.emplace_back([this, w = worker.get()] { run(*w); });
  }
}

WorkerPool::~WorkerPool() { join(); }

void WorkerPool::join() {
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

PoolHealth WorkerPool::health() const {
  PoolHealth pool;
  pool.workers.reserve(workers_.size());
  for (const auto& worker : workers_) {
    pool.workers.push_back(worker->health());
    pool.total_device_replacements +=
        pool.workers.back().device_replacements;
    pool.total_quarantines += pool.workers.back().quarantines;
  }
  pool.active_workers = active_workers_.load();
  pool.sink_exceptions = sink_exceptions_.load();
  return pool;
}

void WorkerPool::run(Worker& worker) {
  // Sticky across trace sessions, so a session started mid-service still
  // names this thread in its export.
  trace::TraceRecorder::instance().set_thread_name(
      "worker-" + std::to_string(worker.index()));
  while (std::optional<Batch> batch = source_()) {
    bool ok = false;
    try {
      ok = sink_(std::move(*batch), worker);
    } catch (const std::exception& error) {
      // The sink owns promise delivery; an exception escaping it means a
      // batch may have died unreported. Count and log it — silence here
      // turns a service bug into an unresolvable client hang.
      sink_exceptions_.fetch_add(1);
      STARSIM_WARN << "worker " << worker.index()
                   << ": exception escaped the batch sink: " << error.what();
    } catch (...) {
      sink_exceptions_.fetch_add(1);
      STARSIM_WARN << "worker " << worker.index()
                   << ": non-standard exception escaped the batch sink";
    }
    worker.note_batch(ok);
    // A CPU-fallback worker never re-enters supervision: its device latch
    // stays lost by design and its CPU renders cannot fault.
    if (worker.state() == WorkerState::kCpuFallback) continue;
    const int breaker = options_.supervision.circuit_breaker_threshold;
    const bool breaker_tripped =
        breaker > 0 && worker.consecutive_failures() >= breaker;
    if (worker.lost() || breaker_tripped) {
      if (!supervise(worker)) return;  // retired: thread exits
    }
  }
}

bool WorkerPool::supervise(Worker& worker) {
  worker.note_quarantined();
  const bool lost = worker.lost();
  if (worker.replacements() < options_.supervision.max_device_replacements) {
    worker.replace_device();
    STARSIM_WARN << "worker " << worker.index() << ": device "
                 << (lost ? "lost" : "suspect (circuit breaker)")
                 << "; replaced (replacement "
                 << worker.replacements() << " of "
                 << options_.supervision.max_device_replacements << ")";
    return true;
  }
  // Replacement budget exhausted: retire if capacity survives elsewhere,
  // otherwise the last active worker degrades to CPU so frames keep coming.
  const std::lock_guard<std::mutex> guard(supervise_mutex_);
  if (active_workers_.load() > 1) {
    active_workers_.fetch_sub(1);
    worker.retire();
    STARSIM_WARN << "worker " << worker.index()
                 << ": replacement budget exhausted; retired ("
                 << active_workers_.load() << " workers remain)";
    return false;
  }
  worker.enter_cpu_fallback();
  STARSIM_WARN << "worker " << worker.index()
               << ": replacement budget exhausted on the last active "
                  "worker; falling back to CPU rendering";
  return true;
}

}  // namespace starsim::serve
