// FrameService — the in-process frame-serving front end.
//
// Clients submit RenderRequests and get futures; inside, the service runs
// the pipeline the large-scale simulation literature (UFig; Bai et al.)
// says heavy render traffic needs:
//
//   submit -> admission control (bounded queue: try_submit rejects when
//   full, submit blocks) -> dynamic batching (compatible requests coalesce,
//   per-scene setup paid once per batch) -> worker pool (per-worker
//   devices, optional resilience) -> LRU frame cache (bit-identical repeat
//   requests are served without rendering).
//
// Frames served through the service are bit-identical to direct
// Simulator::simulate calls with the same scene and stars — batching,
// caching and concurrency change *when* a frame is computed, never *what*.
// Aggregate stats (throughput, p50/p95/p99 latency, batch-size histogram,
// cache hit rate) come from stats(). See docs/serving.md.
#pragma once

#include <array>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sched/scheduler.h"
#include "serve/batcher.h"
#include "serve/frame_cache.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/worker_pool.h"
#include "starsim/catalog.h"
#include "starsim/projection.h"
#include "starsim/selector.h"
#include "support/stats.h"
#include "support/timer.h"
#include "trace/metrics.h"

namespace starsim::serve {

struct FrameServiceOptions {
  /// Render threads, each with a private device. 0 builds a service that
  /// admits but never executes (tests of admission/shutdown paths).
  int workers = 2;
  /// Admission bound: requests queued beyond this are rejected (try_submit)
  /// or block the submitter (submit).
  std::size_t queue_capacity = 64;
  /// Dynamic batching cap; 1 disables coalescing.
  std::size_t max_batch_size = 8;
  /// Rendered-frame LRU capacity in frames; 0 disables caching.
  std::size_t cache_capacity = 32;
  WorkerOptions worker{};
  /// Legacy Table III advisor: the fallback when use_scheduler is false
  /// (and the device/host model the default scheduler is built from).
  SimulatorSelector selector{};
  /// Cost-model-driven auto-scheduler consulted for requests with no
  /// pinned simulator. Null (the default) builds one at construction from
  /// the selector's device/host with max_batch_size as its batch hint;
  /// pass a shared instance to share one schedule cache across services.
  std::shared_ptr<sched::Scheduler> scheduler;
  /// false restores the legacy selector path verbatim (no cache, no tuner,
  /// no starsim_sched_* metric activity).
  bool use_scheduler = true;
  /// Shared catalog + camera for attitude-driven requests; prepared once,
  /// reused by every projection (the amortized "catalog prep").
  std::optional<Catalog> catalog;
  CameraModel camera{};
};

struct ServiceStats {
  std::uint64_t submitted = 0;   ///< admitted requests (incl. cache hits)
  std::uint64_t rejected = 0;    ///< bounced by admission control
  std::uint64_t completed = 0;   ///< futures resolved with a frame
  std::uint64_t failed = 0;      ///< futures resolved with an exception
  /// Lower-priority requests displaced by higher-priority admissions under
  /// overload (their futures failed with OverloadShedError; also counted
  /// in `failed`).
  std::uint64_t shed = 0;
  /// Of `shed`, requests whose own deadline had already passed when they
  /// were displaced. Without this, shedding erased the deadline-expiry
  /// attribution entirely: the request counted only as shed, and no
  /// expired_* stage recorded that its budget was blown while queued.
  std::uint64_t shed_expired = 0;
  /// shed_by_priority[band] = shed requests that held that priority
  /// (band_of(RequestPriority); low sheds first by design).
  std::array<std::uint64_t, kPriorityClasses> shed_by_priority{};
  /// Deadline expiries by detection point (all also counted in `failed`):
  /// at admission, at batch formation (the request was never rendered),
  /// and post-render (the frame finished too late to deliver).
  std::uint64_t expired_admission = 0;
  std::uint64_t expired_batch = 0;
  std::uint64_t expired_post_render = 0;
  /// Exceptions that escaped the worker batch sink (see WorkerPool).
  std::uint64_t sink_exceptions = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t batches = 0;
  /// Requests rendered under the sanitizer (RenderRequest::sanitize), and
  /// the total findings their batches reported. A non-zero findings count
  /// on a production scene is a bug in the simulator stack, not the scene.
  std::uint64_t sanitized_requests = 0;
  std::uint64_t sanitizer_findings = 0;
  /// Modeled render-time components summed over every frame the workers
  /// rendered (late deliveries included — the device did the work). These
  /// are the service-level equivalent of TimingBreakdown's kernel vs
  /// non-kernel split, and the totals a trace's kernel_launch spans must
  /// agree with.
  double render_kernel_s = 0.0;
  double render_non_kernel_s = 0.0;
  double render_wall_s = 0.0;
  /// gpusim kernel-counter totals over every rendered frame.
  std::uint64_t kernel_flops = 0;
  std::uint64_t kernel_global_bytes = 0;
  std::uint64_t kernel_atomic_ops = 0;
  std::uint64_t kernel_texture_fetches = 0;
  /// batch_size_histogram[s] = batches of size s ([0] unused).
  std::vector<std::uint64_t> batch_size_histogram;
  /// Quantiles/mean of per-request total latency (submit -> response).
  support::TailQuantiles latency;
  double mean_latency_s = 0.0;
  double elapsed_s = 0.0;        ///< service lifetime so far
  double throughput_rps = 0.0;   ///< completed / elapsed
  FrameCache::Stats cache;
  /// Auto-scheduler counters (zero when use_scheduler is false): schedule
  /// cache traffic, tuner invocations, modeled tuned-vs-fallback seconds.
  sched::SchedulerStats sched;

  [[nodiscard]] double cache_hit_rate() const { return cache.hit_rate(); }
  [[nodiscard]] double mean_batch_size() const;
  [[nodiscard]] std::uint64_t expired_total() const {
    return expired_admission + expired_batch + expired_post_render;
  }
  /// Every admitted request is exactly one of completed or failed once the
  /// service has quiesced; anything else is a stuck (never-resolved)
  /// future. The chaos harness asserts this reaches zero.
  [[nodiscard]] std::uint64_t in_flight() const {
    return submitted - completed - failed;
  }
};

class FrameService {
 public:
  explicit FrameService(FrameServiceOptions options = {});
  ~FrameService();

  FrameService(const FrameService&) = delete;
  FrameService& operator=(const FrameService&) = delete;

  /// Blocking admission: waits for queue space under overload. Throws
  /// support::Error when the service is stopped. Invalid requests (bad
  /// scene, unsupported simulator, attitude without a catalog) throw
  /// synchronously — they never consume queue space. A request whose
  /// deadline has already expired (deadline_s <= 0) is admitted but its
  /// future fails immediately with DeadlineExceededError.
  [[nodiscard]] std::future<RenderResponse> submit(RenderRequest request);

  /// Non-blocking admission with priority-aware load shedding: when the
  /// queue is full but holds lower-priority work, the youngest such
  /// request is displaced (its future fails with OverloadShedError, a
  /// `shed` tick) and this one takes its place. nullopt (and a `rejected`
  /// tick) when the queue is full of equal-or-higher-priority work or the
  /// service is stopped.
  [[nodiscard]] std::optional<std::future<RenderResponse>> try_submit(
      RenderRequest request);

  /// submit + wait: the synchronous convenience path.
  [[nodiscard]] RenderResponse render(RenderRequest request);

  /// Stop admission, drain every queued request through the workers, join
  /// them. Requests that no worker will ever run (workers == 0) fail their
  /// futures. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] bool stopped() const;

  /// Drop all cached frames (counters survive).
  void invalidate_cache();
  /// Drop one cached frame by request fingerprint; true when it existed.
  bool invalidate_cached_frame(std::uint64_t fingerprint);

  [[nodiscard]] ServiceStats stats() const;
  /// Worker-pool supervision snapshot: per-worker state, device
  /// replacements, quarantines, failure streaks (docs/resilience.md).
  [[nodiscard]] PoolHealth health() const;
  /// One Prometheus text-exposition scrape unifying ServiceStats, queue
  /// depth, PoolHealth, cache stats, gpusim kernel-counter totals and
  /// sanitizer findings (docs/observability.md lists every family). When
  /// `instance` is non-empty every sample carries an `instance` label, so N
  /// services (fleet shards) can be scraped side by side without family
  /// collisions.
  [[nodiscard]] std::string scrape_metrics(
      std::string_view instance = {}) const;
  /// The metric families behind scrape_metrics(), un-rendered, for callers
  /// that aggregate several services into one exposition (the fleet router
  /// merges same-named families across shards — Prometheus requires each
  /// family to appear exactly once per scrape).
  [[nodiscard]] std::vector<trace::MetricFamily> metric_families(
      std::string_view instance = {}) const;
  [[nodiscard]] const FrameServiceOptions& options() const { return options_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  /// The auto-scheduler admission consults (null iff use_scheduler is
  /// false). Exposed for warm-start cache load/save around a service's
  /// lifetime (serve-bench's --schedule-cache).
  [[nodiscard]] const std::shared_ptr<sched::Scheduler>& scheduler() const {
    return options_.scheduler;
  }

 private:
  /// Validate + resolve a request into its queued form (stars projected,
  /// simulator resolved, fingerprints computed). Throws on invalid input.
  QueuedRequest admit(RenderRequest&& request);

  /// Serve from cache if possible; on hit returns the ready future.
  std::optional<std::future<RenderResponse>> serve_from_cache(
      QueuedRequest& queued);

  /// Fail an admitted-but-expired request's future with
  /// DeadlineExceededError; `counter` is the stage-specific expiry counter.
  void expire_request(QueuedRequest& queued, std::uint64_t& counter,
                      const char* stage);

  /// Render a batch and deliver every promise; false when the render threw
  /// (the worker pool's circuit breaker counts consecutive failures).
  bool execute_batch(Batch&& batch, Worker& worker);

  void record_completion(double total_latency_s);

  FrameServiceOptions options_;
  support::WallTimer lifetime_;
  BoundedQueue<QueuedRequest> queue_;
  FrameCache cache_;
  Batcher batcher_;

  mutable std::mutex stats_mutex_;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t shed_expired_ = 0;
  std::array<std::uint64_t, kPriorityClasses> shed_by_priority_{};
  std::uint64_t expired_admission_ = 0;
  std::uint64_t expired_batch_ = 0;
  std::uint64_t expired_post_render_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t sanitized_requests_ = 0;
  std::uint64_t sanitizer_findings_ = 0;
  double render_kernel_s_ = 0.0;
  double render_non_kernel_s_ = 0.0;
  double render_wall_s_ = 0.0;
  std::uint64_t kernel_flops_ = 0;
  std::uint64_t kernel_global_bytes_ = 0;
  std::uint64_t kernel_atomic_ops_ = 0;
  std::uint64_t kernel_texture_fetches_ = 0;
  std::vector<std::uint64_t> batch_size_histogram_;
  std::vector<double> latency_samples_;

  mutable std::mutex stop_mutex_;
  bool stopped_ = false;

  // Last member: its threads touch everything above, so it must die first.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace starsim::serve
