#include "serve/frame_cache.h"

#include <utility>

namespace starsim::serve {

std::optional<CachedFrame> FrameCache::lookup(std::uint64_t key) {
  if (!enabled()) return std::nullopt;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_ += 1;
    return std::nullopt;
  }
  hits_ += 1;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.frame;
}

void FrameCache::insert(std::uint64_t key, CachedFrame frame) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  insertions_ += 1;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.frame = std::move(frame);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  if (entries_.size() >= capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    evictions_ += 1;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(frame), lru_.begin()});
}

bool FrameCache::invalidate(std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  return true;
}

void FrameCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  entries_.clear();
}

FrameCache::Stats FrameCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.size = entries_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace starsim::serve
