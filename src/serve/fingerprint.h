// Scene/request fingerprints — the serving layer's identity function.
//
// Batching compatibility ("may these requests share one lookup table /
// texture setup?") and cache identity ("is this frame already rendered?")
// both reduce to hashing: two scenes batch together iff every model
// parameter is bit-equal, and a request hits the cache iff scene, star
// field and simulator all match. FNV-1a over the exact bit patterns keeps
// this deterministic across runs and platforms with the same float layout —
// no tolerance, no canonicalization: a simulator would render bit-different
// frames for any difference these hashes see.
#pragma once

#include <cstdint>
#include <span>

#include "starsim/scene.h"
#include "starsim/simulator.h"
#include "starsim/star.h"

namespace starsim::serve {

/// 64-bit FNV-1a over the scene's model parameters (field by field, so
/// struct padding never leaks into the hash).
[[nodiscard]] std::uint64_t fingerprint_scene(const SceneConfig& scene);

/// Full request identity: scene, resolved star field, simulator kind.
[[nodiscard]] std::uint64_t fingerprint_request(const SceneConfig& scene,
                                                std::span<const Star> stars,
                                                SimulatorKind simulator);

}  // namespace starsim::serve
