// Worker pool: N render threads, each owning a private simulated device,
// under a supervisor that keeps capacity alive when devices fail.
//
// Determinism is the design constraint: frames served concurrently must be
// bit-identical to frames rendered alone (the test suite checks this).
// gpusim Devices are stateful (transfer stats, texture slots, caches), so
// workers never share one — each worker constructs its own Device from the
// configured spec and lazily instantiates one simulator per kind on it,
// exactly the per-device sharding MultiGpuSimulator uses for capacity and
// ResilientExecutor wraps for fault handling.
//
// Supervision (docs/resilience.md, "service-level recovery ladder"): after
// every batch the pool checks the worker's device. A device that dropped
// off the bus (latched DeviceLostError), or a sink that failed
// `circuit_breaker_threshold` consecutive batches, quarantines the worker;
// the supervisor then *replaces* the device with a freshly constructed one
// (re-seeding the worker's fault injector — a new physical unit has a new
// fault schedule), bounded by `max_device_replacements` per worker. When
// the budget is exhausted the worker retires (the pool runs on with reduced
// capacity) — unless it is the last active worker, which instead falls back
// to CPU-only rendering so the service keeps emitting frames. health()
// snapshots all of this per worker.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string_view>
#include <thread>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/fault_injector.h"
#include "serve/batcher.h"
#include "starsim/lookup_table.h"
#include "starsim/resilient_executor.h"
#include "starsim/simulator.h"

namespace starsim::serve {

/// When and how the pool replaces failing workers.
struct SupervisionPolicy {
  /// Fresh devices a quarantined worker may receive before it retires (or,
  /// as the last active worker, falls back to CPU rendering). 0 disables
  /// replacement entirely — the first quarantine retires the worker.
  int max_device_replacements = 2;
  /// Consecutive failed batches on one worker before the supervisor treats
  /// the device as suspect and quarantines it even without a latched
  /// DeviceLostError. 0 disables the circuit breaker.
  int circuit_breaker_threshold = 3;
};

struct WorkerOptions {
  gpusim::DeviceSpec device = gpusim::DeviceSpec::gtx480();
  /// Lookup-table geometry for adaptive simulators on this worker. Finer
  /// tables cost more per build — exactly the setup dynamic batching
  /// amortizes — and buy per-frame accuracy.
  LookupTableOptions lut{};
  /// Wrap every simulator in a ResilientExecutor degradation chain
  /// (requested kind -> cpu-parallel -> sequential) so a faulted frame
  /// retries or degrades instead of failing its future. Note: the executor
  /// retries frame by frame, so resilient batches forgo the adaptive
  /// simulator's batched setup amortization.
  bool resilient = false;
  RetryPolicy retry{};
  SupervisionPolicy supervision{};
  /// Per-worker fault injection (the chaos harness's entry point): each
  /// worker owns a FaultInjector built from this policy with the seed
  /// decorrelated by worker index, attached to its private device. nullopt
  /// (production) attaches nothing and costs nothing.
  std::optional<gpusim::FaultPolicy> fault_policy;
  /// Worker-wide sanitizer mode: every worker device runs instrumented and
  /// every response carries the batch's SanitizerReport. kOff (production)
  /// costs one untaken branch per device operation; individual requests can
  /// still opt in per batch via RenderRequest::sanitize.
  gpusim::SanitizerMode sanitize = gpusim::SanitizerMode::kOff;
  /// Test/bench hook: sleep this long at the top of every render, making
  /// the whole service an artificial straggler. The fleet layer's hedging
  /// benchmarks point this at one shard to model a slow replica; 0
  /// (production) costs nothing.
  double debug_straggler_ms = 0.0;
};

/// Lifecycle of one supervised worker.
enum class WorkerState : int {
  kHealthy = 0,
  /// Device declared failed; replacement pending or exhausted. Transient —
  /// visible only between detection and the supervisor's decision.
  kQuarantined = 1,
  /// Replacement budget exhausted on the last active worker: renders every
  /// batch on CPU simulators (responses flag `degraded` for GPU kinds).
  kCpuFallback = 2,
  /// Replacement budget exhausted with other workers still active: thread
  /// exited, capacity reduced.
  kRetired = 3,
};

[[nodiscard]] std::string_view to_string(WorkerState state);

/// Point-in-time view of one worker, from WorkerPool::health().
struct WorkerHealth {
  int index = 0;
  WorkerState state = WorkerState::kHealthy;
  int device_replacements = 0;  ///< fresh devices this worker received
  int quarantines = 0;          ///< times the supervisor declared it failed
  int consecutive_failures = 0; ///< current failed-batch streak (breaker arm)
  std::uint64_t batches_ok = 0;
  std::uint64_t batches_failed = 0;
};

/// Point-in-time view of the pool.
struct PoolHealth {
  std::vector<WorkerHealth> workers;
  /// Workers currently able to take batches (healthy or CPU fallback).
  int active_workers = 0;
  int total_device_replacements = 0;
  int total_quarantines = 0;
  /// Exceptions that escaped the batch sink (which owns promise delivery —
  /// anything escaping it is a bug worth counting, not swallowing silently).
  std::uint64_t sink_exceptions = 0;

  /// True when any worker is running below its configured capability.
  [[nodiscard]] bool degraded() const {
    for (const WorkerHealth& w : workers) {
      if (w.state != WorkerState::kHealthy) return true;
    }
    return false;
  }
};

/// One worker's render context. Render paths are single-threaded (owned by
/// one pool thread); the health counters are atomics so the supervisor's
/// snapshot can read them from any thread.
class Worker {
 public:
  Worker(int index, const WorkerOptions& options);

  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] gpusim::Device& device() { return *device_; }
  [[nodiscard]] gpusim::FaultInjector* fault_injector() {
    return injector_.get();
  }

  /// The simulator serving `kind` on this worker's device, constructed on
  /// first use. Throws PreconditionError for kinds a single-device worker
  /// cannot host (multi-GPU).
  [[nodiscard]] Simulator& simulator(SimulatorKind kind);

  /// What a batch render actually did, frame by frame.
  struct RenderOutcome {
    std::vector<SimulationResult> results;
    /// Simulator that produced frame i — the requested kind unless CPU
    /// fallback or a resilient chain degraded it.
    std::vector<SimulatorKind> executed;
    /// Findings from this batch's device operations. mode == kOff (and the
    /// report empty) unless the batch was sanitized — by request or by
    /// WorkerOptions::sanitize.
    gpusim::SanitizerReport sanitizer;
  };

  /// Render a batch through the kind's batch entry point (or frame by
  /// frame through the resilient chain when configured). `sanitize` runs
  /// the whole batch under SanitizerMode::kAll regardless of the worker's
  /// standing mode and collects the findings into the outcome.
  [[nodiscard]] RenderOutcome render(const SceneConfig& scene,
                                     SimulatorKind kind,
                                     std::span<const StarField> fields,
                                     bool sanitize = false);

  /// True when this worker's device has latched as lost.
  [[nodiscard]] bool lost() const {
    return device_ != nullptr && device_->lost();
  }

  // --- Supervision (called by the owning pool thread only) -------------------
  /// Tear down every simulator, construct a fresh Device from the spec, and
  /// re-seed + re-attach the fault injector (a replacement unit has its own
  /// fault schedule). Returns the worker to kHealthy.
  void replace_device();
  void note_quarantined();
  void enter_cpu_fallback();
  void retire();
  void note_batch(bool ok);

  // --- Health (readable from any thread) -------------------------------------
  [[nodiscard]] WorkerState state() const { return state_.load(); }
  [[nodiscard]] int replacements() const { return replacements_.load(); }
  [[nodiscard]] int consecutive_failures() const {
    return consecutive_failures_.load();
  }
  [[nodiscard]] WorkerHealth health() const;

 private:
  [[nodiscard]] std::uint64_t injector_seed(int generation) const;

  int index_;
  WorkerOptions options_;
  std::unique_ptr<gpusim::FaultInjector> injector_;  // may be null
  std::unique_ptr<gpusim::Device> device_;
  std::array<std::unique_ptr<Simulator>, 6> simulators_;  // indexed by kind

  std::atomic<WorkerState> state_{WorkerState::kHealthy};
  std::atomic<int> replacements_{0};
  std::atomic<int> quarantines_{0};
  std::atomic<int> consecutive_failures_{0};
  std::atomic<std::uint64_t> batches_ok_{0};
  std::atomic<std::uint64_t> batches_failed_{0};
};

class WorkerPool {
 public:
  /// Blocking batch supplier; nullopt tells the worker to exit (queue
  /// closed and drained).
  using BatchSource = std::function<std::optional<Batch>()>;
  /// Batch executor; must deliver every request's promise (value or
  /// exception) and return true iff the batch produced frames. An exception
  /// escaping the sink is counted, logged, and treated as a failed batch —
  /// one bad batch cannot kill a worker thread.
  using BatchSink = std::function<bool(Batch&&, Worker&)>;

  /// Spawns `workers` threads immediately.
  WorkerPool(int workers, const WorkerOptions& options, BatchSource source,
             BatchSink sink);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Wait for every worker to exit (source must be returning nullopt or
  /// this blocks). Idempotent.
  void join();

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Point-in-time health snapshot; callable from any thread, any time.
  [[nodiscard]] PoolHealth health() const;

  /// Exceptions that escaped the batch sink so far.
  [[nodiscard]] std::uint64_t sink_exceptions() const {
    return sink_exceptions_.load();
  }

 private:
  void run(Worker& worker);
  /// Quarantine + replace/retire/fallback decision for a failed worker.
  /// False => the worker retired and its thread must exit.
  [[nodiscard]] bool supervise(Worker& worker);

  WorkerOptions options_;
  BatchSource source_;
  BatchSink sink_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::atomic<std::uint64_t> sink_exceptions_{0};
  std::atomic<int> active_workers_{0};
  /// Serializes retire-vs-fallback decisions so two workers exhausting
  /// their budgets at once cannot both retire and leave the queue dead.
  std::mutex supervise_mutex_;
};

}  // namespace starsim::serve
