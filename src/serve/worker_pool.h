// Worker pool: N render threads, each owning a private simulated device.
//
// Determinism is the design constraint: frames served concurrently must be
// bit-identical to frames rendered alone (the test suite checks this).
// gpusim Devices are stateful (transfer stats, texture slots, caches), so
// workers never share one — each worker constructs its own Device from the
// configured spec and lazily instantiates one simulator per kind on it,
// exactly the per-device sharding MultiGpuSimulator uses for capacity and
// ResilientExecutor wraps for fault handling.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "gpusim/device.h"
#include "serve/batcher.h"
#include "starsim/lookup_table.h"
#include "starsim/resilient_executor.h"
#include "starsim/simulator.h"

namespace starsim::serve {

struct WorkerOptions {
  gpusim::DeviceSpec device = gpusim::DeviceSpec::gtx480();
  /// Lookup-table geometry for adaptive simulators on this worker. Finer
  /// tables cost more per build — exactly the setup dynamic batching
  /// amortizes — and buy per-frame accuracy.
  LookupTableOptions lut{};
  /// Wrap every simulator in a ResilientExecutor degradation chain
  /// (requested kind -> cpu-parallel -> sequential) so a faulted frame
  /// retries or degrades instead of failing its future. Note: the executor
  /// retries frame by frame, so resilient batches forgo the adaptive
  /// simulator's batched setup amortization.
  bool resilient = false;
  RetryPolicy retry{};
};

/// One worker's render context. Not thread-safe — owned by one pool thread
/// (or used single-threaded in tests).
class Worker {
 public:
  Worker(int index, const WorkerOptions& options);

  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] gpusim::Device& device() { return *device_; }

  /// The simulator serving `kind` on this worker's device, constructed on
  /// first use. Throws PreconditionError for kinds a single-device worker
  /// cannot host (multi-GPU).
  [[nodiscard]] Simulator& simulator(SimulatorKind kind);

  /// Render a batch through the kind's batch entry point.
  [[nodiscard]] std::vector<SimulationResult> render(
      const SceneConfig& scene, SimulatorKind kind,
      std::span<const StarField> fields);

 private:
  int index_;
  WorkerOptions options_;
  std::unique_ptr<gpusim::Device> device_;
  std::array<std::unique_ptr<Simulator>, 6> simulators_;  // indexed by kind
};

class WorkerPool {
 public:
  /// Blocking batch supplier; nullopt tells the worker to exit (queue
  /// closed and drained).
  using BatchSource = std::function<std::optional<Batch>()>;
  /// Batch executor; must deliver every request's promise (value or
  /// exception) — an exception escaping the sink is swallowed so one bad
  /// batch cannot kill a worker thread.
  using BatchSink = std::function<void(Batch&&, Worker&)>;

  /// Spawns `workers` threads immediately.
  WorkerPool(int workers, const WorkerOptions& options, BatchSource source,
             BatchSink sink);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Wait for every worker to exit (source must be returning nullopt or
  /// this blocks). Idempotent.
  void join();

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

 private:
  void run(Worker& worker);

  BatchSource source_;
  BatchSink sink_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
};

}  // namespace starsim::serve
