// Windows BMP writer/reader (BITMAPINFOHEADER, uncompressed).
//
// The paper's Output stage writes "a kind of common picture type like JPG,
// BMP"; we implement BMP from scratch (24-bit BGR and 8-bit paletted
// grayscale) so rendered star fields can be inspected with any viewer.
// Rows are stored bottom-up and padded to 4 bytes per the format.
#pragma once

#include <string>

#include "imageio/image.h"

namespace starsim::imageio {

/// Write an 8-bit grayscale image as an 8-bpp BMP with a 256-entry gray
/// palette. Throws IoError on failure.
void write_bmp_gray8(const ImageU8& image, const std::string& path);

/// Write an 8-bit grayscale image as a 24-bpp BMP (R=G=B). Throws IoError.
void write_bmp_rgb24(const ImageU8& image, const std::string& path);

/// Read a BMP produced by either writer back into a grayscale image
/// (24-bpp inputs are read as the green channel; 8-bpp inputs through the
/// palette's green component). Throws IoError on malformed input.
ImageU8 read_bmp_gray(const std::string& path);

}  // namespace starsim::imageio
