#include "imageio/bmp.h"

#include <array>
#include <cstdint>
#include <fstream>
#include <vector>

#include "support/error.h"

namespace starsim::imageio {

namespace {

using support::IoError;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

std::uint16_t get_u16(const std::vector<std::uint8_t>& in, std::size_t off) {
  STARSIM_REQUIRE(off + 2 <= in.size(), "BMP truncated");
  return static_cast<std::uint16_t>(in[off] | (in[off + 1] << 8));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t off) {
  STARSIM_REQUIRE(off + 4 <= in.size(), "BMP truncated");
  return static_cast<std::uint32_t>(in[off]) |
         (static_cast<std::uint32_t>(in[off + 1]) << 8) |
         (static_cast<std::uint32_t>(in[off + 2]) << 16) |
         (static_cast<std::uint32_t>(in[off + 3]) << 24);
}

std::size_t padded_row_bytes(std::size_t raw) { return (raw + 3u) & ~3u; }

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw IoError("cannot open BMP output file: " + path);
  file.write(reinterpret_cast<const char*>(b.data()),
             static_cast<std::streamsize>(b.size()));
  if (!file.good()) throw IoError("failed writing BMP file: " + path);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw IoError("cannot open BMP input file: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                                  std::istreambuf_iterator<char>());
  return bytes;
}

// Emit the 14-byte file header plus the 40-byte BITMAPINFOHEADER.
void put_headers(std::vector<std::uint8_t>& out, int width, int height,
                 std::uint16_t bpp, std::uint32_t palette_entries,
                 std::uint32_t image_bytes) {
  const std::uint32_t data_offset = 14 + 40 + palette_entries * 4;
  put_u16(out, 0x4d42);  // 'BM'
  put_u32(out, data_offset + image_bytes);
  put_u32(out, 0);  // reserved
  put_u32(out, data_offset);
  put_u32(out, 40);  // BITMAPINFOHEADER size
  put_u32(out, static_cast<std::uint32_t>(width));
  put_u32(out, static_cast<std::uint32_t>(height));
  put_u16(out, 1);  // planes
  put_u16(out, bpp);
  put_u32(out, 0);  // BI_RGB (uncompressed)
  put_u32(out, image_bytes);
  put_u32(out, 2835);  // ~72 DPI
  put_u32(out, 2835);
  put_u32(out, palette_entries);
  put_u32(out, palette_entries);
}

}  // namespace

void write_bmp_gray8(const ImageU8& image, const std::string& path) {
  STARSIM_REQUIRE(!image.empty(), "cannot write empty image");
  const auto raw_row = static_cast<std::size_t>(image.width());
  const std::size_t row_bytes = padded_row_bytes(raw_row);
  const auto image_bytes =
      static_cast<std::uint32_t>(row_bytes * static_cast<std::size_t>(image.height()));

  std::vector<std::uint8_t> out;
  out.reserve(14 + 40 + 256 * 4 + image_bytes);
  put_headers(out, image.width(), image.height(), /*bpp=*/8,
              /*palette_entries=*/256, image_bytes);
  for (int i = 0; i < 256; ++i) {  // BGRA gray ramp palette
    out.push_back(static_cast<std::uint8_t>(i));
    out.push_back(static_cast<std::uint8_t>(i));
    out.push_back(static_cast<std::uint8_t>(i));
    out.push_back(0);
  }
  for (int y = image.height() - 1; y >= 0; --y) {  // bottom-up rows
    for (int x = 0; x < image.width(); ++x) out.push_back(image(x, y));
    for (std::size_t p = raw_row; p < row_bytes; ++p) out.push_back(0);
  }
  write_file(path, out);
}

void write_bmp_rgb24(const ImageU8& image, const std::string& path) {
  STARSIM_REQUIRE(!image.empty(), "cannot write empty image");
  const auto raw_row = static_cast<std::size_t>(image.width()) * 3u;
  const std::size_t row_bytes = padded_row_bytes(raw_row);
  const auto image_bytes =
      static_cast<std::uint32_t>(row_bytes * static_cast<std::size_t>(image.height()));

  std::vector<std::uint8_t> out;
  out.reserve(14 + 40 + image_bytes);
  put_headers(out, image.width(), image.height(), /*bpp=*/24,
              /*palette_entries=*/0, image_bytes);
  for (int y = image.height() - 1; y >= 0; --y) {
    for (int x = 0; x < image.width(); ++x) {
      const std::uint8_t g = image(x, y);
      out.push_back(g);  // B
      out.push_back(g);  // G
      out.push_back(g);  // R
    }
    for (std::size_t p = raw_row; p < row_bytes; ++p) out.push_back(0);
  }
  write_file(path, out);
}

ImageU8 read_bmp_gray(const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  STARSIM_REQUIRE(bytes.size() >= 54, "BMP too small");
  STARSIM_REQUIRE(get_u16(bytes, 0) == 0x4d42, "not a BMP file");
  const std::uint32_t data_offset = get_u32(bytes, 10);
  const std::uint32_t header_size = get_u32(bytes, 14);
  STARSIM_REQUIRE(header_size >= 40, "unsupported BMP header");
  const auto width = static_cast<std::int32_t>(get_u32(bytes, 18));
  const auto height = static_cast<std::int32_t>(get_u32(bytes, 22));
  const std::uint16_t bpp = get_u16(bytes, 28);
  const std::uint32_t compression = get_u32(bytes, 30);
  STARSIM_REQUIRE(compression == 0, "compressed BMP unsupported");
  STARSIM_REQUIRE(width > 0 && height > 0, "top-down BMP unsupported");
  STARSIM_REQUIRE(bpp == 8 || bpp == 24, "only 8/24 bpp BMP supported");

  // 8-bpp: map pixel indices through the palette's green component.
  std::array<std::uint8_t, 256> palette_green{};
  if (bpp == 8) {
    const std::size_t palette_off = 14 + header_size;
    for (int i = 0; i < 256; ++i) {
      const std::size_t entry = palette_off + static_cast<std::size_t>(i) * 4;
      if (entry + 4 <= data_offset) {
        palette_green[static_cast<std::size_t>(i)] = bytes[entry + 1];
      } else {
        palette_green[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(i);
      }
    }
  }

  ImageU8 image(width, height);
  const std::size_t raw_row =
      static_cast<std::size_t>(width) * (bpp == 24 ? 3u : 1u);
  const std::size_t row_bytes = padded_row_bytes(raw_row);
  for (int y = 0; y < height; ++y) {
    const std::size_t row_off =
        data_offset +
        static_cast<std::size_t>(height - 1 - y) * row_bytes;
    STARSIM_REQUIRE(row_off + raw_row <= bytes.size(), "BMP truncated");
    for (int x = 0; x < width; ++x) {
      if (bpp == 24) {
        image(x, y) = bytes[row_off + static_cast<std::size_t>(x) * 3 + 1];
      } else {
        image(x, y) =
            palette_green[bytes[row_off + static_cast<std::size_t>(x)]];
      }
    }
  }
  return image;
}

}  // namespace starsim::imageio
