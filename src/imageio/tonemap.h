// Float accumulation surface -> displayable gray image.
//
// The intensity model accumulates unbounded float flux per pixel; sensors
// clip at full well and quantize. Tonemap options model that output stage:
// linear scale with saturation (the paper's implicit mapping), optional gamma
// for display, and an auto-exposure mode that maps a chosen percentile of the
// nonzero flux to full scale so sparse star fields remain visible.
#pragma once

#include <cstdint>

#include "imageio/image.h"

namespace starsim::imageio {

struct TonemapOptions {
  /// Flux value mapped to full scale; values above clip. Ignored when
  /// auto_expose is true.
  float full_scale = 1.0f;
  /// Display gamma applied after normalization (1 = linear).
  float gamma = 1.0f;
  /// When true, full_scale is derived from the `percentile` of nonzero flux.
  bool auto_expose = false;
  /// Percentile in (0, 100] used by auto exposure.
  float percentile = 99.5f;
};

/// Quantize to 8 bits.
ImageU8 tonemap_u8(const ImageF& flux, const TonemapOptions& options = {});

/// Quantize to 16 bits.
ImageU16 tonemap_u16(const ImageF& flux, const TonemapOptions& options = {});

/// The full-scale value auto exposure would pick for this image.
float auto_full_scale(const ImageF& flux, float percentile);

}  // namespace starsim::imageio
