// Portable anymap (PGM/PPM) writers and readers.
//
// PGM is the working format for test goldens and quick inspection: binary
// (P5) grayscale at 8 or 16 bits. P6 PPM is provided for false-color debug
// renders. 16-bit samples are big-endian per the netpbm specification.
#pragma once

#include <string>

#include "imageio/image.h"

namespace starsim::imageio {

/// Write an 8-bit binary PGM (P5, maxval 255).
void write_pgm8(const ImageU8& image, const std::string& path);

/// Write a 16-bit binary PGM (P5, maxval 65535, big-endian samples).
void write_pgm16(const ImageU16& image, const std::string& path);

/// Read an 8-bit binary PGM. Throws IoError on malformed input.
ImageU8 read_pgm8(const std::string& path);

/// Read a 16-bit binary PGM. Throws IoError on malformed input.
ImageU16 read_pgm16(const std::string& path);

/// Write an RGB triple-plane image as binary PPM (P6); the three planes must
/// be equally sized.
void write_ppm(const ImageU8& r, const ImageU8& g, const ImageU8& b,
               const std::string& path);

}  // namespace starsim::imageio
