#include "imageio/pnm.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "support/error.h"

namespace starsim::imageio {

namespace {

using support::IoError;

void open_out(std::ofstream& file, const std::string& path) {
  file.open(path, std::ios::binary | std::ios::trunc);
  if (!file) throw IoError("cannot open PNM output file: " + path);
}

struct PnmHeader {
  std::string magic;
  int width = 0;
  int height = 0;
  int maxval = 0;
  std::size_t data_offset = 0;
};

// Parse a PNM header, honoring '#' comments; returns the offset of the first
// raster byte (one whitespace char after maxval).
PnmHeader parse_header(const std::vector<char>& bytes) {
  PnmHeader h;
  std::size_t pos = 0;
  auto skip_space = [&] {
    while (pos < bytes.size()) {
      if (bytes[pos] == '#') {
        while (pos < bytes.size() && bytes[pos] != '\n') ++pos;
      } else if (std::isspace(static_cast<unsigned char>(bytes[pos]))) {
        ++pos;
      } else {
        break;
      }
    }
  };
  auto next_token = [&]() -> std::string {
    skip_space();
    std::string token;
    while (pos < bytes.size() &&
           !std::isspace(static_cast<unsigned char>(bytes[pos]))) {
      token += bytes[pos++];
    }
    STARSIM_REQUIRE(!token.empty(), "PNM header truncated");
    return token;
  };
  h.magic = next_token();
  h.width = std::stoi(next_token());
  h.height = std::stoi(next_token());
  h.maxval = std::stoi(next_token());
  STARSIM_REQUIRE(pos < bytes.size(), "PNM raster missing");
  h.data_offset = pos + 1;  // exactly one whitespace byte after maxval
  STARSIM_REQUIRE(h.width > 0 && h.height > 0, "invalid PNM dimensions");
  return h;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw IoError("cannot open PNM input file: " + path);
  return {std::istreambuf_iterator<char>(file),
          std::istreambuf_iterator<char>()};
}

}  // namespace

void write_pgm8(const ImageU8& image, const std::string& path) {
  STARSIM_REQUIRE(!image.empty(), "cannot write empty image");
  std::ofstream file;
  open_out(file, path);
  file << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  file.write(reinterpret_cast<const char*>(image.data()),
             static_cast<std::streamsize>(image.pixel_count()));
  if (!file.good()) throw IoError("failed writing PGM file: " + path);
}

void write_pgm16(const ImageU16& image, const std::string& path) {
  STARSIM_REQUIRE(!image.empty(), "cannot write empty image");
  std::ofstream file;
  open_out(file, path);
  file << "P5\n" << image.width() << ' ' << image.height() << "\n65535\n";
  std::vector<char> row(static_cast<std::size_t>(image.width()) * 2);
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const std::uint16_t v = image(x, y);
      row[static_cast<std::size_t>(x) * 2] = static_cast<char>(v >> 8);
      row[static_cast<std::size_t>(x) * 2 + 1] = static_cast<char>(v & 0xff);
    }
    file.write(row.data(), static_cast<std::streamsize>(row.size()));
  }
  if (!file.good()) throw IoError("failed writing PGM file: " + path);
}

ImageU8 read_pgm8(const std::string& path) {
  const auto bytes = read_file(path);
  const PnmHeader h = parse_header(bytes);
  STARSIM_REQUIRE(h.magic == "P5", "not a binary PGM");
  STARSIM_REQUIRE(h.maxval == 255, "expected 8-bit PGM");
  ImageU8 image(h.width, h.height);
  const std::size_t need = image.pixel_count();
  STARSIM_REQUIRE(h.data_offset + need <= bytes.size(), "PGM truncated");
  for (std::size_t i = 0; i < need; ++i) {
    image.pixels()[i] = static_cast<std::uint8_t>(bytes[h.data_offset + i]);
  }
  return image;
}

ImageU16 read_pgm16(const std::string& path) {
  const auto bytes = read_file(path);
  const PnmHeader h = parse_header(bytes);
  STARSIM_REQUIRE(h.magic == "P5", "not a binary PGM");
  STARSIM_REQUIRE(h.maxval == 65535, "expected 16-bit PGM");
  ImageU16 image(h.width, h.height);
  const std::size_t need = image.pixel_count() * 2;
  STARSIM_REQUIRE(h.data_offset + need <= bytes.size(), "PGM truncated");
  for (std::size_t i = 0; i < image.pixel_count(); ++i) {
    const auto hi =
        static_cast<std::uint8_t>(bytes[h.data_offset + i * 2]);
    const auto lo =
        static_cast<std::uint8_t>(bytes[h.data_offset + i * 2 + 1]);
    image.pixels()[i] = static_cast<std::uint16_t>((hi << 8) | lo);
  }
  return image;
}

void write_ppm(const ImageU8& r, const ImageU8& g, const ImageU8& b,
               const std::string& path) {
  STARSIM_REQUIRE(!r.empty(), "cannot write empty image");
  STARSIM_REQUIRE(r.width() == g.width() && r.width() == b.width() &&
                      r.height() == g.height() && r.height() == b.height(),
                  "PPM planes must be equally sized");
  std::ofstream file;
  open_out(file, path);
  file << "P6\n" << r.width() << ' ' << r.height() << "\n255\n";
  std::vector<char> row(static_cast<std::size_t>(r.width()) * 3);
  for (int y = 0; y < r.height(); ++y) {
    for (int x = 0; x < r.width(); ++x) {
      row[static_cast<std::size_t>(x) * 3] = static_cast<char>(r(x, y));
      row[static_cast<std::size_t>(x) * 3 + 1] = static_cast<char>(g(x, y));
      row[static_cast<std::size_t>(x) * 3 + 2] = static_cast<char>(b(x, y));
    }
    file.write(row.data(), static_cast<std::streamsize>(row.size()));
  }
  if (!file.good()) throw IoError("failed writing PPM file: " + path);
}

}  // namespace starsim::imageio
