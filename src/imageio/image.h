// Row-major image container.
//
// `Image<float>` is the accumulation surface of every simulator (pixel gray
// values before tonemapping); `Image<std::uint8_t>` / `Image<std::uint16_t>`
// are the quantized outputs written to disk. Pixels are stored row-major with
// y growing downward, matching both the intensity model's image-plane
// convention and the BMP/PGM writers.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "support/error.h"

namespace starsim::imageio {

template <typename T>
class Image {
 public:
  Image() = default;

  /// Create a width x height image, zero-initialized (or `fill`-initialized).
  Image(int width, int height, T fill = T{})
      : width_(width), height_(height) {
    STARSIM_REQUIRE(width > 0 && height > 0,
                    "image dimensions must be positive");
    pixels_.assign(static_cast<std::size_t>(width) *
                       static_cast<std::size_t>(height),
                   fill);
  }

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::size_t pixel_count() const { return pixels_.size(); }
  [[nodiscard]] bool empty() const { return pixels_.empty(); }

  /// True when (x, y) lies inside the image bounds.
  [[nodiscard]] bool contains(int x, int y) const {
    return x >= 0 && y >= 0 && x < width_ && y < height_;
  }

  /// Checked pixel access.
  [[nodiscard]] T& at(int x, int y) {
    STARSIM_REQUIRE(contains(x, y), "pixel access out of bounds");
    return pixels_[index(x, y)];
  }
  [[nodiscard]] const T& at(int x, int y) const {
    STARSIM_REQUIRE(contains(x, y), "pixel access out of bounds");
    return pixels_[index(x, y)];
  }

  /// Unchecked pixel access for hot loops whose bounds are pre-validated.
  [[nodiscard]] T& operator()(int x, int y) { return pixels_[index(x, y)]; }
  [[nodiscard]] const T& operator()(int x, int y) const {
    return pixels_[index(x, y)];
  }

  /// Linear index of (x, y) in data().
  [[nodiscard]] std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  [[nodiscard]] std::span<T> pixels() { return pixels_; }
  [[nodiscard]] std::span<const T> pixels() const { return pixels_; }
  [[nodiscard]] T* data() { return pixels_.data(); }
  [[nodiscard]] const T* data() const { return pixels_.data(); }

  /// Set every pixel to `value`.
  void fill(T value) { pixels_.assign(pixels_.size(), value); }

  bool operator==(const Image& other) const = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<T> pixels_;
};

using ImageF = Image<float>;
using ImageU8 = Image<std::uint8_t>;
using ImageU16 = Image<std::uint16_t>;

/// Largest absolute pixel difference between two equally sized images.
template <typename T>
double max_abs_difference(const Image<T>& a, const Image<T>& b) {
  STARSIM_REQUIRE(a.width() == b.width() && a.height() == b.height(),
                  "image size mismatch");
  double worst = 0.0;
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const double diff =
        std::abs(static_cast<double>(pa[i]) - static_cast<double>(pb[i]));
    if (diff > worst) worst = diff;
  }
  return worst;
}

/// Sum of all pixel values (in double precision) — used by energy tests.
template <typename T>
double total_flux(const Image<T>& image) {
  double total = 0.0;
  for (const T& v : image.pixels()) total += static_cast<double>(v);
  return total;
}

}  // namespace starsim::imageio
