#include "imageio/tonemap.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.h"

namespace starsim::imageio {

namespace {

float resolve_full_scale(const ImageF& flux, const TonemapOptions& options) {
  float full_scale = options.full_scale;
  if (options.auto_expose) {
    full_scale = auto_full_scale(flux, options.percentile);
  }
  STARSIM_REQUIRE(full_scale > 0.0f, "tonemap full scale must be positive");
  return full_scale;
}

template <typename T>
Image<T> tonemap_impl(const ImageF& flux, const TonemapOptions& options,
                      double maxval) {
  STARSIM_REQUIRE(!flux.empty(), "cannot tonemap empty image");
  STARSIM_REQUIRE(options.gamma > 0.0f, "gamma must be positive");
  const double full_scale = resolve_full_scale(flux, options);
  const double inv_gamma = 1.0 / static_cast<double>(options.gamma);

  Image<T> out(flux.width(), flux.height());
  const auto src = flux.pixels();
  auto dst = out.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    double v = static_cast<double>(src[i]) / full_scale;
    v = std::clamp(v, 0.0, 1.0);
    if (inv_gamma != 1.0) v = std::pow(v, inv_gamma);
    dst[i] = static_cast<T>(std::lround(v * maxval));
  }
  return out;
}

}  // namespace

float auto_full_scale(const ImageF& flux, float percentile) {
  STARSIM_REQUIRE(percentile > 0.0f && percentile <= 100.0f,
                  "percentile must be in (0, 100]");
  std::vector<float> nonzero;
  nonzero.reserve(flux.pixel_count() / 16);
  for (float v : flux.pixels()) {
    if (v > 0.0f) nonzero.push_back(v);
  }
  if (nonzero.empty()) return 1.0f;
  const auto rank = static_cast<std::size_t>(
      static_cast<double>(percentile) / 100.0 *
      static_cast<double>(nonzero.size() - 1));
  std::nth_element(nonzero.begin(),
                   nonzero.begin() + static_cast<std::ptrdiff_t>(rank),
                   nonzero.end());
  const float scale = nonzero[rank];
  return scale > 0.0f ? scale : 1.0f;
}

ImageU8 tonemap_u8(const ImageF& flux, const TonemapOptions& options) {
  return tonemap_impl<std::uint8_t>(flux, options, 255.0);
}

ImageU16 tonemap_u16(const ImageF& flux, const TonemapOptions& options) {
  return tonemap_impl<std::uint16_t>(flux, options, 65535.0);
}

}  // namespace starsim::imageio
