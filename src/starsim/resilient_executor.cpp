#include "starsim/resilient_executor.h"

#include <cmath>
#include <exception>
#include <utility>

#include "starsim/adaptive_simulator.h"
#include "starsim/openmp_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/sequential_simulator.h"
#include "support/error.h"

namespace starsim {

void RetryPolicy::validate() const {
  STARSIM_REQUIRE(max_retries >= 0, "max_retries must be >= 0");
  STARSIM_REQUIRE(backoff_initial_s >= 0.0, "backoff must be >= 0");
  STARSIM_REQUIRE(backoff_multiplier >= 1.0,
                  "backoff multiplier must be >= 1");
}

ResilientExecutor::ResilientExecutor(
    std::vector<std::unique_ptr<Simulator>> chain, RetryPolicy policy)
    : chain_(std::move(chain)), policy_(policy) {
  STARSIM_REQUIRE(!chain_.empty(), "resilience chain must be non-empty");
  for (const auto& simulator : chain_) {
    STARSIM_REQUIRE(simulator != nullptr,
                    "resilience chain must not contain null simulators");
  }
  policy_.validate();
}

ResilientExecutor ResilientExecutor::with_default_chain(
    gpusim::Device& device, RetryPolicy policy) {
  std::vector<std::unique_ptr<Simulator>> chain;
  chain.push_back(std::make_unique<AdaptiveSimulator>(device));
  chain.push_back(std::make_unique<ParallelSimulator>(device));
  chain.push_back(std::make_unique<OpenMpSimulator>());
  chain.push_back(std::make_unique<SequentialSimulator>());
  return ResilientExecutor(std::move(chain), policy);
}

SimulationResult ResilientExecutor::simulate(const SceneConfig& scene,
                                             std::span<const Star> stars) {
  report_ = ResilienceReport{};
  std::exception_ptr last_error;

  for (std::size_t level = 0; level < chain_.size(); ++level) {
    Simulator& simulator = *chain_[level];
    for (int attempt = 0;; ++attempt) {
      ++report_.attempts;
      try {
        SimulationResult result = simulator.simulate(scene, stars);
        report_.final_simulator = std::string(simulator.name());
        report_.degraded = level > 0;
        return result;
      } catch (const support::DeviceError& error) {
        // Only device-side failures enter the recovery ladder;
        // PreconditionError and std errors propagate untouched.
        last_error = std::current_exception();
        FaultEvent event;
        event.simulator = std::string(simulator.name());
        event.error = error.what();
        event.retryable = error.retryable();
        if (error.retryable() && attempt < policy_.max_retries) {
          event.backoff_s = policy_.backoff_initial_s *
                            std::pow(policy_.backoff_multiplier, attempt);
          report_.backoff_total_s += event.backoff_s;
          report_.faults.push_back(std::move(event));
          continue;  // retry the same rung
        }
        report_.faults.push_back(std::move(event));
        break;  // degrade to the next rung
      }
    }
    ++report_.fallbacks;
  }

  // Every rung failed (possible only when the chain has no CPU rung).
  std::rethrow_exception(last_error);
}

}  // namespace starsim
