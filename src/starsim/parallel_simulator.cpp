#include "starsim/parallel_simulator.h"

#include <algorithm>
#include <cmath>

#include "starsim/device_frame.h"
#include "starsim/kernel_cost.h"
#include "starsim/psf.h"
#include "starsim/roi.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace starsim {

namespace {

using gpusim::DevicePtr;
using gpusim::ThreadCtx;
using gpusim::ThreadProgram;

/// Kernel parameters, captured by value into every thread's frame — the
/// "indicator elements" the paper passes to keep device accesses in range
/// (image extent, star count) plus the model constants.
struct KernelParams {
  DevicePtr<Star> stars;
  DevicePtr<float> image;
  std::uint32_t star_count = 0;
  int image_width = 0;
  int image_height = 0;
  int margin = 0;
  double psf_coefficient = 0.0;
  double psf_inv_two_sigma_sq = 0.0;
  double psf_inv_sqrt2_sigma = 0.0;
  bool pixel_integration = false;
  BrightnessModel brightness;
};

/// Fig. 6, line for line.
ThreadProgram parallel_kernel(ThreadCtx& ctx, KernelParams p) {
  // Step 3: excess blocks of the 2-D grid bail out.
  const std::uint64_t block_id = ctx.block_linear();
  if (block_id >= p.star_count) co_return;

  // Step 1: shared staging area (brightness, posX, posY).
  auto shared = ctx.shared_array<float>(3);

  // Step 5: the first thread computes the star's brightness once per block.
  if (ctx.thread_idx().x == 0 && ctx.thread_idx().y == 0) {
    const Star star = ctx.load(p.stars, block_id);
    double brightness = p.brightness.brightness(
        ctx, static_cast<double>(star.magnitude));
    ctx.count_flops(kernel_cost::kWeightFlops);
    brightness *= static_cast<double>(star.weight);
    shared.set(0, static_cast<float>(brightness));
    shared.set(1, star.x);
    shared.set(2, star.y);
  }

  // Step 6: no thread may read the staging area before it is written.
  co_await ctx.syncthreads();

  // Step 7: shared -> registers (read once, reuse), then pixel coordinates.
  const float brightness = shared.get(0);
  const float star_x = shared.get(1);
  const float star_y = shared.get(2);
  const int pixel_x = static_cast<int>(std::lround(star_x)) - p.margin +
                      static_cast<int>(ctx.thread_idx().x);
  const int pixel_y = static_cast<int>(std::lround(star_y)) - p.margin +
                      static_cast<int>(ctx.thread_idx().y);
  ctx.count_flops(kernel_cost::kCoordFlops + kernel_cost::kBoundsFlops);

  // Step 8: boundary test (a warp-divergent branch for border stars), PSF
  // evaluation, atomic accumulation.
  const bool inside = pixel_x >= 0 && pixel_y >= 0 &&
                      pixel_x < p.image_width && pixel_y < p.image_height;
  ctx.branch(0, inside);
  if (!inside) co_return;

  const double dx = static_cast<double>(pixel_x) - static_cast<double>(star_x);
  const double dy = static_cast<double>(pixel_y) - static_cast<double>(star_y);
  const double rate =
      p.pixel_integration
          ? gauss_integrated_rate(ctx, p.psf_inv_sqrt2_sigma, dx, dy)
          : gauss_rate(ctx, p.psf_coefficient, p.psf_inv_two_sigma_sq, dx,
                       dy);
  ctx.count_flops(kernel_cost::kAccumFlops);
  const std::size_t index =
      static_cast<std::size_t>(pixel_y) *
          static_cast<std::size_t>(p.image_width) +
      static_cast<std::size_t>(pixel_x);
  ctx.atomic_add(p.image, index,
                 static_cast<float>(static_cast<double>(brightness) * rate));
}

/// Tiled variant for ROIs beyond the block limit: one block per
/// (star, tile), each tile a tile_side^2 patch of the ROI. Thread (0,0) of
/// every tile re-stages the star (the redundancy a multi-block star costs),
/// and threads past the ROI's edge in partial tiles simply skip — a
/// divergence the counters record.
struct TiledKernelParams {
  DevicePtr<Star> stars;
  DevicePtr<float> image;
  std::uint64_t block_count = 0;  ///< stars x tiles (guards grid padding)
  std::uint32_t tiles_per_axis = 1;
  int tile_side = 0;
  int roi_side = 0;
  int image_width = 0;
  int image_height = 0;
  int margin = 0;
  double psf_coefficient = 0.0;
  double psf_inv_two_sigma_sq = 0.0;
  double psf_inv_sqrt2_sigma = 0.0;
  bool pixel_integration = false;
  BrightnessModel brightness;
};

ThreadProgram tiled_parallel_kernel(ThreadCtx& ctx, TiledKernelParams p) {
  const std::uint64_t block_id = ctx.block_linear();
  if (block_id >= p.block_count) co_return;
  const std::uint64_t tiles =
      static_cast<std::uint64_t>(p.tiles_per_axis) * p.tiles_per_axis;
  const std::uint64_t star_index = block_id / tiles;
  const auto tile = static_cast<std::uint32_t>(block_id % tiles);
  const auto tile_x = tile % p.tiles_per_axis;
  const auto tile_y = tile / p.tiles_per_axis;

  auto shared = ctx.shared_array<float>(3);
  if (ctx.thread_idx().x == 0 && ctx.thread_idx().y == 0) {
    const Star star = ctx.load(p.stars, star_index);
    double brightness =
        p.brightness.brightness(ctx, static_cast<double>(star.magnitude));
    ctx.count_flops(kernel_cost::kWeightFlops);
    brightness *= static_cast<double>(star.weight);
    shared.set(0, static_cast<float>(brightness));
    shared.set(1, star.x);
    shared.set(2, star.y);
  }
  co_await ctx.syncthreads();

  const float brightness = shared.get(0);
  const float star_x = shared.get(1);
  const float star_y = shared.get(2);

  // ROI offset of this thread within the whole (tiled) ROI.
  const auto roi_x = static_cast<int>(tile_x) * p.tile_side +
                     static_cast<int>(ctx.thread_idx().x);
  const auto roi_y = static_cast<int>(tile_y) * p.tile_side +
                     static_cast<int>(ctx.thread_idx().y);
  ctx.count_flops(kernel_cost::kCoordFlops + kernel_cost::kBoundsFlops + 2);
  // Partial edge tiles: threads beyond the ROI bail (divergent branch).
  const bool in_roi = roi_x < p.roi_side && roi_y < p.roi_side;
  ctx.branch(1, in_roi);
  if (!in_roi) co_return;

  const int pixel_x =
      static_cast<int>(std::lround(star_x)) - p.margin + roi_x;
  const int pixel_y =
      static_cast<int>(std::lround(star_y)) - p.margin + roi_y;
  const bool inside = pixel_x >= 0 && pixel_y >= 0 &&
                      pixel_x < p.image_width && pixel_y < p.image_height;
  ctx.branch(0, inside);
  if (!inside) co_return;

  const double dx = static_cast<double>(pixel_x) - static_cast<double>(star_x);
  const double dy = static_cast<double>(pixel_y) - static_cast<double>(star_y);
  const double rate =
      p.pixel_integration
          ? gauss_integrated_rate(ctx, p.psf_inv_sqrt2_sigma, dx, dy)
          : gauss_rate(ctx, p.psf_coefficient, p.psf_inv_two_sigma_sq, dx,
                       dy);
  ctx.count_flops(kernel_cost::kAccumFlops);
  const std::size_t index =
      static_cast<std::size_t>(pixel_y) *
          static_cast<std::size_t>(p.image_width) +
      static_cast<std::size_t>(pixel_x);
  ctx.atomic_add(p.image, index,
                 static_cast<float>(static_cast<double>(brightness) * rate));
}

}  // namespace

ParallelSimulator::ParallelSimulator(gpusim::Device& device,
                                     ParallelOptions options)
    : device_(device), options_(options) {
  STARSIM_REQUIRE(options_.tile_side > 0, "tile side must be positive");
}

int ParallelSimulator::max_roi_side() const {
  return static_cast<int>(
      std::floor(std::sqrt(device_.spec().max_threads_per_block)));
}

SimulationResult ParallelSimulator::simulate(const SceneConfig& scene,
                                             std::span<const Star> stars) {
  trace::TraceSpan span("starsim", "render");
  if (span.armed()) [[unlikely]] {
    span.arg("simulator", name())
        .arg("stars", stars.size())
        .arg("roi", scene.roi_side);
  }
  scene.validate();
  const long threads_per_block =
      static_cast<long>(scene.roi_side) * scene.roi_side;
  const bool needs_tiling =
      threads_per_block >
      static_cast<long>(device_.spec().max_threads_per_block);
  if (needs_tiling && !options_.allow_tiling) {
    throw support::DeviceError(
        "ROI side " + std::to_string(scene.roi_side) + " needs " +
        std::to_string(threads_per_block) +
        " threads per block, over the device limit of " +
        std::to_string(device_.spec().max_threads_per_block) +
        " (enable ParallelOptions::allow_tiling to lift this)");
  }
  const bool use_tiling =
      options_.allow_tiling &&
      (needs_tiling || scene.roi_side > options_.tile_side);

  const support::WallTimer wall;
  SimulationResult result;
  result.image = imageio::ImageF(scene.image_width, scene.image_height);
  if (stars.empty()) {
    result.timing.wall_s = wall.seconds();
    return result;
  }

  device_.reset_transfer_stats();
  DeviceFrame frame(device_, scene, stars);

  const GaussianPsf psf(scene.psf_sigma);
  gpusim::LaunchResult launch;
  if (use_tiling) {
    TiledKernelParams params;
    params.stars = frame.stars();
    params.image = frame.image();
    const int tile = std::min(options_.tile_side, scene.roi_side);
    params.tile_side = tile;
    params.tiles_per_axis =
        static_cast<std::uint32_t>((scene.roi_side + tile - 1) / tile);
    params.block_count = stars.size() *
                         static_cast<std::uint64_t>(params.tiles_per_axis) *
                         params.tiles_per_axis;
    params.roi_side = scene.roi_side;
    params.image_width = scene.image_width;
    params.image_height = scene.image_height;
    params.margin = Roi(scene.roi_side).margin();
    params.psf_coefficient = psf.coefficient();
    params.psf_inv_two_sigma_sq = psf.inv_two_sigma_sq();
    params.psf_inv_sqrt2_sigma = psf.inv_sqrt2_sigma();
    params.pixel_integration = scene.pixel_integration;
    params.brightness = scene.brightness;

    gpusim::LaunchConfig config =
        star_centric_config(params.block_count, tile);
    launch = device_.launch(config, [&params](ThreadCtx& ctx) {
      return tiled_parallel_kernel(ctx, params);
    });
  } else {
    KernelParams params;
    params.stars = frame.stars();
    params.image = frame.image();
    params.star_count = static_cast<std::uint32_t>(stars.size());
    params.image_width = scene.image_width;
    params.image_height = scene.image_height;
    params.margin = Roi(scene.roi_side).margin();
    params.psf_coefficient = psf.coefficient();
    params.psf_inv_two_sigma_sq = psf.inv_two_sigma_sq();
    params.psf_inv_sqrt2_sigma = psf.inv_sqrt2_sigma();
    params.pixel_integration = scene.pixel_integration;
    params.brightness = scene.brightness;

    const gpusim::LaunchConfig config =
        star_centric_config(stars.size(), scene.roi_side);
    launch = device_.launch(
        config,
        [&params](ThreadCtx& ctx) { return parallel_kernel(ctx, params); });
  }

  frame.readback(result.image);

  const gpusim::TransferStats& transfers = device_.transfer_stats();
  result.timing.kernel_s = launch.timing.kernel_s;
  result.timing.h2d_s = transfers.h2d_s;
  result.timing.d2h_s = transfers.d2h_s;
  result.timing.counters = launch.counters;
  result.timing.utilization = launch.timing.utilization;
  result.timing.achieved_gflops = launch.timing.achieved_gflops;
  result.timing.wall_s = wall.seconds();
  if (span.armed()) [[unlikely]] {
    span.arg("kernel_s", result.timing.kernel_s)
        .arg("non_kernel_s", result.timing.non_kernel_s());
  }
  return result;
}

}  // namespace starsim
