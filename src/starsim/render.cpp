#include "starsim/render.h"

#include "imageio/bmp.h"
#include "imageio/pnm.h"

namespace starsim {

imageio::ImageU8 render_display_image(const imageio::ImageF& flux,
                                      const RenderOptions& options) {
  if (options.apply_noise) {
    return imageio::tonemap_u8(apply_sensor_noise(flux, options.noise),
                               options.tonemap);
  }
  return imageio::tonemap_u8(flux, options.tonemap);
}

void save_star_image(const imageio::ImageF& flux,
                     const std::string& path_prefix,
                     const RenderOptions& options) {
  const imageio::ImageU8 frame = render_display_image(flux, options);
  imageio::write_bmp_gray8(frame, path_prefix + ".bmp");
  imageio::write_pgm8(frame, path_prefix + ".pgm");
}

}  // namespace starsim
