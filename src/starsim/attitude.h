// Spacecraft attitude math: 3-vectors and unit quaternions.
//
// The star-generation front end the paper defers to its reference [4]
// needs an attitude to point the simulated camera: a unit quaternion maps
// inertial (catalogue) directions into the camera frame, whose boresight
// is +Z. Minimal, allocation-free value types.
#pragma once

#include <cmath>

namespace starsim {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  [[nodiscard]] constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm() const { return std::sqrt(dot(*this)); }
  [[nodiscard]] Vec3 normalized() const;
};

class Quaternion {
 public:
  constexpr Quaternion() = default;  // identity
  constexpr Quaternion(double w, double x, double y, double z)
      : w_(w), x_(x), y_(y), z_(z) {}

  [[nodiscard]] static Quaternion identity() { return {}; }

  /// Rotation of `angle` radians about `axis` (need not be unit length).
  [[nodiscard]] static Quaternion from_axis_angle(const Vec3& axis,
                                                  double angle);

  /// Intrinsic Z-Y-X (yaw, pitch, roll) composition.
  [[nodiscard]] static Quaternion from_euler(double yaw, double pitch,
                                             double roll);

  [[nodiscard]] double w() const { return w_; }
  [[nodiscard]] double x() const { return x_; }
  [[nodiscard]] double y() const { return y_; }
  [[nodiscard]] double z() const { return z_; }

  [[nodiscard]] double norm() const {
    return std::sqrt(w_ * w_ + x_ * x_ + y_ * y_ + z_ * z_);
  }
  [[nodiscard]] Quaternion normalized() const;
  [[nodiscard]] constexpr Quaternion conjugate() const {
    return {w_, -x_, -y_, -z_};
  }

  /// Hamilton product: (*this) then... composition such that
  /// (a * b).rotate(v) == a.rotate(b.rotate(v)).
  [[nodiscard]] Quaternion operator*(const Quaternion& o) const;

  /// Rotate a vector by this (unit) quaternion.
  [[nodiscard]] Vec3 rotate(const Vec3& v) const;

 private:
  double w_ = 1.0;
  double x_ = 0.0;
  double y_ = 0.0;
  double z_ = 0.0;
};

}  // namespace starsim
