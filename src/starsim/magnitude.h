// Star brightness from magnitude — the paper's Eq. (1):
//
//     g(m) = A * 2.512^(-m)
//
// A is the proportion factor that sets the flux of a magnitude-0 star in
// sensor units; 2.512 is the conventional Pogson-scale base (five magnitudes
// = a factor of ~100 in flux). Magnitudes conventionally range 0..15 in the
// paper's catalogues.
#pragma once

#include <cstdint>

namespace starsim {

struct BrightnessModel {
  double proportion_factor = 1000.0;  ///< A in Eq. (1)
  double magnitude_base = 2.512;      ///< Pogson ratio

  /// Flop-equivalents one brightness evaluation costs (the pow dominates;
  /// callers add the device/host pow cost on top of kArithmeticFlops).
  static constexpr std::uint64_t kArithmeticFlops = 2;

  /// g(m) evaluated through `meter` so the pow is priced consistently on
  /// CPU (FlopMeter) and GPU (ThreadCtx).
  template <typename Meter>
  [[nodiscard]] double brightness(Meter& meter, double magnitude) const {
    meter.count_flops(kArithmeticFlops);
    return proportion_factor * meter.pow(magnitude_base, -magnitude);
  }

  /// Unmetered convenience overload.
  [[nodiscard]] double brightness(double magnitude) const;

  /// Inverse: the magnitude whose brightness is `flux` (flux must be > 0).
  [[nodiscard]] double magnitude_of(double flux) const;
};

}  // namespace starsim
