#include "starsim/catalog.h"

#include <cmath>
#include <numbers>

#include "support/error.h"
#include "support/rng.h"

namespace starsim {

Vec3 CatalogStar::direction() const {
  const double cos_dec = std::cos(declination);
  return {cos_dec * std::cos(right_ascension),
          cos_dec * std::sin(right_ascension), std::sin(declination)};
}

Catalog Catalog::synthesize(std::size_t count, std::uint64_t seed,
                            double magnitude_min, double magnitude_max) {
  STARSIM_REQUIRE(count > 0, "catalogue needs at least one star");
  STARSIM_REQUIRE(magnitude_min < magnitude_max,
                  "magnitude range must be non-degenerate");

  support::Pcg32 rng(seed);
  Catalog catalog;
  catalog.stars_.reserve(count);

  // Inverse-transform sampling of the truncated exponential-in-magnitude
  // law N(<m) ~ 10^(0.51 m): with k = 0.51 ln 10,
  //   m = min + ln(1 + u (e^(k (max-min)) - 1)) / k.
  const double k = kMagnitudeSlope * std::numbers::ln10;
  const double spread = std::expm1(k * (magnitude_max - magnitude_min));

  for (std::size_t i = 0; i < count; ++i) {
    CatalogStar star;
    star.right_ascension = rng.uniform(0.0, 2.0 * std::numbers::pi);
    // sin(dec) uniform in [-1, 1] gives uniform density on the sphere.
    star.declination = std::asin(rng.uniform(-1.0, 1.0));
    star.magnitude =
        magnitude_min + std::log1p(rng.uniform() * spread) / k;
    catalog.stars_.push_back(star);
  }
  return catalog;
}

Catalog Catalog::from_stars(std::vector<CatalogStar> stars) {
  STARSIM_REQUIRE(!stars.empty(), "catalogue needs at least one star");
  Catalog catalog;
  catalog.stars_ = std::move(stars);
  return catalog;
}

std::size_t Catalog::count_brighter_than(double limit) const {
  std::size_t count = 0;
  for (const CatalogStar& star : stars_) {
    if (star.magnitude < limit) ++count;
  }
  return count;
}

}  // namespace starsim
