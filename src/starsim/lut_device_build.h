// Device-side lookup-table construction (ablation of a Section IV-D design
// choice).
//
// The paper builds the adaptive simulator's table on the CPU, "due to the
// small execution overhead and little data parallelism". This module
// implements the alternative it rejected — a kernel in which every thread
// evaluates one table entry directly into device memory (no upload) — so
// bench_ablation_lut_build can measure where the CPU choice holds: at the
// paper's tiny fixed-geometry table, and where it stops holding: large
// tables (fine magnitude bins, subpixel phases), whose build parallelism is
// no longer "little".
#pragma once

#include "gpusim/device.h"
#include "starsim/lookup_table.h"
#include "starsim/scene.h"

namespace starsim {

struct DeviceLutBuild {
  /// The table in device memory, LookupTable texture layout (caller frees).
  gpusim::DevicePtr<float> table;
  /// Geometry matching LookupTable::build for the same inputs.
  int width = 0;
  int height = 0;
  /// Modeled kernel time of the build (there is no upload: the table is
  /// born in device memory).
  double kernel_s = 0.0;
  double utilization = 0.0;
  std::uint64_t flops = 0;
};

/// Build the lookup table with a kernel on `device`. The values match
/// LookupTable::build(scene, options) to float precision.
[[nodiscard]] DeviceLutBuild build_lookup_table_on_device(
    gpusim::Device& device, const SceneConfig& scene,
    const LookupTableOptions& options = {});

}  // namespace starsim
