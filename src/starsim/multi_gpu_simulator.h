// Multi-GPU scaling — the paper's stated future work ("Our future work will
// focus on scaling our simulators to multiple GPUs in order to obtain better
// performance and also more memory space").
//
// Stars are partitioned into contiguous chunks, one per simulated device;
// each device runs the star-centric parallel pipeline on its chunk against
// its own image copy, and the host sums the partial images. The timing
// composition models the obvious deployment: kernels execute concurrently
// (max across devices), the PCIe bus is shared (transfer times add), and
// the reduction streams N partial images through host memory.
#pragma once

#include <memory>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/host_spec.h"
#include "starsim/parallel_simulator.h"
#include "starsim/simulator.h"

namespace starsim {

class MultiGpuSimulator final : public Simulator {
 public:
  /// Creates `device_count` devices of the given spec.
  MultiGpuSimulator(int device_count,
                    gpusim::DeviceSpec spec = gpusim::DeviceSpec::gtx480(),
                    gpusim::HostSpec host = gpusim::HostSpec::i7_860());

  [[nodiscard]] SimulatorKind kind() const override {
    return SimulatorKind::kMultiGpu;
  }
  [[nodiscard]] std::string_view name() const override { return "multi-gpu"; }

  [[nodiscard]] int device_count() const {
    return static_cast<int>(devices_.size());
  }

  [[nodiscard]] SimulationResult simulate(
      const SceneConfig& scene, std::span<const Star> stars) override;

 private:
  std::vector<std::unique_ptr<gpusim::Device>> devices_;
  gpusim::HostSpec host_;
};

}  // namespace starsim
