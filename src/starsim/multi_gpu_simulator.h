// Multi-GPU scaling — the paper's stated future work ("Our future work will
// focus on scaling our simulators to multiple GPUs in order to obtain better
// performance and also more memory space").
//
// Stars are partitioned into contiguous chunks, one per simulated device;
// each device runs the star-centric parallel pipeline on its chunk against
// its own image copy, and the host sums the partial images. The timing
// composition models the obvious deployment: kernels execute concurrently
// (max across devices), the PCIe bus is shared (transfer times add), and
// the reduction streams N partial images through host memory.
//
// Fault tolerance: a device that throws DeviceLostError (e.g. via an
// attached FaultInjector) is quarantined — removed from the fleet for this
// and all later simulate() calls — and the pass restarts with the surviving
// devices sharing the full star load, so the caller still receives the
// complete, correct image. Only when every device is lost does simulate()
// itself throw DeviceLostError.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/host_spec.h"
#include "starsim/parallel_simulator.h"
#include "starsim/simulator.h"

namespace starsim {

class MultiGpuSimulator final : public Simulator {
 public:
  /// Creates `device_count` devices of the given spec.
  MultiGpuSimulator(int device_count,
                    gpusim::DeviceSpec spec = gpusim::DeviceSpec::gtx480(),
                    gpusim::HostSpec host = gpusim::HostSpec::i7_860());

  [[nodiscard]] SimulatorKind kind() const override {
    return SimulatorKind::kMultiGpu;
  }
  [[nodiscard]] std::string_view name() const override { return "multi-gpu"; }

  [[nodiscard]] int device_count() const {
    return static_cast<int>(devices_.size());
  }

  /// Mutable device access, e.g. to attach a FaultInjector.
  [[nodiscard]] gpusim::Device& device(int index);

  /// Devices removed from the fleet after throwing DeviceLostError.
  [[nodiscard]] int quarantined_count() const;
  [[nodiscard]] bool is_quarantined(int index) const;

  [[nodiscard]] SimulationResult simulate(
      const SceneConfig& scene, std::span<const Star> stars) override;

 private:
  /// One shard-distribution pass over `healthy`. Returns false when a
  /// device was lost mid-pass (it is quarantined; the caller restarts).
  bool run_pass(const SceneConfig& scene, std::span<const Star> stars,
                const std::vector<std::size_t>& healthy,
                SimulationResult& result);

  std::vector<std::unique_ptr<gpusim::Device>> devices_;
  std::vector<bool> quarantined_;
  gpusim::HostSpec host_;
};

}  // namespace starsim
