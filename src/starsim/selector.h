// The simulator selection advisor — Table III as an API.
//
// The paper closes with a selection rule: below the inflection point
// (2^13 stars at ROI 10, or ROI side 10 at 8192 stars) use the parallel
// simulator, above it the adaptive one, and for very small fields
// (~up to 2^7 stars) the sequential simulator "can be a competent choice".
// Rather than hard-coding those numbers, SimulatorSelector *predicts* the
// application time of all three simulators analytically: it reconstructs
// the exact execution counters each kernel would produce (the kernels are
// deterministic in their work) and prices them with the same performance
// and transfer models the simulators report against. The predictions are
// therefore exact for interior stars — a property the test suite checks
// counter-for-counter — and the advisor generalizes to any scene, device
// spec, or lookup-table geometry.
#pragma once

#include <cstdint>
#include <optional>

#include "gpusim/counters.h"
#include "gpusim/device_spec.h"
#include "gpusim/host_spec.h"
#include "starsim/breakdown.h"
#include "starsim/lookup_table.h"
#include "starsim/scene.h"
#include "starsim/simulator.h"

namespace starsim {

struct Prediction {
  double sequential_s = 0.0;   ///< modeled CPU application time
  TimingBreakdown parallel;    ///< modeled, counters filled analytically
  TimingBreakdown adaptive;    ///< modeled, counters filled analytically
  SimulatorKind best = SimulatorKind::kSequential;      ///< of all three
  SimulatorKind best_gpu = SimulatorKind::kParallel;    ///< Table III answer
};

class SimulatorSelector {
 public:
  explicit SimulatorSelector(
      gpusim::DeviceSpec device = gpusim::DeviceSpec::gtx480(),
      gpusim::HostSpec host = gpusim::HostSpec::i7_860(),
      LookupTableOptions lut = LookupTableOptions{});

  /// Counters the parallel kernel produces for `star_count` interior stars
  /// (no ROI clipping; conflicts predicted as zero).
  [[nodiscard]] gpusim::KernelCounters predict_parallel_counters(
      const SceneConfig& scene, std::size_t star_count) const;

  /// Counters the adaptive kernel produces; texture hit/miss split is
  /// estimated (cold misses per active SM), every other field is exact.
  [[nodiscard]] gpusim::KernelCounters predict_adaptive_counters(
      const SceneConfig& scene, std::size_t star_count) const;

  /// Same, for an explicit lookup-table geometry instead of the selector's
  /// construction-time default (the auto-scheduler scores candidate LUT
  /// resolutions through this without rebuilding the selector).
  [[nodiscard]] gpusim::KernelCounters predict_adaptive_counters(
      const SceneConfig& scene, std::size_t star_count,
      const LookupTableOptions& lut) const;

  /// Flop-equivalents of the sequential simulator.
  [[nodiscard]] std::uint64_t predict_sequential_flops(
      const SceneConfig& scene, std::size_t star_count) const;

  /// Full three-way application-time prediction.
  [[nodiscard]] Prediction predict(const SceneConfig& scene,
                                   std::size_t star_count) const;

  /// Prediction against an explicit lookup-table geometry (only the
  /// adaptive column depends on it).
  [[nodiscard]] Prediction predict(const SceneConfig& scene,
                                   std::size_t star_count,
                                   const LookupTableOptions& lut) const;

  /// The recommended simulator for this workload.
  [[nodiscard]] SimulatorKind choose(const SceneConfig& scene,
                                     std::size_t star_count) const;

  /// choose() with an explicit per-request override: when `preference` is
  /// set, the cost model is not consulted and the preference is returned
  /// verbatim (a serving client that pins a simulator must get that
  /// simulator, not the advisor's opinion). When unset, falls through to
  /// the analytic three-way prediction.
  [[nodiscard]] SimulatorKind choose(
      const SceneConfig& scene, std::size_t star_count,
      std::optional<SimulatorKind> preference) const;

  [[nodiscard]] const gpusim::DeviceSpec& device() const { return device_; }
  [[nodiscard]] const gpusim::HostSpec& host() const { return host_; }
  [[nodiscard]] const LookupTableOptions& lut() const { return lut_; }

 private:
  gpusim::DeviceSpec device_;
  gpusim::HostSpec host_;
  LookupTableOptions lut_;
};

}  // namespace starsim
