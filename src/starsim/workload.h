// Benchmark workload generation.
//
// The paper's experiments use "simulated data which have been generated
// randomly": stars with a magnitude in [0, 15] and a 2-D image-plane
// coordinate. Workload regenerates such datasets deterministically from a
// seed, and provides the two sweep axes of the evaluation:
//   test1 — star count 2^5 .. 2^17 at fixed ROI 10x10, image 1024^2;
//   test2 — ROI side 2 .. 32 at fixed 8192 stars, image 1024^2.
#pragma once

#include <cstdint>
#include <vector>

#include "starsim/star.h"

namespace starsim {

struct WorkloadConfig {
  std::size_t star_count = 1024;
  int image_width = 1024;
  int image_height = 1024;
  double magnitude_min = 0.0;
  double magnitude_max = 15.0;
  /// Snap star positions to pixel centers (integer coordinates). This is
  /// the paper's dataset convention and makes the adaptive simulator's
  /// pixel-centered lookup table exact; disable to study subpixel error
  /// (bench_ablation_lut_resolution).
  bool integer_positions = true;
  /// Keep stars this many pixels away from the image border so their ROI
  /// never clips (0 = allow border stars).
  int border_margin = 0;
  std::uint64_t seed = 42;
};

/// Generate a deterministic star field per `config`.
[[nodiscard]] StarField generate_stars(const WorkloadConfig& config);

/// test1's sweep of star counts: 2^5, 2^6, ..., 2^17.
[[nodiscard]] std::vector<std::size_t> test1_star_counts();

/// test2's sweep of ROI side lengths: 2, 4, ..., 32.
[[nodiscard]] std::vector<int> test2_roi_sides();

/// Star count fixed by test2 (8192 = 2^13).
inline constexpr std::size_t kTest2StarCount = 8192;

/// ROI side fixed by test1.
inline constexpr int kTest1RoiSide = 10;

/// Image edge used by both tests.
inline constexpr int kBenchImageEdge = 1024;

}  // namespace starsim
