// RAII device buffers for one simulated frame.
//
// Owns the star array and image pixel array on the simulated device for the
// duration of one simulate() call, reproducing the paper's transfer
// pipeline: the star array and the (zero-initialized) image are copied host
// to device before the kernel, and the image is copied back afterwards —
// the "CPU-GPU Transmission" row of Table I covers exactly this traffic.
#pragma once

#include <span>
#include <vector>

#include "gpusim/device.h"
#include "imageio/image.h"
#include "starsim/scene.h"
#include "starsim/star.h"
#include "trace/trace.h"

namespace starsim {

class DeviceFrame {
 public:
  DeviceFrame(gpusim::Device& device, const SceneConfig& scene,
              std::span<const Star> stars)
      : device_(device),
        pixel_count_(static_cast<std::size_t>(scene.image_width) *
                     static_cast<std::size_t>(scene.image_height)) {
    // A fault (injected OOM, failed upload) mid-construction must not leak
    // the earlier allocations: a retrying caller would otherwise exhaust
    // the device's 1.5 GB after a handful of faulted frames.
    trace::TraceSpan span("starsim", "frame_upload");
    if (span.armed()) [[unlikely]] {
      span.arg("stars", stars.size()).arg("pixels", pixel_count_);
    }
    try {
      stars_ = device_.malloc<Star>(stars.empty() ? 1 : stars.size());
      image_ = device_.malloc<float>(pixel_count_);
      if (!stars.empty()) device_.memcpy_h2d(stars_, stars);
      // The paper's pipeline ships the initial (blank) image to the device;
      // the 1024^2 float image dominates Table I's transmission time.
      const std::vector<float> blank(pixel_count_, 0.0f);
      device_.memcpy_h2d(image_, std::span<const float>(blank));
    } catch (...) {
      release();
      throw;
    }
  }

  DeviceFrame(const DeviceFrame&) = delete;
  DeviceFrame& operator=(const DeviceFrame&) = delete;

  ~DeviceFrame() { release(); }

  [[nodiscard]] const gpusim::DevicePtr<Star>& stars() const { return stars_; }
  [[nodiscard]] const gpusim::DevicePtr<float>& image() const {
    return image_;
  }

  /// Copy the device image back into `target` (must match the frame size).
  void readback(imageio::ImageF& target) {
    STARSIM_REQUIRE(target.pixel_count() == pixel_count_,
                    "readback target size mismatch");
    trace::TraceSpan span("starsim", "readback");
    if (span.armed()) [[unlikely]] {
      span.arg("pixels", pixel_count_);
    }
    device_.memcpy_d2h(target.pixels(), image_);
  }

 private:
  // Best effort: frees cannot throw out of a destructor or an unwind path.
  void release() noexcept {
    try {
      if (!stars_.is_null()) device_.free(stars_);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    try {
      if (!image_.is_null()) device_.free(image_);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }

  gpusim::Device& device_;
  std::size_t pixel_count_;
  gpusim::DevicePtr<Star> stars_;
  gpusim::DevicePtr<float> image_;
};

/// The star-centric launch geometry both GPU simulators share: one block
/// per star (2-D grid so star counts beyond 65535 fit), side x side threads
/// per block (one per ROI pixel).
[[nodiscard]] inline gpusim::LaunchConfig star_centric_config(
    std::size_t star_count, int roi_side) {
  constexpr std::uint32_t kGridWidth = 256;
  gpusim::LaunchConfig config;
  if (star_count <= kGridWidth) {
    config.grid = gpusim::Dim3(static_cast<std::uint32_t>(star_count), 1);
  } else {
    const auto rows = static_cast<std::uint32_t>(
        (star_count + kGridWidth - 1) / kGridWidth);
    config.grid = gpusim::Dim3(kGridWidth, rows);
  }
  config.block = gpusim::Dim3(static_cast<std::uint32_t>(roi_side),
                              static_cast<std::uint32_t>(roi_side));
  return config;
}

}  // namespace starsim
