#include "starsim/multi_gpu_simulator.h"

#include <algorithm>

#include "support/error.h"
#include "support/log.h"
#include "support/timer.h"

namespace starsim {

MultiGpuSimulator::MultiGpuSimulator(int device_count, gpusim::DeviceSpec spec,
                                     gpusim::HostSpec host)
    : host_(host) {
  STARSIM_REQUIRE(device_count > 0, "need at least one device");
  devices_.reserve(static_cast<std::size_t>(device_count));
  for (int i = 0; i < device_count; ++i) {
    devices_.push_back(std::make_unique<gpusim::Device>(spec));
  }
  quarantined_.assign(devices_.size(), false);
}

gpusim::Device& MultiGpuSimulator::device(int index) {
  STARSIM_REQUIRE(index >= 0 && index < device_count(),
                  "device index out of range");
  return *devices_[static_cast<std::size_t>(index)];
}

int MultiGpuSimulator::quarantined_count() const {
  return static_cast<int>(
      std::count(quarantined_.begin(), quarantined_.end(), true));
}

bool MultiGpuSimulator::is_quarantined(int index) const {
  STARSIM_REQUIRE(index >= 0 && index < device_count(),
                  "device index out of range");
  return quarantined_[static_cast<std::size_t>(index)];
}

bool MultiGpuSimulator::run_pass(const SceneConfig& scene,
                                 std::span<const Star> stars,
                                 const std::vector<std::size_t>& healthy,
                                 SimulationResult& result) {
  const std::size_t device_count = healthy.size();
  const std::size_t chunk = (stars.size() + device_count - 1) / device_count;

  double max_kernel_s = 0.0;
  double utilization_sum = 0.0;
  int active_devices = 0;
  for (std::size_t slot = 0; slot < device_count; ++slot) {
    const std::size_t begin = slot * chunk;
    if (begin >= stars.size()) break;
    const std::size_t end = std::min(stars.size(), begin + chunk);
    const std::size_t d = healthy[slot];

    SimulationResult partial;
    try {
      ParallelSimulator worker(*devices_[d]);
      partial = worker.simulate(scene, stars.subspan(begin, end - begin));
    } catch (const support::DeviceLostError&) {
      // Quarantine the dead device and signal a restart: the partial sums
      // accumulated so far are discarded and the surviving devices re-share
      // the whole field. Its leaked allocations die with the device.
      quarantined_[d] = true;
      STARSIM_WARN << "multi-gpu: device " << d << " lost; quarantined ("
                   << quarantined_count() << " of " << devices_.size()
                   << " down)";
      return false;
    }

    // Reduce the partial image into the result.
    auto dst = result.image.pixels();
    const auto src = partial.image.pixels();
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];

    // Kernels run concurrently; the PCIe bus and host reduction are shared.
    max_kernel_s = std::max(max_kernel_s, partial.timing.kernel_s);
    result.timing.h2d_s += partial.timing.h2d_s;
    result.timing.d2h_s += partial.timing.d2h_s;
    result.timing.counters.merge(partial.timing.counters);
    utilization_sum += partial.timing.utilization;
    ++active_devices;
  }

  result.timing.kernel_s = max_kernel_s;
  result.timing.host_reduce_s = host_.memory_stream_time_s(
      static_cast<double>(active_devices) *
      static_cast<double>(result.image.pixel_count()) * sizeof(float));
  result.timing.utilization =
      active_devices > 0 ? utilization_sum / active_devices : 0.0;
  result.timing.achieved_gflops =
      result.timing.kernel_s > 0.0
          ? static_cast<double>(result.timing.counters.flops) /
                result.timing.kernel_s / 1e9
          : 0.0;
  return true;
}

SimulationResult MultiGpuSimulator::simulate(const SceneConfig& scene,
                                             std::span<const Star> stars) {
  scene.validate();
  const support::WallTimer wall;
  SimulationResult result;
  result.image = imageio::ImageF(scene.image_width, scene.image_height);
  if (stars.empty()) {
    result.timing.wall_s = wall.seconds();
    return result;
  }

  while (true) {
    std::vector<std::size_t> healthy;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      if (!quarantined_[d]) healthy.push_back(d);
    }
    if (healthy.empty()) {
      STARSIM_THROW(support::DeviceLostError,
                    "all " + std::to_string(devices_.size()) +
                        " devices quarantined; no capacity left");
    }
    // A lost device mid-pass poisons the partial sums: start clean.
    result.image = imageio::ImageF(scene.image_width, scene.image_height);
    result.timing = TimingBreakdown{};
    if (run_pass(scene, stars, healthy, result)) break;
  }

  result.timing.wall_s = wall.seconds();
  return result;
}

}  // namespace starsim
