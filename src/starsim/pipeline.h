// Frame-sequence simulation with stream overlap.
//
// A star simulator in its motivating deployments (star sensor feedback,
// space-environment simulation) produces frames continuously; the paper's
// per-frame non-kernel overhead (~2.4 ms of PCIe traffic) then gates the
// frame rate. Pipelining fixes that: with CUDA streams, frame N's kernel
// overlaps frame N+1's upload and frame N-1's readback. simulate_sequence
// runs every frame functionally (bit-identical to per-frame simulation) and
// schedules the modeled per-frame stages on a StreamScheduler to obtain the
// pipelined makespan.
#pragma once

#include <span>
#include <vector>

#include "gpusim/device.h"
#include "starsim/parallel_simulator.h"
#include "starsim/resilient_executor.h"
#include "starsim/simulator.h"

namespace starsim {

struct PipelineOptions {
  /// Concurrent CUDA streams (frames round-robin across them). 1 disables
  /// overlap and reproduces the serial per-frame time.
  int streams = 2;
  /// Copy engines on the device (GTX480: 1).
  int copy_engines = 1;
  /// Launch geometry for the per-frame parallel simulator (ROI tiling).
  /// Defaults reproduce the paper's untiled star-centric kernel; an
  /// auto-scheduler schedule maps onto this through
  /// sched::pipeline_options().
  ParallelOptions parallel{};
  /// Run each frame through a ResilientExecutor (parallel -> cpu-parallel
  /// -> sequential on this device) so a faulted frame retries or degrades
  /// instead of killing the sequence. Only the successful attempt's stage
  /// durations are enqueued on the stream scheduler — recovery happens
  /// host-side and never stalls the stream schedule. The chain head stays
  /// the parallel simulator so fault-free resilient runs are bit-identical
  /// to non-resilient ones.
  bool resilient = false;
  /// Retry/backoff policy when `resilient` is set.
  RetryPolicy retry{};
};

struct PipelineResult {
  std::vector<SimulationResult> frames;
  /// Per-frame recovery accounts; filled only when options.resilient.
  std::vector<ResilienceReport> resilience;
  /// Sum of per-frame modeled application times (no overlap).
  double serial_s = 0.0;
  /// Modeled makespan with stream overlap.
  double pipelined_s = 0.0;
  /// Engine utilization over the pipelined makespan.
  double copy_utilization = 0.0;
  double compute_utilization = 0.0;

  /// Serial/pipelined ratio. Requires a simulated sequence: zero-time
  /// results (never returned by simulate_frame_sequence, which rejects
  /// empty sequences at entry) are a caller bug, not a 1.0x speedup.
  [[nodiscard]] double speedup() const {
    STARSIM_REQUIRE(pipelined_s > 0.0,
                    "speedup undefined for a zero-time sequence");
    return serial_s / pipelined_s;
  }
  [[nodiscard]] double frames_per_second() const {
    STARSIM_REQUIRE(pipelined_s > 0.0,
                    "frame rate undefined for a zero-time sequence");
    return static_cast<double>(frames.size()) / pipelined_s;
  }
};

/// Simulate `frame_fields[i]` for every i with the parallel simulator and
/// schedule the sequence across streams. Images are identical to per-frame
/// ParallelSimulator::simulate results. `frame_fields` must be non-empty.
[[nodiscard]] PipelineResult simulate_frame_sequence(
    gpusim::Device& device, const SceneConfig& scene,
    std::span<const StarField> frame_fields,
    const PipelineOptions& options = {});

}  // namespace starsim
