// Gaussian point spread function — the paper's Eq. (2):
//
//     mu(x, y) = 1/(2 pi delta^2) * exp(-((x-X)^2 + (y-Y)^2) / (2 delta^2))
//
// mu is the fraction of a star's flux that lands on the (point-sampled)
// pixel at distance (dx, dy) = (x-X, y-Y) from the star. The class
// precomputes the two constants so the hot path is the six-flop expression
// the kernels and the sequential simulator share (gauss_rate below).
//
// Two refinements beyond the paper are provided for validation work:
// pixel-integrated rates (erf over the pixel footprint, the physically exact
// pixel response) and the enclosed-energy radial profile used to choose ROI
// radii.
#pragma once

#include <cstdint>

namespace starsim {

class GaussianPsf {
 public:
  /// `sigma` is the paper's delta, in pixels; must be positive.
  explicit GaussianPsf(double sigma);

  [[nodiscard]] double sigma() const { return sigma_; }
  /// 1/(2 pi sigma^2), the on-center rate.
  [[nodiscard]] double coefficient() const { return coefficient_; }
  /// 1/(2 sigma^2), the exponent scale.
  [[nodiscard]] double inv_two_sigma_sq() const { return inv_two_sigma_sq_; }
  /// 1/(sqrt(2) sigma), the erf argument scale of the integrated rate.
  [[nodiscard]] double inv_sqrt2_sigma() const { return inv_sqrt2_sigma_; }

  /// Point-sampled intensity rate at offset (dx, dy) — Eq. (2).
  [[nodiscard]] double intensity_rate(double dx, double dy) const;

  /// Pixel-integrated rate: Eq. (2) integrated over the unit pixel centered
  /// at (dx, dy). Exact (product of erf differences).
  [[nodiscard]] double integrated_rate(double dx, double dy) const;

  /// Fraction of total flux within radius `r` of the center:
  /// 1 - exp(-r^2 / (2 sigma^2)). Used to size ROIs.
  [[nodiscard]] double energy_within_radius(double r) const;

  /// Smallest ROI half-width capturing at least `fraction` of the flux.
  [[nodiscard]] int radius_for_energy(double fraction) const;

 private:
  double sigma_;
  double coefficient_;
  double inv_two_sigma_sq_;
  double inv_sqrt2_sigma_;
};

/// Flop-equivalents of one gauss_rate evaluation, excluding the exp (which
/// the meter prices itself).
inline constexpr std::uint64_t kGaussRateArithmeticFlops = 6;

/// The shared hot-path expression: coeff * exp(-(dx^2+dy^2) * inv2s2),
/// metered through either a FlopMeter (CPU) or a ThreadCtx (GPU).
template <typename Meter>
[[nodiscard]] double gauss_rate(Meter& meter, double coefficient,
                                double inv_two_sigma_sq, double dx,
                                double dy) {
  meter.count_flops(kGaussRateArithmeticFlops);
  const double r_sq = dx * dx + dy * dy;
  return coefficient * meter.exp(-r_sq * inv_two_sigma_sq);
}

/// Arithmetic (non-erf) flops of one pixel-integrated rate evaluation.
inline constexpr std::uint64_t kIntegratedRateArithmeticFlops = 9;

/// Pixel-integrated rate (exact pixel response) as a metered hot path:
/// the product of per-axis erf differences over the unit pixel at offset
/// (dx, dy). Four erf evaluations, priced by the meter.
template <typename Meter>
[[nodiscard]] double gauss_integrated_rate(Meter& meter,
                                           double inv_sqrt2_sigma, double dx,
                                           double dy) {
  meter.count_flops(kIntegratedRateArithmeticFlops);
  const double x = 0.5 * (meter.erf((dx + 0.5) * inv_sqrt2_sigma) -
                          meter.erf((dx - 0.5) * inv_sqrt2_sigma));
  const double y = 0.5 * (meter.erf((dy + 0.5) * inv_sqrt2_sigma) -
                          meter.erf((dy - 0.5) * inv_sqrt2_sigma));
  return x * y;
}

}  // namespace starsim
