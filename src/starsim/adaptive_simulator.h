// The paper's adaptive simulator (Section III-C).
//
// Same star-centric decomposition as the parallel simulator, but the kernel
// replaces the brightness and PSF arithmetic with a fetch from a precomputed
// lookup table bound to texture memory. The trade is explicit in the
// breakdown: kernel time drops (no per-pixel exp), non-kernel overhead rises
// by the table build and texture binding — the balance whose inflection
// point Section IV locates at 2^13 stars / ROI side 10.
#pragma once

#include "gpusim/device.h"
#include "starsim/lookup_table.h"
#include "starsim/simulator.h"

namespace starsim {

class AdaptiveSimulator final : public Simulator {
 public:
  explicit AdaptiveSimulator(gpusim::Device& device,
                             LookupTableOptions options = {});

  [[nodiscard]] SimulatorKind kind() const override {
    return SimulatorKind::kAdaptive;
  }
  [[nodiscard]] std::string_view name() const override { return "adaptive"; }

  [[nodiscard]] SimulationResult simulate(
      const SceneConfig& scene, std::span<const Star> stars) override;

  /// Batch entry point: the lookup table is built, uploaded and bound once
  /// for the whole batch, and its build/upload/bind cost is amortized
  /// evenly across the non-empty frames' breakdowns — the per-scene setup
  /// the paper's non-kernel analysis charges every simulate() call, paid
  /// once here. Images are bit-identical to per-field simulate() calls.
  [[nodiscard]] std::vector<SimulationResult> simulate_batch(
      const SceneConfig& scene, std::span<const StarField> fields) override;

  [[nodiscard]] const LookupTableOptions& options() const { return options_; }

  /// Largest magnitude-bin count whose lookup table still binds as a 2-D
  /// texture on `device` for the given ROI side and phase count — the
  /// Section IV-D sizing rule ("we can calculate the maximum star magnitude
  /// range that the simulator can simulate").
  [[nodiscard]] static int max_magnitude_bins(const gpusim::Device& device,
                                              int roi_side,
                                              int subpixel_phases);

 private:
  gpusim::Device& device_;
  LookupTableOptions options_;
};

}  // namespace starsim
