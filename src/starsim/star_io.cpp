#include "starsim/star_io.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

#include "support/error.h"

namespace starsim {

namespace {

using support::IoError;

constexpr std::string_view kStarMagic = "starsim-stars v1";
constexpr std::string_view kCatalogMagic = "starsim-catalog v1";

std::ofstream open_out(const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) throw IoError("cannot open star file for writing: " + path);
  return file;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw IoError("cannot open star file: " + path);
  return file;
}

bool is_blank_or_comment(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Parse whitespace-separated doubles from `line` into `out[0..max)`.
/// Returns how many were present; throws on trailing junk. Tokens go
/// through strtod (not operator>>, which rejects the "nan"/"inf"
/// spellings outright) so non-finite values — written or overflowed —
/// can be rejected with a clear IoError: a single NaN magnitude or
/// position would silently poison every pixel its ROI touches downstream
/// (NaN propagates through the PSF sums).
std::size_t parse_fields(const std::string& line, double* out,
                         std::size_t max, const std::string& path) {
  std::istringstream stream(line);
  std::size_t count = 0;
  std::string token;
  while (stream >> token) {
    STARSIM_REQUIRE(count < max, path + ": too many fields in line");
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    STARSIM_REQUIRE(end == token.c_str() + token.size(),
                    path + ": malformed number in line");
    if (!std::isfinite(value)) {
      throw IoError(path + ": non-finite value in line '" + line +
                    "' (field " + std::to_string(count + 1) +
                    "): corrupt catalog data rejected");
    }
    out[count++] = value;
  }
  return count;
}

void expect_magic(std::ifstream& file, std::string_view magic,
                  const std::string& path) {
  std::string line;
  STARSIM_REQUIRE(static_cast<bool>(std::getline(file, line)),
                  path + ": empty file");
  // Tolerate trailing CR from CRLF files.
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != magic) {
    throw IoError(path + ": not a " + std::string(magic) + " file");
  }
}

}  // namespace

void write_star_file(const StarField& stars, const std::string& path) {
  std::ofstream file = open_out(path);
  file << kStarMagic << '\n';
  file << "# magnitude x y weight (" << stars.size() << " stars)\n";
  file.precision(9);  // round-trips float exactly
  for (const Star& star : stars) {
    file << star.magnitude << ' ' << star.x << ' ' << star.y << ' '
         << star.weight << '\n';
  }
  if (!file.good()) throw IoError("failed writing star file: " + path);
}

StarField read_star_file(const std::string& path) {
  std::ifstream file = open_in(path);
  expect_magic(file, kStarMagic, path);
  StarField stars;
  std::string line;
  while (std::getline(file, line)) {
    if (is_blank_or_comment(line)) continue;
    double fields[4] = {0.0, 0.0, 0.0, 1.0};
    const std::size_t count = parse_fields(line, fields, 4, path);
    STARSIM_REQUIRE(count >= 3, path + ": star line needs magnitude x y");
    Star star;
    star.magnitude = static_cast<float>(fields[0]);
    star.x = static_cast<float>(fields[1]);
    star.y = static_cast<float>(fields[2]);
    star.weight = count >= 4 ? static_cast<float>(fields[3]) : 1.0f;
    stars.push_back(star);
  }
  return stars;
}

void write_catalog_file(const Catalog& catalog, const std::string& path) {
  std::ofstream file = open_out(path);
  file << kCatalogMagic << '\n';
  file << "# right_ascension_rad declination_rad magnitude ("
       << catalog.size() << " stars)\n";
  file.precision(17);  // round-trips double exactly
  for (const CatalogStar& star : catalog.stars()) {
    file << star.right_ascension << ' ' << star.declination << ' '
         << star.magnitude << '\n';
  }
  if (!file.good()) throw IoError("failed writing catalog file: " + path);
}

Catalog read_catalog_file(const std::string& path) {
  std::ifstream file = open_in(path);
  expect_magic(file, kCatalogMagic, path);
  std::vector<CatalogStar> stars;
  std::string line;
  while (std::getline(file, line)) {
    if (is_blank_or_comment(line)) continue;
    double fields[3] = {0.0, 0.0, 0.0};
    const std::size_t count = parse_fields(line, fields, 3, path);
    STARSIM_REQUIRE(count == 3,
                    path + ": catalog line needs ra dec magnitude");
    CatalogStar star;
    star.right_ascension = fields[0];
    star.declination = fields[1];
    star.magnitude = fields[2];
    stars.push_back(star);
  }
  return Catalog::from_stars(std::move(stars));
}

}  // namespace starsim
