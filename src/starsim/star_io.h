// Star dataset files.
//
// The paper's star generation stage emits "such format file" records — the
// magnitude of the star and its 2-D image-plane coordinate — which the
// simulators consume. This module defines that interchange format so
// datasets can be produced once and replayed: a line-oriented text format
// with a self-identifying header,
//
//   starsim-stars v1
//   # comment lines allowed
//   <magnitude> <x> <y> [weight]
//
// and the celestial variant for catalogues,
//
//   starsim-catalog v1
//   <right_ascension_rad> <declination_rad> <magnitude>
//
// Values are written with enough digits to round-trip float (stars) and
// double (catalogue) exactly.
#pragma once

#include <string>

#include "starsim/catalog.h"
#include "starsim/star.h"

namespace starsim {

/// Write a star field; throws IoError on failure.
void write_star_file(const StarField& stars, const std::string& path);

/// Read a star field written by write_star_file (or hand-authored in the
/// same format). Throws IoError / PreconditionError on malformed input.
[[nodiscard]] StarField read_star_file(const std::string& path);

/// Write a celestial catalogue.
void write_catalog_file(const Catalog& catalog, const std::string& path);

/// Read a celestial catalogue.
[[nodiscard]] Catalog read_catalog_file(const std::string& path);

}  // namespace starsim
