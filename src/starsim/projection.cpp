#include "starsim/projection.h"

#include <cmath>

#include "support/error.h"
#include "trace/trace.h"

namespace starsim {

double CameraModel::half_diagonal_fov() const {
  const double half_diag =
      0.5 * std::hypot(static_cast<double>(width), static_cast<double>(height));
  return std::atan2(half_diag, focal_length_px);
}

StarField project_to_image(std::span<const CatalogStar> catalog,
                           const Quaternion& attitude,
                           const CameraModel& camera) {
  STARSIM_REQUIRE(camera.width > 0 && camera.height > 0,
                  "camera frame must be non-empty");
  STARSIM_REQUIRE(camera.focal_length_px > 0.0,
                  "focal length must be positive");

  trace::TraceSpan span("starsim", "projection");
  StarField stars;
  const double cx = camera.center_x();
  const double cy = camera.center_y();
  const double lo_x = -camera.frame_margin_px;
  const double lo_y = -camera.frame_margin_px;
  const double hi_x = camera.width + camera.frame_margin_px;
  const double hi_y = camera.height + camera.frame_margin_px;

  for (const CatalogStar& entry : catalog) {
    if (entry.magnitude >= camera.magnitude_limit) continue;
    const Vec3 cam = attitude.rotate(entry.direction());
    if (cam.z <= 1e-9) continue;  // behind or at the image plane
    const double u = camera.focal_length_px * cam.x / cam.z + cx;
    const double v = camera.focal_length_px * cam.y / cam.z + cy;
    if (u < lo_x || u >= hi_x || v < lo_y || v >= hi_y) continue;
    Star star;
    star.magnitude = static_cast<float>(entry.magnitude);
    star.x = static_cast<float>(u);
    star.y = static_cast<float>(v);
    stars.push_back(star);
  }
  if (span.armed()) [[unlikely]] {
    span.arg("catalog_stars", catalog.size()).arg("projected", stars.size());
  }
  return stars;
}

}  // namespace starsim
