#include "starsim/lookup_table.h"

#include <algorithm>
#include <cmath>

#include "starsim/psf.h"
#include "support/error.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace starsim {

LookupTable LookupTable::build(const SceneConfig& scene,
                               const LookupTableOptions& options) {
  scene.validate();
  STARSIM_REQUIRE(options.bins_per_magnitude > 0,
                  "bins_per_magnitude must be positive");
  STARSIM_REQUIRE(options.subpixel_phases > 0,
                  "subpixel_phases must be positive");

  trace::TraceSpan trace_span("starsim", "lut_build");
  const support::WallTimer wall;
  LookupTable table;
  table.roi_side_ = scene.roi_side;
  table.phases_ = options.subpixel_phases;
  table.magnitude_min_ = scene.magnitude_min;
  table.bin_width_ = 1.0 / options.bins_per_magnitude;
  const double span = scene.magnitude_max - scene.magnitude_min;
  table.magnitude_bins_ = std::max(
      1, static_cast<int>(std::ceil(span * options.bins_per_magnitude)));

  const GaussianPsf psf(scene.psf_sigma);
  const int side = table.roi_side_;
  const int margin = table.margin();
  const int phases = table.phases_;
  table.values_.resize(table.entries());

  for (int bin = 0; bin < table.magnitude_bins_; ++bin) {
    const double brightness =
        scene.brightness.brightness(table.bin_magnitude(bin));
    for (int phase_y = 0; phase_y < phases; ++phase_y) {
      const double off_y = table.phase_center(phase_y);
      for (int phase_x = 0; phase_x < phases; ++phase_x) {
        const double off_x = table.phase_center(phase_x);
        const int base_row = table.row_base(bin, phase_x, phase_y);
        for (int row = 0; row < side; ++row) {
          const double dy = static_cast<double>(row - margin) - off_y;
          float* dst = table.values_.data() +
                       static_cast<std::size_t>(base_row + row) *
                           static_cast<std::size_t>(side);
          for (int col = 0; col < side; ++col) {
            const double dx = static_cast<double>(col - margin) - off_x;
            const double rate = scene.pixel_integration
                                    ? psf.integrated_rate(dx, dy)
                                    : psf.intensity_rate(dx, dy);
            dst[col] = static_cast<float>(brightness * rate);
          }
        }
      }
    }
  }

  table.build_wall_s_ = wall.seconds();
  if (trace_span.armed()) [[unlikely]] {
    trace_span.arg("entries", table.entries())
        .arg("magnitude_bins", table.magnitude_bins_)
        .arg("phases", table.phases_)
        .arg("build_wall_s", table.build_wall_s_);
  }
  return table;
}

int LookupTable::magnitude_bin(double magnitude) const {
  const int bin =
      static_cast<int>(std::floor((magnitude - magnitude_min_) / bin_width_));
  return std::clamp(bin, 0, magnitude_bins_ - 1);
}

double LookupTable::bin_magnitude(int bin) const {
  STARSIM_REQUIRE(bin >= 0 && bin < magnitude_bins_,
                  "magnitude bin out of range");
  return magnitude_min_ + (bin + 0.5) * bin_width_;
}

int LookupTable::phase_of(float coord) const {
  if (phases_ == 1) return 0;
  const double rounded = static_cast<double>(std::lround(coord));
  const double frac = static_cast<double>(coord) - rounded;  // [-0.5, 0.5)
  const int phase = static_cast<int>(
      std::floor((frac + 0.5) * static_cast<double>(phases_)));
  return std::clamp(phase, 0, phases_ - 1);
}

double LookupTable::phase_center(int phase) const {
  STARSIM_REQUIRE(phase >= 0 && phase < phases_, "phase out of range");
  return (phase + 0.5) / static_cast<double>(phases_) - 0.5;
}

int LookupTable::row_base(int bin, int phase_x, int phase_y) const {
  STARSIM_REQUIRE(bin >= 0 && bin < magnitude_bins_, "bin out of range");
  STARSIM_REQUIRE(phase_x >= 0 && phase_x < phases_ && phase_y >= 0 &&
                      phase_y < phases_,
                  "phase out of range");
  return ((bin * phases_ + phase_y) * phases_ + phase_x) * roi_side_;
}

float LookupTable::at(int bin, int phase_x, int phase_y, int roi_row,
                      int roi_col) const {
  STARSIM_REQUIRE(roi_row >= 0 && roi_row < roi_side_ && roi_col >= 0 &&
                      roi_col < roi_side_,
                  "ROI offset out of range");
  const int row = row_base(bin, phase_x, phase_y) + roi_row;
  return values_[static_cast<std::size_t>(row) *
                     static_cast<std::size_t>(roi_side_) +
                 static_cast<std::size_t>(roi_col)];
}

}  // namespace starsim
