#include "starsim/selector.h"

#include <algorithm>
#include <cmath>

#include "gpusim/perf_model.h"
#include "starsim/device_frame.h"
#include "starsim/kernel_cost.h"
#include "starsim/magnitude.h"
#include "starsim/psf.h"
#include "support/error.h"

namespace starsim {

namespace {

namespace kc = kernel_cost;

struct LutGeometry {
  int bins = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

LutGeometry lut_geometry(const SceneConfig& scene,
                         const LookupTableOptions& options) {
  LutGeometry g;
  const double span = scene.magnitude_max - scene.magnitude_min;
  g.bins = std::max(
      1, static_cast<int>(std::ceil(span * options.bins_per_magnitude)));
  g.entries = static_cast<std::uint64_t>(g.bins) *
              static_cast<std::uint64_t>(options.subpixel_phases) *
              static_cast<std::uint64_t>(options.subpixel_phases) *
              static_cast<std::uint64_t>(scene.roi_side) *
              static_cast<std::uint64_t>(scene.roi_side);
  g.bytes = g.entries * sizeof(float);
  return g;
}

/// Flop-equivalents of one PSF evaluation under the scene's pixel model.
std::uint64_t psf_eval_flops(const gpusim::DeviceSpec& device,
                             const SceneConfig& scene) {
  if (scene.pixel_integration) {
    return kIntegratedRateArithmeticFlops +
           4 * static_cast<std::uint64_t>(device.erf_flop_equiv);
  }
  return kGaussRateArithmeticFlops +
         static_cast<std::uint64_t>(device.exp_flop_equiv);
}

/// Geometry fields common to both star-centric kernels.
void fill_launch_geometry(const gpusim::DeviceSpec& spec,
                          const gpusim::LaunchConfig& config,
                          gpusim::KernelCounters& c) {
  const std::uint64_t tpb = config.threads_per_block();
  const std::uint64_t wpb =
      (tpb + static_cast<std::uint64_t>(spec.warp_size) - 1) /
      static_cast<std::uint64_t>(spec.warp_size);
  c.blocks_launched = config.total_blocks();
  c.threads_launched = c.blocks_launched * tpb;
  c.warps_launched = c.blocks_launched * wpb;
}

double transfer_total(const gpusim::DeviceSpec& spec,
                      std::span<const std::uint64_t> transfer_bytes) {
  double total = 0.0;
  for (std::uint64_t bytes : transfer_bytes) {
    total += gpusim::estimate_transfer_time(spec, bytes);
  }
  return total;
}

}  // namespace

SimulatorSelector::SimulatorSelector(gpusim::DeviceSpec device,
                                     gpusim::HostSpec host,
                                     LookupTableOptions lut)
    : device_(std::move(device)), host_(host), lut_(lut) {}

gpusim::KernelCounters SimulatorSelector::predict_parallel_counters(
    const SceneConfig& scene, std::size_t star_count) const {
  scene.validate();
  STARSIM_REQUIRE(star_count > 0, "prediction needs at least one star");
  const auto n = static_cast<std::uint64_t>(star_count);
  const auto side = static_cast<std::uint64_t>(scene.roi_side);
  const std::uint64_t tpb = side * side;
  const std::uint64_t wpb =
      (tpb + static_cast<std::uint64_t>(device_.warp_size) - 1) /
      static_cast<std::uint64_t>(device_.warp_size);
  const gpusim::LaunchConfig config =
      star_centric_config(star_count, scene.roi_side);

  gpusim::KernelCounters c;
  fill_launch_geometry(device_, config, c);

  // Thread (0,0) of each active block: star load + brightness staging.
  // The lone 16-byte load coalesces into one transaction; the staged
  // shared values are read warp-wide at the same address (broadcast), so
  // no bank conflicts arise.
  c.global_reads = n;
  c.global_bytes_read = n * sizeof(Star);
  c.global_transactions = n;
  c.shared_bank_conflicts = 0;
  c.shared_writes = n * 3;
  c.flops += n * (BrightnessModel::kArithmeticFlops +
                  static_cast<std::uint64_t>(device_.pow_flop_equiv) +
                  kc::kWeightFlops);

  // Every thread of each active block.
  const std::uint64_t threads = n * tpb;
  c.shared_reads = threads * 3;
  c.flops += threads * (kc::kCoordFlops + kc::kBoundsFlops);
  // Interior stars: every thread passes the bounds test.
  c.flops += threads * (psf_eval_flops(device_, scene) + kc::kAccumFlops);
  c.atomic_ops = threads;
  c.global_bytes_read += threads * sizeof(float);
  c.global_bytes_written += threads * sizeof(float);
  c.atomic_conflicts = 0;  // scattered stars (measured value may be small >0)

  c.barriers = n * wpb;
  c.branch_sites_evaluated = n * wpb;
  c.divergent_warp_branches = 0;
  return c;
}

gpusim::KernelCounters SimulatorSelector::predict_adaptive_counters(
    const SceneConfig& scene, std::size_t star_count) const {
  return predict_adaptive_counters(scene, star_count, lut_);
}

gpusim::KernelCounters SimulatorSelector::predict_adaptive_counters(
    const SceneConfig& scene, std::size_t star_count,
    const LookupTableOptions& lut_options) const {
  scene.validate();
  STARSIM_REQUIRE(star_count > 0, "prediction needs at least one star");
  const auto n = static_cast<std::uint64_t>(star_count);
  const auto side = static_cast<std::uint64_t>(scene.roi_side);
  const std::uint64_t tpb = side * side;
  const std::uint64_t wpb =
      (tpb + static_cast<std::uint64_t>(device_.warp_size) - 1) /
      static_cast<std::uint64_t>(device_.warp_size);
  const gpusim::LaunchConfig config =
      star_centric_config(star_count, scene.roi_side);

  gpusim::KernelCounters c;
  fill_launch_geometry(device_, config, c);

  c.global_reads = n;
  c.global_bytes_read = n * sizeof(Star);
  c.global_transactions = n;
  c.shared_bank_conflicts = 0;
  c.shared_writes = n * 4;

  const std::uint64_t threads = n * tpb;
  c.shared_reads = threads * 4;
  c.flops += threads * (kc::kCoordFlops + kc::kBoundsFlops +
                        kc::kLutIndexFlops + kc::kAccumFlops);
  c.texture_fetches = threads;
  // Hit/miss estimate: the whole table is touched cold once per SM; capacity
  // misses appear only when the table outgrows the per-SM cache.
  const LutGeometry lut = lut_geometry(scene, lut_options);
  const std::uint64_t table_lines =
      (lut.bytes + static_cast<std::uint64_t>(device_.texture_cache_line_bytes) -
       1) /
      static_cast<std::uint64_t>(device_.texture_cache_line_bytes);
  const double sm_cache = static_cast<double>(device_.texture_cache_bytes_per_sm);
  const double reuse = std::min(
      1.0, sm_cache / static_cast<double>(std::max<std::uint64_t>(1, lut.bytes)));
  const std::uint64_t cold =
      std::min(c.texture_fetches,
               table_lines * static_cast<std::uint64_t>(device_.sm_count));
  const auto capacity_misses = static_cast<std::uint64_t>(
      (1.0 - reuse) * static_cast<double>(c.texture_fetches - cold));
  c.texture_misses = cold + capacity_misses;
  c.texture_hits = c.texture_fetches - c.texture_misses;

  c.atomic_ops = threads;
  c.global_bytes_read += threads * sizeof(float);
  c.global_bytes_written += threads * sizeof(float);
  c.barriers = n * wpb;
  c.branch_sites_evaluated = n * wpb;
  return c;
}

std::uint64_t SimulatorSelector::predict_sequential_flops(
    const SceneConfig& scene, std::size_t star_count) const {
  scene.validate();
  const auto n = static_cast<std::uint64_t>(star_count);
  const auto area = static_cast<std::uint64_t>(scene.roi_side) *
                    static_cast<std::uint64_t>(scene.roi_side);
  const std::uint64_t per_star =
      BrightnessModel::kArithmeticFlops +
      static_cast<std::uint64_t>(device_.pow_flop_equiv) + kc::kWeightFlops;
  const std::uint64_t per_pixel = kc::kCoordFlops + kc::kBoundsFlops +
                                  psf_eval_flops(device_, scene) +
                                  kc::kAccumFlops;
  return n * (per_star + area * per_pixel);
}

Prediction SimulatorSelector::predict(const SceneConfig& scene,
                                      std::size_t star_count) const {
  return predict(scene, star_count, lut_);
}

Prediction SimulatorSelector::predict(const SceneConfig& scene,
                                      std::size_t star_count,
                                      const LookupTableOptions& lut_options)
    const {
  Prediction p;
  const gpusim::LaunchConfig config =
      star_centric_config(star_count, scene.roi_side);
  const std::uint64_t star_bytes = star_count * sizeof(Star);
  const std::uint64_t image_bytes = static_cast<std::uint64_t>(
                                        scene.image_width) *
                                    static_cast<std::uint64_t>(
                                        scene.image_height) *
                                    sizeof(float);

  p.sequential_s =
      host_.scalar_time_s(static_cast<double>(
          predict_sequential_flops(scene, star_count)));

  // Parallel: stars + blank image up, image down.
  p.parallel.counters = predict_parallel_counters(scene, star_count);
  const gpusim::KernelTiming parallel_timing =
      gpusim::estimate_kernel_time(device_, config, p.parallel.counters);
  p.parallel.kernel_s = parallel_timing.kernel_s;
  p.parallel.utilization = parallel_timing.utilization;
  p.parallel.achieved_gflops = parallel_timing.achieved_gflops;
  {
    const std::uint64_t up[] = {star_bytes, image_bytes};
    p.parallel.h2d_s = transfer_total(device_, up);
    const std::uint64_t down[] = {image_bytes};
    p.parallel.d2h_s = transfer_total(device_, down);
  }

  // Adaptive: additionally builds, uploads and binds the lookup table.
  p.adaptive.counters =
      predict_adaptive_counters(scene, star_count, lut_options);
  const gpusim::KernelTiming adaptive_timing =
      gpusim::estimate_kernel_time(device_, config, p.adaptive.counters);
  p.adaptive.kernel_s = adaptive_timing.kernel_s;
  p.adaptive.utilization = adaptive_timing.utilization;
  p.adaptive.achieved_gflops = adaptive_timing.achieved_gflops;
  const LutGeometry lut = lut_geometry(scene, lut_options);
  {
    const std::uint64_t up[] = {star_bytes, image_bytes, lut.bytes};
    p.adaptive.h2d_s = transfer_total(device_, up);
    const std::uint64_t down[] = {image_bytes};
    p.adaptive.d2h_s = transfer_total(device_, down);
  }
  p.adaptive.lut_build_s =
      host_.lut_build_time_s(static_cast<double>(lut.entries));
  p.adaptive.texture_bind_s = device_.texture_bind_s;

  p.best_gpu = p.adaptive.application_s() < p.parallel.application_s()
                   ? SimulatorKind::kAdaptive
                   : SimulatorKind::kParallel;
  const double best_gpu_s = std::min(p.parallel.application_s(),
                                     p.adaptive.application_s());
  p.best = p.sequential_s < best_gpu_s ? SimulatorKind::kSequential
                                       : p.best_gpu;
  return p;
}

SimulatorKind SimulatorSelector::choose(const SceneConfig& scene,
                                        std::size_t star_count) const {
  return predict(scene, star_count).best;
}

SimulatorKind SimulatorSelector::choose(
    const SceneConfig& scene, std::size_t star_count,
    std::optional<SimulatorKind> preference) const {
  if (preference.has_value()) {
    scene.validate();
    return *preference;
  }
  return choose(scene, star_count);
}

}  // namespace starsim
