// The baseline: the paper's single-threaded CPU simulator (Section III-A).
//
// Four stages — star generation (the caller's job), star brightness
// computation, pixel computation, output — executed sequentially with the
// Fig. 5 loop structure: an outer loop over stars and a two-level loop over
// each star's ROI pixels with an in-image test per pixel. Arithmetic is
// metered (cost_model.h) so the run reports both the measured wall time on
// this host and the modeled time on the paper's host (HostSpec).
#pragma once

#include "gpusim/host_spec.h"
#include "starsim/cost_model.h"
#include "starsim/simulator.h"

namespace starsim {

class SequentialSimulator final : public Simulator {
 public:
  explicit SequentialSimulator(
      gpusim::HostSpec host = gpusim::HostSpec::i7_860(),
      ArithmeticCosts costs = ArithmeticCosts{});

  [[nodiscard]] SimulatorKind kind() const override {
    return SimulatorKind::kSequential;
  }
  [[nodiscard]] std::string_view name() const override {
    return "sequential";
  }

  [[nodiscard]] SimulationResult simulate(
      const SceneConfig& scene, std::span<const Star> stars) override;

 private:
  gpusim::HostSpec host_;
  ArithmeticCosts costs_;
};

}  // namespace starsim
