#include "starsim/magnitude.h"

#include <cmath>

#include "support/error.h"

namespace starsim {

double BrightnessModel::brightness(double magnitude) const {
  return proportion_factor * std::pow(magnitude_base, -magnitude);
}

double BrightnessModel::magnitude_of(double flux) const {
  STARSIM_REQUIRE(flux > 0.0, "brightness must be positive");
  STARSIM_REQUIRE(proportion_factor > 0.0 && magnitude_base > 1.0,
                  "invalid brightness model parameters");
  return -std::log(flux / proportion_factor) / std::log(magnitude_base);
}

}  // namespace starsim
