#include "starsim/attitude.h"

#include "support/error.h"

namespace starsim {

Vec3 Vec3::normalized() const {
  const double n = norm();
  STARSIM_REQUIRE(n > 0.0, "cannot normalize the zero vector");
  return {x / n, y / n, z / n};
}

Quaternion Quaternion::from_axis_angle(const Vec3& axis, double angle) {
  const Vec3 unit = axis.normalized();
  const double half = 0.5 * angle;
  const double s = std::sin(half);
  return Quaternion(std::cos(half), unit.x * s, unit.y * s, unit.z * s);
}

Quaternion Quaternion::from_euler(double yaw, double pitch, double roll) {
  const Quaternion qz = from_axis_angle({0.0, 0.0, 1.0}, yaw);
  const Quaternion qy = from_axis_angle({0.0, 1.0, 0.0}, pitch);
  const Quaternion qx = from_axis_angle({1.0, 0.0, 0.0}, roll);
  return qz * qy * qx;
}

Quaternion Quaternion::normalized() const {
  const double n = norm();
  STARSIM_REQUIRE(n > 0.0, "cannot normalize the zero quaternion");
  return Quaternion(w_ / n, x_ / n, y_ / n, z_ / n);
}

Quaternion Quaternion::operator*(const Quaternion& o) const {
  return Quaternion(
      w_ * o.w_ - x_ * o.x_ - y_ * o.y_ - z_ * o.z_,
      w_ * o.x_ + x_ * o.w_ + y_ * o.z_ - z_ * o.y_,
      w_ * o.y_ - x_ * o.z_ + y_ * o.w_ + z_ * o.x_,
      w_ * o.z_ + x_ * o.y_ - y_ * o.x_ + z_ * o.w_);
}

Vec3 Quaternion::rotate(const Vec3& v) const {
  // v' = v + 2 q_vec x (q_vec x v + w v)  — the standard expansion.
  const Vec3 q_vec{x_, y_, z_};
  const Vec3 t = q_vec.cross(v) * 2.0;
  return v + t * w_ + q_vec.cross(t);
}

}  // namespace starsim
