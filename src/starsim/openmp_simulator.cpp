#include "starsim/openmp_simulator.h"

#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "starsim/kernel_cost.h"
#include "starsim/psf.h"
#include "starsim/roi.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace starsim {

OpenMpSimulator::OpenMpSimulator(int threads, gpusim::HostSpec host,
                                 ArithmeticCosts costs)
    : threads_(threads), host_(host), costs_(costs) {
  if (threads_ <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw == 0 ? 1 : static_cast<int>(hw);
  }
}

SimulationResult OpenMpSimulator::simulate(const SceneConfig& scene,
                                           std::span<const Star> stars) {
  trace::TraceSpan span("starsim", "render");
  if (span.armed()) [[unlikely]] {
    span.arg("simulator", name())
        .arg("stars", stars.size())
        .arg("roi", scene.roi_side);
  }
  scene.validate();
  const support::WallTimer wall;

  SimulationResult result;
  result.image = imageio::ImageF(scene.image_width, scene.image_height);

  const GaussianPsf psf(scene.psf_sigma);
  const Roi roi(scene.roi_side);
  const double coefficient = psf.coefficient();
  const double inv_two_sigma_sq = psf.inv_two_sigma_sq();
  const double inv_sqrt2_sigma = psf.inv_sqrt2_sigma();
  const bool integrated = scene.pixel_integration;
  const int side = roi.side();
  const auto star_count = static_cast<long long>(stars.size());

  // Worker-private images; reduced after the parallel region. Flop counts
  // are per-worker and summed (the total is identical to the sequential
  // simulator's — same loops, same meters).
  const int workers = threads_;
  std::vector<imageio::ImageF> partials(
      static_cast<std::size_t>(workers > 1 ? workers : 1),
      imageio::ImageF(scene.image_width, scene.image_height));
  std::vector<std::uint64_t> worker_flops(partials.size(), 0);

#ifdef _OPENMP
#pragma omp parallel num_threads(workers)
#endif
  {
#ifdef _OPENMP
    const auto worker = static_cast<std::size_t>(omp_get_thread_num());
#else
    const std::size_t worker = 0;
#endif
    imageio::ImageF& image = partials[worker % partials.size()];
    FlopMeter meter(costs_);
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
    for (long long s = 0; s < star_count; ++s) {
      const Star& star = stars[static_cast<std::size_t>(s)];
      double brightness = scene.brightness.brightness(
          meter, static_cast<double>(star.magnitude));
      meter.count_flops(kernel_cost::kWeightFlops);
      brightness *= static_cast<double>(star.weight);

      const int base_x = roi.base_coord(star.x);
      const int base_y = roi.base_coord(star.y);
      for (int ty = 0; ty < side; ++ty) {
        const int pixel_y = base_y + ty;
        for (int tx = 0; tx < side; ++tx) {
          const int pixel_x = base_x + tx;
          meter.count_flops(kernel_cost::kCoordFlops +
                            kernel_cost::kBoundsFlops);
          if (!image.contains(pixel_x, pixel_y)) continue;
          const double dx =
              static_cast<double>(pixel_x) - static_cast<double>(star.x);
          const double dy =
              static_cast<double>(pixel_y) - static_cast<double>(star.y);
          const double rate =
              integrated
                  ? gauss_integrated_rate(meter, inv_sqrt2_sigma, dx, dy)
                  : gauss_rate(meter, coefficient, inv_two_sigma_sq, dx, dy);
          meter.count_flops(kernel_cost::kAccumFlops);
          image(pixel_x, pixel_y) += static_cast<float>(brightness * rate);
        }
      }
    }
    worker_flops[worker % partials.size()] = meter.flops();
  }

  // Reduce the partial images.
  auto out = result.image.pixels();
  std::uint64_t total_flops = 0;
  for (std::size_t w = 0; w < partials.size(); ++w) {
    const auto src = partials[w].pixels();
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += src[i];
    total_flops += worker_flops[w];
  }

  result.timing.counters.flops = total_flops;
  result.timing.host_compute_s =
      host_.parallel_time_s(static_cast<double>(total_flops), threads_);
  // The reduction streams all partial images through memory once.
  result.timing.host_reduce_s = host_.memory_stream_time_s(
      static_cast<double>(partials.size()) *
      static_cast<double>(result.image.pixel_count()) * sizeof(float));
  result.timing.wall_s = wall.seconds();
  return result;
}

}  // namespace starsim
