// Catalogue -> image-plane star retrieval: the paper's Star generation
// stage for attitude-driven simulation.
//
// A pinhole (gnomonic) camera model: the attitude quaternion rotates
// inertial star directions into the camera frame (+Z boresight, +X right,
// +Y down/image-y), directions in front of the camera project to
//   u = f * X/Z + cx,   v = f * Y/Z + cy,
// and stars landing inside the frame (with optional margin) and brighter
// than the detection limit become image-plane Star records.
#pragma once

#include <span>

#include "starsim/attitude.h"
#include "starsim/catalog.h"
#include "starsim/star.h"

namespace starsim {

struct CameraModel {
  int width = 1024;
  int height = 1024;
  double focal_length_px = 2000.0;
  /// Principal point; NaN means the image center.
  double principal_x = -1.0;
  double principal_y = -1.0;
  /// Faintest detectable magnitude.
  double magnitude_limit = 7.0;
  /// Extra pixels beyond the frame to keep (stars just outside still leak
  /// flux in through their ROI); 0 culls exactly at the frame edge.
  int frame_margin_px = 0;

  [[nodiscard]] double center_x() const {
    return principal_x >= 0.0 ? principal_x : 0.5 * (width - 1);
  }
  [[nodiscard]] double center_y() const {
    return principal_y >= 0.0 ? principal_y : 0.5 * (height - 1);
  }

  /// Half-angle of the diagonal field of view, radians.
  [[nodiscard]] double half_diagonal_fov() const;
};

/// Project every detectable catalogue star in the FOV onto the image plane.
/// `attitude` maps inertial directions into the camera frame.
[[nodiscard]] StarField project_to_image(std::span<const CatalogStar> catalog,
                                         const Quaternion& attitude,
                                         const CameraModel& camera);

}  // namespace starsim
