// The paper's parallel simulator (Section III-B).
//
// Star-centric decomposition on the (simulated) GPU: each thread block is a
// star, each thread a pixel of that star's ROI. The kernel follows Fig. 6
// step for step — thread (0,0) computes the star's brightness and stages it
// with the position in shared memory behind a __syncthreads barrier; every
// thread then derives its pixel coordinate, evaluates the Gaussian PSF, and
// accumulates into the global image with atomicAdd (ROIs of nearby stars
// overlap, and the exact conflict count is reported in the counters).
#pragma once

#include "gpusim/device.h"
#include "starsim/simulator.h"

namespace starsim {

struct ParallelOptions {
  /// Lift the paper's ROI limitation: when the ROI needs more threads than
  /// a block allows, decompose each star's ROI into tile_side^2-thread
  /// tiles, one block per (star, tile). Off by default — the paper's
  /// simulator rejects such ROIs (Section IV-D), and the selection/
  /// calibration results are stated for the untiled kernel.
  bool allow_tiling = false;
  int tile_side = 16;
};

class ParallelSimulator final : public Simulator {
 public:
  explicit ParallelSimulator(gpusim::Device& device,
                             ParallelOptions options = {});

  [[nodiscard]] SimulatorKind kind() const override {
    return SimulatorKind::kParallel;
  }
  [[nodiscard]] std::string_view name() const override { return "parallel"; }

  [[nodiscard]] SimulationResult simulate(
      const SceneConfig& scene, std::span<const Star> stars) override;

  /// Largest ROI side this device supports without tiling (side^2 threads
  /// must fit in a block — the limitation Section IV-D discusses).
  [[nodiscard]] int max_roi_side() const;

  [[nodiscard]] const ParallelOptions& options() const { return options_; }

 private:
  gpusim::Device& device_;
  ParallelOptions options_;
};

}  // namespace starsim
