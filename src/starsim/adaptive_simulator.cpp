#include "starsim/adaptive_simulator.h"

#include <algorithm>
#include <cmath>

#include "gpusim/host_spec.h"
#include "starsim/device_frame.h"
#include "starsim/kernel_cost.h"
#include "starsim/roi.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace starsim {

namespace {

using gpusim::DevicePtr;
using gpusim::TextureHandle;
using gpusim::ThreadCtx;
using gpusim::ThreadProgram;

struct KernelParams {
  DevicePtr<Star> stars;
  DevicePtr<float> image;
  TextureHandle lut;
  std::uint32_t star_count = 0;
  int image_width = 0;
  int image_height = 0;
  int margin = 0;
  int roi_side = 0;
  // Lookup-table addressing constants.
  double magnitude_min = 0.0;
  double inv_bin_width = 1.0;
  int magnitude_bins = 0;
  int phases = 1;
};

/// Fig. 6 with the Section III-C substitution: "the computation of star
/// brightness and distribution of star on its ROI will be replaced by
/// accessing the search table in texture memory. Then, the content of
/// shared memory ... is also changed by storing star magnitude instead."
ThreadProgram adaptive_kernel(ThreadCtx& ctx, KernelParams p) {
  const std::uint64_t block_id = ctx.block_linear();
  if (block_id >= p.star_count) co_return;

  auto shared = ctx.shared_array<float>(4);
  if (ctx.thread_idx().x == 0 && ctx.thread_idx().y == 0) {
    const Star star = ctx.load(p.stars, block_id);
    shared.set(0, star.magnitude);
    shared.set(1, star.x);
    shared.set(2, star.y);
    shared.set(3, star.weight);
  }
  co_await ctx.syncthreads();

  const float magnitude = shared.get(0);
  const float star_x = shared.get(1);
  const float star_y = shared.get(2);
  const float weight = shared.get(3);

  const int pixel_x = static_cast<int>(std::lround(star_x)) - p.margin +
                      static_cast<int>(ctx.thread_idx().x);
  const int pixel_y = static_cast<int>(std::lround(star_y)) - p.margin +
                      static_cast<int>(ctx.thread_idx().y);
  ctx.count_flops(kernel_cost::kCoordFlops + kernel_cost::kBoundsFlops);

  const bool inside = pixel_x >= 0 && pixel_y >= 0 &&
                      pixel_x < p.image_width && pixel_y < p.image_height;
  ctx.branch(0, inside);
  if (!inside) co_return;

  // Table indexing: magnitude bin, subpixel phases, then the texture row of
  // this thread's ROI offset.
  ctx.count_flops(kernel_cost::kLutIndexFlops);
  int bin = static_cast<int>(std::floor(
      (static_cast<double>(magnitude) - p.magnitude_min) * p.inv_bin_width));
  bin = std::clamp(bin, 0, p.magnitude_bins - 1);
  int phase_x = 0;
  int phase_y = 0;
  if (p.phases > 1) {
    const auto phase_of = [&](float coord) {
      const double frac = static_cast<double>(coord) -
                          static_cast<double>(std::lround(coord));
      return std::clamp(
          static_cast<int>(std::floor((frac + 0.5) * p.phases)), 0,
          p.phases - 1);
    };
    phase_x = phase_of(star_x);
    phase_y = phase_of(star_y);
  }
  const int row = ((bin * p.phases + phase_y) * p.phases + phase_x) *
                      p.roi_side +
                  static_cast<int>(ctx.thread_idx().y);
  const float value =
      ctx.tex2d(p.lut, static_cast<int>(ctx.thread_idx().x), row);

  ctx.count_flops(kernel_cost::kAccumFlops);
  const std::size_t index =
      static_cast<std::size_t>(pixel_y) *
          static_cast<std::size_t>(p.image_width) +
      static_cast<std::size_t>(pixel_x);
  ctx.atomic_add(p.image, index, value * weight);
}

void validate_scene(const gpusim::Device& device, const SceneConfig& scene) {
  scene.validate();
  const long threads_per_block =
      static_cast<long>(scene.roi_side) * scene.roi_side;
  if (threads_per_block >
      static_cast<long>(device.spec().max_threads_per_block)) {
    throw support::DeviceError(
        "ROI side " + std::to_string(scene.roi_side) +
        " exceeds the device block limit");
  }
}

/// The per-scene setup both entry points share, built on the CPU
/// (Section IV-D) and shipped once: lookup-table build, device upload and
/// texture bind, with its modeled costs snapshotted so callers can charge
/// them to one frame or amortize them over a batch. RAII: the device
/// buffer and texture slot are released on destruction (fault-injected
/// frees cannot throw out of the unwind path).
class SharedTable {
 public:
  SharedTable(gpusim::Device& device, const SceneConfig& scene,
              const LookupTableOptions& options)
      : device_(device),
        table_(LookupTable::build(scene, options)),
        inv_bin_width_(options.bins_per_magnitude) {
    trace::TraceSpan span("starsim", "lut_setup");
    if (span.armed()) [[unlikely]] {
      span.arg("entries", table_.entries())
          .arg("magnitude_bins", table_.magnitude_bins())
          .arg("phases", table_.phases());
    }
    if (AdaptiveSimulator::max_magnitude_bins(device_, scene.roi_side,
                                              options.subpixel_phases) <
        table_.magnitude_bins()) {
      throw support::DeviceError(
          "lookup table does not fit the device's texture limits: " +
          std::to_string(table_.magnitude_bins()) + " bins requested");
    }
    device_.reset_transfer_stats();
    buffer_ = device_.malloc<float>(table_.entries());
    try {
      device_.memcpy_h2d(buffer_, table_.values());
      texture_ = device_.bind_texture_2d(buffer_, table_.width(),
                                         table_.height(),
                                         gpusim::AddressMode::kClamp);
    } catch (...) {
      release();
      throw;
    }
    upload_s_ = device_.transfer_stats().h2d_s;
    bind_s_ = device_.transfer_stats().texture_bind_s;
    build_s_ = gpusim::HostSpec::i7_860().lut_build_time_s(
        static_cast<double>(table_.entries()));
  }

  SharedTable(const SharedTable&) = delete;
  SharedTable& operator=(const SharedTable&) = delete;

  ~SharedTable() { release(); }

  [[nodiscard]] const LookupTable& table() const { return table_; }
  [[nodiscard]] TextureHandle texture() const { return texture_; }
  [[nodiscard]] double inv_bin_width() const { return inv_bin_width_; }

  /// Charge this table's modeled setup cost to `timing`, split over `share`
  /// frames (1 = the classic per-call accounting).
  void amortize_into(TimingBreakdown& timing, std::size_t share) const {
    const auto n = static_cast<double>(share);
    timing.h2d_s += upload_s_ / n;
    timing.texture_bind_s += bind_s_ / n;
    timing.lut_build_s += build_s_ / n;
  }

 private:
  void release() noexcept {
    try {
      if (texture_.valid()) device_.unbind_texture(texture_);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    try {
      if (!buffer_.is_null()) device_.free(buffer_);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }

  gpusim::Device& device_;
  LookupTable table_;
  double inv_bin_width_ = 1.0;
  DevicePtr<float> buffer_;
  TextureHandle texture_;
  double upload_s_ = 0.0;
  double bind_s_ = 0.0;
  double build_s_ = 0.0;
};

/// Render one field against an already-bound table. Fills every timing
/// component the frame itself causes (kernel, star/image transfers); the
/// caller adds the table's amortized setup share.
SimulationResult render_frame(gpusim::Device& device, const SceneConfig& scene,
                              std::span<const Star> stars,
                              const SharedTable& shared) {
  SimulationResult result;
  result.image = imageio::ImageF(scene.image_width, scene.image_height);
  if (stars.empty()) return result;

  device.reset_transfer_stats();
  DeviceFrame frame(device, scene, stars);

  KernelParams params;
  params.stars = frame.stars();
  params.image = frame.image();
  params.lut = shared.texture();
  params.star_count = static_cast<std::uint32_t>(stars.size());
  params.image_width = scene.image_width;
  params.image_height = scene.image_height;
  params.margin = Roi(scene.roi_side).margin();
  params.roi_side = scene.roi_side;
  params.magnitude_min = scene.magnitude_min;
  params.inv_bin_width = shared.inv_bin_width();
  params.magnitude_bins = shared.table().magnitude_bins();
  params.phases = shared.table().phases();

  const gpusim::LaunchConfig config =
      star_centric_config(stars.size(), scene.roi_side);
  const gpusim::LaunchResult launch = device.launch(
      config,
      [&params](ThreadCtx& ctx) { return adaptive_kernel(ctx, params); });

  frame.readback(result.image);

  const gpusim::TransferStats& transfers = device.transfer_stats();
  result.timing.kernel_s = launch.timing.kernel_s;
  result.timing.h2d_s = transfers.h2d_s;
  result.timing.d2h_s = transfers.d2h_s;
  result.timing.counters = launch.counters;
  result.timing.utilization = launch.timing.utilization;
  result.timing.achieved_gflops = launch.timing.achieved_gflops;
  return result;
}

}  // namespace

AdaptiveSimulator::AdaptiveSimulator(gpusim::Device& device,
                                     LookupTableOptions options)
    : device_(device), options_(options) {}

int AdaptiveSimulator::max_magnitude_bins(const gpusim::Device& device,
                                          int roi_side, int subpixel_phases) {
  STARSIM_REQUIRE(roi_side > 0 && subpixel_phases > 0,
                  "invalid table geometry");
  // Texture rows are capped at 65536 by the addressing model; each
  // (bin, phase_x, phase_y) consumes roi_side rows. Device memory is the
  // second cap.
  const std::uint64_t rows_per_bin = static_cast<std::uint64_t>(roi_side) *
                                     static_cast<std::uint64_t>(
                                         subpixel_phases) *
                                     static_cast<std::uint64_t>(subpixel_phases);
  const std::uint64_t by_extent = 65536ull / rows_per_bin;
  const std::uint64_t bytes_per_bin =
      rows_per_bin * static_cast<std::uint64_t>(roi_side) * sizeof(float);
  const std::uint64_t by_memory =
      device.memory().free_bytes() / std::max<std::uint64_t>(1, bytes_per_bin);
  return static_cast<int>(std::min(by_extent, by_memory));
}

SimulationResult AdaptiveSimulator::simulate(const SceneConfig& scene,
                                             std::span<const Star> stars) {
  trace::TraceSpan span("starsim", "render");
  if (span.armed()) [[unlikely]] {
    span.arg("simulator", name())
        .arg("stars", stars.size())
        .arg("roi", scene.roi_side);
  }
  validate_scene(device_, scene);

  const support::WallTimer wall;
  if (stars.empty()) {
    SimulationResult result;
    result.image = imageio::ImageF(scene.image_width, scene.image_height);
    result.timing.wall_s = wall.seconds();
    return result;
  }

  const SharedTable shared(device_, scene, options_);
  SimulationResult result = render_frame(device_, scene, stars, shared);
  shared.amortize_into(result.timing, 1);
  result.timing.wall_s = wall.seconds();
  if (span.armed()) [[unlikely]] {
    span.arg("kernel_s", result.timing.kernel_s)
        .arg("non_kernel_s", result.timing.non_kernel_s());
  }
  return result;
}

std::vector<SimulationResult> AdaptiveSimulator::simulate_batch(
    const SceneConfig& scene, std::span<const StarField> fields) {
  trace::TraceSpan span("starsim", "simulate_batch");
  if (span.armed()) [[unlikely]] {
    span.arg("simulator", name())
        .arg("fields", fields.size())
        .arg("roi", scene.roi_side);
  }
  validate_scene(device_, scene);

  std::vector<SimulationResult> results;
  results.reserve(fields.size());
  if (fields.empty()) return results;

  const std::size_t non_empty = static_cast<std::size_t>(std::count_if(
      fields.begin(), fields.end(),
      [](const StarField& f) { return !f.empty(); }));
  if (non_empty == 0) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      const support::WallTimer wall;
      SimulationResult result;
      result.image = imageio::ImageF(scene.image_width, scene.image_height);
      result.timing.wall_s = wall.seconds();
      results.push_back(std::move(result));
    }
    return results;
  }

  const support::WallTimer setup_wall;
  const SharedTable shared(device_, scene, options_);
  const double setup_wall_s = setup_wall.seconds();

  for (const StarField& field : fields) {
    const support::WallTimer wall;
    SimulationResult result = render_frame(device_, scene, field, shared);
    if (!field.empty()) {
      shared.amortize_into(result.timing, non_empty);
      result.timing.wall_s =
          wall.seconds() + setup_wall_s / static_cast<double>(non_empty);
    } else {
      result.timing.wall_s = wall.seconds();
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace starsim
