#include "starsim/psf.h"

#include <cmath>
#include <numbers>

#include "support/error.h"

namespace starsim {

GaussianPsf::GaussianPsf(double sigma) : sigma_(sigma) {
  STARSIM_REQUIRE(sigma > 0.0, "PSF sigma must be positive");
  coefficient_ = 1.0 / (2.0 * std::numbers::pi * sigma * sigma);
  inv_two_sigma_sq_ = 1.0 / (2.0 * sigma * sigma);
  inv_sqrt2_sigma_ = 1.0 / (std::numbers::sqrt2 * sigma);
}

double GaussianPsf::intensity_rate(double dx, double dy) const {
  return coefficient_ * std::exp(-(dx * dx + dy * dy) * inv_two_sigma_sq_);
}

double GaussianPsf::integrated_rate(double dx, double dy) const {
  // The 2-D Gaussian separates; each axis integrates to an erf difference
  // over the pixel footprint [d-0.5, d+0.5].
  const auto axis = [this](double d) {
    return 0.5 * (std::erf((d + 0.5) * inv_sqrt2_sigma_) -
                  std::erf((d - 0.5) * inv_sqrt2_sigma_));
  };
  return axis(dx) * axis(dy);
}

double GaussianPsf::energy_within_radius(double r) const {
  STARSIM_REQUIRE(r >= 0.0, "radius must be non-negative");
  return 1.0 - std::exp(-r * r * inv_two_sigma_sq_);
}

int GaussianPsf::radius_for_energy(double fraction) const {
  STARSIM_REQUIRE(fraction > 0.0 && fraction < 1.0,
                  "energy fraction must be in (0, 1)");
  // r = sigma * sqrt(-2 ln(1 - fraction)), rounded up to whole pixels.
  const double r = sigma_ * std::sqrt(-2.0 * std::log(1.0 - fraction));
  return static_cast<int>(std::ceil(r));
}

}  // namespace starsim
