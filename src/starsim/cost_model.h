// Flop accounting shared by the CPU and GPU sides.
//
// Every simulator measures its arithmetic in the same unit — fp64
// flop-equivalents, with transcendentals priced at the DeviceSpec costs —
// so modeled CPU time (HostSpec) and modeled GPU time (perf model) are
// directly comparable, which is what makes the benches' speedup columns
// meaningful. FlopMeter exposes the same counting surface as
// gpusim::ThreadCtx (count_flops / exp / pow / sqrt), letting the PSF and
// brightness formulas be written once and instantiated for either side
// (see psf.h).
#pragma once

#include <cmath>
#include <cstdint>

#include "gpusim/device_spec.h"

namespace starsim {

/// Transcendental prices in flop-equivalents.
struct ArithmeticCosts {
  double exp_cost = 160.0;
  double pow_cost = 200.0;
  double sqrt_cost = 40.0;
  double erf_cost = 120.0;

  static ArithmeticCosts from_device(const gpusim::DeviceSpec& spec) {
    return ArithmeticCosts{spec.exp_flop_equiv, spec.pow_flop_equiv,
                           spec.sqrt_flop_equiv, spec.erf_flop_equiv};
  }
};

/// CPU-side arithmetic meter with the ThreadCtx counting interface.
class FlopMeter {
 public:
  FlopMeter() = default;
  explicit FlopMeter(const ArithmeticCosts& costs) : costs_(costs) {}

  void count_flops(std::uint64_t n) { flops_ += n; }

  double exp(double x) {
    flops_ += static_cast<std::uint64_t>(costs_.exp_cost);
    return std::exp(x);
  }
  double pow(double base, double exponent) {
    flops_ += static_cast<std::uint64_t>(costs_.pow_cost);
    return std::pow(base, exponent);
  }
  double sqrt(double x) {
    flops_ += static_cast<std::uint64_t>(costs_.sqrt_cost);
    return std::sqrt(x);
  }
  double erf(double x) {
    flops_ += static_cast<std::uint64_t>(costs_.erf_cost);
    return std::erf(x);
  }

  [[nodiscard]] std::uint64_t flops() const { return flops_; }
  void reset() { flops_ = 0; }

 private:
  ArithmeticCosts costs_;
  std::uint64_t flops_ = 0;
};

/// Zero-overhead meter for callers that want the value without accounting.
struct NullMeter {
  void count_flops(std::uint64_t) {}
  double exp(double x) { return std::exp(x); }
  double pow(double base, double exponent) { return std::pow(base, exponent); }
  double sqrt(double x) { return std::sqrt(x); }
  double erf(double x) { return std::erf(x); }
};

}  // namespace starsim
