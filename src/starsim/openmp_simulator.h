// Multithreaded CPU simulator (extension).
//
// The paper's host "has eight cores" but its baseline uses one "to
// accurately control the execution of sequential simulator". This simulator
// fills in the obvious middle ground between that baseline and the GPU: the
// same Fig. 5 loops, parallelized over stars with OpenMP, each worker
// accumulating into a private image that is reduced at the end (no atomics,
// deterministic up to float addition order of the reduction). Modeled time
// uses HostSpec's core count and parallel efficiency so the bench can place
// the multicore CPU on the paper's speedup axis; wall time additionally
// reflects this machine.
#pragma once

#include "gpusim/host_spec.h"
#include "starsim/cost_model.h"
#include "starsim/simulator.h"

namespace starsim {

class OpenMpSimulator final : public Simulator {
 public:
  /// `threads` = 0 picks the runtime's hardware concurrency (capped at the
  /// HostSpec core count for the modeled time).
  explicit OpenMpSimulator(int threads = 0,
                           gpusim::HostSpec host = gpusim::HostSpec::i7_860(),
                           ArithmeticCosts costs = ArithmeticCosts{});

  [[nodiscard]] SimulatorKind kind() const override {
    return SimulatorKind::kCpuParallel;
  }
  [[nodiscard]] std::string_view name() const override {
    return "cpu-parallel";
  }

  [[nodiscard]] int threads() const { return threads_; }

  [[nodiscard]] SimulationResult simulate(
      const SceneConfig& scene, std::span<const Star> stars) override;

 private:
  int threads_;
  gpusim::HostSpec host_;
  ArithmeticCosts costs_;
};

}  // namespace starsim
