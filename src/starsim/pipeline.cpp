#include "starsim/pipeline.h"

#include <memory>
#include <utility>
#include <vector>

#include "gpusim/stream.h"
#include "starsim/openmp_simulator.h"
#include "starsim/parallel_simulator.h"
#include "starsim/sequential_simulator.h"
#include "support/error.h"
#include "trace/trace.h"

namespace starsim {

PipelineResult simulate_frame_sequence(gpusim::Device& device,
                                       const SceneConfig& scene,
                                       std::span<const StarField> frame_fields,
                                       const PipelineOptions& options) {
  STARSIM_REQUIRE(options.streams >= 1, "need at least one stream");
  STARSIM_REQUIRE(!frame_fields.empty(),
                  "frame sequence must contain at least one frame");
  trace::TraceSpan span("starsim", "frame_sequence");
  if (span.armed()) [[unlikely]] {
    span.arg("frames", frame_fields.size())
        .arg("streams", options.streams)
        .arg("copy_engines", options.copy_engines);
  }
  PipelineResult result;

  // In resilient mode every frame runs through the recovery ladder;
  // otherwise the plain parallel simulator, exactly as before.
  ParallelSimulator simulator(device, options.parallel);
  std::unique_ptr<ResilientExecutor> executor;
  if (options.resilient) {
    std::vector<std::unique_ptr<Simulator>> chain;
    chain.push_back(
        std::make_unique<ParallelSimulator>(device, options.parallel));
    chain.push_back(std::make_unique<OpenMpSimulator>());
    chain.push_back(std::make_unique<SequentialSimulator>());
    executor = std::make_unique<ResilientExecutor>(std::move(chain),
                                                   options.retry);
    result.resilience.reserve(frame_fields.size());
  }
  result.frames.reserve(frame_fields.size());

  gpusim::StreamScheduler scheduler(options.copy_engines);
  std::vector<gpusim::StreamId> streams;
  streams.reserve(static_cast<std::size_t>(options.streams));
  for (int s = 0; s < options.streams; ++s) {
    streams.push_back(scheduler.create_stream());
  }

  // Run every frame functionally first; the schedule below only needs the
  // modeled stage durations. A faulted frame retries/degrades inside the
  // executor here, so by the time stages are enqueued only the successful
  // attempt exists — recovery never stalls the stream schedule.
  for (const StarField& field : frame_fields) {
    SimulationResult sim = executor ? executor->simulate(scene, field)
                                    : simulator.simulate(scene, field);
    if (executor) result.resilience.push_back(executor->last_report());
    result.serial_s += sim.timing.application_s();
    result.frames.push_back(std::move(sim));
  }

  // Issue order matters on a FIFO copy engine (Fermi's false-dependency
  // pitfall): enqueueing frame f's readback before frame f+1's upload
  // blocks the upload behind a transfer that must wait for frame f's
  // kernel, serializing the whole pipeline. The classic software-pipelined
  // order — prefetch the next frame's upload before issuing this frame's
  // kernel and readback — keeps the engine busy.
  auto stream_of = [&](std::size_t frame) {
    return streams[frame % streams.size()];
  };
  if (!result.frames.empty()) {
    (void)scheduler.enqueue_h2d(stream_of(0), result.frames[0].timing.h2d_s);
  }
  for (std::size_t frame = 0; frame < result.frames.size(); ++frame) {
    if (frame + 1 < result.frames.size()) {
      (void)scheduler.enqueue_h2d(stream_of(frame + 1),
                                  result.frames[frame + 1].timing.h2d_s);
    }
    const gpusim::StreamId stream = stream_of(frame);
    (void)scheduler.enqueue_kernel(stream,
                                   result.frames[frame].timing.kernel_s);
    (void)scheduler.enqueue_d2h(stream, result.frames[frame].timing.d2h_s);
  }

  result.pipelined_s = scheduler.makespan();
  if (result.pipelined_s > 0.0) {
    const double copy_busy =
        scheduler.engine_busy(gpusim::StreamScheduler::Engine::kCopyH2D) +
        (options.copy_engines == 2
             ? scheduler.engine_busy(
                   gpusim::StreamScheduler::Engine::kCopyD2H)
             : 0.0);
    result.copy_utilization =
        copy_busy / (result.pipelined_s * options.copy_engines);
    result.compute_utilization =
        scheduler.engine_busy(gpusim::StreamScheduler::Engine::kCompute) /
        result.pipelined_s;
  }
  return result;
}

}  // namespace starsim
