// Timing breakdown of one simulation run.
//
// The paper's evaluation is entirely about how application time divides into
// kernel execution vs non-kernel overhead (transfers, lookup-table build,
// texture binding), so every simulator returns this structure. All modeled
// components are commensurable: GPU pieces come from the perf/transfer
// models, CPU pieces from HostSpec — `wall_s` is the only field measured on
// the machine running the reproduction.
#pragma once

#include "gpusim/counters.h"
#include "imageio/image.h"

namespace starsim {

struct TimingBreakdown {
  // --- Modeled, seconds -------------------------------------------------------
  double kernel_s = 0.0;        ///< GPU kernel execution (perf model)
  double h2d_s = 0.0;           ///< host->device transfers
  double d2h_s = 0.0;           ///< device->host transfers
  double lut_build_s = 0.0;     ///< lookup-table construction (CPU)
  double texture_bind_s = 0.0;  ///< texture binding
  double host_compute_s = 0.0;  ///< CPU pixel computation (sequential sim)
  double host_reduce_s = 0.0;   ///< partial-image reduction (multi-GPU)

  // --- Measured ---------------------------------------------------------------
  double wall_s = 0.0;  ///< wall-clock of the whole simulate() call

  // --- Diagnostics --------------------------------------------------------------
  gpusim::KernelCounters counters;  ///< zero for the sequential simulator
  double utilization = 0.0;         ///< perf-model occupancy ramp factor
  double achieved_gflops = 0.0;     ///< counted flops / modeled time

  /// The paper's "non-kernel overhead".
  [[nodiscard]] double non_kernel_s() const {
    return h2d_s + d2h_s + lut_build_s + texture_bind_s + host_reduce_s;
  }

  /// The paper's "application time" (modeled).
  [[nodiscard]] double application_s() const {
    return kernel_s + non_kernel_s() + host_compute_s;
  }

  /// Fraction of application time spent outside the kernel (Fig. 16).
  [[nodiscard]] double non_kernel_fraction() const {
    const double app = application_s();
    return app > 0.0 ? non_kernel_s() / app : 0.0;
  }
};

/// A rendered star image plus how long it took.
struct SimulationResult {
  imageio::ImageF image;
  TimingBreakdown timing;
};

}  // namespace starsim
