// The rejected design from Fig. 3(a), implemented for the ablation study.
//
// One thread per image pixel; every thread scans the whole star array and
// tests whether the pixel falls inside each star's ROI. The paper rejects
// this decomposition because "each thread has to identify all stars ... and
// it will lead to many divergences in the warp execution"; here those
// divergences are measured, not asserted — the branch counters report the
// divergent-warp rate and the perf model prices it, so
// bench_ablation_pixel_centric can show the actual gap against the
// star-centric kernel on identical workloads.
//
// Work is O(pixels x stars) — use it on ablation-scale scenes only.
#pragma once

#include "gpusim/device.h"
#include "starsim/simulator.h"

namespace starsim {

class PixelCentricSimulator final : public Simulator {
 public:
  explicit PixelCentricSimulator(gpusim::Device& device);

  [[nodiscard]] SimulatorKind kind() const override {
    return SimulatorKind::kPixelCentric;
  }
  [[nodiscard]] std::string_view name() const override {
    return "pixel-centric";
  }

  [[nodiscard]] SimulationResult simulate(
      const SceneConfig& scene, std::span<const Star> stars) override;

 private:
  gpusim::Device& device_;
};

}  // namespace starsim
