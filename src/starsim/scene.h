// Scene configuration shared by all simulators: the model parameters that,
// per Section II of the paper, define a star image simulation — image size,
// ROI side, Gaussian blur width, and the brightness proportionality.
#pragma once

#include "starsim/magnitude.h"
#include "support/error.h"

namespace starsim {

struct SceneConfig {
  int image_width = 1024;
  int image_height = 1024;
  /// ROI side in pixels (the paper's empirical range is radius 2..20, i.e.
  /// sides up to ~40; the parallel simulator additionally caps side^2 at
  /// the device's threads-per-block limit).
  int roi_side = 10;
  /// Gaussian PSF standard deviation (the paper's delta), in pixels.
  double psf_sigma = 1.7;
  /// Pixel response model: false = the paper's point-sampled Eq. (2);
  /// true = the exact pixel-integrated response (erf over the pixel
  /// footprint), which conserves flux for arbitrarily small sigma at the
  /// price of four erf evaluations per pixel.
  bool pixel_integration = false;
  BrightnessModel brightness;
  /// Magnitude range the instrument detects (0..15 in the paper).
  double magnitude_min = 0.0;
  double magnitude_max = 15.0;

  void validate() const {
    STARSIM_REQUIRE(image_width > 0 && image_height > 0,
                    "image dimensions must be positive");
    STARSIM_REQUIRE(roi_side > 0, "ROI side must be positive");
    STARSIM_REQUIRE(psf_sigma > 0.0, "PSF sigma must be positive");
    STARSIM_REQUIRE(magnitude_min <= magnitude_max,
                    "magnitude range is inverted");
  }
};

}  // namespace starsim
