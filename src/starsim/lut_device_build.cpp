#include "starsim/lut_device_build.h"

#include <cmath>

#include "starsim/psf.h"
#include "support/error.h"

namespace starsim {

namespace {

using gpusim::DevicePtr;
using gpusim::ThreadCtx;
using gpusim::ThreadProgram;

struct KernelParams {
  DevicePtr<float> table;
  std::uint32_t rows = 0;  ///< guard for grid-rounding padding blocks
  int side = 0;
  int margin = 0;
  int phases = 1;
  double magnitude_min = 0.0;
  double bin_width = 1.0;
  double psf_coefficient = 0.0;
  double psf_inv_two_sigma_sq = 0.0;
  double psf_inv_sqrt2_sigma = 0.0;
  bool pixel_integration = false;
  BrightnessModel brightness;
};

/// One thread per table entry: block = one texture row (side threads),
/// grid.y walks the rows. Unlike the CPU build, nothing is hoisted — each
/// thread re-derives its bin's brightness — which is exactly the
/// arithmetic redundancy the GPU's parallelism has to beat.
ThreadProgram lut_build_kernel(ThreadCtx& ctx, KernelParams p) {
  if (ctx.block_linear() >= p.rows) co_return;
  const auto row = static_cast<int>(ctx.block_linear());
  const auto col = static_cast<int>(ctx.thread_idx().x);

  // Decode (bin, phase_y, phase_x, roi_row) from the texture row.
  ctx.count_flops(8);
  const int roi_row = row % p.side;
  const int packed = row / p.side;
  const int phase_x = packed % p.phases;
  const int phase_y = (packed / p.phases) % p.phases;
  const int bin = packed / (p.phases * p.phases);

  const double magnitude = p.magnitude_min + (bin + 0.5) * p.bin_width;
  double brightness = p.brightness.brightness(ctx, magnitude);
  ctx.count_flops(4);
  const double off_x = (phase_x + 0.5) / p.phases - 0.5;
  const double off_y = (phase_y + 0.5) / p.phases - 0.5;
  const double dx = static_cast<double>(col - p.margin) - off_x;
  const double dy = static_cast<double>(roi_row - p.margin) - off_y;
  const double rate =
      p.pixel_integration
          ? gauss_integrated_rate(ctx, p.psf_inv_sqrt2_sigma, dx, dy)
          : gauss_rate(ctx, p.psf_coefficient, p.psf_inv_two_sigma_sq, dx,
                       dy);
  const std::size_t index = static_cast<std::size_t>(row) *
                                static_cast<std::size_t>(p.side) +
                            static_cast<std::size_t>(col);
  ctx.count_flops(1);
  ctx.store(p.table, index, static_cast<float>(brightness * rate));
  co_return;
}

}  // namespace

DeviceLutBuild build_lookup_table_on_device(gpusim::Device& device,
                                            const SceneConfig& scene,
                                            const LookupTableOptions& options) {
  scene.validate();
  STARSIM_REQUIRE(options.bins_per_magnitude > 0 && options.subpixel_phases > 0,
                  "invalid lookup table options");
  const double span = scene.magnitude_max - scene.magnitude_min;
  const int bins = std::max(
      1, static_cast<int>(std::ceil(span * options.bins_per_magnitude)));
  const int phases = options.subpixel_phases;
  const int side = scene.roi_side;
  const int height = bins * phases * phases * side;

  DeviceLutBuild result;
  result.width = side;
  result.height = height;
  result.table = device.malloc<float>(static_cast<std::size_t>(side) *
                                      static_cast<std::size_t>(height));

  const GaussianPsf psf(scene.psf_sigma);
  KernelParams params;
  params.table = result.table;
  params.rows = static_cast<std::uint32_t>(height);
  params.side = side;
  params.margin = side / 2;
  params.phases = phases;
  params.magnitude_min = scene.magnitude_min;
  params.bin_width = 1.0 / options.bins_per_magnitude;
  params.psf_coefficient = psf.coefficient();
  params.psf_inv_two_sigma_sq = psf.inv_two_sigma_sq();
  params.psf_inv_sqrt2_sigma = psf.inv_sqrt2_sigma();
  params.pixel_integration = scene.pixel_integration;
  params.brightness = scene.brightness;

  gpusim::LaunchConfig config;
  // One block per texture row keeps the geometry valid for any side.
  constexpr std::uint32_t kGridWidth = 256;
  const auto rows = static_cast<std::uint32_t>(height);
  config.grid = rows <= kGridWidth
                    ? gpusim::Dim3(rows)
                    : gpusim::Dim3(kGridWidth,
                                   (rows + kGridWidth - 1) / kGridWidth);
  config.block = gpusim::Dim3(static_cast<std::uint32_t>(side));

  const gpusim::LaunchResult launch = device.launch(
      config,
      [&params](ThreadCtx& ctx) { return lut_build_kernel(ctx, params); });
  result.kernel_s = launch.timing.kernel_s;
  result.utilization = launch.timing.utilization;
  result.flops = launch.counters.flops;
  return result;
}

}  // namespace starsim
