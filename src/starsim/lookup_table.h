// The adaptive simulator's precomputed intensity lookup table (Fig. 8).
//
// For a star simulator with a fixed magnitude range and a fixed ROI size,
// brightness(m) * psf(dx, dy) can be tabulated once: a 3-D table over
// (magnitude bin, ROI row, ROI column), flattened into a 2-D float texture
// of width `roi_side` whose rows stack the per-bin ROI matrices — the
// layout that gives texture fetches their 2-D locality.
//
// Two knobs extend the paper's fixed geometry for the ablation studies:
//   bins_per_magnitude — magnitude quantization (paper: 1, i.e. one bin per
//     integer magnitude over [magnitude_min, magnitude_max));
//   subpixel_phases — star positions quantized to P x P subpixel phases per
//     pixel instead of pixel centers (paper: 1). Each phase gets its own
//     ROI matrix, multiplying table rows by P^2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "starsim/scene.h"

namespace starsim {

struct LookupTableOptions {
  int bins_per_magnitude = 1;
  int subpixel_phases = 1;
};

class LookupTable {
 public:
  /// Build the table on the CPU ("we run it on CPU platform instead of GPU
  /// kernel, due to the small execution overhead and little data
  /// parallelism" — Section IV-D). Records the build wall time.
  static LookupTable build(const SceneConfig& scene,
                           const LookupTableOptions& options = {});

  [[nodiscard]] int roi_side() const { return roi_side_; }
  [[nodiscard]] int margin() const { return roi_side_ / 2; }
  [[nodiscard]] int magnitude_bins() const { return magnitude_bins_; }
  [[nodiscard]] int phases() const { return phases_; }

  /// Texture layout: width x height floats, row-major.
  [[nodiscard]] int width() const { return roi_side_; }
  [[nodiscard]] int height() const {
    return magnitude_bins_ * phases_ * phases_ * roi_side_;
  }
  [[nodiscard]] std::uint64_t entries() const {
    return static_cast<std::uint64_t>(width()) *
           static_cast<std::uint64_t>(height());
  }
  [[nodiscard]] std::size_t bytes() const { return entries() * sizeof(float); }

  [[nodiscard]] std::span<const float> values() const { return values_; }

  /// Magnitude bin of `magnitude`, clamped into range.
  [[nodiscard]] int magnitude_bin(double magnitude) const;
  /// Magnitude at the center of `bin` (the value the table evaluated).
  [[nodiscard]] double bin_magnitude(int bin) const;

  /// Subpixel phase index of a star coordinate (0 when phases == 1).
  [[nodiscard]] int phase_of(float coord) const;
  /// Offset (in pixels, in (-0.5, 0.5)) the table assumed for `phase`.
  [[nodiscard]] double phase_center(int phase) const;

  /// Texture row of ROI row 0 for (bin, phase_x, phase_y).
  [[nodiscard]] int row_base(int bin, int phase_x, int phase_y) const;

  /// Table value (host-side accessor for tests and the build itself).
  [[nodiscard]] float at(int bin, int phase_x, int phase_y, int roi_row,
                         int roi_col) const;

  /// Wall-clock seconds the build took on this machine.
  [[nodiscard]] double build_wall_s() const { return build_wall_s_; }

 private:
  LookupTable() = default;

  int roi_side_ = 0;
  int magnitude_bins_ = 0;
  int phases_ = 1;
  double magnitude_min_ = 0.0;
  double bin_width_ = 1.0;
  std::vector<float> values_;
  double build_wall_s_ = 0.0;
};

}  // namespace starsim
