#include "starsim/noise.h"

#include <algorithm>

#include "support/error.h"
#include "support/rng.h"

namespace starsim {

imageio::ImageF apply_sensor_noise(const imageio::ImageF& flux,
                                   const SensorNoiseConfig& config) {
  STARSIM_REQUIRE(config.gain_electrons_per_flux > 0.0,
                  "gain must be positive");
  STARSIM_REQUIRE(config.read_noise_electrons >= 0.0,
                  "read noise must be non-negative");
  STARSIM_REQUIRE(!flux.empty(), "cannot add noise to an empty image");

  support::Pcg32 rng(config.seed);
  imageio::ImageF out(flux.width(), flux.height());
  const auto src = flux.pixels();
  auto dst = out.pixels();
  const double gain = config.gain_electrons_per_flux;
  for (std::size_t i = 0; i < src.size(); ++i) {
    double electrons = std::max(0.0, static_cast<double>(src[i])) * gain +
                       config.dark_offset_electrons;
    if (config.shot_noise) {
      electrons = static_cast<double>(rng.poisson(electrons));
    }
    if (config.read_noise_electrons > 0.0) {
      electrons += rng.normal(0.0, config.read_noise_electrons);
    }
    dst[i] = static_cast<float>(std::max(0.0, electrons) / gain);
  }
  return out;
}

}  // namespace starsim
