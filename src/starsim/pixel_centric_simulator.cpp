#include "starsim/pixel_centric_simulator.h"

#include <cmath>

#include "starsim/device_frame.h"
#include "starsim/kernel_cost.h"
#include "starsim/psf.h"
#include "starsim/roi.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace starsim {

namespace {

using gpusim::DevicePtr;
using gpusim::ThreadCtx;
using gpusim::ThreadProgram;

constexpr std::uint32_t kTile = 16;  // 16x16 pixel tiles per block

struct KernelParams {
  DevicePtr<Star> stars;
  DevicePtr<float> image;
  std::uint32_t star_count = 0;
  int image_width = 0;
  int image_height = 0;
  int margin = 0;
  int roi_side = 0;
  double psf_coefficient = 0.0;
  double psf_inv_two_sigma_sq = 0.0;
  double psf_inv_sqrt2_sigma = 0.0;
  bool pixel_integration = false;
  BrightnessModel brightness;
};

ThreadProgram pixel_centric_kernel(ThreadCtx& ctx, KernelParams p) {
  const int pixel_x = static_cast<int>(ctx.block_idx().x * kTile +
                                       ctx.thread_idx().x);
  const int pixel_y = static_cast<int>(ctx.block_idx().y * kTile +
                                       ctx.thread_idx().y);
  ctx.count_flops(kernel_cost::kCoordFlops);
  if (pixel_x >= p.image_width || pixel_y >= p.image_height) co_return;

  // Accumulate contributions from every star whose ROI covers this pixel.
  // The in-ROI test is the warp-divergent branch the paper's Fig. 3
  // discussion predicts: adjacent pixels of a warp disagree near every ROI
  // edge, and hits are sparse (ROI area / image area per star).
  double accumulated = 0.0;
  for (std::uint32_t i = 0; i < p.star_count; ++i) {
    const Star star = ctx.load(p.stars, i);
    const int base_x =
        static_cast<int>(std::lround(star.x)) - p.margin;
    const int base_y =
        static_cast<int>(std::lround(star.y)) - p.margin;
    ctx.count_flops(kernel_cost::kBoundsFlops + 2);
    const bool in_roi = pixel_x >= base_x && pixel_x < base_x + p.roi_side &&
                        pixel_y >= base_y && pixel_y < base_y + p.roi_side;
    ctx.branch(0, in_roi);
    if (!in_roi) continue;

    double brightness =
        p.brightness.brightness(ctx, static_cast<double>(star.magnitude));
    ctx.count_flops(kernel_cost::kWeightFlops);
    brightness *= static_cast<double>(star.weight);
    const double dx =
        static_cast<double>(pixel_x) - static_cast<double>(star.x);
    const double dy =
        static_cast<double>(pixel_y) - static_cast<double>(star.y);
    const double rate =
        p.pixel_integration
            ? gauss_integrated_rate(ctx, p.psf_inv_sqrt2_sigma, dx, dy)
            : gauss_rate(ctx, p.psf_coefficient, p.psf_inv_two_sigma_sq, dx,
                         dy);
    ctx.count_flops(kernel_cost::kAccumFlops);
    accumulated += brightness * rate;
  }

  // Sole writer of its pixel: a plain store, no atomics.
  const std::size_t index =
      static_cast<std::size_t>(pixel_y) *
          static_cast<std::size_t>(p.image_width) +
      static_cast<std::size_t>(pixel_x);
  ctx.store(p.image, index, static_cast<float>(accumulated));
}

}  // namespace

PixelCentricSimulator::PixelCentricSimulator(gpusim::Device& device)
    : device_(device) {}

SimulationResult PixelCentricSimulator::simulate(const SceneConfig& scene,
                                                 std::span<const Star> stars) {
  trace::TraceSpan span("starsim", "render");
  if (span.armed()) [[unlikely]] {
    span.arg("simulator", name())
        .arg("stars", stars.size())
        .arg("roi", scene.roi_side);
  }
  scene.validate();
  const support::WallTimer wall;
  SimulationResult result;
  result.image = imageio::ImageF(scene.image_width, scene.image_height);
  if (stars.empty()) {
    result.timing.wall_s = wall.seconds();
    return result;
  }

  device_.reset_transfer_stats();
  DeviceFrame frame(device_, scene, stars);

  const GaussianPsf psf(scene.psf_sigma);
  KernelParams params;
  params.stars = frame.stars();
  params.image = frame.image();
  params.star_count = static_cast<std::uint32_t>(stars.size());
  params.image_width = scene.image_width;
  params.image_height = scene.image_height;
  params.margin = Roi(scene.roi_side).margin();
  params.roi_side = scene.roi_side;
  params.psf_coefficient = psf.coefficient();
  params.psf_inv_two_sigma_sq = psf.inv_two_sigma_sq();
  params.psf_inv_sqrt2_sigma = psf.inv_sqrt2_sigma();
  params.pixel_integration = scene.pixel_integration;
  params.brightness = scene.brightness;

  gpusim::LaunchConfig config;
  config.grid = gpusim::Dim3(
      (static_cast<std::uint32_t>(scene.image_width) + kTile - 1) / kTile,
      (static_cast<std::uint32_t>(scene.image_height) + kTile - 1) / kTile);
  config.block = gpusim::Dim3(kTile, kTile);

  const gpusim::LaunchResult launch = device_.launch(
      config,
      [&params](ThreadCtx& ctx) { return pixel_centric_kernel(ctx, params); });

  frame.readback(result.image);

  const gpusim::TransferStats& transfers = device_.transfer_stats();
  result.timing.kernel_s = launch.timing.kernel_s;
  result.timing.h2d_s = transfers.h2d_s;
  result.timing.d2h_s = transfers.d2h_s;
  result.timing.counters = launch.counters;
  result.timing.utilization = launch.timing.utilization;
  result.timing.achieved_gflops = launch.timing.achieved_gflops;
  result.timing.wall_s = wall.seconds();
  return result;
}

}  // namespace starsim
