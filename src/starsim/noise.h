// Sensor noise injection (realism extension).
//
// The paper's motivating instruments — star sensors, space-environment
// simulators — image through real detectors; the intensity model's clean
// flux field becomes a realistic frame only after shot noise, read noise
// and a dark offset. This module applies that output stage to a simulated
// image. Deterministic given the seed.
#pragma once

#include <cstdint>

#include "imageio/image.h"

namespace starsim {

struct SensorNoiseConfig {
  /// Detector gain: electrons collected per unit of model flux. Shot noise
  /// scales as sqrt(electrons), so larger gain means relatively less noise.
  double gain_electrons_per_flux = 1.0;
  /// Apply Poisson (photon shot) noise.
  bool shot_noise = true;
  /// Gaussian read noise sigma, in electrons.
  double read_noise_electrons = 2.0;
  /// Constant dark-level offset, in electrons.
  double dark_offset_electrons = 0.0;
  std::uint64_t seed = 20120521;  // the paper's conference date
};

/// Return a noisy copy of `flux` (units preserved: electrons are converted
/// back to flux by the gain). Pixel values are clamped at zero.
[[nodiscard]] imageio::ImageF apply_sensor_noise(
    const imageio::ImageF& flux, const SensorNoiseConfig& config);

}  // namespace starsim
