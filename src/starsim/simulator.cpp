#include "starsim/simulator.h"

namespace starsim {

std::string_view to_string(SimulatorKind kind) {
  switch (kind) {
    case SimulatorKind::kSequential: return "sequential";
    case SimulatorKind::kParallel: return "parallel";
    case SimulatorKind::kAdaptive: return "adaptive";
    case SimulatorKind::kPixelCentric: return "pixel-centric";
    case SimulatorKind::kMultiGpu: return "multi-gpu";
    case SimulatorKind::kCpuParallel: return "cpu-parallel";
  }
  return "unknown";
}

}  // namespace starsim
