#include "starsim/simulator.h"

namespace starsim {

std::string_view to_string(SimulatorKind kind) {
  switch (kind) {
    case SimulatorKind::kSequential: return "sequential";
    case SimulatorKind::kParallel: return "parallel";
    case SimulatorKind::kAdaptive: return "adaptive";
    case SimulatorKind::kPixelCentric: return "pixel-centric";
    case SimulatorKind::kMultiGpu: return "multi-gpu";
    case SimulatorKind::kCpuParallel: return "cpu-parallel";
  }
  return "unknown";
}

std::optional<SimulatorKind> simulator_kind_from_string(
    std::string_view name) {
  if (name == "sequential") return SimulatorKind::kSequential;
  if (name == "parallel") return SimulatorKind::kParallel;
  if (name == "adaptive") return SimulatorKind::kAdaptive;
  if (name == "pixel-centric") return SimulatorKind::kPixelCentric;
  if (name == "multi-gpu") return SimulatorKind::kMultiGpu;
  if (name == "cpu-parallel" || name == "cpu") return SimulatorKind::kCpuParallel;
  return std::nullopt;
}

std::vector<SimulationResult> Simulator::simulate_batch(
    const SceneConfig& scene, std::span<const StarField> fields) {
  std::vector<SimulationResult> results;
  results.reserve(fields.size());
  for (const StarField& field : fields) {
    results.push_back(simulate(scene, field));
  }
  return results;
}

}  // namespace starsim
