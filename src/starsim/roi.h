// Region-of-interest geometry.
//
// The intensity distribution of a star is restricted to a square ROI of
// `side` pixels centered on the star (Fig. 1 of the paper): pixel columns
// [base_x, base_x + side) with base_x = round(star.x) - side/2, and likewise
// in y. ROI pixels falling outside the image are clipped (the kernels'
// boundary branch). All simulators, the lookup table and the work
// predictors share this one definition so they agree pixel-for-pixel.
#pragma once

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace starsim {

class Roi {
 public:
  explicit Roi(int side) : side_(side) {
    STARSIM_REQUIRE(side > 0, "ROI side must be positive");
  }

  [[nodiscard]] int side() const { return side_; }
  /// The paper's MARGIN: offset from the ROI base to the star's pixel.
  [[nodiscard]] int margin() const { return side_ / 2; }
  [[nodiscard]] int area() const { return side_ * side_; }

  /// First pixel coordinate of the ROI along one axis.
  [[nodiscard]] int base_coord(float star_coord) const {
    return static_cast<int>(std::lround(star_coord)) - margin();
  }

  /// Image-clipped pixel bounds of a star's ROI (half-open).
  struct Bounds {
    int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
    [[nodiscard]] bool empty() const { return x0 >= x1 || y0 >= y1; }
    [[nodiscard]] int width() const { return std::max(0, x1 - x0); }
    [[nodiscard]] int height() const { return std::max(0, y1 - y0); }
    [[nodiscard]] long area() const {
      return static_cast<long>(width()) * height();
    }
  };

  [[nodiscard]] Bounds clipped_bounds(float star_x, float star_y,
                                      int image_width,
                                      int image_height) const {
    const int bx = base_coord(star_x);
    const int by = base_coord(star_y);
    Bounds b;
    b.x0 = std::max(0, bx);
    b.y0 = std::max(0, by);
    b.x1 = std::min(image_width, bx + side_);
    b.y1 = std::min(image_height, by + side_);
    return b;
  }

  /// True when the whole (unclipped) ROI of a star lies inside the image.
  [[nodiscard]] bool fully_inside(float star_x, float star_y, int image_width,
                                  int image_height) const {
    const int bx = base_coord(star_x);
    const int by = base_coord(star_y);
    return bx >= 0 && by >= 0 && bx + side_ <= image_width &&
           by + side_ <= image_height;
  }

 private:
  int side_;
};

}  // namespace starsim
