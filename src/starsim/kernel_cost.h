// Shared arithmetic-cost constants for the intensity-model inner loop.
//
// The sequential simulator, both GPU kernels, and the analytic work
// predictor (selector.h) must count identical flop-equivalents for identical
// work — that is what makes modeled CPU/GPU times comparable and lets the
// predictor reproduce measured counters exactly. Any change to a kernel's
// arithmetic must be mirrored here and in every implementation (the
// predictor-vs-counters tests enforce this).
#pragma once

#include <cstdint>

namespace starsim::kernel_cost {

/// Computing a ROI pixel's image coordinates from the star position and the
/// thread/loop indices (2 rounds + 2 adds, per axis folded).
inline constexpr std::uint64_t kCoordFlops = 4;

/// The image-bounds test on a pixel coordinate pair.
inline constexpr std::uint64_t kBoundsFlops = 2;

/// Scaling the PSF rate by brightness and accumulating into the pixel.
inline constexpr std::uint64_t kAccumFlops = 2;

/// Folding the per-star weight into the brightness (both simulator paths).
inline constexpr std::uint64_t kWeightFlops = 1;

/// Adaptive kernel only: magnitude-bin, subpixel-phase and table-row index
/// arithmetic for one lookup-table fetch.
inline constexpr std::uint64_t kLutIndexFlops = 10;

}  // namespace starsim::kernel_cost
