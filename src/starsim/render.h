// Output stage: flux image -> displayable frame (the paper's Output stage,
// which "sends out the gray value to CPU platform to form a picture").
#pragma once

#include <string>

#include "imageio/image.h"
#include "imageio/tonemap.h"
#include "starsim/noise.h"

namespace starsim {

struct RenderOptions {
  imageio::TonemapOptions tonemap{
      .full_scale = 1.0f,
      .gamma = 1.0f,
      .auto_expose = true,
      .percentile = 99.9f,
  };
  bool apply_noise = false;
  SensorNoiseConfig noise;
};

/// Quantize a simulated flux image for display (optionally through the
/// sensor noise model).
[[nodiscard]] imageio::ImageU8 render_display_image(
    const imageio::ImageF& flux, const RenderOptions& options = {});

/// Render and write both a BMP and a PGM next to each other:
/// `<path_prefix>.bmp` and `<path_prefix>.pgm`.
void save_star_image(const imageio::ImageF& flux,
                     const std::string& path_prefix,
                     const RenderOptions& options = {});

}  // namespace starsim
