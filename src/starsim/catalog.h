// Celestial star catalogue substrate.
//
// The paper's input pipeline retrieves "stars that locate in the FOV of
// star image from star catalogue" (its reference [4]); real catalogues
// (e.g. SAO, Hipparcos subsets used by star trackers) are proprietary-ish
// and large, so we synthesize one with the two properties the simulation
// cares about: directions uniform on the celestial sphere and the
// empirical magnitude law log10 N(<m) ~ 0.51 m (each magnitude step
// roughly triples the cumulative star count).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "starsim/attitude.h"

namespace starsim {

struct CatalogStar {
  double right_ascension = 0.0;  ///< radians, [0, 2 pi)
  double declination = 0.0;      ///< radians, [-pi/2, pi/2]
  double magnitude = 0.0;

  /// Unit direction vector in the inertial frame.
  [[nodiscard]] Vec3 direction() const;
};

class Catalog {
 public:
  /// Synthesize `count` stars with uniform sphere coverage and the 0.51-dex
  /// cumulative magnitude law over [magnitude_min, magnitude_max].
  static Catalog synthesize(std::size_t count, std::uint64_t seed = 2012,
                            double magnitude_min = 0.0,
                            double magnitude_max = 7.0);

  /// Wrap an existing star list (catalogue file loading).
  static Catalog from_stars(std::vector<CatalogStar> stars);

  [[nodiscard]] std::span<const CatalogStar> stars() const { return stars_; }
  [[nodiscard]] std::size_t size() const { return stars_.size(); }

  /// Stars brighter than (magnitude below) `limit`.
  [[nodiscard]] std::size_t count_brighter_than(double limit) const;

  /// The slope of the cumulative magnitude law used by synthesize().
  static constexpr double kMagnitudeSlope = 0.51;

 private:
  std::vector<CatalogStar> stars_;
};

}  // namespace starsim
