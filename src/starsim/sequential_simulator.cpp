#include "starsim/sequential_simulator.h"

#include "starsim/kernel_cost.h"
#include "starsim/psf.h"
#include "starsim/roi.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace starsim {

SequentialSimulator::SequentialSimulator(gpusim::HostSpec host,
                                         ArithmeticCosts costs)
    : host_(host), costs_(costs) {}

SimulationResult SequentialSimulator::simulate(const SceneConfig& scene,
                                               std::span<const Star> stars) {
  trace::TraceSpan span("starsim", "render");
  if (span.armed()) [[unlikely]] {
    span.arg("simulator", name())
        .arg("stars", stars.size())
        .arg("roi", scene.roi_side);
  }
  scene.validate();
  const support::WallTimer wall;
  FlopMeter meter(costs_);

  SimulationResult result;
  result.image = imageio::ImageF(scene.image_width, scene.image_height);

  const GaussianPsf psf(scene.psf_sigma);
  const Roi roi(scene.roi_side);
  const double coefficient = psf.coefficient();
  const double inv_two_sigma_sq = psf.inv_two_sigma_sq();
  const double inv_sqrt2_sigma = psf.inv_sqrt2_sigma();
  const bool integrated = scene.pixel_integration;
  const int side = roi.side();

  // Fig. 5: outer loop over stars, inner two-level loop over ROI pixels.
  for (const Star& star : stars) {
    double brightness =
        scene.brightness.brightness(meter, static_cast<double>(star.magnitude));
    meter.count_flops(kernel_cost::kWeightFlops);
    brightness *= static_cast<double>(star.weight);

    const int base_x = roi.base_coord(star.x);
    const int base_y = roi.base_coord(star.y);
    for (int ty = 0; ty < side; ++ty) {
      const int pixel_y = base_y + ty;
      for (int tx = 0; tx < side; ++tx) {
        const int pixel_x = base_x + tx;
        meter.count_flops(kernel_cost::kCoordFlops +
                          kernel_cost::kBoundsFlops);
        if (!result.image.contains(pixel_x, pixel_y)) continue;
        const double dx =
            static_cast<double>(pixel_x) - static_cast<double>(star.x);
        const double dy =
            static_cast<double>(pixel_y) - static_cast<double>(star.y);
        const double rate =
            integrated
                ? gauss_integrated_rate(meter, inv_sqrt2_sigma, dx, dy)
                : gauss_rate(meter, coefficient, inv_two_sigma_sq, dx, dy);
        meter.count_flops(kernel_cost::kAccumFlops);
        result.image(pixel_x, pixel_y) +=
            static_cast<float>(brightness * rate);
      }
    }
  }

  result.timing.host_compute_s =
      host_.scalar_time_s(static_cast<double>(meter.flops()));
  result.timing.counters.flops = meter.flops();
  result.timing.wall_s = wall.seconds();
  if (span.armed()) [[unlikely]] {
    span.arg("kernel_s", result.timing.kernel_s)
        .arg("non_kernel_s", result.timing.non_kernel_s());
  }
  return result;
}

}  // namespace starsim
