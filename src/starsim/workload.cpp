#include "starsim/workload.h"

#include <cmath>

#include "support/error.h"
#include "support/rng.h"

namespace starsim {

StarField generate_stars(const WorkloadConfig& config) {
  STARSIM_REQUIRE(config.star_count > 0, "workload needs at least one star");
  STARSIM_REQUIRE(config.image_width > 0 && config.image_height > 0,
                  "workload image dimensions must be positive");
  STARSIM_REQUIRE(config.magnitude_min <= config.magnitude_max,
                  "workload magnitude range is inverted");
  STARSIM_REQUIRE(config.border_margin * 2 < config.image_width &&
                      config.border_margin * 2 < config.image_height,
                  "border margin leaves no interior");

  support::Pcg32 rng(config.seed);
  StarField stars;
  stars.reserve(config.star_count);
  const double x_lo = config.border_margin;
  const double x_hi = config.image_width - config.border_margin;
  const double y_lo = config.border_margin;
  const double y_hi = config.image_height - config.border_margin;
  for (std::size_t i = 0; i < config.star_count; ++i) {
    Star star;
    star.magnitude = static_cast<float>(
        rng.uniform(config.magnitude_min, config.magnitude_max));
    double x = rng.uniform(x_lo, x_hi);
    double y = rng.uniform(y_lo, y_hi);
    if (config.integer_positions) {
      x = std::floor(x);
      y = std::floor(y);
    }
    star.x = static_cast<float>(x);
    star.y = static_cast<float>(y);
    stars.push_back(star);
  }
  return stars;
}

std::vector<std::size_t> test1_star_counts() {
  std::vector<std::size_t> counts;
  for (int power = 5; power <= 17; ++power) {
    counts.push_back(std::size_t{1} << power);
  }
  return counts;
}

std::vector<int> test2_roi_sides() {
  std::vector<int> sides;
  for (int side = 2; side <= 32; side += 2) {
    sides.push_back(side);
  }
  return sides;
}

}  // namespace starsim
