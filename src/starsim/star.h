// The star record exchanged between the Star generation stage and the
// simulators — the paper's star dataset format: "the magnitude of the star,
// the 2-dimensional coordinate in image plane".
//
// The struct is a 16-byte POD used verbatim on both the host and the
// simulated device (the paper's starArray elements). Coordinates are
// image-plane pixels: pixel (x, y) samples the plane at integer (x, y), so a
// star whose position is integral sits exactly on a pixel center.
#pragma once

#include <cstdint>
#include <vector>

namespace starsim {

struct Star {
  float magnitude = 0.0f;  ///< visual magnitude, conventionally in [0, 15]
  float x = 0.0f;          ///< image-plane x in pixels
  float y = 0.0f;          ///< image-plane y in pixels
  /// Per-star flux multiplier (exposure weighting extension; 1 = the
  /// paper's model).
  float weight = 1.0f;

  bool operator==(const Star&) const = default;
};

static_assert(sizeof(Star) == 16, "Star must stay a 16-byte device POD");

using StarField = std::vector<Star>;

}  // namespace starsim
