// The simulator interface: one call renders a star field into a float image
// and reports its timing breakdown. Implementations are the paper's three
// simulators (sequential / parallel / adaptive) plus two studied variants
// (pixel-centric ablation, multi-GPU extension).
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "starsim/breakdown.h"
#include "starsim/scene.h"
#include "starsim/star.h"

namespace starsim {

enum class SimulatorKind {
  kSequential,
  kParallel,
  kAdaptive,
  kPixelCentric,
  kMultiGpu,
  kCpuParallel,
};

[[nodiscard]] std::string_view to_string(SimulatorKind kind);

class Simulator {
 public:
  virtual ~Simulator() = default;

  [[nodiscard]] virtual SimulatorKind kind() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Render `stars` onto a fresh image of `scene.image_width x height`.
  /// Implementations must produce identical pixel sums up to floating-point
  /// accumulation order (the adaptive simulator up to its lookup-table
  /// quantization).
  [[nodiscard]] virtual SimulationResult simulate(
      const SceneConfig& scene, std::span<const Star> stars) = 0;
};

}  // namespace starsim
