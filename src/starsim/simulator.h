// The simulator interface: one call renders a star field into a float image
// and reports its timing breakdown. Implementations are the paper's three
// simulators (sequential / parallel / adaptive) plus two studied variants
// (pixel-centric ablation, multi-GPU extension).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "starsim/breakdown.h"
#include "starsim/scene.h"
#include "starsim/star.h"

namespace starsim {

enum class SimulatorKind {
  kSequential,
  kParallel,
  kAdaptive,
  kPixelCentric,
  kMultiGpu,
  kCpuParallel,
};

[[nodiscard]] std::string_view to_string(SimulatorKind kind);

/// Inverse of to_string (also accepts the CLI aliases "cpu" and "auto"-less
/// spellings); nullopt for unknown names.
[[nodiscard]] std::optional<SimulatorKind> simulator_kind_from_string(
    std::string_view name);

class Simulator {
 public:
  virtual ~Simulator() = default;

  [[nodiscard]] virtual SimulatorKind kind() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Render `stars` onto a fresh image of `scene.image_width x height`.
  /// Implementations must produce identical pixel sums up to floating-point
  /// accumulation order (the adaptive simulator up to its lookup-table
  /// quantization).
  [[nodiscard]] virtual SimulationResult simulate(
      const SceneConfig& scene, std::span<const Star> stars) = 0;

  /// Render a batch of star fields against one shared scene. Images are
  /// bit-identical to per-field simulate() calls; the default renders each
  /// field independently. Implementations with per-scene setup (the
  /// adaptive simulator's lookup-table build / upload / texture bind)
  /// override this to pay that setup once and amortize its cost evenly
  /// across the batch's timing breakdowns — the serving layer's dynamic
  /// batching win.
  [[nodiscard]] virtual std::vector<SimulationResult> simulate_batch(
      const SceneConfig& scene, std::span<const StarField> fields);
};

}  // namespace starsim
