// Retry + graceful-degradation wrapper around any Simulator chain.
//
// A frame stream serving live consumers must not die because one kernel was
// killed by the watchdog or one PCIe copy arrived corrupted. The
// ResilientExecutor wraps an ordered chain of simulators (fastest first,
// e.g. adaptive -> parallel -> cpu-parallel -> sequential) and runs each
// frame through a two-level recovery ladder:
//
//  1. Transient faults (support::Error::retryable() == true: transfer
//     errors, watchdog kills, injected allocator failures) retry the same
//     simulator up to RetryPolicy::max_retries times with exponential
//     backoff. Retrying re-runs the whole simulate() call against fresh
//     device buffers, so a recovered frame is bit-identical to a fault-free
//     run of the same simulator.
//  2. Persistent faults (retries exhausted, or a non-retryable DeviceError
//     such as a lost device or a real capacity OOM) degrade to the next
//     simulator in the chain. CPU rungs cannot fault, so a chain ending in
//     a CPU simulator completes every frame.
//
// Every simulate() call fills a ResilienceReport (attempts, per-fault
// events, fallbacks, total modeled backoff). Backoff time is modeled, like
// every other duration in this repository — the executor records it rather
// than sleeping. PreconditionError and non-device errors are never caught:
// contract violations must surface, not degrade. See docs/resilience.md.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "starsim/simulator.h"

namespace starsim {

/// Bounded-retry policy for transient (retryable) faults.
struct RetryPolicy {
  /// Retries per chain level after the first attempt (>= 0).
  int max_retries = 3;
  /// Modeled backoff before the first retry of a level, seconds.
  double backoff_initial_s = 1e-3;
  /// Backoff multiplier per subsequent retry (exponential).
  double backoff_multiplier = 2.0;

  void validate() const;
};

/// One failed attempt, as recorded in the report.
struct FaultEvent {
  std::string simulator;  ///< name() of the simulator that faulted
  std::string error;      ///< what() of the thrown error
  bool retryable = false;
  /// Modeled backoff applied after this failure (0 when degrading).
  double backoff_s = 0.0;
};

/// Per-frame account of what resilience cost.
struct ResilienceReport {
  std::vector<FaultEvent> faults;  ///< failed attempts, in order
  std::string final_simulator;     ///< simulator that produced the image
  int attempts = 0;                ///< simulate() calls incl. the success
  int fallbacks = 0;               ///< chain levels abandoned
  double backoff_total_s = 0.0;    ///< modeled backoff spent
  bool degraded = false;           ///< final image came from a fallback rung

  /// True when the frame needed any recovery at all.
  [[nodiscard]] bool recovered() const { return !faults.empty(); }
};

class ResilientExecutor final : public Simulator {
 public:
  /// Takes ownership of the chain; tried in order. Must be non-empty.
  explicit ResilientExecutor(std::vector<std::unique_ptr<Simulator>> chain,
                             RetryPolicy policy = {});

  /// The full degradation ladder on `device`: adaptive -> parallel ->
  /// cpu-parallel -> sequential. The device must outlive the executor.
  [[nodiscard]] static ResilientExecutor with_default_chain(
      gpusim::Device& device, RetryPolicy policy = {});

  [[nodiscard]] SimulatorKind kind() const override {
    return chain_.front()->kind();
  }
  [[nodiscard]] std::string_view name() const override { return "resilient"; }

  [[nodiscard]] std::size_t chain_length() const { return chain_.size(); }
  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }

  /// Report of the most recent simulate() call.
  [[nodiscard]] const ResilienceReport& last_report() const {
    return report_;
  }

  /// Runs the recovery ladder. Rethrows the last device error only when
  /// every rung of the chain failed.
  [[nodiscard]] SimulationResult simulate(
      const SceneConfig& scene, std::span<const Star> stars) override;

 private:
  std::vector<std::unique_ptr<Simulator>> chain_;
  RetryPolicy policy_;
  ResilienceReport report_;
};

}  // namespace starsim
