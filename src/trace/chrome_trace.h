// Chrome trace-event JSON export and structural validation.
//
// The exporter writes the "JSON object format" (traceEvents array) that
// chrome://tracing and Perfetto load: B/E duration slices per thread,
// i/C instant and counter events, s/f flow arrows that stitch one request's
// spans across the submitter and worker threads, and M metadata records
// naming threads. The validator re-parses an exported document and checks
// the structural invariants the golden tests and the CI trace-check step
// rely on: balanced B/E nesting per thread, monotonic timestamps per
// thread, and flow ids that both start and finish.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.h"

namespace starsim::trace {

/// Serialize a snapshot to a Chrome trace-event JSON document.
[[nodiscard]] std::string to_chrome_json(const TraceSnapshot& snapshot);

/// to_chrome_json + write to `path`; throws support::IoError on failure.
void write_chrome_trace(const std::string& path, const TraceSnapshot& snapshot);

/// What validate_chrome_trace() found.
struct TraceCheck {
  bool ok = false;
  std::vector<std::string> errors;
  std::size_t events = 0;          ///< all phases, metadata included
  std::size_t begin_events = 0;    ///< ph B
  std::size_t end_events = 0;      ///< ph E
  std::size_t counter_events = 0;  ///< ph C
  std::size_t instant_events = 0;  ///< ph i
  std::size_t flow_ids = 0;        ///< distinct flow ids seen
  std::size_t cross_thread_flows = 0;  ///< flows whose events span > 1 tid
  std::size_t threads = 0;             ///< distinct tids
  std::set<std::string> categories;    ///< every "cat" seen
  /// One-line human summary ("8421 events, 12 threads, ...").
  [[nodiscard]] std::string summary() const;
};

/// Parse `json` and verify the structural invariants. Never throws on bad
/// input — malformed documents come back as ok == false with errors.
[[nodiscard]] TraceCheck validate_chrome_trace(std::string_view json);

}  // namespace starsim::trace
