#include "trace/metrics.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

namespace starsim::trace {

namespace {

void append_label_value_escaped(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
}

void append_value(std::string& out, double value) {
  if (std::isinf(value)) {
    out += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  if (std::isnan(value)) {
    out += "NaN";
    return;
  }
  // Integers (the common case for counters) print without an exponent.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
    out += buffer;
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  out += buffer;
}

void append_sample(std::string& out, const MetricFamily& family,
                   const MetricSample& sample) {
  out += family.name;
  out += sample.suffix;
  if (!sample.labels.empty()) {
    out.push_back('{');
    bool first = true;
    for (const MetricLabel& label : sample.labels) {
      if (!first) out.push_back(',');
      first = false;
      out += label.name;
      out += "=\"";
      append_label_value_escaped(out, label.value);
      out.push_back('"');
    }
    out.push_back('}');
  }
  out.push_back(' ');
  append_value(out, sample.value);
  out.push_back('\n');
}

}  // namespace

std::string_view to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

MetricFamily& MetricFamily::add(double value, std::vector<MetricLabel> labels) {
  samples.push_back(MetricSample{"", std::move(labels), value});
  return *this;
}

MetricFamily histogram_from_counts(std::string name, std::string help,
                                   std::span<const std::uint64_t> counts) {
  MetricFamily family;
  family.name = std::move(name);
  family.help = std::move(help);
  family.type = MetricType::kHistogram;
  std::uint64_t cumulative = 0;
  double sum = 0.0;
  for (std::size_t value = 0; value < counts.size(); ++value) {
    cumulative += counts[value];
    sum += static_cast<double>(counts[value]) * static_cast<double>(value);
    family.samples.push_back(MetricSample{
        "_bucket",
        {{"le", std::to_string(value)}},
        static_cast<double>(cumulative)});
  }
  family.samples.push_back(MetricSample{
      "_bucket", {{"le", "+Inf"}}, static_cast<double>(cumulative)});
  family.samples.push_back(MetricSample{"_sum", {}, sum});
  family.samples.push_back(
      MetricSample{"_count", {}, static_cast<double>(cumulative)});
  return family;
}

std::string render_prometheus(std::span<const MetricFamily> families) {
  std::string out;
  for (const MetricFamily& family : families) {
    out += "# HELP ";
    out += family.name;
    out.push_back(' ');
    out += family.help;
    out.push_back('\n');
    out += "# TYPE ";
    out += family.name;
    out.push_back(' ');
    out += to_string(family.type);
    out.push_back('\n');
    for (const MetricSample& sample : family.samples) {
      append_sample(out, family, sample);
    }
  }
  return out;
}

std::vector<std::string> check_prometheus(
    std::string_view exposition, std::span<const std::string> required) {
  // Families declared (TYPE lines) and families with at least one finite
  // sample line.
  std::set<std::string, std::less<>> declared;
  std::set<std::string, std::less<>> sampled;
  std::istringstream stream{std::string(exposition)};
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::size_t name_start = 7;
      const std::size_t name_end = line.find(' ', name_start);
      if (name_end != std::string::npos) {
        declared.insert(line.substr(name_start, name_end - name_start));
      }
      continue;
    }
    if (line[0] == '#') continue;
    // "name{labels} value" or "name value"; histogram suffixes count for
    // their base family.
    const std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) continue;
    std::string name = line.substr(0, name_end);
    for (const std::string_view suffix : {"_bucket", "_sum", "_count"}) {
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        name.resize(name.size() - suffix.size());
        break;
      }
    }
    const std::size_t value_start = line.rfind(' ');
    if (value_start == std::string::npos) continue;
    const std::string value = line.substr(value_start + 1);
    if (value == "NaN") continue;
    sampled.insert(std::move(name));
  }

  std::vector<std::string> problems;
  for (const std::string& name : required) {
    if (declared.find(name) == declared.end()) {
      problems.push_back("missing required metric family: " + name);
    } else if (sampled.find(name) == sampled.end()) {
      problems.push_back("metric family has no finite samples: " + name);
    }
  }
  return problems;
}

}  // namespace starsim::trace
