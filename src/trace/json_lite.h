// Minimal JSON parser for trace validation.
//
// The trace subsystem both writes Chrome trace-event JSON and *checks* it
// (golden tests, the CI trace-check step), so it needs to read JSON back
// without growing a dependency. This is a strict little recursive-descent
// parser covering the JSON grammar the exporter emits — objects, arrays,
// strings with escapes, numbers, booleans, null — with position-stamped
// errors. It is not a general-purpose library: no comments, no trailing
// commas, no surrogate-pair decoding (\uXXXX escapes outside the BMP keep
// their escaped form).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "support/error.h"

namespace starsim::trace {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// std::map keeps key order deterministic for tests.
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

class JsonValue {
 public:
  using Storage = std::variant<std::nullptr_t, bool, double, std::string,
                               JsonArray, JsonObject>;

  JsonValue() : storage_(nullptr) {}
  JsonValue(Storage storage) : storage_(std::move(storage)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(storage_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(storage_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(storage_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(storage_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<JsonArray>(storage_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<JsonObject>(storage_);
  }

  /// Typed accessors; throw support::Error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

 private:
  Storage storage_;
};

/// Parse one JSON document (trailing whitespace allowed, trailing content
/// rejected). Throws support::Error with a byte offset on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace starsim::trace
