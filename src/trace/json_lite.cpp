#include "trace/json_lite.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace starsim::trace {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  STARSIM_THROW(support::Error,
                "JSON parse error at byte " + std::to_string(offset) + ": " +
                    what);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail(pos_, "trailing content after document");
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "', found '" + peek() + "'");
    }
    ++pos_;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': parse_literal("true"); return JsonValue(true);
      case 'f': parse_literal("false"); return JsonValue(false);
      case 'n': parse_literal("null"); return JsonValue(nullptr);
      default: return parse_number();
    }
  }

  void parse_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail(pos_, "invalid literal (expected " + std::string(literal) + ")");
    }
    pos_ += literal.size();
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail(pos_, "expected a value");
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || end != text_.data() + pos_) {
      fail(start, "malformed number '" +
                      std::string(text_.substr(start, pos_ - start)) + "'");
    }
    return JsonValue(value);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4u;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned int>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned int>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned int>(h - 'A' + 10);
            } else {
              fail(pos_, "bad hex digit in \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point; surrogates kept literal.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0u | (code >> 6u)));
            out.push_back(static_cast<char>(0x80u | (code & 0x3fu)));
          } else {
            out.push_back(static_cast<char>(0xe0u | (code >> 12u)));
            out.push_back(static_cast<char>(0x80u | ((code >> 6u) & 0x3fu)));
            out.push_back(static_cast<char>(0x80u | (code & 0x3fu)));
          }
          break;
        }
        default: fail(pos_ - 1, "unknown escape");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(items));
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(members));
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) STARSIM_THROW(support::Error, "JSON value is not a bool");
  return std::get<bool>(storage_);
}

double JsonValue::as_number() const {
  if (!is_number()) {
    STARSIM_THROW(support::Error, "JSON value is not a number");
  }
  return std::get<double>(storage_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) {
    STARSIM_THROW(support::Error, "JSON value is not a string");
  }
  return std::get<std::string>(storage_);
}

const JsonArray& JsonValue::as_array() const {
  if (!is_array()) STARSIM_THROW(support::Error, "JSON value is not an array");
  return std::get<JsonArray>(storage_);
}

const JsonObject& JsonValue::as_object() const {
  if (!is_object()) {
    STARSIM_THROW(support::Error, "JSON value is not an object");
  }
  return std::get<JsonObject>(storage_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const JsonObject& object = std::get<JsonObject>(storage_);
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace starsim::trace
