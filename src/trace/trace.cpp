#include "trace/trace.h"

#include <utility>

namespace starsim::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder::Shard& TraceRecorder::shard() {
  // Cached per thread: valid for the thread's lifetime because shards are
  // owned by the process-lifetime singleton and never deallocated.
  static thread_local Shard* cached = nullptr;
  if (cached == nullptr) {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    auto owned = std::make_unique<Shard>();
    owned->tid = static_cast<std::uint32_t>(shards_.size());
    cached = owned.get();
    shards_.push_back(std::move(owned));
  }
  return *cached;
}

void TraceRecorder::start() {
  clear();
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    epoch_ = std::chrono::steady_clock::now();
  }
  detail::g_enabled.store(true, std::memory_order_release);
}

void TraceRecorder::stop() {
  detail::g_enabled.store(false, std::memory_order_release);
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> registry(registry_mutex_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->events.clear();
  }
}

std::int64_t TraceRecorder::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint32_t TraceRecorder::current_tid() { return shard().tid; }

void TraceRecorder::set_thread_name(std::string name) {
  Shard& s = shard();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.name = std::move(name);
}

void TraceRecorder::record(Phase phase, const char* category,
                           const char* name, std::vector<TraceArg> args,
                           std::uint64_t flow_id) {
  Shard& s = shard();
  TraceEvent event;
  event.phase = phase;
  event.category = category;
  event.name = name;
  event.ts_ns = now_ns();
  event.tid = s.tid;
  event.flow_id = flow_id;
  event.args = std::move(args);
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.events.push_back(std::move(event));
}

TraceSnapshot TraceRecorder::snapshot() {
  TraceSnapshot out;
  const std::lock_guard<std::mutex> registry(registry_mutex_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    out.events.insert(out.events.end(), shard->events.begin(),
                      shard->events.end());
    if (!shard->name.empty()) {
      out.thread_names.emplace_back(shard->tid, shard->name);
    }
  }
  return out;
}

void instant(const char* category, const char* name,
             std::vector<TraceArg> args) {
  if (!tracing_on()) return;
  TraceRecorder::instance().record(Phase::kInstant, category, name,
                                   std::move(args));
}

void counter(const char* category, const char* name, double value) {
  if (!tracing_on()) return;
  TraceRecorder::instance().record(Phase::kCounter, category, name,
                                   {{"value", value}});
}

}  // namespace starsim::trace
