#include "trace/chrome_trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <unordered_map>

#include "support/error.h"
#include "trace/json_lite.h"

namespace starsim::trace {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
}

void append_number(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void append_arg_value(std::string& out, const ArgValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    char buffer[24];
    std::snprintf(buffer, sizeof buffer, "%" PRId64, *i);
    out += buffer;
  } else if (const auto* d = std::get_if<double>(&value)) {
    append_number(out, *d);
  } else if (const auto* b = std::get_if<bool>(&value)) {
    out += *b ? "true" : "false";
  } else {
    out.push_back('"');
    append_escaped(out, std::get<std::string>(value));
    out.push_back('"');
  }
}

void append_event(std::string& out, const TraceEvent& event) {
  out += R"({"ph":")";
  out.push_back(static_cast<char>(event.phase));
  out += R"(","cat":")";
  append_escaped(out, event.category);
  out += R"(","name":")";
  append_escaped(out, event.name);
  out += R"(","pid":1,"tid":)";
  out += std::to_string(event.tid);
  out += R"(,"ts":)";
  // Chrome's unit is microseconds; keep nanosecond precision as fractions.
  char ts[40];
  std::snprintf(ts, sizeof ts, "%.3f",
                static_cast<double>(event.ts_ns) / 1000.0);
  out += ts;
  switch (event.phase) {
    case Phase::kFlowStart:
    case Phase::kFlowStep:
      out += R"(,"id":")" + std::to_string(event.flow_id) + '"';
      break;
    case Phase::kFlowEnd:
      // bp:e binds the arrow target to the enclosing slice, not the next.
      out += R"(,"id":")" + std::to_string(event.flow_id) + R"(","bp":"e")";
      break;
    case Phase::kInstant: out += R"(,"s":"t")"; break;
    default: break;
  }
  if (!event.args.empty()) {
    out += R"(,"args":{)";
    bool first = true;
    for (const TraceArg& arg : event.args) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      append_escaped(out, arg.key);
      out += "\":";
      append_arg_value(out, arg.value);
    }
    out.push_back('}');
  }
  out.push_back('}');
}

}  // namespace

std::string to_chrome_json(const TraceSnapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.events.size() * 96 + 256);
  out += R"({"displayTimeUnit":"ms","traceEvents":[)";
  bool first = true;
  for (const auto& [tid, name] : snapshot.thread_names) {
    if (!first) out.push_back(',');
    first = false;
    out += R"({"ph":"M","pid":1,"tid":)" + std::to_string(tid) +
           R"(,"name":"thread_name","args":{"name":")";
    append_escaped(out, name);
    out += R"("}})";
  }
  for (const TraceEvent& event : snapshot.events) {
    if (!first) out.push_back(',');
    first = false;
    append_event(out, event);
  }
  out += "]}";
  return out;
}

void write_chrome_trace(const std::string& path,
                        const TraceSnapshot& snapshot) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    STARSIM_THROW(support::IoError, "cannot open trace file: " + path);
  }
  const std::string json = to_chrome_json(snapshot);
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!file) {
    STARSIM_THROW(support::IoError, "short write to trace file: " + path);
  }
}

std::string TraceCheck::summary() const {
  std::string out = ok ? "trace OK: " : "trace INVALID: ";
  out += std::to_string(events) + " events on " + std::to_string(threads) +
         " thread(s), " + std::to_string(begin_events) + " B / " +
         std::to_string(end_events) + " E, " +
         std::to_string(counter_events) + " counters, " +
         std::to_string(flow_ids) + " flow(s) (" +
         std::to_string(cross_thread_flows) + " cross-thread)";
  if (!errors.empty()) {
    out += "; first error: " + errors.front();
  }
  return out;
}

TraceCheck validate_chrome_trace(std::string_view json) {
  TraceCheck check;
  JsonValue document;
  try {
    document = parse_json(json);
  } catch (const std::exception& error) {
    check.errors.emplace_back(error.what());
    return check;
  }
  const JsonValue* events = document.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    check.errors.emplace_back("missing traceEvents array");
    return check;
  }

  struct OpenSlice {
    std::string name;
  };
  std::map<std::int64_t, std::vector<OpenSlice>> stacks;  // per tid
  std::map<std::int64_t, double> last_ts;                 // per tid
  struct FlowSeen {
    bool start = false;
    bool end = false;
    std::set<std::int64_t> tids;
  };
  std::unordered_map<std::string, FlowSeen> flows;
  std::set<std::int64_t> tids;

  std::size_t index = 0;
  for (const JsonValue& entry : events->as_array()) {
    const std::size_t at = index++;
    check.events += 1;
    if (!entry.is_object()) {
      check.errors.push_back("event " + std::to_string(at) +
                             " is not an object");
      continue;
    }
    const JsonValue* ph = entry.find("ph");
    const JsonValue* name = entry.find("name");
    if (ph == nullptr || !ph->is_string() || ph->as_string().size() != 1) {
      check.errors.push_back("event " + std::to_string(at) + " has no phase");
      continue;
    }
    const char phase = ph->as_string()[0];
    if (phase == 'M') continue;  // metadata carries no timestamp

    const JsonValue* tid_value = entry.find("tid");
    const JsonValue* ts_value = entry.find("ts");
    if (tid_value == nullptr || !tid_value->is_number() ||
        ts_value == nullptr || !ts_value->is_number()) {
      check.errors.push_back("event " + std::to_string(at) +
                             " lacks numeric tid/ts");
      continue;
    }
    const auto tid = static_cast<std::int64_t>(tid_value->as_number());
    const double ts = ts_value->as_number();
    tids.insert(tid);
    if (const JsonValue* cat = entry.find("cat");
        cat != nullptr && cat->is_string()) {
      check.categories.insert(cat->as_string());
    }

    const auto [it, inserted] = last_ts.try_emplace(tid, ts);
    if (!inserted) {
      if (ts < it->second) {
        check.errors.push_back(
            "event " + std::to_string(at) + ": timestamp went backwards on " +
            "tid " + std::to_string(tid));
      }
      it->second = ts;
    }

    const std::string event_name =
        name != nullptr && name->is_string() ? name->as_string() : "";
    switch (phase) {
      case 'B':
        check.begin_events += 1;
        stacks[tid].push_back({event_name});
        break;
      case 'E': {
        check.end_events += 1;
        auto& stack = stacks[tid];
        if (stack.empty()) {
          check.errors.push_back("event " + std::to_string(at) +
                                 ": E without matching B on tid " +
                                 std::to_string(tid));
        } else {
          if (stack.back().name != event_name) {
            check.errors.push_back(
                "event " + std::to_string(at) + ": E for '" + event_name +
                "' closes open slice '" + stack.back().name + "' on tid " +
                std::to_string(tid));
          }
          stack.pop_back();
        }
        break;
      }
      case 'i': check.instant_events += 1; break;
      case 'C': check.counter_events += 1; break;
      case 's':
      case 't':
      case 'f': {
        const JsonValue* id = entry.find("id");
        if (id == nullptr || !id->is_string()) {
          check.errors.push_back("event " + std::to_string(at) +
                                 ": flow event without id");
          break;
        }
        FlowSeen& seen = flows[id->as_string()];
        if (phase == 's') seen.start = true;
        if (phase == 'f') seen.end = true;
        seen.tids.insert(tid);
        break;
      }
      default:
        check.errors.push_back("event " + std::to_string(at) +
                               ": unknown phase '" + std::string(1, phase) +
                               "'");
    }
  }

  for (const auto& [tid, stack] : stacks) {
    if (!stack.empty()) {
      check.errors.push_back("tid " + std::to_string(tid) + " ends with " +
                             std::to_string(stack.size()) +
                             " unclosed slice(s); first open: '" +
                             stack.front().name + "'");
    }
  }
  for (const auto& [id, seen] : flows) {
    check.flow_ids += 1;
    if (!seen.start || !seen.end) {
      check.errors.push_back("flow " + id + (seen.start
                                                 ? " never finishes"
                                                 : " finishes without start"));
    }
    if (seen.tids.size() > 1) check.cross_thread_flows += 1;
  }
  check.threads = tids.size();
  check.ok = check.errors.empty();
  return check;
}

}  // namespace starsim::trace
