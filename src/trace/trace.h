// starsim::trace — low-overhead, thread-safe tracing for the whole stack.
//
// The paper's evaluation decomposes application time into kernel vs
// non-kernel components (Figs. 11–16, Table I); this module makes that
// decomposition observable on a *live* system instead of a post-hoc sum of
// Timer fields. Every layer emits spans: gpusim for device operations
// (kernel launches, transfers, texture binds), starsim for pipeline stages
// (projection, LUT build, render, readback), serve for request lifecycles
// stitched across threads with flow ids. Snapshots export to Chrome
// trace-event JSON (chrome_trace.h) loadable in Perfetto, and service
// counters export to Prometheus text format (metrics.h).
//
// Cost model: tracing is off by default and every instrumentation site is
// gated on one relaxed atomic load (`tracing_on()`), so the disabled path
// costs a predictable untaken branch — measured within benchmark noise on
// bench_micro_gpusim (docs/observability.md). When enabled, each event is
// one timestamp, one small struct, and one push into the calling thread's
// own lock-sharded buffer (the per-shard mutex is uncontended except
// against snapshot()).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

namespace starsim::trace {

namespace detail {
/// The one global gate every instrumentation site checks. Kept outside the
/// recorder so the disabled path never touches the singleton's init guard.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when a recorder session is active. Relaxed: a site racing a
/// start()/stop() edge may drop or record one boundary event, which the
/// exporters tolerate.
[[nodiscard]] inline bool tracing_on() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Typed span/event argument values (star counts, byte sizes, modeled
/// seconds, simulator names).
using ArgValue = std::variant<std::int64_t, double, bool, std::string>;

struct TraceArg {
  const char* key;  ///< static string literal
  ArgValue value;
};

/// Chrome trace-event phases this recorder emits.
enum class Phase : char {
  kBegin = 'B',      ///< duration-slice open (TraceSpan constructor)
  kEnd = 'E',        ///< duration-slice close (TraceSpan destructor)
  kInstant = 'i',    ///< point event
  kCounter = 'C',    ///< named counter sample
  kFlowStart = 's',  ///< flow arrow origin (request admitted)
  kFlowStep = 't',   ///< flow arrow waypoint
  kFlowEnd = 'f',    ///< flow arrow target (response delivered)
};

struct TraceEvent {
  Phase phase = Phase::kInstant;
  const char* category = "";  ///< static literal: "gpusim", "starsim", "serve"
  const char* name = "";      ///< static literal: "kernel_launch", ...
  std::int64_t ts_ns = 0;     ///< steady-clock nanoseconds since the epoch
  std::uint32_t tid = 0;      ///< recorder-assigned small thread id
  std::uint64_t flow_id = 0;  ///< non-zero only for flow events
  std::vector<TraceArg> args;
};

/// Everything one snapshot() drained: events in per-thread order (timestamps
/// are monotonic within each tid) plus the thread names registered so far.
struct TraceSnapshot {
  std::vector<TraceEvent> events;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names;
};

/// Process-wide event sink. One instance per process; threads register a
/// private shard on first use and append to it, so recording scales with
/// thread count and snapshot() is the only cross-shard reader.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Begin a session: drop buffered events, re-zero the time epoch, open
  /// the gate. Spans still open from before a start() will close into the
  /// new session; scope sessions around quiesced code.
  void start();
  /// Close the gate. Buffered events stay until the next start()/clear().
  void stop();
  /// Drop buffered events without touching the gate (benchmark loops use
  /// this to bound memory while tracing stays on).
  void clear();

  [[nodiscard]] bool enabled() const { return tracing_on(); }

  /// Append one event to the calling thread's shard.
  void record(Phase phase, const char* category, const char* name,
              std::vector<TraceArg> args = {}, std::uint64_t flow_id = 0);

  /// Copy out everything recorded so far, shard by shard (per-tid order
  /// preserved). Callable any time; concurrent recording proceeds.
  [[nodiscard]] TraceSnapshot snapshot();

  /// Steady-clock nanoseconds since the current session's epoch.
  [[nodiscard]] std::int64_t now_ns() const;

  /// The calling thread's recorder-assigned id (registers the shard).
  [[nodiscard]] std::uint32_t current_tid();

  /// Name the calling thread in exported traces ("worker-0"). Sticky across
  /// sessions; callable whether or not tracing is on.
  void set_thread_name(std::string name);

  /// Fresh process-unique flow id (never 0).
  [[nodiscard]] std::uint64_t next_flow_id() {
    return next_flow_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::string name;
    std::uint32_t tid = 0;
  };

  TraceRecorder();
  Shard& shard();

  std::mutex registry_mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_flow_{1};
};

/// RAII duration slice: emits a balanced B/E pair on the calling thread.
/// Construction samples the gate once; a span built while tracing is off
/// costs two untaken branches and records nothing. Args added via arg() ride
/// on the E event (Chrome merges B/E args into one slice).
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name)
      : category_(category), name_(name), armed_(tracing_on()) {
    if (armed_) [[unlikely]] {
      TraceRecorder::instance().record(Phase::kBegin, category_, name_);
    }
  }

  ~TraceSpan() {
    if (armed_) [[unlikely]] {
      TraceRecorder::instance().record(Phase::kEnd, category_, name_,
                                       std::move(args_));
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span is recording; guard arg-building work with it.
  [[nodiscard]] bool armed() const { return armed_; }

  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  TraceSpan& arg(const char* key, T value) {
    if (armed_) args_.push_back({key, static_cast<std::int64_t>(value)});
    return *this;
  }
  TraceSpan& arg(const char* key, double value) {
    if (armed_) args_.push_back({key, value});
    return *this;
  }
  TraceSpan& arg(const char* key, bool value) {
    if (armed_) args_.push_back({key, value});
    return *this;
  }
  TraceSpan& arg(const char* key, std::string value) {
    if (armed_) args_.push_back({key, std::move(value)});
    return *this;
  }
  TraceSpan& arg(const char* key, const char* value) {
    if (armed_) args_.push_back({key, std::string(value)});
    return *this;
  }
  TraceSpan& arg(const char* key, std::string_view value) {
    if (armed_) args_.push_back({key, std::string(value)});
    return *this;
  }

 private:
  const char* category_;
  const char* name_;
  std::vector<TraceArg> args_;
  bool armed_;
};

/// Point event. Callers should gate on tracing_on() before building args.
void instant(const char* category, const char* name,
             std::vector<TraceArg> args = {});

/// Flow arrow event (kFlowStart / kFlowStep / kFlowEnd). Trace viewers bind
/// the phases of one flow by category + name + id, so every phase of a flow
/// must use the same category and name — emit all of them through one
/// call-site convention (serve uses "serve"/"request"). Chrome attaches the
/// arrow endpoint to the duration slice enclosing the event's timestamp on
/// the emitting thread.
inline void flow(Phase phase, const char* category, const char* name,
                 std::uint64_t id) {
  if (id != 0 && tracing_on()) [[unlikely]] {
    TraceRecorder::instance().record(phase, category, name, {}, id);
  }
}

/// Counter sample ("queue_depth" over time in the trace viewer).
void counter(const char* category, const char* name, double value);

}  // namespace starsim::trace
