// Prometheus text-format metrics exposition.
//
// The serving stack accumulates counters in several places — ServiceStats,
// PoolHealth, the frame cache, gpusim's kernel counters, sanitizer finding
// totals — and this module unifies them into one scrape: named families of
// counters, gauges, and histograms rendered in the Prometheus text
// exposition format (version 0.0.4), the lingua franca every metrics
// pipeline ingests. FrameService::scrape_metrics() builds the families;
// this module owns the representation, the renderer, and the checker the
// CI step uses to assert required families are present and populated.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace starsim::trace {

enum class MetricType { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricType type);

struct MetricLabel {
  std::string name;
  std::string value;
};

/// One sample line. For plain counters/gauges `suffix` stays empty; the
/// histogram helper emits `_bucket`/`_sum`/`_count` suffixed samples.
struct MetricSample {
  std::string suffix;
  std::vector<MetricLabel> labels;
  double value = 0.0;
};

struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::kGauge;
  std::vector<MetricSample> samples;

  /// Append a sample; returns *this for chaining.
  MetricFamily& add(double value, std::vector<MetricLabel> labels = {});
};

/// Cumulative Prometheus histogram from per-size counts: counts[i] = events
/// with value exactly i (the batch-size histogram's shape). Emits one
/// le="i" bucket per non-trivial size plus le="+Inf", then _sum and _count.
[[nodiscard]] MetricFamily histogram_from_counts(
    std::string name, std::string help,
    std::span<const std::uint64_t> counts);

/// Render families in the text exposition format.
[[nodiscard]] std::string render_prometheus(
    std::span<const MetricFamily> families);

/// Scrape checker: every name in `required` must appear as a family with at
/// least one finite sample. Returns human-readable problems (empty = pass).
[[nodiscard]] std::vector<std::string> check_prometheus(
    std::string_view exposition, std::span<const std::string> required);

}  // namespace starsim::trace
