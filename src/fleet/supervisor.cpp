#include "fleet/supervisor.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "support/error.h"

namespace starsim::fleet {

namespace {

[[nodiscard]] double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ProcessSupervisor::ProcessSupervisor(SupervisorOptions options,
                                     SupervisorEvents events)
    : options_(std::move(options)), events_(std::move(events)) {}

ProcessSupervisor::~ProcessSupervisor() { stop(); }

void ProcessSupervisor::watch(int index, Transport* transport) {
  STARSIM_REQUIRE(transport != nullptr, "cannot watch a null transport");
  std::lock_guard<std::mutex> lock(mutex_);
  Slot slot;
  slot.transport = transport;
  slot.backoff_ms = options_.respawn_backoff_ms;
  slots_[index] = std::move(slot);
}

void ProcessSupervisor::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  stop_requested_ = false;
  monitor_ = std::thread([this] { monitor_loop(); });
}

void ProcessSupervisor::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  if (monitor_.joinable()) monitor_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  started_ = false;
}

void ProcessSupervisor::mark_terminal(int index) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(index);
  if (it != slots_.end()) it->second.terminal = true;
}

void ProcessSupervisor::note_unreachable(int index) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(index);
  if (it == slots_.end()) return;
  Slot& slot = it->second;
  if (slot.terminal || slot.stats.exhausted || slot.in_ladder) return;
  slot.in_ladder = true;
  slot.detected_at_s = steady_now_s();
  slot.next_attempt_s = slot.detected_at_s + slot.backoff_ms * 1e-3;
  ++slot.stats.crashes_detected;
  // on_unreachable intentionally not fired here: the router already knows
  // (it is the caller) and has marked the shard respawning itself.
}

SupervisorShardStats ProcessSupervisor::shard_stats(int index) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(index);
  if (it == slots_.end()) return {};
  return it->second.stats;
}

std::vector<std::pair<int, SupervisorShardStats>>
ProcessSupervisor::all_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<int, SupervisorShardStats>> out;
  out.reserve(slots_.size());
  for (const auto& [index, slot] : slots_) out.emplace_back(index, slot.stats);
  return out;
}

void ProcessSupervisor::monitor_loop() {
  const auto poll = std::chrono::duration<double, std::milli>(
      std::max(1.0, options_.poll_ms));
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_requested_) return;
    // Indices snapshot: step() drops the lock, so iterators can invalidate
    // under a concurrent add_shard.
    std::vector<int> indices;
    indices.reserve(slots_.size());
    for (const auto& [index, slot] : slots_) indices.push_back(index);
    for (const int index : indices) {
      if (stop_requested_) return;
      step(index, lock);
    }
    if (stop_requested_) return;
    lock.unlock();
    std::this_thread::sleep_for(poll);
  }
}

void ProcessSupervisor::step(int index, std::unique_lock<std::mutex>& lock) {
  auto it = slots_.find(index);
  if (it == slots_.end()) return;
  Slot& slot = it->second;
  if (slot.terminal || slot.stats.exhausted) return;
  Transport* transport = slot.transport;
  const double now = steady_now_s();

  if (!slot.in_ladder) {
    // Detection. dead() is cheap (atomic + WNOHANG waitpid); heartbeat age
    // and the partition threshold are atomic/estimator reads.
    bool crashed = false;
    bool hung = false;
    double age_ms = 0.0;
    double partition_ms = -1.0;
    lock.unlock();
    crashed = transport->dead();
    if (!crashed) {
      age_ms = transport->heartbeat_age_ms();
      partition_ms = transport->partition_after_ms();
      if (options_.hang_after_ms > 0.0) {
        hung = age_ms > options_.hang_after_ms;
      }
    }
    lock.lock();
    it = slots_.find(index);
    if (it == slots_.end()) return;
    Slot& re = it->second;
    if (re.terminal || re.stats.exhausted || re.in_ladder) return;
    if (!crashed && !hung) {
      // Partition rung: liveness dark past the transport's own threshold
      // but the process is alive and the hang deadline hasn't passed.
      // "Network partitioned" means route around and wait — killing a
      // process that is healthily rendering behind a flaky link would
      // turn every partition into a lost cache and a respawn storm.
      if (re.partitioned && partition_ms > 0.0 && age_ms <= partition_ms) {
        re.partitioned = false;
        ++re.stats.partitions_healed;
        if (events_.on_partition_healed) {
          lock.unlock();
          events_.on_partition_healed(index);
          lock.lock();
        }
        return;
      }
      if (!re.partitioned && partition_ms > 0.0 && age_ms > partition_ms) {
        re.partitioned = true;
        ++re.stats.partitions_detected;
        if (events_.on_partitioned) {
          lock.unlock();
          events_.on_partitioned(index);
          lock.lock();
        }
      }
      return;
    }
    // Crash or hang while partitioned: the harder diagnosis wins — no
    // heal event; on_unreachable supersedes the route-around.
    re.partitioned = false;
    re.in_ladder = true;
    re.detected_at_s = now;
    re.next_attempt_s = now + re.backoff_ms * 1e-3;
    if (crashed) {
      ++re.stats.crashes_detected;
    } else {
      ++re.stats.hangs_detected;
    }
    if (events_.on_unreachable) {
      lock.unlock();
      events_.on_unreachable(index);
      lock.lock();
    }
    return;  // the respawn itself waits for the backoff delay
  }

  if (now < slot.next_attempt_s) return;

  if (slot.respawns_used >= options_.respawn_budget) {
    slot.stats.exhausted = true;
    if (events_.on_exhausted) {
      lock.unlock();
      events_.on_exhausted(index);
      lock.lock();
    }
    return;
  }

  ++slot.respawns_used;
  ++slot.stats.respawns_attempted;
  const double detected_at = slot.detected_at_s;

  // The slow rungs — kill/reap whatever is left, then respawn — run
  // without the lock so note_unreachable/mark_terminal never block on a
  // spawning process.
  lock.unlock();
  transport->crash();
  const bool ok = transport->respawn();
  lock.lock();

  it = slots_.find(index);
  if (it == slots_.end()) return;
  Slot& re = it->second;
  if (re.terminal) {
    // kill_shard/remove_shard raced the respawn: honour the terminal
    // intent — the freshly spawned process must not outlive the decision.
    if (ok) {
      lock.unlock();
      transport->crash();
      lock.lock();
    }
    return;
  }
  if (ok) {
    re.in_ladder = false;
    re.backoff_ms = options_.respawn_backoff_ms;
    ++re.stats.respawns_succeeded;
    re.stats.last_respawn_s = steady_now_s() - detected_at;
    if (events_.on_respawned) {
      lock.unlock();
      events_.on_respawned(index);
      lock.lock();
    }
  } else {
    re.backoff_ms =
        std::min(re.backoff_ms * 2.0, options_.respawn_backoff_max_ms);
    re.next_attempt_s = steady_now_s() + re.backoff_ms * 1e-3;
  }
}

}  // namespace starsim::fleet
