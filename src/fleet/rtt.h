// starsim::fleet RTT estimation — adaptive deadlines for a fleet whose
// shards stopped all being one loopback away.
//
// PR 8 tuned heartbeat staleness and frame deadlines with fixed constants,
// which is only coherent when every shard shares one latency regime. A TCP
// fleet has loopback shards answering in microseconds next to LAN shards
// answering in milliseconds; one constant either times the fast ones out
// too slowly (masking partitions) or the slow ones out too eagerly
// (fabricating them). RttEstimator is the classic Jacobson/Karels
// smoother TCP itself uses: per connection,
//
//   first sample:  srtt = s, rttvar = s / 2
//   thereafter:    rttvar = (1 - beta) * rttvar + beta * |srtt - s|
//                  srtt   = (1 - alpha) * srtt  + alpha * s
//   RTO            = clamp(srtt + 4 * rttvar, floor, ceiling)
//
// Heartbeat round trips feed it; the transport derives per-frame socket
// deadlines and the supervisor derives heartbeat staleness thresholds from
// rto_s(), so loopback and LAN shards each get deadlines proportionate to
// the network they actually sit on. The floor keeps a microsecond-loopback
// RTO from tripping on a single scheduler hiccup; the ceiling keeps a
// congested path from inflating the RTO into a liveness blind spot.
#pragma once

#include <cstdint>
#include <mutex>

namespace starsim::fleet {

/// Smoothing gains and RTO clamps. Defaults are the RFC 6298 constants
/// with clamps sized for a process fleet (5 ms floor — far above loopback
/// RTT, far below any real render; 2 s ceiling — a path slower than that
/// is indistinguishable from a partition at fleet timescales).
struct RttOptions {
  double alpha = 0.125;        ///< srtt gain per sample
  double beta = 0.25;          ///< rttvar gain per sample
  double rto_floor_s = 0.005;  ///< never trip faster than this
  double rto_ceiling_s = 2.0;  ///< never wait longer than this
  double initial_rto_s = 0.25; ///< RTO before the first sample lands
};

/// EWMA round-trip estimator, thread-safe: the heartbeat thread feeds
/// samples while I/O workers, the supervisor, and the metrics scrape read
/// srtt/rttvar/rto concurrently.
class RttEstimator {
 public:
  explicit RttEstimator(RttOptions options = {}) : options_(options) {}

  /// Fold in one measured round trip (seconds). Non-positive samples are
  /// clock noise and are dropped.
  void sample(double rtt_s);

  /// Forget everything — called on reconnect/respawn, because a new
  /// connection (possibly to a respawned process on a different load) is
  /// a new latency regime and stale smoothing would misclamp it.
  void reset();

  [[nodiscard]] double srtt_s() const;
  [[nodiscard]] double rttvar_s() const;

  /// Retransmission-timeout analog: srtt + 4·rttvar clamped to
  /// [floor, ceiling]; options.initial_rto_s until a sample lands.
  [[nodiscard]] double rto_s() const;

  [[nodiscard]] std::uint64_t samples() const;

  [[nodiscard]] const RttOptions& options() const { return options_; }

 private:
  [[nodiscard]] double rto_locked() const;

  RttOptions options_;
  mutable std::mutex mutex_;
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  std::uint64_t samples_ = 0;
};

}  // namespace starsim::fleet
