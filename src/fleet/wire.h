// starsim::fleet wire protocol — the serialized request/reply boundary
// between the ShardRouter and its shard services.
//
// Each shard runs behind this protocol exactly as a remote process would:
// the router encodes a RenderRequest into a self-describing binary frame,
// the shard decodes it, renders, and answers with either a response frame
// (the full SimulationResult, pixel bits verbatim) or a typed error frame
// that decodes back into the same support::Error subclass the shard threw.
// Floats cross the boundary as raw bit patterns, so a frame that survives a
// round trip is bit-identical to the frame the shard rendered — the fleet
// layer's failover and hedging guarantees stand on that.
//
// Frames are versioned (kMagic + kVersion + a message kind byte) and every
// decoder bounds-checks; malformed input throws support::WireFormatError,
// never reads past the buffer. The sanitizer report attached to sanitized
// responses is deliberately *not* serialized — findings stay shard-local,
// surfaced through the shard's own metrics (docs/observability.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serve/request.h"

namespace starsim::fleet {

/// One encoded frame (request or reply) as it crosses the shard boundary.
using WireBuffer = std::vector<std::uint8_t>;

/// Frame header constants: two magic bytes, a format version, and the
/// message kind. Bump kWireVersion on any layout change — decoders reject
/// mismatches instead of misreading fields.
inline constexpr std::uint8_t kWireMagic0 = 'S';
inline constexpr std::uint8_t kWireMagic1 = 'F';
inline constexpr std::uint8_t kWireVersion = 1;

enum class MessageKind : std::uint8_t {
  kRequest = 1,   ///< router -> shard: a RenderRequest
  kResponse = 2,  ///< shard -> router: a rendered RenderResponse
  kError = 3,     ///< shard -> router: a typed failure
};

/// Error taxonomy tags carried by kError frames; decode_reply rethrows the
/// matching support::Error subclass so router-side catch clauses behave
/// exactly as if the shard had thrown in-process.
enum class WireErrorKind : std::uint8_t {
  kGeneric = 0,
  kPrecondition = 1,
  kDevice = 2,
  kTransfer = 3,
  kKernelTimeout = 4,
  kDeviceLost = 5,
  kSanitizer = 6,
  kIo = 7,
  kDeadlineExceeded = 8,
  kOverloadShed = 9,
  kShardDown = 10,
};

/// Serialize a request for transport to a shard. Field-by-field, so struct
/// padding never leaks into the frame (the same discipline fingerprint.h
/// applies to hashing).
[[nodiscard]] WireBuffer encode_request(const serve::RenderRequest& request);

/// Decode a request frame. Throws support::WireFormatError on truncation,
/// bad magic, or version/kind mismatch.
[[nodiscard]] serve::RenderRequest decode_request(
    std::span<const std::uint8_t> bytes);

/// Serialize a response, including the full SimulationResult (pixel bits
/// verbatim, complete timing breakdown and kernel counters).
[[nodiscard]] WireBuffer encode_response(const serve::RenderResponse& response);

/// Serialize a failure as a typed error frame. Errors outside the starsim
/// taxonomy travel as kGeneric and decode as plain support::Error.
[[nodiscard]] WireBuffer encode_error(const std::exception& error);

/// True when the frame is an error reply (cheap header peek; throws
/// support::WireFormatError on a frame too short to classify).
[[nodiscard]] bool reply_is_error(std::span<const std::uint8_t> bytes);

/// Decode a reply frame: returns the response, or rethrows the typed error
/// a kError frame carries. Throws support::WireFormatError on malformed
/// input.
[[nodiscard]] serve::RenderResponse decode_reply(
    std::span<const std::uint8_t> bytes);

}  // namespace starsim::fleet
