// starsim::fleet wire protocol — the serialized request/reply boundary
// between the ShardRouter and its shard services.
//
// Each shard runs behind this protocol exactly as a remote process would:
// the router encodes a RenderRequest into a self-describing binary frame,
// the shard decodes it, renders, and answers with either a response frame
// (the full SimulationResult, pixel bits verbatim) or a typed error frame
// that decodes back into the same support::Error subclass the shard threw.
// Floats cross the boundary as raw bit patterns, so a frame that survives a
// round trip is bit-identical to the frame the shard rendered — the fleet
// layer's failover and hedging guarantees stand on that.
//
// Frames are versioned and integrity-checked: an 8-byte header carries two
// magic bytes, the format version, the message kind, and a CRC32 over the
// kind byte plus the payload, so a frame that was truncated, bit-flipped,
// or spliced by a real byte stream decodes to support::WireFormatError
// instead of garbage. Every decoder additionally bounds-checks; malformed
// input never reads past the buffer. The sanitizer report attached to
// sanitized responses is deliberately *not* serialized — findings stay
// shard-local, surfaced through the shard's own metrics
// (docs/observability.md).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/request.h"
#include "trace/metrics.h"

namespace starsim::fleet {

/// One encoded frame (request or reply) as it crosses the shard boundary.
using WireBuffer = std::vector<std::uint8_t>;

/// Frame header constants: two magic bytes, a format version, the message
/// kind, and a CRC32 (little-endian, IEEE 802.3 polynomial) computed over
/// the kind byte followed by the payload — so corruption of either the
/// dispatch byte or the body is caught before any field is trusted. Bump
/// kWireVersion on any layout change — decoders reject mismatches instead
/// of misreading fields.
inline constexpr std::uint8_t kWireMagic0 = 'S';
inline constexpr std::uint8_t kWireMagic1 = 'F';
inline constexpr std::uint8_t kWireVersion = 2;
inline constexpr std::size_t kWireHeaderBytes = 8;

enum class MessageKind : std::uint8_t {
  kRequest = 1,       ///< router -> shard: a RenderRequest
  kResponse = 2,      ///< shard -> router: a rendered RenderResponse
  kError = 3,         ///< shard -> router: a typed failure
  kHeartbeat = 4,     ///< router -> shard: liveness ping
  kHeartbeatAck = 5,  ///< shard -> router: pong + load snapshot
  kStatsRequest = 6,  ///< router -> shard: scrape my metric families
  kStatsReply = 7,    ///< shard -> router: instance-labeled families
  kHello = 8,         ///< router -> shard: handshake (version, id, token)
  kHelloAck = 9,      ///< shard -> router: handshake accepted
};

/// CRC32 (IEEE 802.3, reflected 0xEDB88320) over `bytes`, seeded by
/// `seed` so multi-span inputs chain. Exposed for the socket layer and for
/// corruption tests that need to re-seal a deliberately patched frame.
[[nodiscard]] std::uint32_t wire_crc32(std::span<const std::uint8_t> bytes,
                                       std::uint32_t seed = 0);

/// Recompute and rewrite `frame`'s header CRC after its payload bytes were
/// patched in place (test tooling; production frames are sealed by their
/// encoders). Throws WireFormatError when `frame` is too short to carry a
/// header.
void reseal_frame(WireBuffer& frame);

/// Validate the full header (magic, version, CRC) and return the message
/// kind. The cheap classification step both ends of a stream transport run
/// before dispatching to a typed decoder. Throws support::WireFormatError.
[[nodiscard]] MessageKind frame_kind(std::span<const std::uint8_t> bytes);

/// Error taxonomy tags carried by kError frames; decode_reply rethrows the
/// matching support::Error subclass so router-side catch clauses behave
/// exactly as if the shard had thrown in-process.
enum class WireErrorKind : std::uint8_t {
  kGeneric = 0,
  kPrecondition = 1,
  kDevice = 2,
  kTransfer = 3,
  kKernelTimeout = 4,
  kDeviceLost = 5,
  kSanitizer = 6,
  kIo = 7,
  kDeadlineExceeded = 8,
  kOverloadShed = 9,
  kShardDown = 10,
  kTransportTimeout = 11,
  kHandshake = 12,
};

/// Handshake opener a dialer sends on every fresh connection before any
/// request frame. The shard host verifies all three fields — protocol
/// version (catches version-skewed deployments beyond the per-frame header
/// check), the shard index the dialer believes it reached (catches a
/// routing table pointing at the wrong endpoint), and the shared secret
/// from STARSIM_FLEET_TOKEN (empty means auth is disabled on both sides) —
/// and answers kHelloAck or a typed kError carrying HandshakeError.
struct Hello {
  std::uint8_t protocol_version = kWireVersion;
  std::int32_t shard_index = -1;  ///< index the dialer expects to reach
  std::string token;              ///< shared secret, "" = auth disabled
};

/// Handshake acceptance: the shard host echoes its identity so the dialer
/// can double-check it reached the shard it routed to.
struct HelloAck {
  std::uint8_t protocol_version = kWireVersion;
  std::int32_t shard_index = -1;  ///< index the host was launched with
};

[[nodiscard]] WireBuffer encode_hello(const Hello& hello);
[[nodiscard]] Hello decode_hello(std::span<const std::uint8_t> bytes);
[[nodiscard]] WireBuffer encode_hello_ack(const HelloAck& ack);
[[nodiscard]] HelloAck decode_hello_ack(std::span<const std::uint8_t> bytes);

/// Liveness ping the router (or supervisor) sends a shard host.
struct Heartbeat {
  std::uint64_t sequence = 0;
};

/// Pong: the shard's load snapshot rides back on every heartbeat, giving
/// the router a cheap cross-process answer to "how full is that queue"
/// (the backpressure watermark input) and `completed` as a progress signal
/// that distinguishes a busy shard from a wedged one.
struct HeartbeatAck {
  std::uint64_t sequence = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 0;
  std::uint64_t completed = 0;  ///< requests the shard service has finished
};

[[nodiscard]] WireBuffer encode_heartbeat(const Heartbeat& beat);
[[nodiscard]] Heartbeat decode_heartbeat(std::span<const std::uint8_t> bytes);
[[nodiscard]] WireBuffer encode_heartbeat_ack(const HeartbeatAck& ack);
[[nodiscard]] HeartbeatAck decode_heartbeat_ack(
    std::span<const std::uint8_t> bytes);

/// Metrics scrape across the process boundary: the shard host serializes
/// its FrameService's instance-labeled families so the router can merge
/// them into one fleet exposition exactly as it does for in-process shards.
[[nodiscard]] WireBuffer encode_stats_request();
[[nodiscard]] WireBuffer encode_stats_reply(
    const std::vector<trace::MetricFamily>& families);
[[nodiscard]] std::vector<trace::MetricFamily> decode_stats_reply(
    std::span<const std::uint8_t> bytes);

/// Serialize a request for transport to a shard. Field-by-field, so struct
/// padding never leaks into the frame (the same discipline fingerprint.h
/// applies to hashing).
[[nodiscard]] WireBuffer encode_request(const serve::RenderRequest& request);

/// Decode a request frame. Throws support::WireFormatError on truncation,
/// bad magic, or version/kind mismatch.
[[nodiscard]] serve::RenderRequest decode_request(
    std::span<const std::uint8_t> bytes);

/// Serialize a response, including the full SimulationResult (pixel bits
/// verbatim, complete timing breakdown and kernel counters).
[[nodiscard]] WireBuffer encode_response(const serve::RenderResponse& response);

/// Serialize a failure as a typed error frame. Errors outside the starsim
/// taxonomy travel as kGeneric and decode as plain support::Error.
[[nodiscard]] WireBuffer encode_error(const std::exception& error);

/// True when the frame is an error reply (cheap header peek; throws
/// support::WireFormatError on a frame too short to classify).
[[nodiscard]] bool reply_is_error(std::span<const std::uint8_t> bytes);

/// Decode a reply frame: returns the response, or rethrows the typed error
/// a kError frame carries. Throws support::WireFormatError on malformed
/// input.
[[nodiscard]] serve::RenderResponse decode_reply(
    std::span<const std::uint8_t> bytes);

}  // namespace starsim::fleet
