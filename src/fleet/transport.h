// Transport — the router's only view of a shard.
//
// PR 6 built the fleet on a byte-exact wire protocol so that an in-process
// shard and a remote one are indistinguishable to the router; this header
// makes that literal. A Transport accepts an encoded request frame plus a
// deadline and returns a PendingReply that resolves to the encoded reply —
// nothing above this interface knows whether the frame crossed a function
// call or a socket.
//
// Two implementations:
//
//  - LoopbackTransport: the original in-process Shard behind the
//    interface. respawn() rebuilds the FrameService, so the supervision
//    ladder (crash -> respawn -> probe -> reinstate) exercises identically
//    against both transports — the chaos suites are shared.
//
//  - SocketTransport: a shard process reached over a Unix-domain socket
//    (fleet/socket.h), usually one this transport spawned itself
//    (fleet/process.h). A pool of I/O threads runs one request round trip
//    per task; connections are cached and reused (connection = in-flight
//    slot, matching ShardHost's serial per-connection loop), and a
//    generation counter discards stale sockets after a respawn. A
//    heartbeat thread pings the shard and caches its load snapshot, giving
//    the router cross-process queue depths for backpressure and a
//    heartbeat age for hang detection.
//
// Every submit carries an absolute I/O budget: a hung shard can cost a
// router worker at most the request's remaining deadline (or the
// transport's default budget), never a wedged thread. See docs/serving.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fleet/process.h"
#include "fleet/rtt.h"
#include "fleet/shard.h"
#include "fleet/socket.h"
#include "fleet/wire.h"
#include "serve/service.h"

namespace starsim::fleet {

/// Transport-level counters, folded into FleetStats by the router.
struct TransportStats {
  std::uint64_t submits = 0;
  std::uint64_t transport_timeouts = 0;  ///< I/O deadline misses
  std::uint64_t reconnects = 0;          ///< fresh connections dialed
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_missed = 0;
};

/// Network-level view of a transport, scraped into the
/// starsim_fleet_net_* metric families. Loopback transports report the
/// all-zero default (there is no network); ChaosTransport adds its
/// injected-fault counters on top of the inner transport's numbers.
struct TransportNetStats {
  double srtt_ms = 0.0;    ///< smoothed round-trip time
  double rttvar_ms = 0.0;  ///< round-trip variance
  double rto_ms = 0.0;     ///< derived retransmission-timeout analog
  std::uint64_t rtt_samples = 0;
  std::uint64_t handshakes_ok = 0;
  std::uint64_t handshakes_failed = 0;
  std::uint64_t dial_backoffs = 0;  ///< dials refused while backing off
  // Fault-injection counters (ChaosTransport only).
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_reordered = 0;
  std::uint64_t faults_corrupted = 0;
  std::uint64_t faults_partitioned = 0;  ///< frames blocked by a partition
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Submit an encoded request frame. `io_budget_s` bounds every read and
  /// write this request performs on the transport (derived from the
  /// request's remaining deadline); nullopt applies the transport default.
  /// Throws support::ShardDownError when the shard is known-dead.
  [[nodiscard]] virtual PendingReply submit(
      const WireBuffer& frame, std::optional<double> io_budget_s) = 0;

  /// True when the shard behind this transport is gone (process exited,
  /// in-process shard killed) and a respawn is required before traffic.
  [[nodiscard]] virtual bool dead() = 0;

  /// Chaos: kill the shard abruptly (SIGKILL / Shard::kill). In-flight
  /// requests settle with typed errors; dead() turns true.
  virtual void crash() = 0;

  /// Chaos: wedge the shard without killing it (SIGSTOP / drop replies).
  /// The process-level hang the heartbeat ladder must detect.
  virtual void wedge() = 0;

  /// Rebuild the shard after crash(): respawn the process / reconstruct
  /// the FrameService. Returns false when the rebuild failed (spawn error)
  /// — the supervisor retries under its backoff budget.
  [[nodiscard]] virtual bool respawn() = 0;

  /// Orderly shutdown (graceful process stop / service drain). Idempotent.
  virtual void shutdown() = 0;

  /// Load snapshot for backpressure: queue depth/capacity of the shard's
  /// service. Socket transports answer from the latest heartbeat ack.
  [[nodiscard]] virtual std::size_t queue_depth() = 0;
  [[nodiscard]] virtual std::size_t queue_capacity() = 0;

  /// Milliseconds since the last successful liveness signal. Loopback
  /// always answers 0 (an in-process shard cannot silently hang); socket
  /// transports age their last heartbeat ack.
  [[nodiscard]] virtual double heartbeat_age_ms() = 0;

  /// Instance-labeled metric families for the fleet exposition. Best
  /// effort for socket transports (empty when the shard is unreachable).
  [[nodiscard]] virtual std::vector<trace::MetricFamily> metric_families() = 0;

  [[nodiscard]] virtual int index() const = 0;
  [[nodiscard]] virtual const std::string& instance() const = 0;
  [[nodiscard]] virtual TransportStats stats() = 0;

  /// Network counters for the starsim_fleet_net_* exposition. The default
  /// (all zeros) is correct for transports with no network underneath.
  [[nodiscard]] virtual TransportNetStats net_stats() { return {}; }

  /// Heartbeat-age threshold (ms) beyond which the supervisor should treat
  /// this shard as *partitioned* (route around, keep the process) rather
  /// than hung. Negative means "no network here" — the supervisor skips
  /// the partition rung and goes straight to the hang ladder.
  [[nodiscard]] virtual double partition_after_ms() { return -1.0; }

  /// The in-process shard behind a loopback transport; nullptr for socket
  /// transports (used by tests and serve-bench's per-shard reporting).
  [[nodiscard]] virtual Shard* loopback_shard() { return nullptr; }
};

/// In-process shard behind the Transport interface.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(int index, serve::FrameServiceOptions options);

  [[nodiscard]] PendingReply submit(
      const WireBuffer& frame, std::optional<double> io_budget_s) override;
  [[nodiscard]] bool dead() override;
  void crash() override;
  void wedge() override;
  [[nodiscard]] bool respawn() override;
  void shutdown() override;
  [[nodiscard]] std::size_t queue_depth() override;
  [[nodiscard]] std::size_t queue_capacity() override;
  [[nodiscard]] double heartbeat_age_ms() override;
  [[nodiscard]] std::vector<trace::MetricFamily> metric_families() override;
  [[nodiscard]] int index() const override { return index_; }
  [[nodiscard]] const std::string& instance() const override {
    return instance_;
  }
  [[nodiscard]] TransportStats stats() override;
  [[nodiscard]] Shard* loopback_shard() override;

 private:
  [[nodiscard]] std::shared_ptr<Shard> shard();

  int index_;
  std::string instance_;
  serve::FrameServiceOptions options_;
  std::mutex mutex_;
  std::shared_ptr<Shard> shard_;
  bool wedged_ = false;
  double wedged_since_s_ = 0.0;
  std::uint64_t submits_ = 0;
};

struct SocketTransportOptions {
  /// Default per-request I/O budget when the request carries no deadline.
  double io_timeout_s = 30.0;
  /// Concurrent request round trips this transport can run (its I/O
  /// thread count). Excess submits queue.
  int io_threads = 4;
  /// Heartbeat period; 0 disables the heartbeat thread (tests that drive
  /// liveness manually).
  double heartbeat_period_s = 0.25;
  /// Budget for one heartbeat round trip.
  double heartbeat_timeout_s = 1.0;
  /// Budget for a connect() when dialing a fresh connection.
  double connect_timeout_s = 2.0;
  /// Shared secret for the connection handshake. Empty means "no auth" —
  /// the shard host accepts any greeting. Routers default this from
  /// STARSIM_FLEET_TOKEN so the secret never appears on a command line.
  std::string token;
  /// Capped exponential backoff between failed dials. While the backoff
  /// window is open, checkout fails fast with ShardDownError instead of
  /// re-dialing a peer that just refused — a crashed shard costs one
  /// failed connect per window, not one per queued request.
  double reconnect_backoff_ms = 10.0;
  double reconnect_backoff_max_ms = 500.0;
  /// RTT smoothing gains and RTO clamps (fleet/rtt.h).
  RttOptions rtt{};
  /// Partition threshold in heartbeat periods: a heartbeat age beyond
  /// `partition_beats * heartbeat_period_s + 4 * rto` (floored at
  /// partition_floor_ms) reads as a network partition, not a hang.
  double partition_beats = 3.0;
  double partition_floor_ms = 250.0;
};

/// A shard process reached over its Unix-domain socket.
class SocketTransport final : public Transport {
 public:
  /// Spawns the shard process described by `process` immediately.
  SocketTransport(ShardProcessConfig process, SocketTransportOptions options);
  ~SocketTransport() override;

  [[nodiscard]] PendingReply submit(
      const WireBuffer& frame, std::optional<double> io_budget_s) override;
  [[nodiscard]] bool dead() override;
  void crash() override;
  void wedge() override;
  [[nodiscard]] bool respawn() override;
  void shutdown() override;
  [[nodiscard]] std::size_t queue_depth() override;
  [[nodiscard]] std::size_t queue_capacity() override;
  [[nodiscard]] double heartbeat_age_ms() override;
  [[nodiscard]] std::vector<trace::MetricFamily> metric_families() override;
  [[nodiscard]] int index() const override { return index_; }
  [[nodiscard]] const std::string& instance() const override {
    return instance_;
  }
  [[nodiscard]] TransportStats stats() override;
  [[nodiscard]] TransportNetStats net_stats() override;
  [[nodiscard]] double partition_after_ms() override;

  /// The wrapped process (chaos hooks beyond crash/wedge: pid, resume).
  [[nodiscard]] ShardProcess& process() { return process_; }

  /// The connection RTT estimator (read-only access for tests/benches).
  [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }

 private:
  struct Task {
    std::function<void()> run;
  };

  /// Borrow a cached connection of the current generation or dial a new
  /// one. Throws ShardDownError / TransportTimeoutError.
  [[nodiscard]] FrameSocket checkout_connection(double deadline_s);
  /// Greet a freshly dialed connection: send Hello{version, index, token},
  /// validate the HelloAck. Throws HandshakeError (non-retryable) on
  /// version skew, index mismatch, or token rejection.
  void handshake(FrameSocket& socket, double deadline_s);
  /// Open (or widen) the dial-backoff window after a failed connect.
  void note_dial_failure();
  /// Close the dial-backoff window after a successful connect or respawn.
  void reset_dial_backoff();
  /// Return a healthy connection to the cache (same generation only).
  void checkin_connection(FrameSocket socket, std::uint64_t generation);

  /// One full round trip on the calling (I/O) thread.
  [[nodiscard]] WireBuffer round_trip(const WireBuffer& frame,
                                      double deadline_s);

  void io_loop();
  void heartbeat_loop();
  void enqueue(std::function<void()> task);
  [[nodiscard]] double now_s() const;

  int index_;
  std::string instance_;
  SocketTransportOptions options_;
  ShardProcess process_;

  std::mutex process_mutex_;  ///< spawn/kill/waitpid serialization

  std::mutex conn_mutex_;
  std::vector<FrameSocket> idle_connections_;
  std::uint64_t generation_ = 0;  ///< bumped on respawn; stale sockets drop

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> tasks_;
  bool closed_ = false;
  std::vector<std::thread> io_threads_;

  std::thread heartbeat_thread_;
  std::atomic<bool> stop_heartbeat_{false};
  std::atomic<std::uint64_t> heartbeat_seq_{0};
  std::atomic<double> last_ack_s_;
  std::atomic<std::uint64_t> acked_queue_depth_{0};
  std::atomic<std::uint64_t> acked_queue_capacity_{0};

  std::atomic<bool> marked_dead_{false};

  std::mutex stats_mutex_;
  TransportStats stats_;

  RttEstimator rtt_;

  // Dial backoff state (conn_mutex_): while now < next_dial_s_ a checkout
  // with no cached connection fails fast instead of re-dialing.
  double dial_backoff_ms_ = 0.0;
  double next_dial_s_ = 0.0;
  std::uint64_t dial_jitter_state_ = 0;  ///< per-transport deterministic LCG

  std::mutex net_mutex_;
  std::uint64_t handshakes_ok_ = 0;
  std::uint64_t handshakes_failed_ = 0;
  std::uint64_t dial_backoffs_ = 0;
};

}  // namespace starsim::fleet
