// One fleet shard: a FrameService instance reachable only through the wire
// protocol.
//
// The router never touches a shard's FrameService directly — every request
// crosses wire.h as an encoded frame and every reply comes back as one, so
// the in-process shard behaves exactly like a remote renderer: typed errors
// survive the boundary, pixel bits cross verbatim, and killing a shard is
// indistinguishable (to the router) from a process that stopped answering.
// That discipline is what makes the fleet chaos tests honest — failover and
// hedging are exercised against the same byte-level contract a networked
// deployment would use.
#pragma once

#include <atomic>
#include <chrono>
#include <exception>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fleet/wire.h"
#include "serve/service.h"

namespace starsim::fleet {

/// An in-flight shard reply: a handle the router polls (for hedging) and
/// eventually takes as an encoded frame. Encoding runs lazily on the taking
/// thread — the stand-in for the shard's reply-serialization work a remote
/// deployment would do on its RPC thread.
class PendingReply {
 public:
  explicit PendingReply(std::future<serve::RenderResponse> future)
      : future_(std::move(future)) {}

  /// A reply that already failed at admission (shed, invalid, shard down):
  /// ready immediately, takes as a typed error frame.
  [[nodiscard]] static PendingReply failed(std::exception_ptr error) {
    PendingReply reply;
    reply.immediate_ = std::move(error);
    return reply;
  }

  /// A reply whose frame is produced elsewhere — the socket transport's
  /// I/O thread resolves the future with the shard's raw reply bytes.
  /// A transport failure (timeout, reset) travels as the future's
  /// exception and takes as a typed error frame, so the router handles
  /// remote shards exactly like in-process ones.
  [[nodiscard]] static PendingReply wire(std::future<WireBuffer> frame) {
    PendingReply reply;
    reply.wire_ = std::move(frame);
    return reply;
  }

  /// True once a frame (response or error) can be taken without blocking.
  /// A consumed reply is never ready again — polling a stale handle is a
  /// harmless no, not UB on an invalid future.
  [[nodiscard]] bool ready() const {
    if (immediate_ != nullptr) return true;
    if (wire_.valid()) {
      return wire_.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
    }
    return future_.valid() &&
           future_.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready;
  }

  /// Wait up to `timeout` for readiness; true when ready. This is the
  /// hedging trigger: the router waits one hedge delay on the primary
  /// before launching a backup. False (immediately) once consumed.
  [[nodiscard]] bool wait_for(std::chrono::duration<double> timeout) const {
    if (immediate_ != nullptr) return true;
    if (wire_.valid()) {
      return wire_.wait_for(timeout) == std::future_status::ready;
    }
    return future_.valid() &&
           future_.wait_for(timeout) == std::future_status::ready;
  }

  /// Block for the reply and encode it: a response frame on success, a
  /// typed error frame on failure. Consumes the handle (one take per
  /// reply).
  [[nodiscard]] WireBuffer take();

 private:
  PendingReply() = default;

  std::future<serve::RenderResponse> future_;
  std::future<WireBuffer> wire_;
  std::exception_ptr immediate_;
};

/// A FrameService behind the wire boundary, addressable by shard index.
class Shard {
 public:
  Shard(int index, serve::FrameServiceOptions options);

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Decode and admit a request frame. Throws support::ShardDownError when
  /// the shard is killed and support::WireFormatError on a malformed frame;
  /// admission failures (shed, invalid request) come back as ready error
  /// replies, mirroring how a live remote shard answers.
  [[nodiscard]] PendingReply submit(std::span<const std::uint8_t> frame);

  /// Chaos hook: take the shard out of the fleet. Admission stops (future
  /// submits throw ShardDownError) and already-admitted work drains through
  /// the service's ordinary shutdown — every accepted future still
  /// resolves, so a kill can never strand a request.
  void kill();

  /// Orderly shutdown (stop admission, drain, join workers). Idempotent.
  void stop();

  [[nodiscard]] bool down() const { return down_.load(); }
  [[nodiscard]] int index() const { return index_; }
  /// Instance label carried by this shard's metric samples ("shard-N").
  [[nodiscard]] const std::string& instance() const { return instance_; }

  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::size_t queue_capacity() const;
  [[nodiscard]] serve::ServiceStats stats() const;
  [[nodiscard]] serve::PoolHealth health() const;
  /// The shard service's metric families, instance-labeled — the router
  /// merges these across shards into one fleet exposition.
  [[nodiscard]] std::vector<trace::MetricFamily> metric_families() const;

  /// Direct service access for tests that assert on shard internals.
  [[nodiscard]] serve::FrameService& service() { return *service_; }

 private:
  int index_;
  std::string instance_;
  std::atomic<bool> down_{false};
  std::unique_ptr<serve::FrameService> service_;
};

}  // namespace starsim::fleet
