#include "fleet/shard.h"

#include <utility>

#include "support/error.h"

namespace starsim::fleet {

WireBuffer PendingReply::take() {
  if (immediate_ != nullptr) {
    try {
      std::rethrow_exception(std::exchange(immediate_, nullptr));
    } catch (const std::exception& error) {
      return encode_error(error);
    }
  }
  if (wire_.valid()) {
    try {
      return wire_.get();
    } catch (const std::exception& error) {
      // Transport failures (timeout, reset, connect refused) become the
      // same typed error frames a shard would send — the router's
      // decode_reply path needs no transport-specific handling.
      return encode_error(error);
    }
  }
  // Fail loudly on a double-take: get() on a consumed handle would throw
  // std::future_error into the catch below and masquerade as a shard error.
  STARSIM_REQUIRE(future_.valid(), "PendingReply was already consumed");
  try {
    return encode_response(future_.get());
  } catch (const std::exception& error) {
    return encode_error(error);
  }
}

Shard::Shard(int index, serve::FrameServiceOptions options)
    : index_(index),
      instance_("shard-" + std::to_string(index)),
      service_(std::make_unique<serve::FrameService>(std::move(options))) {}

PendingReply Shard::submit(std::span<const std::uint8_t> frame) {
  if (down_.load()) {
    STARSIM_THROW(support::ShardDownError,
                  instance_ + " is down and not accepting requests");
  }
  // A malformed frame throws out of here (the router's encoder is the bug,
  // not the shard); a well-formed but inadmissible request answers with an
  // error reply, like any live shard would.
  serve::RenderRequest request = decode_request(frame);
  try {
    std::optional<std::future<serve::RenderResponse>> future =
        service_->try_submit(std::move(request));
    if (!future.has_value()) {
      return PendingReply::failed(
          std::make_exception_ptr(support::OverloadShedError(
              instance_ + " rejected the request: queue full of "
                          "equal-or-higher-priority work")));
    }
    return PendingReply(std::move(*future));
  } catch (const std::exception&) {
    return PendingReply::failed(std::current_exception());
  }
}

void Shard::kill() {
  const bool was_down = down_.exchange(true);
  if (!was_down) service_->stop();
}

void Shard::stop() { service_->stop(); }

std::size_t Shard::queue_depth() const { return service_->queue_depth(); }

std::size_t Shard::queue_capacity() const {
  return service_->options().queue_capacity;
}

serve::ServiceStats Shard::stats() const { return service_->stats(); }

serve::PoolHealth Shard::health() const { return service_->health(); }

std::vector<trace::MetricFamily> Shard::metric_families() const {
  return service_->metric_families(instance_);
}

}  // namespace starsim::fleet
