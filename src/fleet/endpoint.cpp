#include "fleet/endpoint.h"

#include <utility>

#include "support/error.h"

namespace starsim::fleet {

Endpoint Endpoint::parse(const std::string& spec) {
  STARSIM_REQUIRE(!spec.empty(), "endpoint spec is empty");
  constexpr const char* kUnixScheme = "unix:";
  constexpr const char* kTcpScheme = "tcp:";
  if (spec.rfind(kUnixScheme, 0) == 0) {
    std::string path = spec.substr(5);
    STARSIM_REQUIRE(!path.empty(), "unix endpoint has an empty path");
    return unix_path(std::move(path));
  }
  if (spec.rfind(kTcpScheme, 0) == 0) {
    const std::string rest = spec.substr(4);
    // Split on the LAST colon so a future bracketed-IPv6 host keeps its
    // internal colons; today's hosts are names or IPv4 literals.
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      STARSIM_THROW(support::PreconditionError,
                    "tcp endpoint must be tcp:host:port, got \"" + spec +
                        "\"");
    }
    const std::string host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    long port = 0;
    for (const char c : port_text) {
      if (c < '0' || c > '9') {
        STARSIM_THROW(support::PreconditionError,
                      "tcp endpoint port is not numeric: \"" + spec + "\"");
      }
      port = port * 10 + (c - '0');
      if (port > 65535) {
        STARSIM_THROW(support::PreconditionError,
                      "tcp endpoint port exceeds 65535: \"" + spec + "\"");
      }
    }
    return tcp(host, static_cast<std::uint16_t>(port));
  }
  // Bare path: every pre-endpoint socket_path string stays valid.
  return unix_path(spec);
}

Endpoint Endpoint::unix_path(std::string path) {
  Endpoint endpoint;
  endpoint.kind = Kind::kUnix;
  endpoint.path = std::move(path);
  return endpoint;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint endpoint;
  endpoint.kind = Kind::kTcp;
  endpoint.host = std::move(host);
  endpoint.port = port;
  return endpoint;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kTcp) {
    return "tcp:" + host + ":" + std::to_string(port);
  }
  return "unix:" + path;
}

}  // namespace starsim::fleet
