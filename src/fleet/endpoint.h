// starsim::fleet endpoint addresses — where a shard listens.
//
// PR 8's transport hard-coded Unix-domain socket paths; a fleet that spans
// machines needs a listener address that can also name a TCP host:port.
// `Endpoint` is that address: a tagged union parsed from the two spec
// syntaxes every fleet-facing flag and config field accepts,
//
//   unix:/path/to/shard.sock    — Unix-domain stream socket
//   tcp:host:port               — TCP (port 0 = kernel-assigned, tests)
//
// plus a bare path (no scheme) which keeps every pre-existing socket-path
// string meaning what it always meant. The socket layer (socket.h) dials
// and binds Endpoints; everything above it — transport, process config,
// shardd flags — passes them through as strings so specs survive the
// posix_spawn argv boundary unchanged.
#pragma once

#include <cstdint>
#include <string>

namespace starsim::fleet {

/// A parsed shard listener address: Unix-domain path or TCP host:port.
struct Endpoint {
  enum class Kind : std::uint8_t { kUnix = 0, kTcp = 1 };

  Kind kind = Kind::kUnix;
  std::string path;         ///< kUnix: filesystem path of the socket
  std::string host;         ///< kTcp: hostname or numeric address
  std::uint16_t port = 0;   ///< kTcp: port (0 = kernel-assigned on bind)

  /// Parse `unix:/path`, `tcp:host:port`, or a bare path (treated as
  /// unix for compatibility with pre-endpoint socket-path strings).
  /// Throws support::PreconditionError on a malformed spec (empty path,
  /// missing or non-numeric port, port > 65535).
  [[nodiscard]] static Endpoint parse(const std::string& spec);

  [[nodiscard]] static Endpoint unix_path(std::string path);
  [[nodiscard]] static Endpoint tcp(std::string host, std::uint16_t port);

  /// Canonical spec string (`unix:...` / `tcp:...`), parseable by parse().
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool is_tcp() const { return kind == Kind::kTcp; }
};

}  // namespace starsim::fleet
