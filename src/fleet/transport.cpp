#include "fleet/transport.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "support/error.h"
#include "trace/trace.h"

namespace starsim::fleet {

namespace {

[[nodiscard]] double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// splitmix64 finalizer — decorrelates per-transport dial jitter streams
/// seeded from adjacent shard indices.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// LoopbackTransport

LoopbackTransport::LoopbackTransport(int index,
                                     serve::FrameServiceOptions options)
    : index_(index),
      instance_("shard-" + std::to_string(index)),
      options_(options),
      shard_(std::make_shared<Shard>(index, std::move(options))) {}

std::shared_ptr<Shard> LoopbackTransport::shard() {
  std::lock_guard<std::mutex> lock(mutex_);
  return shard_;
}

PendingReply LoopbackTransport::submit(const WireBuffer& frame,
                                       std::optional<double> /*io_budget_s*/) {
  std::shared_ptr<Shard> target;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++submits_;
    if (wedged_) {
      // A wedged in-process shard cannot literally hang a caller (there is
      // no socket to stall on), so it models the observable effect: the
      // request burns its I/O budget and fails with the timeout the socket
      // transport would have raised.
      return PendingReply::failed(
          std::make_exception_ptr(support::TransportTimeoutError(
              instance_ + " is wedged; request timed out")));
    }
    target = shard_;
  }
  return target->submit(frame);
}

bool LoopbackTransport::dead() { return shard()->down(); }

void LoopbackTransport::crash() { shard()->kill(); }

void LoopbackTransport::wedge() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!wedged_) {
    wedged_ = true;
    wedged_since_s_ = steady_now_s();
  }
}

bool LoopbackTransport::respawn() {
  // Build the replacement before swapping so a failed construction leaves
  // the old (dead) shard in place for another attempt.
  auto fresh = std::make_shared<Shard>(index_, options_);
  std::shared_ptr<Shard> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    old = std::exchange(shard_, std::move(fresh));
    wedged_ = false;
  }
  if (old != nullptr) old->stop();
  return true;
}

void LoopbackTransport::shutdown() { shard()->stop(); }

std::size_t LoopbackTransport::queue_depth() { return shard()->queue_depth(); }

std::size_t LoopbackTransport::queue_capacity() {
  return shard()->queue_capacity();
}

double LoopbackTransport::heartbeat_age_ms() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!wedged_) return 0.0;
  return (steady_now_s() - wedged_since_s_) * 1e3;
}

std::vector<trace::MetricFamily> LoopbackTransport::metric_families() {
  return shard()->metric_families();
}

TransportStats LoopbackTransport::stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  TransportStats s;
  s.submits = submits_;
  return s;
}

Shard* LoopbackTransport::loopback_shard() { return shard().get(); }

// ---------------------------------------------------------------------------
// SocketTransport

SocketTransport::SocketTransport(ShardProcessConfig process,
                                 SocketTransportOptions options)
    : index_(process.index),
      instance_("shard-" + std::to_string(process.index)),
      options_(options),
      process_(std::move(process)),
      rtt_(options_.rtt),
      dial_jitter_state_(
          mix_seed(static_cast<std::uint64_t>(process_.config().index))) {
  process_.spawn();  // throws ShardDownError on failure
  last_ack_s_.store(steady_now_s());
  const int threads = std::max(1, options_.io_threads);
  io_threads_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    io_threads_.emplace_back([this] { io_loop(); });
  }
  if (options_.heartbeat_period_s > 0.0) {
    heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
  }
}

SocketTransport::~SocketTransport() { shutdown(); }

double SocketTransport::now_s() const { return steady_now_s(); }

PendingReply SocketTransport::submit(const WireBuffer& frame,
                                     std::optional<double> io_budget_s) {
  if (marked_dead_.load()) {
    STARSIM_THROW(support::ShardDownError,
                  instance_ + " process is down; awaiting respawn");
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submits;
  }
  const double budget = io_budget_s.value_or(options_.io_timeout_s);
  const double deadline_s = now_s() + budget;
  auto payload = std::make_shared<WireBuffer>(frame);
  auto promise = std::make_shared<std::promise<WireBuffer>>();
  std::future<WireBuffer> future = promise->get_future();
  enqueue([this, payload, promise, deadline_s] {
    try {
      promise->set_value(round_trip(*payload, deadline_s));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return PendingReply::wire(std::move(future));
}

void SocketTransport::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (closed_) {
      // Refuse rather than queue into a pool that will never run it — an
      // accepted task must always resolve its promise.
      STARSIM_THROW(support::ShardDownError,
                    instance_ + " transport is shut down");
    }
    tasks_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void SocketTransport::io_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return closed_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // closed and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

FrameSocket SocketTransport::checkout_connection(double deadline_s) {
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (!idle_connections_.empty()) {
      FrameSocket socket = std::move(idle_connections_.back());
      idle_connections_.pop_back();
      return socket;
    }
    if (now_s() < next_dial_s_) {
      // Backoff window still open: a peer that just refused is almost
      // certainly still refusing. Fail fast so a crashed shard costs one
      // dial per window, not one per queued request.
      {
        std::lock_guard<std::mutex> net_lock(net_mutex_);
        ++dial_backoffs_;
      }
      STARSIM_THROW(support::ShardDownError,
                    instance_ + " dial is backing off after a failed connect");
    }
  }
  const double remaining = deadline_s - now_s();
  if (remaining <= 0.0) {
    STARSIM_THROW(support::TransportTimeoutError,
                  instance_ + " connect budget exhausted");
  }
  FrameSocket socket;
  try {
    socket = FrameSocket::connect(
        process_.config().endpoint_spec(),
        std::min(remaining, options_.connect_timeout_s));
  } catch (...) {
    note_dial_failure();
    throw;
  }
  reset_dial_backoff();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.reconnects;
  }
  try {
    handshake(socket, std::min(deadline_s,
                               now_s() + options_.connect_timeout_s));
  } catch (...) {
    std::lock_guard<std::mutex> net_lock(net_mutex_);
    ++handshakes_failed_;
    throw;
  }
  {
    std::lock_guard<std::mutex> net_lock(net_mutex_);
    ++handshakes_ok_;
  }
  return socket;
}

void SocketTransport::handshake(FrameSocket& socket, double deadline_s) {
  Hello hello;
  hello.shard_index = index_;
  hello.token = options_.token;
  const double start = now_s();
  socket.send_frame(encode_hello(hello), deadline_s);
  std::optional<WireBuffer> reply = socket.recv_frame(deadline_s);
  if (!reply.has_value()) {
    STARSIM_THROW(support::ShardDownError,
                  instance_ + " closed the connection during handshake");
  }
  if (reply_is_error(*reply)) {
    (void)decode_reply(*reply);  // rethrows the typed error (HandshakeError)
  }
  const HelloAck ack = decode_hello_ack(*reply);
  if (ack.protocol_version != kWireVersion) {
    STARSIM_THROW(support::HandshakeError,
                  instance_ + " speaks wire version " +
                      std::to_string(ack.protocol_version) + ", expected " +
                      std::to_string(kWireVersion));
  }
  if (ack.shard_index != index_) {
    STARSIM_THROW(support::HandshakeError,
                  instance_ + " endpoint answered as shard " +
                      std::to_string(ack.shard_index) +
                      " — routing table points at the wrong peer");
  }
  // The handshake round trip is the first RTT sample of the connection's
  // life, so RTO-derived budgets are never flying blind on a fresh link.
  rtt_.sample(now_s() - start);
}

void SocketTransport::note_dial_failure() {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  const double widened = dial_backoff_ms_ <= 0.0
                             ? options_.reconnect_backoff_ms
                             : dial_backoff_ms_ * 2.0;
  dial_backoff_ms_ = std::min(widened, options_.reconnect_backoff_max_ms);
  // Deterministic jitter in [0.5, 1.0) of the window: staggers redials
  // across transports (seeded per shard index) without a global RNG.
  dial_jitter_state_ =
      dial_jitter_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
  const double unit =
      static_cast<double>(dial_jitter_state_ >> 11) / 9007199254740992.0;
  next_dial_s_ = now_s() + dial_backoff_ms_ * (0.5 + 0.5 * unit) / 1e3;
}

void SocketTransport::reset_dial_backoff() {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  dial_backoff_ms_ = 0.0;
  next_dial_s_ = 0.0;
}

void SocketTransport::checkin_connection(FrameSocket socket,
                                         std::uint64_t generation) {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  // A connection dialed before a respawn points at a dead peer; drop it.
  if (generation == generation_ && socket.valid()) {
    idle_connections_.push_back(std::move(socket));
  }
}

WireBuffer SocketTransport::round_trip(const WireBuffer& frame,
                                       double deadline_s) {
  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    generation = generation_;
  }
  FrameSocket socket = checkout_connection(deadline_s);
  try {
    socket.send_frame(frame, deadline_s);
    std::optional<WireBuffer> reply = socket.recv_frame(deadline_s);
    if (!reply.has_value()) {
      STARSIM_THROW(support::ShardDownError,
                    instance_ + " closed the connection before replying");
    }
    checkin_connection(std::move(socket), generation);
    return std::move(*reply);
  } catch (const support::TransportTimeoutError&) {
    // The connection's framing is now ambiguous (a late reply could splice
    // into the next request) — never reuse it.
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.transport_timeouts;
    throw;
  }
}

bool SocketTransport::dead() {
  if (marked_dead_.load()) return true;
  std::lock_guard<std::mutex> lock(process_mutex_);
  if (!process_.running()) {
    marked_dead_.store(true);
    return true;
  }
  return false;
}

void SocketTransport::crash() {
  std::lock_guard<std::mutex> lock(process_mutex_);
  process_.kill_now();
  marked_dead_.store(true);
}

void SocketTransport::wedge() {
  std::lock_guard<std::mutex> lock(process_mutex_);
  process_.pause();
}

bool SocketTransport::respawn() {
  std::lock_guard<std::mutex> lock(process_mutex_);
  if (process_.running()) process_.kill_now();
  try {
    process_.spawn();
  } catch (const support::Error&) {
    return false;
  }
  {
    std::lock_guard<std::mutex> conn_lock(conn_mutex_);
    idle_connections_.clear();
    ++generation_;
    // The replacement process is a new latency regime and a fresh peer:
    // stale smoothing would misclamp its RTO, and a backoff window opened
    // against the dead process would delay the first redial.
    dial_backoff_ms_ = 0.0;
    next_dial_s_ = 0.0;
  }
  rtt_.reset();
  last_ack_s_.store(now_s());
  marked_dead_.store(false);
  return true;
}

void SocketTransport::shutdown() {
  stop_heartbeat_.store(true);
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (closed_ && io_threads_.empty()) return;  // already shut down
    closed_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : io_threads_) {
    if (t.joinable()) t.join();
  }
  io_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    idle_connections_.clear();
  }
  std::lock_guard<std::mutex> lock(process_mutex_);
  process_.stop();
}

std::size_t SocketTransport::queue_depth() {
  return static_cast<std::size_t>(acked_queue_depth_.load());
}

std::size_t SocketTransport::queue_capacity() {
  const auto capacity = acked_queue_capacity_.load();
  if (capacity > 0) return static_cast<std::size_t>(capacity);
  // No ack yet: answer the configured capacity so backpressure ratios stay
  // meaningful before the first heartbeat lands.
  return process_.config().queue_capacity;
}

double SocketTransport::heartbeat_age_ms() {
  return std::max(0.0, (now_s() - last_ack_s_.load()) * 1e3);
}

std::vector<trace::MetricFamily> SocketTransport::metric_families() {
  if (marked_dead_.load()) return {};
  try {
    const WireBuffer reply = round_trip(
        encode_stats_request(), now_s() + options_.heartbeat_timeout_s);
    return decode_stats_reply(reply);
  } catch (const std::exception&) {
    return {};  // unreachable mid-scrape: contribute nothing this round
  }
}

TransportStats SocketTransport::stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void SocketTransport::heartbeat_loop() {
  const auto slice = std::chrono::milliseconds(20);
  double next_beat_s = now_s();
  while (!stop_heartbeat_.load()) {
    if (now_s() < next_beat_s) {
      std::this_thread::sleep_for(slice);
      continue;
    }
    next_beat_s = now_s() + options_.heartbeat_period_s;
    if (marked_dead_.load()) continue;  // nothing to ping until respawn
    const Heartbeat beat{heartbeat_seq_.fetch_add(1) + 1};
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.heartbeats_sent;
    }
    // RTO-adaptive budget: a loopback-fast link times out in milliseconds
    // (partitions surface quickly), a slow link earns proportionate slack.
    // Clamped to [heartbeat_period_s, heartbeat_timeout_s] so one beat can
    // never overlap the next, and the configured ceiling still binds.
    const double budget =
        std::min(options_.heartbeat_timeout_s,
                 std::max(rtt_.rto_s(), options_.heartbeat_period_s));
    const double sent_s = now_s();
    try {
      const WireBuffer reply =
          round_trip(encode_heartbeat(beat), sent_s + budget);
      const HeartbeatAck ack = decode_heartbeat_ack(reply);
      const double acked_s = now_s();
      rtt_.sample(acked_s - sent_s);
      acked_queue_depth_.store(ack.queue_depth);
      acked_queue_capacity_.store(ack.queue_capacity);
      last_ack_s_.store(acked_s);
    } catch (const std::exception&) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.heartbeats_missed;
      }
      // A silent miss is how partitions hide: record the measured gap so
      // trace timelines show exactly when liveness went dark and against
      // what RTO it was judged.
      trace::instant(
          "fleet", "heartbeats_missed",
          {{"instance", instance_},
           {"gap_ms", heartbeat_age_ms()},
           {"rto_ms", rtt_.rto_s() * 1e3}});
    }
  }
}

TransportNetStats SocketTransport::net_stats() {
  TransportNetStats net;
  net.srtt_ms = rtt_.srtt_s() * 1e3;
  net.rttvar_ms = rtt_.rttvar_s() * 1e3;
  net.rto_ms = rtt_.rto_s() * 1e3;
  net.rtt_samples = rtt_.samples();
  std::lock_guard<std::mutex> lock(net_mutex_);
  net.handshakes_ok = handshakes_ok_;
  net.handshakes_failed = handshakes_failed_;
  net.dial_backoffs = dial_backoffs_;
  return net;
}

double SocketTransport::partition_after_ms() {
  // Distinct from the hang threshold: several consecutive lost beats plus
  // the path's own RTO worth of slack reads as "the network ate my
  // heartbeats", which warrants routing around — not killing a process
  // that may be healthily rendering on the far side of the partition.
  const double adaptive =
      (options_.partition_beats * options_.heartbeat_period_s +
       4.0 * rtt_.rto_s()) *
      1e3;
  return std::max(options_.partition_floor_ms, adaptive);
}

}  // namespace starsim::fleet
