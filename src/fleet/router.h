// ShardRouter — the fleet front end over N wire-isolated FrameService
// shards.
//
// Scenes are placed by consistent hashing: each shard owns `virtual_nodes`
// points on a 64-bit hash ring and a scene's fingerprint walks the ring to
// its R distinct replicas, so any replica can serve any request for its
// scenes (frames are bit-identical by construction) and adding a shard
// moves only ~1/N of the keyspace. On top of placement sit the four
// robustness mechanisms this module exists for:
//
//   * Hedged requests — after a latency-quantile delay with no reply, the
//     router launches the same request on the next replica; first reply
//     wins, the loser is discarded (its shard still renders, the client
//     never sees it twice). Tames one slow shard's p99.
//   * Replica failover — an error reply walks to the next replica; only
//     when every replica fails does the client see the error. Deadline
//     expiries never fail over (re-rendering cannot un-expire a request).
//   * Health ladder — a sliding-window error-rate breaker quarantines a
//     shard, shadow probes (duplicate requests whose results are
//     discarded) test it while real traffic routes around, and a passing
//     probe reinstates it. The same quarantine -> probe -> reinstate shape
//     as WorkerPool supervision, one level up (docs/resilience.md).
//   * Cross-shard backpressure — per-shard OverloadShedError replies fail
//     over like errors (without tripping the breaker: shed is pressure,
//     not failure), and when every replica's queue sits above the
//     high-watermark the router rejects low-priority work at admission
//     instead of queueing it to be shed later. The router's own bounded
//     queue reuses serve's 3-band priority shedding.
//
// Every request crosses fleet/wire.h both ways, so served frames stay
// bit-identical to direct renders through every hedge and failover path —
// the chaos suite (tests/test_fleet_chaos.cpp) holds the router to that.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fleet/chaos.h"
#include "fleet/shard.h"
#include "fleet/supervisor.h"
#include "fleet/transport.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "support/stats.h"
#include "support/timer.h"

namespace starsim::fleet {

struct FleetOptions {
  /// Shard instances; each is a full FrameService built from `shard`.
  int shards = 4;
  /// Replicas per scene (capped at `shards`). 1 disables failover and
  /// hedging — there is nowhere else to go.
  int replicas = 2;
  /// Hash-ring points per shard. More points smooth the keyspace split.
  int virtual_nodes = 16;
  /// Router worker threads draining the admission queue onto shards.
  int router_threads = 2;
  /// Router admission bound (requests queued ahead of shard placement).
  std::size_t router_queue_capacity = 256;
  /// Hedging trigger: < 0 disables hedging, 0 adapts the delay to the
  /// observed `hedge_quantile` fleet latency, > 0 is a fixed delay in ms.
  double hedge_ms = -1.0;
  /// Latency quantile an adaptive hedge waits for before backing up.
  double hedge_quantile = 0.95;
  /// Floor for the adaptive hedge delay, ms (keeps a cold or very fast
  /// fleet from hedging every request).
  double min_hedge_ms = 1.0;
  /// Sliding outcome window per shard feeding the circuit breaker.
  std::size_t breaker_window = 16;
  /// Breaker arms only once the window holds this many outcomes.
  std::size_t breaker_min_samples = 8;
  /// Error rate over the window that trips quarantine.
  double breaker_error_rate = 0.5;
  /// Quarantine dwell before a shadow probe tests the shard, ms.
  double probe_after_ms = 25.0;
  /// Backpressure high-watermark: when every replica's shard queue is at
  /// least this full, low-priority requests are rejected at the router.
  double backpressure_ratio = 0.9;
  /// Template for every shard's FrameService (workers, queue, cache,
  /// fault injection...). Fault-policy seeds are decorrelated per shard.
  serve::FrameServiceOptions shard{};
  /// Chaos hook: make this shard's workers sleep `straggler_ms` per render
  /// (the slow replica hedging exists to beat). -1 disables.
  int straggler_shard = -1;
  double straggler_ms = 25.0;

  // Process shards (fleet stage 2) ----------------------------------------
  /// true runs every shard as a starsim_shardd process behind a
  /// Unix-domain-socket transport; false keeps the in-process loopback.
  /// Both transports walk the same health + supervision ladder.
  bool process_shards = false;
  /// Path to the starsim_shardd binary (required when process_shards).
  std::string shardd_path;
  /// Directory for shard socket files (required when process_shards).
  std::string socket_dir;
  /// Socket-transport tuning (I/O budgets, heartbeat cadence).
  SocketTransportOptions transport{};
  /// Run the crash/hang supervision ladder (respawn + reinstate). Off,
  /// a dead shard stays kDown — PR 6 behaviour.
  bool supervise = false;
  SupervisorOptions supervision{};

  // Network shards (fleet stage 3) ----------------------------------------
  /// true spawns process shards listening on TCP loopback (each shard gets
  /// a kernel-assigned 127.0.0.1 port) instead of Unix sockets. Requires
  /// process_shards.
  bool tcp_shards = false;
  /// Handshake secret for socket shards. Empty defaults from
  /// STARSIM_FLEET_TOKEN at construction; still empty disables auth.
  std::string fleet_token;
  /// Wrap this shard's transport in a deterministic ChaosTransport
  /// (drop/delay/duplicate/reorder/corrupt/partition injection, scripted
  /// via chaos_transport()). -1 disables.
  int chaos_shard = -1;
  ChaosNetOptions net_chaos{};
  /// Hot-scene memory for ring-resize cache warming: the router keeps the
  /// most recent distinct scenes (by fingerprint) and replays them to a
  /// new replica before cutover. 0 disables warming.
  std::size_t hot_scene_capacity = 32;
};

/// Health-ladder position of one shard (docs/resilience.md).
enum class ShardState : int {
  kHealthy = 0,
  kQuarantined = 1,  ///< breaker tripped; real traffic routes around
  kProbing = 2,      ///< shadow probe in flight
  kDown = 3,         ///< dead with no respawn coming; terminal
  kRespawning = 4,   ///< crashed/hung; supervisor is rebuilding it
  kRetired = 5,      ///< removed from the ring deliberately; terminal
  kPartitioned = 6,  ///< alive but unreachable; routed around, NOT respawned
};

[[nodiscard]] std::string_view to_string(ShardState state);

/// Per-shard slice of FleetStats.
struct ShardSnapshot {
  int index = 0;
  ShardState state = ShardState::kHealthy;
  std::size_t queue_depth = 0;
  std::uint64_t routed = 0;   ///< attempts sent to this shard (incl. hedges)
  std::uint64_t errors = 0;   ///< error replies (breaker input)
  std::uint64_t sheds = 0;    ///< OverloadShedError replies
  std::uint64_t quarantines = 0;
  std::uint64_t probes = 0;
  std::uint64_t reinstates = 0;
  std::uint64_t respawns = 0;        ///< successful supervisor respawns
  double heartbeat_age_ms = 0.0;     ///< liveness staleness (socket shards)
};

/// Fleet-level aggregate counters; the router-tier analogue of
/// ServiceStats, including the shed/quarantine/hedge counters the issue
/// wants surfaced as stats rather than logs.
struct FleetStats {
  std::uint64_t submitted = 0;   ///< admitted into the router queue
  std::uint64_t completed = 0;   ///< futures resolved with a frame
  std::uint64_t failed = 0;      ///< futures resolved with an exception
  std::uint64_t rejected = 0;    ///< bounced at router admission
  /// Of `rejected`, low-priority requests refused because every replica
  /// sat above the backpressure high-watermark.
  std::uint64_t backpressure_rejected = 0;
  /// Requests displaced from the router queue by higher-priority
  /// admissions (failed with OverloadShedError; also counted in failed).
  std::uint64_t router_shed = 0;
  /// Deadlines that expired inside the router (also counted in failed).
  std::uint64_t expired_router = 0;
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedges_won = 0;       ///< hedge replied before the primary
  std::uint64_t hedges_discarded = 0; ///< loser replies dropped (dedup)
  std::uint64_t failovers = 0;           ///< replica-to-replica retries
  std::uint64_t failover_successes = 0;  ///< of those, later replica served
  std::uint64_t shard_sheds = 0;  ///< OverloadShedError replies from shards
  std::uint64_t quarantines = 0;
  std::uint64_t probes = 0;
  std::uint64_t reinstates = 0;
  std::uint64_t wire_request_bytes = 0;
  std::uint64_t wire_reply_bytes = 0;
  /// Transport I/O deadline misses observed by the router (a hung shard
  /// burned a request's remaining budget; the request failed over).
  std::uint64_t transport_timeouts = 0;
  // Supervision ladder (summed over shards; see ProcessSupervisor) -------
  std::uint64_t crashes_detected = 0;
  std::uint64_t hangs_detected = 0;
  std::uint64_t respawns_attempted = 0;
  std::uint64_t respawns_succeeded = 0;
  std::uint64_t respawns_exhausted = 0;  ///< shards that ran out of budget
  /// Network partitions the supervisor's partition rung saw (route-around,
  /// no respawn) and how many of those healed.
  std::uint64_t partitions_detected = 0;
  std::uint64_t partitions_healed = 0;
  /// Seconds the most recent successful respawn took, detect-to-ready.
  double last_respawn_s = 0.0;
  // Socket-transport traffic (zero for loopback fleets) ------------------
  std::uint64_t reconnects = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_missed = 0;
  // Dynamic ring ---------------------------------------------------------
  std::uint64_t shards_added = 0;
  std::uint64_t shards_removed = 0;
  std::uint64_t warm_replays = 0;   ///< hot scenes replayed during resizes
  std::uint64_t warm_failures = 0;  ///< of those, replays that failed
  support::TailQuantiles latency;  ///< submit -> delivery, router-side
  double mean_latency_s = 0.0;
  double elapsed_s = 0.0;
  double throughput_rps = 0.0;
  std::vector<ShardSnapshot> shards;

  /// Zero once the fleet has quiesced; anything else is a stuck future.
  [[nodiscard]] std::uint64_t in_flight() const {
    return submitted - completed - failed;
  }
};

class ShardRouter {
 public:
  explicit ShardRouter(FleetOptions options = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Blocking admission (waits for router-queue space). Throws
  /// support::Error once stopped; invalid scenes throw synchronously.
  [[nodiscard]] std::future<serve::RenderResponse> submit(
      serve::RenderRequest request);

  /// Non-blocking admission with the full router-level policy: expired
  /// deadlines fail fast, saturated replicas reject low-priority work
  /// (backpressure), and the bounded router queue sheds lower-priority
  /// work under overload. nullopt = rejected.
  [[nodiscard]] std::optional<std::future<serve::RenderResponse>> try_submit(
      serve::RenderRequest request);

  /// submit + wait.
  [[nodiscard]] serve::RenderResponse render(serve::RenderRequest request);

  /// Stop admission, drain queued requests through the shards, join the
  /// router threads, stop every shard. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] FleetStats stats() const;
  /// One Prometheus exposition for the whole fleet: router-level families
  /// plus every shard's serve families merged name-wise (each family
  /// appears once, samples instance-labeled per shard).
  [[nodiscard]] std::string scrape_metrics() const;
  [[nodiscard]] const FleetOptions& options() const { return options_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] int shard_count() const;

  /// The R distinct replica shards for a scene key, in ring order.
  [[nodiscard]] std::vector<int> replicas_for(std::uint64_t scene_key) const;

  // Dynamic ring -----------------------------------------------------------
  /// Grow the fleet by one shard at runtime. The new shard is built (and,
  /// for process fleets, spawned), warmed with the router's hot scenes
  /// that it will co-own, and only then added to the ring — consistent
  /// hashing guarantees keys move only *onto* the new shard, ~R/(N+1) of
  /// them. Returns the new shard's index.
  int add_shard();
  /// Retire a shard at runtime: hot scenes it owned are replayed to their
  /// new owners, the ring drops its points (keys move only *off* it), its
  /// state becomes kRetired and its transport shuts down gracefully.
  void remove_shard(int index);

  // Chaos / test hooks -----------------------------------------------------
  /// Kill a shard permanently: admission there stops, state becomes kDown,
  /// traffic fails over, the supervisor never respawns it. Admitted work
  /// drains (no stuck futures).
  void kill_shard(int index);
  /// Supervised crash (SIGKILL the process / kill the in-process shard):
  /// the ladder detects it, respawns under budget, and the shadow probe
  /// reinstates — the primary chaos hook for recovery tests.
  void crash_shard(int index);
  /// Wedge a shard without killing it (SIGSTOP / loopback timeout mode):
  /// heartbeats stop, the hang detector fires, the ladder takes over.
  void wedge_shard(int index);
  /// Force a shard into quarantine (as if its breaker tripped).
  void quarantine_shard(int index);
  [[nodiscard]] ShardState shard_state(int index) const;
  /// The in-process Shard behind a loopback slot; throws for socket
  /// transports (use transport(index) for transport-level access).
  [[nodiscard]] Shard& shard(int index);
  /// nullptr when shard `index` is not loopback (per-shard introspection
  /// that callers must guard in process fleets).
  [[nodiscard]] Shard* loopback_shard(int index);
  [[nodiscard]] Transport& transport(int index);
  /// The chaos decorator on shard `index` (scripted partitions, fault
  /// counters); nullptr when that shard is not chaos-wrapped.
  [[nodiscard]] ChaosTransport* chaos_transport(int index);

 private:
  struct RouterTask {
    serve::RenderRequest request;
    std::uint64_t scene_key = 0;
    serve::RequestPriority priority = serve::RequestPriority::kNormal;
    std::chrono::steady_clock::time_point submitted{};
    std::optional<double> deadline_s;
    std::shared_ptr<std::promise<serve::RenderResponse>> promise;
    std::uint64_t flow_id = 0;
  };

  /// Breaker + ladder state for one shard, under health_mutex_.
  struct HealthSlot {
    ShardState state = ShardState::kHealthy;
    std::vector<bool> window;  ///< ring of outcomes, true = success
    std::size_t window_next = 0;
    std::size_t window_count = 0;
    std::chrono::steady_clock::time_point quarantined_at{};
    std::uint64_t routed = 0;
    std::uint64_t errors = 0;
    std::uint64_t sheds = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t probes = 0;
    std::uint64_t reinstates = 0;
  };

  [[nodiscard]] RouterTask make_task(serve::RenderRequest&& request);
  /// Stable pointer to a slot's transport (slots_ is append-only).
  [[nodiscard]] Transport* transport_at(int index) const;
  /// Build one shard's transport (loopback or socket per options).
  [[nodiscard]] std::unique_ptr<Transport> make_transport(int index);
  /// Wrap `built` in a ChaosTransport when `index` is the chaos shard.
  [[nodiscard]] std::unique_ptr<Transport> wrap_chaos(
      int index, std::unique_ptr<Transport> built);
  /// The `virtual_nodes` ring points for shard `index`.
  void append_ring_points(std::vector<std::pair<std::uint64_t, int>>& ring,
                          int index) const;
  /// replicas_for against an explicit ring (resize planning).
  [[nodiscard]] std::vector<int> replicas_in(
      const std::vector<std::pair<std::uint64_t, int>>& ring,
      std::uint64_t scene_key) const;
  /// Remember a scene for ring-resize warming (LRU by fingerprint).
  void note_hot_scene(const RouterTask& task);
  /// Replay hot scenes owned (per `ring`) by `target` onto it; best
  /// effort, counts warm_replays/warm_failures.
  void warm_shard(int target,
                  const std::vector<std::pair<std::uint64_t, int>>& ring);
  /// A submit to `index` just failed with ShardDownError: enter the
  /// supervision ladder (kRespawning) when supervised, else mark kDown.
  void note_unreachable(int index);
  /// Supervisor callbacks (monitor thread).
  void on_shard_unreachable(int index);
  void on_shard_respawned(int index);
  void on_shard_exhausted(int index);
  void on_shard_partitioned(int index);
  void on_shard_partition_healed(int index);
  void run(int worker_index);
  void execute(RouterTask task);
  /// Publish `model` as the probe template and wake the probe thread when
  /// any shard sits in quarantine. Called from execute(); cheap when the
  /// fleet is healthy (one health scan, no copy).
  void maybe_arm_probes(const serve::RenderRequest& model);
  /// Probe-thread body: waits for a template, then shadow-probes due
  /// quarantined shards off the routing path.
  void probe_loop();
  /// Quarantined shards whose dwell elapsed get a shadow probe built from
  /// `model` (deadline stripped, priority lowered, result discarded).
  /// Blocks for the probe renders — probe-thread only.
  void run_due_probes(const serve::RenderRequest& model);
  /// Remaining deadline budget, or nullopt for no deadline; <= 0 means
  /// expired.
  [[nodiscard]] std::optional<double> remaining_deadline(
      const RouterTask& task) const;
  [[nodiscard]] double hedge_delay_ms() const;
  void record_outcome(int shard_index, bool success);
  void record_shed(int shard_index);
  void fail_task(RouterTask& task, std::exception_ptr error,
                 bool count_expired = false, bool count_shed = false);
  void deliver(RouterTask& task, serve::RenderResponse response);
  [[nodiscard]] bool replicas_saturated(
      const std::vector<int>& candidates) const;

  FleetOptions options_;
  support::WallTimer lifetime_;
  /// Shard transports, append-only (retired slots stay, so indices and
  /// element pointers are stable for the router's lifetime).
  mutable std::mutex slots_mutex_;
  std::deque<std::unique_ptr<Transport>> slots_;
  /// Sorted hash ring: (point, shard index). Swapped wholesale on
  /// add_shard/remove_shard under ring_mutex_.
  mutable std::mutex ring_mutex_;
  std::vector<std::pair<std::uint64_t, int>> ring_;
  serve::BoundedQueue<RouterTask> queue_;

  mutable std::mutex health_mutex_;
  std::vector<HealthSlot> health_;

  /// Crash/hang supervision (null when options_.supervise is false).
  std::unique_ptr<ProcessSupervisor> supervisor_;

  /// Hot-scene LRU for ring-resize cache warming: most recent distinct
  /// scenes by fingerprint, request copies ready to replay.
  mutable std::mutex hot_mutex_;
  std::list<std::pair<std::uint64_t, serve::RenderRequest>> hot_scenes_;
  std::unordered_map<
      std::uint64_t,
      std::list<std::pair<std::uint64_t, serve::RenderRequest>>::iterator>
      hot_index_;

  mutable std::mutex stats_mutex_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t backpressure_rejected_ = 0;
  std::uint64_t router_shed_ = 0;
  std::uint64_t expired_router_ = 0;
  std::uint64_t hedges_launched_ = 0;
  std::uint64_t hedges_won_ = 0;
  std::uint64_t hedges_discarded_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t failover_successes_ = 0;
  std::uint64_t shard_sheds_ = 0;
  std::uint64_t wire_request_bytes_ = 0;
  std::uint64_t wire_reply_bytes_ = 0;
  std::uint64_t transport_timeouts_ = 0;
  std::uint64_t shards_added_ = 0;
  std::uint64_t shards_removed_ = 0;
  std::uint64_t warm_replays_ = 0;
  std::uint64_t warm_failures_ = 0;
  std::vector<double> latency_samples_;
  /// Recent latencies in ms feeding the adaptive hedge trigger.
  std::vector<double> hedge_ring_;
  std::size_t hedge_ring_next_ = 0;
  std::size_t hedge_ring_count_ = 0;

  mutable std::mutex stop_mutex_;
  bool stopped_ = false;

  /// Probe template + shutdown flag for the probe thread, under
  /// probe_mutex_. Probes run off the router workers so a slow or sick
  /// shard's probe render never stalls client routing.
  std::mutex probe_mutex_;
  std::condition_variable probe_cv_;
  bool probe_stop_ = false;
  std::optional<serve::RenderRequest> probe_model_;

  // Last members: these threads touch everything above.
  std::thread probe_thread_;
  std::vector<std::thread> threads_;
};

}  // namespace starsim::fleet
