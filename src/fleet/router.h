// ShardRouter — the fleet front end over N wire-isolated FrameService
// shards.
//
// Scenes are placed by consistent hashing: each shard owns `virtual_nodes`
// points on a 64-bit hash ring and a scene's fingerprint walks the ring to
// its R distinct replicas, so any replica can serve any request for its
// scenes (frames are bit-identical by construction) and adding a shard
// moves only ~1/N of the keyspace. On top of placement sit the four
// robustness mechanisms this module exists for:
//
//   * Hedged requests — after a latency-quantile delay with no reply, the
//     router launches the same request on the next replica; first reply
//     wins, the loser is discarded (its shard still renders, the client
//     never sees it twice). Tames one slow shard's p99.
//   * Replica failover — an error reply walks to the next replica; only
//     when every replica fails does the client see the error. Deadline
//     expiries never fail over (re-rendering cannot un-expire a request).
//   * Health ladder — a sliding-window error-rate breaker quarantines a
//     shard, shadow probes (duplicate requests whose results are
//     discarded) test it while real traffic routes around, and a passing
//     probe reinstates it. The same quarantine -> probe -> reinstate shape
//     as WorkerPool supervision, one level up (docs/resilience.md).
//   * Cross-shard backpressure — per-shard OverloadShedError replies fail
//     over like errors (without tripping the breaker: shed is pressure,
//     not failure), and when every replica's queue sits above the
//     high-watermark the router rejects low-priority work at admission
//     instead of queueing it to be shed later. The router's own bounded
//     queue reuses serve's 3-band priority shedding.
//
// Every request crosses fleet/wire.h both ways, so served frames stay
// bit-identical to direct renders through every hedge and failover path —
// the chaos suite (tests/test_fleet_chaos.cpp) holds the router to that.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fleet/shard.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "support/stats.h"
#include "support/timer.h"

namespace starsim::fleet {

struct FleetOptions {
  /// Shard instances; each is a full FrameService built from `shard`.
  int shards = 4;
  /// Replicas per scene (capped at `shards`). 1 disables failover and
  /// hedging — there is nowhere else to go.
  int replicas = 2;
  /// Hash-ring points per shard. More points smooth the keyspace split.
  int virtual_nodes = 16;
  /// Router worker threads draining the admission queue onto shards.
  int router_threads = 2;
  /// Router admission bound (requests queued ahead of shard placement).
  std::size_t router_queue_capacity = 256;
  /// Hedging trigger: < 0 disables hedging, 0 adapts the delay to the
  /// observed `hedge_quantile` fleet latency, > 0 is a fixed delay in ms.
  double hedge_ms = -1.0;
  /// Latency quantile an adaptive hedge waits for before backing up.
  double hedge_quantile = 0.95;
  /// Floor for the adaptive hedge delay, ms (keeps a cold or very fast
  /// fleet from hedging every request).
  double min_hedge_ms = 1.0;
  /// Sliding outcome window per shard feeding the circuit breaker.
  std::size_t breaker_window = 16;
  /// Breaker arms only once the window holds this many outcomes.
  std::size_t breaker_min_samples = 8;
  /// Error rate over the window that trips quarantine.
  double breaker_error_rate = 0.5;
  /// Quarantine dwell before a shadow probe tests the shard, ms.
  double probe_after_ms = 25.0;
  /// Backpressure high-watermark: when every replica's shard queue is at
  /// least this full, low-priority requests are rejected at the router.
  double backpressure_ratio = 0.9;
  /// Template for every shard's FrameService (workers, queue, cache,
  /// fault injection...). Fault-policy seeds are decorrelated per shard.
  serve::FrameServiceOptions shard{};
  /// Chaos hook: make this shard's workers sleep `straggler_ms` per render
  /// (the slow replica hedging exists to beat). -1 disables.
  int straggler_shard = -1;
  double straggler_ms = 25.0;
};

/// Health-ladder position of one shard (docs/resilience.md).
enum class ShardState : int {
  kHealthy = 0,
  kQuarantined = 1,  ///< breaker tripped; real traffic routes around
  kProbing = 2,      ///< shadow probe in flight
  kDown = 3,         ///< killed; terminal
};

[[nodiscard]] std::string_view to_string(ShardState state);

/// Per-shard slice of FleetStats.
struct ShardSnapshot {
  int index = 0;
  ShardState state = ShardState::kHealthy;
  std::size_t queue_depth = 0;
  std::uint64_t routed = 0;   ///< attempts sent to this shard (incl. hedges)
  std::uint64_t errors = 0;   ///< error replies (breaker input)
  std::uint64_t sheds = 0;    ///< OverloadShedError replies
  std::uint64_t quarantines = 0;
  std::uint64_t probes = 0;
  std::uint64_t reinstates = 0;
};

/// Fleet-level aggregate counters; the router-tier analogue of
/// ServiceStats, including the shed/quarantine/hedge counters the issue
/// wants surfaced as stats rather than logs.
struct FleetStats {
  std::uint64_t submitted = 0;   ///< admitted into the router queue
  std::uint64_t completed = 0;   ///< futures resolved with a frame
  std::uint64_t failed = 0;      ///< futures resolved with an exception
  std::uint64_t rejected = 0;    ///< bounced at router admission
  /// Of `rejected`, low-priority requests refused because every replica
  /// sat above the backpressure high-watermark.
  std::uint64_t backpressure_rejected = 0;
  /// Requests displaced from the router queue by higher-priority
  /// admissions (failed with OverloadShedError; also counted in failed).
  std::uint64_t router_shed = 0;
  /// Deadlines that expired inside the router (also counted in failed).
  std::uint64_t expired_router = 0;
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedges_won = 0;       ///< hedge replied before the primary
  std::uint64_t hedges_discarded = 0; ///< loser replies dropped (dedup)
  std::uint64_t failovers = 0;           ///< replica-to-replica retries
  std::uint64_t failover_successes = 0;  ///< of those, later replica served
  std::uint64_t shard_sheds = 0;  ///< OverloadShedError replies from shards
  std::uint64_t quarantines = 0;
  std::uint64_t probes = 0;
  std::uint64_t reinstates = 0;
  std::uint64_t wire_request_bytes = 0;
  std::uint64_t wire_reply_bytes = 0;
  support::TailQuantiles latency;  ///< submit -> delivery, router-side
  double mean_latency_s = 0.0;
  double elapsed_s = 0.0;
  double throughput_rps = 0.0;
  std::vector<ShardSnapshot> shards;

  /// Zero once the fleet has quiesced; anything else is a stuck future.
  [[nodiscard]] std::uint64_t in_flight() const {
    return submitted - completed - failed;
  }
};

class ShardRouter {
 public:
  explicit ShardRouter(FleetOptions options = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Blocking admission (waits for router-queue space). Throws
  /// support::Error once stopped; invalid scenes throw synchronously.
  [[nodiscard]] std::future<serve::RenderResponse> submit(
      serve::RenderRequest request);

  /// Non-blocking admission with the full router-level policy: expired
  /// deadlines fail fast, saturated replicas reject low-priority work
  /// (backpressure), and the bounded router queue sheds lower-priority
  /// work under overload. nullopt = rejected.
  [[nodiscard]] std::optional<std::future<serve::RenderResponse>> try_submit(
      serve::RenderRequest request);

  /// submit + wait.
  [[nodiscard]] serve::RenderResponse render(serve::RenderRequest request);

  /// Stop admission, drain queued requests through the shards, join the
  /// router threads, stop every shard. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] FleetStats stats() const;
  /// One Prometheus exposition for the whole fleet: router-level families
  /// plus every shard's serve families merged name-wise (each family
  /// appears once, samples instance-labeled per shard).
  [[nodiscard]] std::string scrape_metrics() const;
  [[nodiscard]] const FleetOptions& options() const { return options_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] int shard_count() const {
    return static_cast<int>(shards_.size());
  }

  /// The R distinct replica shards for a scene key, in ring order.
  [[nodiscard]] std::vector<int> replicas_for(std::uint64_t scene_key) const;

  // Chaos / test hooks -----------------------------------------------------
  /// Kill a shard: admission there stops, state becomes kDown, traffic
  /// fails over. Admitted work drains (no stuck futures).
  void kill_shard(int index);
  /// Force a shard into quarantine (as if its breaker tripped).
  void quarantine_shard(int index);
  [[nodiscard]] ShardState shard_state(int index) const;
  [[nodiscard]] Shard& shard(int index) {
    return *shards_.at(static_cast<std::size_t>(index));
  }

 private:
  struct RouterTask {
    serve::RenderRequest request;
    std::uint64_t scene_key = 0;
    serve::RequestPriority priority = serve::RequestPriority::kNormal;
    std::chrono::steady_clock::time_point submitted{};
    std::optional<double> deadline_s;
    std::shared_ptr<std::promise<serve::RenderResponse>> promise;
    std::uint64_t flow_id = 0;
  };

  /// Breaker + ladder state for one shard, under health_mutex_.
  struct HealthSlot {
    ShardState state = ShardState::kHealthy;
    std::vector<bool> window;  ///< ring of outcomes, true = success
    std::size_t window_next = 0;
    std::size_t window_count = 0;
    std::chrono::steady_clock::time_point quarantined_at{};
    std::uint64_t routed = 0;
    std::uint64_t errors = 0;
    std::uint64_t sheds = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t probes = 0;
    std::uint64_t reinstates = 0;
  };

  [[nodiscard]] RouterTask make_task(serve::RenderRequest&& request);
  void run(int worker_index);
  void execute(RouterTask task);
  /// Publish `model` as the probe template and wake the probe thread when
  /// any shard sits in quarantine. Called from execute(); cheap when the
  /// fleet is healthy (one health scan, no copy).
  void maybe_arm_probes(const serve::RenderRequest& model);
  /// Probe-thread body: waits for a template, then shadow-probes due
  /// quarantined shards off the routing path.
  void probe_loop();
  /// Quarantined shards whose dwell elapsed get a shadow probe built from
  /// `model` (deadline stripped, priority lowered, result discarded).
  /// Blocks for the probe renders — probe-thread only.
  void run_due_probes(const serve::RenderRequest& model);
  /// Remaining deadline budget, or nullopt for no deadline; <= 0 means
  /// expired.
  [[nodiscard]] std::optional<double> remaining_deadline(
      const RouterTask& task) const;
  [[nodiscard]] double hedge_delay_ms() const;
  void record_outcome(int shard_index, bool success);
  void record_shed(int shard_index);
  void fail_task(RouterTask& task, std::exception_ptr error,
                 bool count_expired = false, bool count_shed = false);
  void deliver(RouterTask& task, serve::RenderResponse response);
  [[nodiscard]] bool replicas_saturated(
      const std::vector<int>& candidates) const;

  FleetOptions options_;
  support::WallTimer lifetime_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Sorted hash ring: (point, shard index).
  std::vector<std::pair<std::uint64_t, int>> ring_;
  serve::BoundedQueue<RouterTask> queue_;

  mutable std::mutex health_mutex_;
  std::vector<HealthSlot> health_;

  mutable std::mutex stats_mutex_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t backpressure_rejected_ = 0;
  std::uint64_t router_shed_ = 0;
  std::uint64_t expired_router_ = 0;
  std::uint64_t hedges_launched_ = 0;
  std::uint64_t hedges_won_ = 0;
  std::uint64_t hedges_discarded_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t failover_successes_ = 0;
  std::uint64_t shard_sheds_ = 0;
  std::uint64_t wire_request_bytes_ = 0;
  std::uint64_t wire_reply_bytes_ = 0;
  std::vector<double> latency_samples_;
  /// Recent latencies in ms feeding the adaptive hedge trigger.
  std::vector<double> hedge_ring_;
  std::size_t hedge_ring_next_ = 0;
  std::size_t hedge_ring_count_ = 0;

  mutable std::mutex stop_mutex_;
  bool stopped_ = false;

  /// Probe template + shutdown flag for the probe thread, under
  /// probe_mutex_. Probes run off the router workers so a slow or sick
  /// shard's probe render never stalls client routing.
  std::mutex probe_mutex_;
  std::condition_variable probe_cv_;
  bool probe_stop_ = false;
  std::optional<serve::RenderRequest> probe_model_;

  // Last members: these threads touch everything above.
  std::thread probe_thread_;
  std::vector<std::thread> threads_;
};

}  // namespace starsim::fleet
