#include "fleet/rtt.h"

#include <algorithm>
#include <cmath>

namespace starsim::fleet {

void RttEstimator::sample(double rtt_s) {
  if (!(rtt_s > 0.0)) return;  // rejects negatives and NaN in one test
  const std::lock_guard<std::mutex> lock(mutex_);
  if (samples_ == 0) {
    srtt_s_ = rtt_s;
    rttvar_s_ = rtt_s / 2.0;
  } else {
    rttvar_s_ = (1.0 - options_.beta) * rttvar_s_ +
                options_.beta * std::abs(srtt_s_ - rtt_s);
    srtt_s_ = (1.0 - options_.alpha) * srtt_s_ + options_.alpha * rtt_s;
  }
  ++samples_;
}

void RttEstimator::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  srtt_s_ = 0.0;
  rttvar_s_ = 0.0;
  samples_ = 0;
}

double RttEstimator::srtt_s() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return srtt_s_;
}

double RttEstimator::rttvar_s() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rttvar_s_;
}

double RttEstimator::rto_s() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rto_locked();
}

double RttEstimator::rto_locked() const {
  if (samples_ == 0) return options_.initial_rto_s;
  return std::clamp(srtt_s_ + 4.0 * rttvar_s_, options_.rto_floor_s,
                    options_.rto_ceiling_s);
}

std::uint64_t RttEstimator::samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

}  // namespace starsim::fleet
