// ShardHost — one FrameService served over a Unix-domain socket: the
// in-process core of the `starsim_shardd` binary.
//
// The host owns a FrameListener and accepts connections from the router's
// socket transport. Each connection is one in-flight slot: the transport
// sends a single request frame and waits for its reply before reusing the
// connection, so the per-connection loop is strictly serial — recv frame,
// dispatch by kind, send reply. Requests render through the ordinary
// FrameService pipeline (admission, batching, cache, resilience), and any
// failure travels back as the typed error frame wire.h defines — the
// router-side catch clauses cannot tell this host from the in-process
// loopback shard.
//
// Heartbeat frames answer with a load snapshot (queue depth/capacity,
// completed count) — the cross-process replacement for the direct
// queue_depth() calls the loopback transport can make. Stats frames
// serialize the service's instance-labeled metric families so the fleet
// exposition merges process shards exactly like in-process ones.
//
// The class is embeddable (tests run hosts in-process on threads); the
// shardd main() adds flag parsing and signal-driven shutdown on top.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fleet/socket.h"
#include "serve/service.h"

namespace starsim::fleet {

struct ShardHostOptions {
  /// Unix-domain socket path to listen on. May also carry a full endpoint
  /// spec ("unix:/path" | "tcp:host:port"); `listen` wins when both are
  /// set.
  std::string socket_path;
  /// Endpoint spec to listen on ("unix:/path" | "tcp:host:port"). Takes
  /// precedence over socket_path; tcp:host:0 asks the kernel for a port,
  /// reported back through bound_endpoint().
  std::string listen;
  /// Shared handshake secret. Empty disables auth (every greeting and
  /// ungreeted request is accepted — the pre-handshake wire contract, so
  /// raw FrameSocket tests and old dialers keep working). Non-empty makes
  /// the kHello greeting mandatory: any other frame on an ungreeted
  /// connection answers a HandshakeError frame.
  std::string token;
  /// Shard index, used for the "shard-N" instance label on metrics.
  int index = 0;
  /// The wrapped FrameService's configuration.
  serve::FrameServiceOptions service{};
  /// Accept-loop poll period: how quickly run() notices request_stop().
  double accept_poll_s = 0.05;
  /// Per-connection idle poll period (waiting for the next frame).
  double idle_poll_s = 0.05;
  /// Budget for one mid-frame transfer (a frame that started arriving or
  /// departing must finish within this, or the connection is dropped).
  double frame_timeout_s = 30.0;
};

class ShardHost {
 public:
  explicit ShardHost(ShardHostOptions options);
  ~ShardHost();

  ShardHost(const ShardHost&) = delete;
  ShardHost& operator=(const ShardHost&) = delete;

  /// Bind the socket and serve until request_stop(). Blocking — the shardd
  /// main calls this on its main thread; tests run it on a worker thread.
  void run();

  /// Ask run() to return: stop accepting, drain admitted work through the
  /// service, join connection threads. Safe from any thread (and from a
  /// signal handler: it only stores an atomic).
  void request_stop() { stop_.store(true); }

  [[nodiscard]] bool stopping() const { return stop_.load(); }
  /// Instance label on this host's metric samples ("shard-N").
  [[nodiscard]] const std::string& instance() const { return instance_; }
  /// Requests served so far (the heartbeat progress signal).
  [[nodiscard]] std::uint64_t completed() const;

  /// The endpoint run() actually bound, once listening — for TCP with a
  /// requested port of 0 this carries the kernel-assigned port (tests bind
  /// tcp:127.0.0.1:0 on a thread and poll here for the real address).
  /// std::nullopt until run() has bound.
  [[nodiscard]] std::optional<Endpoint> bound_endpoint() const;

 private:
  /// Serial frame loop for one accepted connection.
  void serve_connection(FrameSocket socket);

  /// Dispatch one received frame to its handler; returns the reply frame.
  /// `greeted` is the connection's handshake state: set by a valid kHello,
  /// consulted when a token is configured.
  [[nodiscard]] WireBuffer handle_frame(const WireBuffer& frame,
                                        bool& greeted);

  ShardHostOptions options_;
  std::string instance_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> heartbeats_{0};
  std::unique_ptr<serve::FrameService> service_;
  std::vector<std::thread> connections_;

  mutable std::mutex bound_mutex_;
  std::optional<Endpoint> bound_;
};

}  // namespace starsim::fleet
