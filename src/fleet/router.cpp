#include "fleet/router.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <span>
#include <utility>

#include "serve/fingerprint.h"
#include "support/error.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace starsim::fleet {

namespace {

/// splitmix64 — the standard 64-bit finalizer; scatters shard/vnode ids and
/// scene fingerprints uniformly over the ring.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::size_t band_of(serve::RequestPriority priority) {
  return static_cast<std::size_t>(priority);
}

constexpr auto kHedgePollSlice = std::chrono::microseconds(200);
/// Adaptive hedge delay before enough latency samples exist, ms.
constexpr double kColdHedgeMs = 5.0;
constexpr std::size_t kMinHedgeSamples = 8;
constexpr std::size_t kHedgeRingSize = 512;
constexpr std::size_t kLatencySampleCap = 1u << 20;

}  // namespace

std::string_view to_string(ShardState state) {
  switch (state) {
    case ShardState::kHealthy:
      return "healthy";
    case ShardState::kQuarantined:
      return "quarantined";
    case ShardState::kProbing:
      return "probing";
    case ShardState::kDown:
      return "down";
    case ShardState::kRespawning:
      return "respawning";
    case ShardState::kRetired:
      return "retired";
    case ShardState::kPartitioned:
      return "partitioned";
  }
  return "unknown";
}

namespace {

/// States a request must never be routed to. A partitioned shard is alive
/// but its frames don't arrive — routing to it only burns deadlines.
[[nodiscard]] bool unroutable(ShardState state) {
  return state == ShardState::kDown || state == ShardState::kRespawning ||
         state == ShardState::kRetired || state == ShardState::kPartitioned;
}

/// Bind port 0 on loopback, read back the kernel's choice, release it.
/// There is a small window in which another process could grab the port
/// before the shardd child binds it; spawn() fails cleanly if so, and the
/// supervisor's respawn picks a fresh port via the same path.
[[nodiscard]] std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  STARSIM_REQUIRE(fd >= 0, "socket() for port probe failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    STARSIM_THROW(support::IoError, "bind() for port probe failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    STARSIM_THROW(support::IoError, "getsockname() for port probe failed");
  }
  ::close(fd);
  return ntohs(addr.sin_port);
}

}  // namespace

std::unique_ptr<Transport> ShardRouter::make_transport(int index) {
  serve::FrameServiceOptions shard_options = options_.shard;
  if (shard_options.worker.fault_policy.has_value()) {
    // Decorrelate injected faults across shards the same way WorkerPool
    // decorrelates them across workers — correlated chaos would fault
    // every replica of a scene at once and defeat failover.
    shard_options.worker.fault_policy->seed =
        mix64(shard_options.worker.fault_policy->seed +
              static_cast<std::uint64_t>(index));
  }
  if (index == options_.straggler_shard) {
    shard_options.worker.debug_straggler_ms = options_.straggler_ms;
  }
  std::unique_ptr<Transport> built;
  if (!options_.process_shards) {
    built = std::make_unique<LoopbackTransport>(index,
                                                std::move(shard_options));
    return wrap_chaos(index, std::move(built));
  }
  STARSIM_REQUIRE(!options_.shardd_path.empty(),
                  "process shards need a shardd binary path");
  STARSIM_REQUIRE(options_.tcp_shards || !options_.socket_dir.empty(),
                  "process shards need a socket directory");
  ShardProcessConfig config;
  config.shardd_path = options_.shardd_path;
  if (options_.tcp_shards) {
    config.endpoint =
        "tcp:127.0.0.1:" + std::to_string(pick_free_port());
  } else {
    config.socket_path =
        options_.socket_dir + "/shard-" + std::to_string(index) + ".sock";
  }
  config.index = index;
  config.workers = shard_options.workers;
  config.queue_capacity = shard_options.queue_capacity;
  config.max_batch_size = shard_options.max_batch_size;
  config.cache_capacity = shard_options.cache_capacity;
  if (shard_options.worker.fault_policy.has_value()) {
    // FaultPolicy::chaos shape: one transient rate across sites plus a
    // device-lost escalation — the same knobs serve-bench drives.
    const auto& policy = *shard_options.worker.fault_policy;
    config.inject_faults = true;
    config.fault_rate = policy.h2d_fault_rate;
    config.lost_rate = policy.device_lost_rate;
    config.fault_seed = policy.seed;
  }
  config.straggler_ms = shard_options.worker.debug_straggler_ms;
  SocketTransportOptions transport_options = options_.transport;
  if (transport_options.token.empty()) {
    // The token rides the environment into the shardd child (never argv —
    // `ps` must not leak it); the dial-side handshake presents the same
    // secret, so router and shard agree by construction.
    transport_options.token = options_.fleet_token;
  }
  built = std::make_unique<SocketTransport>(std::move(config),
                                            std::move(transport_options));
  return wrap_chaos(index, std::move(built));
}

std::unique_ptr<Transport> ShardRouter::wrap_chaos(
    int index, std::unique_ptr<Transport> built) {
  if (index != options_.chaos_shard) return built;
  return std::make_unique<ChaosTransport>(std::move(built),
                                          options_.net_chaos);
}

ChaosTransport* ShardRouter::chaos_transport(int index) {
  return dynamic_cast<ChaosTransport*>(transport_at(index));
}

void ShardRouter::append_ring_points(
    std::vector<std::pair<std::uint64_t, int>>& ring, int index) const {
  for (int v = 0; v < options_.virtual_nodes; ++v) {
    const std::uint64_t id = (static_cast<std::uint64_t>(index) << 32) |
                             static_cast<std::uint64_t>(v);
    ring.emplace_back(mix64(id), index);
  }
}

ShardRouter::ShardRouter(FleetOptions options)
    : options_(std::move(options)),
      queue_(options_.router_queue_capacity, serve::kPriorityClasses) {
  STARSIM_REQUIRE(options_.shards > 0, "fleet needs at least one shard");
  STARSIM_REQUIRE(options_.replicas > 0, "fleet needs at least one replica");
  STARSIM_REQUIRE(options_.virtual_nodes > 0,
                  "consistent hashing needs ring points");
  STARSIM_REQUIRE(options_.router_threads > 0,
                  "router needs at least one thread");
  // A worker-less shard would never resolve replies, leaving router threads
  // blocked in wait loops that stop() can never join.
  STARSIM_REQUIRE(options_.shard.workers > 0,
                  "shards need at least one worker");
  options_.replicas = std::min(options_.replicas, options_.shards);
  STARSIM_REQUIRE(!options_.tcp_shards || options_.process_shards,
                  "tcp_shards requires process_shards");
  if (options_.fleet_token.empty()) {
    if (const char* token = std::getenv("STARSIM_FLEET_TOKEN");
        token != nullptr) {
      options_.fleet_token = token;
    }
  }

  for (int s = 0; s < options_.shards; ++s) {
    slots_.push_back(make_transport(s));
  }

  ring_.reserve(static_cast<std::size_t>(options_.shards) *
                static_cast<std::size_t>(options_.virtual_nodes));
  for (int s = 0; s < options_.shards; ++s) append_ring_points(ring_, s);
  std::sort(ring_.begin(), ring_.end());

  health_.resize(static_cast<std::size_t>(options_.shards));
  for (HealthSlot& slot : health_) {
    slot.window.assign(std::max<std::size_t>(options_.breaker_window, 1),
                       true);
  }
  hedge_ring_.assign(kHedgeRingSize, 0.0);

  if (options_.supervise) {
    SupervisorEvents events;
    events.on_unreachable = [this](int s) { on_shard_unreachable(s); };
    events.on_respawned = [this](int s) { on_shard_respawned(s); };
    events.on_exhausted = [this](int s) { on_shard_exhausted(s); };
    events.on_partitioned = [this](int s) { on_shard_partitioned(s); };
    events.on_partition_healed = [this](int s) {
      on_shard_partition_healed(s);
    };
    supervisor_ = std::make_unique<ProcessSupervisor>(options_.supervision,
                                                      std::move(events));
    for (int s = 0; s < options_.shards; ++s) {
      supervisor_->watch(s, transport_at(s));
    }
    supervisor_->start();
  }

  probe_thread_ = std::thread(&ShardRouter::probe_loop, this);
  threads_.reserve(static_cast<std::size_t>(options_.router_threads));
  for (int i = 0; i < options_.router_threads; ++i) {
    threads_.emplace_back(&ShardRouter::run, this, i);
  }
}

ShardRouter::~ShardRouter() { stop(); }

Transport* ShardRouter::transport_at(int index) const {
  const std::lock_guard<std::mutex> lock(slots_mutex_);
  return slots_.at(static_cast<std::size_t>(index)).get();
}

int ShardRouter::shard_count() const {
  const std::lock_guard<std::mutex> lock(slots_mutex_);
  return static_cast<int>(slots_.size());
}

Transport& ShardRouter::transport(int index) { return *transport_at(index); }

Shard* ShardRouter::loopback_shard(int index) {
  return transport_at(index)->loopback_shard();
}

Shard& ShardRouter::shard(int index) {
  Shard* shard = loopback_shard(index);
  STARSIM_REQUIRE(shard != nullptr,
                  "shard(index) is loopback-only; socket transports have no "
                  "in-process Shard");
  return *shard;
}

std::vector<int> ShardRouter::replicas_in(
    const std::vector<std::pair<std::uint64_t, int>>& ring,
    std::uint64_t scene_key) const {
  std::vector<int> replicas;
  replicas.reserve(static_cast<std::size_t>(options_.replicas));
  const std::uint64_t point = mix64(scene_key);
  auto it = std::lower_bound(
      ring.begin(), ring.end(), point,
      [](const std::pair<std::uint64_t, int>& node, std::uint64_t key) {
        return node.first < key;
      });
  for (std::size_t walked = 0;
       walked < ring.size() &&
       replicas.size() < static_cast<std::size_t>(options_.replicas);
       ++walked, ++it) {
    if (it == ring.end()) it = ring.begin();
    if (std::find(replicas.begin(), replicas.end(), it->second) ==
        replicas.end()) {
      replicas.push_back(it->second);
    }
  }
  return replicas;
}

std::vector<int> ShardRouter::replicas_for(std::uint64_t scene_key) const {
  const std::lock_guard<std::mutex> lock(ring_mutex_);
  return replicas_in(ring_, scene_key);
}

ShardRouter::RouterTask ShardRouter::make_task(serve::RenderRequest&& request) {
  request.scene.validate();
  RouterTask task;
  task.scene_key = serve::fingerprint_scene(request.scene);
  task.priority = request.priority;
  task.deadline_s = request.deadline_s;
  task.submitted = std::chrono::steady_clock::now();
  task.promise = std::make_shared<std::promise<serve::RenderResponse>>();
  task.flow_id = trace::TraceRecorder::instance().next_flow_id();
  task.request = std::move(request);
  note_hot_scene(task);
  trace::flow(trace::Phase::kFlowStart, "fleet", "request", task.flow_id);
  return task;
}

void ShardRouter::note_hot_scene(const RouterTask& task) {
  if (options_.hot_scene_capacity == 0) return;
  const std::lock_guard<std::mutex> lock(hot_mutex_);
  const auto it = hot_index_.find(task.scene_key);
  if (it != hot_index_.end()) {
    // Known scene: refresh recency without copying the star list.
    hot_scenes_.splice(hot_scenes_.begin(), hot_scenes_, it->second);
    return;
  }
  hot_scenes_.emplace_front(task.scene_key, task.request);
  hot_index_[task.scene_key] = hot_scenes_.begin();
  while (hot_scenes_.size() > options_.hot_scene_capacity) {
    hot_index_.erase(hot_scenes_.back().first);
    hot_scenes_.pop_back();
  }
}

std::future<serve::RenderResponse> ShardRouter::submit(
    serve::RenderRequest request) {
  RouterTask task = make_task(std::move(request));
  std::future<serve::RenderResponse> future = task.promise->get_future();
  if (task.deadline_s.has_value() && *task.deadline_s <= 0.0) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      submitted_ += 1;
    }
    fail_task(task,
              std::make_exception_ptr(support::DeadlineExceededError(
                  "deadline expired before fleet admission")),
              /*count_expired=*/true);
    return future;
  }
  const std::size_t band = band_of(task.priority);
  // Account before the push: a router worker may complete the task before
  // this thread resumes, and in_flight() must never read negative.
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    submitted_ += 1;
  }
  if (!queue_.push(std::move(task), band)) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    submitted_ -= 1;
    STARSIM_THROW(support::Error, "fleet router is stopped");
  }
  return future;
}

std::optional<std::future<serve::RenderResponse>> ShardRouter::try_submit(
    serve::RenderRequest request) {
  RouterTask task = make_task(std::move(request));
  std::future<serve::RenderResponse> future = task.promise->get_future();
  if (task.deadline_s.has_value() && *task.deadline_s <= 0.0) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      submitted_ += 1;
    }
    fail_task(task,
              std::make_exception_ptr(support::DeadlineExceededError(
                  "deadline expired before fleet admission")),
              /*count_expired=*/true);
    return future;
  }
  // Cross-shard backpressure: when every live replica of this scene sits
  // above the high-watermark, shedding low-priority work at the door beats
  // queueing it to be displaced (or to expire) later.
  if (task.priority == serve::RequestPriority::kLow &&
      replicas_saturated(replicas_for(task.scene_key))) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      rejected_ += 1;
      backpressure_rejected_ += 1;
    }
    trace::flow(trace::Phase::kFlowEnd, "fleet", "request", task.flow_id);
    return std::nullopt;
  }
  const std::size_t band = band_of(task.priority);
  // Account before the push: a router worker may complete the task before
  // this thread resumes, and in_flight() must never read negative.
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    submitted_ += 1;
  }
  std::optional<RouterTask> displaced;
  const auto outcome = queue_.try_push_shedding(task, band, displaced);
  switch (outcome) {
    case serve::BoundedQueue<RouterTask>::PushOutcome::kRejected: {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      submitted_ -= 1;
      rejected_ += 1;
      return std::nullopt;
    }
    case serve::BoundedQueue<RouterTask>::PushOutcome::kDisplaced:
      fail_task(*displaced,
                std::make_exception_ptr(support::OverloadShedError(
                    "displaced from the fleet router queue by "
                    "higher-priority work")),
                /*count_expired=*/false, /*count_shed=*/true);
      return future;
    case serve::BoundedQueue<RouterTask>::PushOutcome::kAccepted:
      return future;
  }
  return future;
}

serve::RenderResponse ShardRouter::render(serve::RenderRequest request) {
  return submit(std::move(request)).get();
}

bool ShardRouter::replicas_saturated(
    const std::vector<int>& candidates) const {
  bool any_live = false;
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    for (const int s : candidates) {
      const HealthSlot& slot = health_[static_cast<std::size_t>(s)];
      if (unroutable(slot.state)) continue;
      any_live = true;
      Transport* transport = transport_at(s);
      const double watermark =
          options_.backpressure_ratio *
          static_cast<double>(transport->queue_capacity());
      if (static_cast<double>(transport->queue_depth()) < watermark) {
        return false;
      }
    }
  }
  // No live replica at all is a routing failure, not backpressure — let
  // the execute path account it as ShardDownError.
  return any_live;
}

std::optional<double> ShardRouter::remaining_deadline(
    const RouterTask& task) const {
  if (!task.deadline_s.has_value()) return std::nullopt;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    task.submitted)
          .count();
  return *task.deadline_s - elapsed;
}

double ShardRouter::hedge_delay_ms() const {
  if (options_.hedge_ms > 0.0) return options_.hedge_ms;
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  if (hedge_ring_count_ < kMinHedgeSamples) {
    return std::max(kColdHedgeMs, options_.min_hedge_ms);
  }
  const std::span<const double> window(hedge_ring_.data(), hedge_ring_count_);
  return std::max(support::quantile(window, options_.hedge_quantile),
                  options_.min_hedge_ms);
}

void ShardRouter::record_outcome(int shard_index, bool success) {
  bool quarantined = false;
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    HealthSlot& slot = health_[static_cast<std::size_t>(shard_index)];
    // A down shard's ladder state is frozen, counters included — late
    // replies from a killed shard must not skew its error snapshot.
    if (slot.state == ShardState::kDown) return;
    if (!success) slot.errors += 1;
    slot.window[slot.window_next] = success;
    slot.window_next = (slot.window_next + 1) % slot.window.size();
    slot.window_count = std::min(slot.window_count + 1, slot.window.size());
    if (slot.state == ShardState::kHealthy &&
        slot.window_count >= options_.breaker_min_samples) {
      std::size_t errors = 0;
      for (std::size_t i = 0; i < slot.window_count; ++i) {
        if (!slot.window[i]) errors += 1;
      }
      const double rate = static_cast<double>(errors) /
                          static_cast<double>(slot.window_count);
      if (rate >= options_.breaker_error_rate) {
        slot.state = ShardState::kQuarantined;
        slot.quarantined_at = std::chrono::steady_clock::now();
        slot.quarantines += 1;
        quarantined = true;
      }
    }
  }
  if (quarantined) {
    trace::instant("fleet", "shard_quarantined");
  }
}

void ShardRouter::record_shed(int shard_index) {
  const std::lock_guard<std::mutex> lock(health_mutex_);
  health_[static_cast<std::size_t>(shard_index)].sheds += 1;
}

void ShardRouter::fail_task(RouterTask& task, std::exception_ptr error,
                            bool count_expired, bool count_shed) {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    failed_ += 1;
    if (count_expired) expired_router_ += 1;
    if (count_shed) router_shed_ += 1;
  }
  trace::flow(trace::Phase::kFlowEnd, "fleet", "request", task.flow_id);
  task.promise->set_exception(std::move(error));
}

void ShardRouter::deliver(RouterTask& task, serve::RenderResponse response) {
  const double latency_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    task.submitted)
          .count();
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    completed_ += 1;
    if (latency_samples_.size() < kLatencySampleCap) {
      latency_samples_.push_back(latency_s);
    }
    hedge_ring_[hedge_ring_next_] = latency_s * 1000.0;
    hedge_ring_next_ = (hedge_ring_next_ + 1) % hedge_ring_.size();
    hedge_ring_count_ = std::min(hedge_ring_count_ + 1, hedge_ring_.size());
  }
  trace::flow(trace::Phase::kFlowEnd, "fleet", "request", task.flow_id);
  task.promise->set_value(std::move(response));
}

void ShardRouter::run(int worker_index) {
  trace::TraceRecorder::instance().set_thread_name(
      "router-" + std::to_string(worker_index));
  for (;;) {
    std::optional<RouterTask> task = queue_.pop();
    if (!task.has_value()) return;  // closed and drained
    execute(std::move(*task));
  }
}

void ShardRouter::maybe_arm_probes(const serve::RenderRequest& model) {
  bool any_sick = false;
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    for (const HealthSlot& slot : health_) {
      // A probing shard still wants fresh templates: its current probe may
      // have been built from traffic that fails for reasons of its own.
      if (slot.state == ShardState::kQuarantined ||
          slot.state == ShardState::kProbing) {
        any_sick = true;
        break;
      }
    }
  }
  if (!any_sick) return;
  {
    const std::lock_guard<std::mutex> lock(probe_mutex_);
    probe_model_ = model;
  }
  probe_cv_.notify_one();
}

void ShardRouter::probe_loop() {
  trace::TraceRecorder::instance().set_thread_name("router-probe");
  // Wake at half the quarantine dwell so an elapsed dwell is noticed
  // promptly; the floor keeps a tiny dwell from busy-spinning.
  const auto wake = std::chrono::duration<double, std::milli>(
      std::max(options_.probe_after_ms * 0.5, 0.25));
  std::unique_lock<std::mutex> lock(probe_mutex_);
  for (;;) {
    probe_cv_.wait_for(lock, wake);
    if (probe_stop_) return;
    if (!probe_model_.has_value()) continue;
    const serve::RenderRequest model = *probe_model_;
    lock.unlock();
    run_due_probes(model);
    lock.lock();
  }
}

void ShardRouter::run_due_probes(const serve::RenderRequest& model) {
  std::vector<int> due;
  const auto now = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    for (std::size_t s = 0; s < health_.size(); ++s) {
      HealthSlot& slot = health_[s];
      if (slot.state != ShardState::kQuarantined) continue;
      const double dwell_ms =
          std::chrono::duration<double, std::milli>(now - slot.quarantined_at)
              .count();
      if (dwell_ms < options_.probe_after_ms) continue;
      slot.state = ShardState::kProbing;
      slot.probes += 1;
      due.push_back(static_cast<int>(s));
    }
  }
  for (const int s : due) {
    trace::TraceSpan span("fleet", "probe");
    span.arg("shard", transport_at(s)->instance());
    // Shadow duplicate: the result is discarded, so a still-sick shard can
    // only waste its own cycles — client traffic keeps routing around it.
    serve::RenderRequest probe = model;
    probe.deadline_s.reset();
    probe.priority = serve::RequestPriority::kLow;
    ShardState next = ShardState::kQuarantined;
    bool gone = false;
    try {
      const WireBuffer frame = encode_request(probe);
      PendingReply reply = transport_at(s)->submit(frame, std::nullopt);
      const WireBuffer bytes = reply.take();
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        wire_request_bytes_ += frame.size();
        wire_reply_bytes_ += bytes.size();
      }
      (void)decode_reply(bytes);  // throws the typed error on failure
      next = ShardState::kHealthy;
    } catch (const support::ShardDownError&) {
      gone = true;
    } catch (const std::exception&) {
      next = ShardState::kQuarantined;  // fresh dwell, probe again later
    }
    if (gone) {
      // The probe found a dead shard: hand it to the supervision ladder
      // (or mark it down for good when unsupervised).
      note_unreachable(s);
      continue;
    }
    bool reinstated = false;
    {
      const std::lock_guard<std::mutex> lock(health_mutex_);
      HealthSlot& slot = health_[static_cast<std::size_t>(s)];
      if (slot.state != ShardState::kProbing) continue;  // killed meanwhile
      slot.state = next;
      if (next == ShardState::kHealthy) {
        slot.reinstates += 1;
        slot.window_count = 0;
        slot.window_next = 0;
        reinstated = true;
      } else if (next == ShardState::kQuarantined) {
        slot.quarantined_at = std::chrono::steady_clock::now();
      }
    }
    if (reinstated) {
      trace::instant("fleet", "shard_reinstated");
    }
  }
}

void ShardRouter::execute(RouterTask task) {
  // Probing happens on its own thread; routing only refreshes the probe
  // template so a client task never waits behind a probe render.
  maybe_arm_probes(task.request);
  trace::flow(trace::Phase::kFlowStep, "fleet", "request", task.flow_id);
  trace::TraceSpan span("fleet", "route");
  span.arg("priority", to_string(task.priority));

  // Routing plan: healthy replicas first, then non-down replicas (a
  // quarantined owner of the scene beats a stranger's cold cache), then
  // any other live shard as a last resort.
  const std::vector<int> replicas = replicas_for(task.scene_key);
  const int total = shard_count();
  std::vector<int> plan;
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    for (const int s : replicas) {
      if (health_[static_cast<std::size_t>(s)].state == ShardState::kHealthy) {
        plan.push_back(s);
      }
    }
    for (const int s : replicas) {
      const ShardState state = health_[static_cast<std::size_t>(s)].state;
      if (state != ShardState::kHealthy && !unroutable(state)) {
        plan.push_back(s);
      }
    }
    if (plan.empty()) {
      for (int s = 0; s < total; ++s) {
        if (std::find(replicas.begin(), replicas.end(), s) !=
            replicas.end()) {
          continue;
        }
        if (!unroutable(health_[static_cast<std::size_t>(s)].state)) {
          plan.push_back(s);
        }
      }
    }
  }
  if (plan.empty()) {
    fail_task(task, std::make_exception_ptr(support::ShardDownError(
                        "every shard that could serve this scene is down")));
    return;
  }

  const bool hedging = options_.hedge_ms >= 0.0 && plan.size() > 1;
  std::exception_ptr last_error;
  bool failed_over = false;
  std::size_t next = 0;
  while (next < plan.size()) {
    const int primary_shard = plan[next++];
    std::optional<double> budget = remaining_deadline(task);
    if (budget.has_value() && *budget <= 0.0) {
      fail_task(task,
                std::make_exception_ptr(support::DeadlineExceededError(
                    "deadline expired inside the fleet router")),
                /*count_expired=*/true);
      return;
    }
    serve::RenderRequest attempt = task.request;
    attempt.deadline_s = budget;
    std::optional<PendingReply> primary;
    try {
      const WireBuffer frame = encode_request(attempt);
      primary.emplace(
          transport_at(primary_shard)->submit(frame, budget));
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      wire_request_bytes_ += frame.size();
    } catch (const support::ShardDownError&) {
      note_unreachable(primary_shard);
      last_error = std::current_exception();
      if (next < plan.size()) {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        failovers_ += 1;
        failed_over = true;
      }
      continue;
    }
    {
      const std::lock_guard<std::mutex> lock(health_mutex_);
      health_[static_cast<std::size_t>(primary_shard)].routed += 1;
    }

    // Hedge: give the primary one hedge delay; silence launches the same
    // request on the next planned replica and the first reply wins.
    int hedge_shard = -1;
    std::optional<PendingReply> hedge;
    if (hedging && next < plan.size() &&
        !primary->wait_for(std::chrono::duration<double>(
            hedge_delay_ms() / 1000.0))) {
      std::optional<double> hedge_budget = remaining_deadline(task);
      if (!hedge_budget.has_value() || *hedge_budget > 0.0) {
        const int candidate = plan[next];
        serve::RenderRequest backup = task.request;
        backup.deadline_s = hedge_budget;
        try {
          const WireBuffer frame = encode_request(backup);
          hedge.emplace(
              transport_at(candidate)->submit(frame, hedge_budget));
          hedge_shard = candidate;
          next += 1;
          {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            hedges_launched_ += 1;
            wire_request_bytes_ += frame.size();
          }
          {
            const std::lock_guard<std::mutex> lock(health_mutex_);
            health_[static_cast<std::size_t>(candidate)].routed += 1;
          }
        } catch (const support::ShardDownError&) {
          note_unreachable(candidate);
          next += 1;
        }
      }
    }

    // First reply wins; the loser (if any) is inspected when ready and
    // discarded otherwise — the client sees exactly one resolution.
    PendingReply* winner = &*primary;
    int winner_shard = primary_shard;
    PendingReply* loser = nullptr;
    int loser_shard = -1;
    if (hedge.has_value()) {
      for (;;) {
        if (primary->ready()) break;
        if (hedge->ready()) {
          winner = &*hedge;
          winner_shard = hedge_shard;
          loser = &*primary;
          loser_shard = primary_shard;
          const std::lock_guard<std::mutex> lock(stats_mutex_);
          hedges_won_ += 1;
          break;
        }
        (void)primary->wait_for(kHedgePollSlice);
      }
      if (loser == nullptr) {
        loser = &*hedge;
        loser_shard = hedge_shard;
      }
    }

    const auto settle_loser = [&]() {
      if (loser == nullptr) return;
      if (loser->ready()) {
        const WireBuffer bytes = loser->take();
        bool success = false;
        bool shed = false;
        try {
          (void)decode_reply(bytes);
          success = true;
        } catch (const support::OverloadShedError&) {
          shed = true;
        } catch (const support::ShardDownError&) {
          // Peer gone, not erring: enter the ladder, spare the breaker.
          note_unreachable(loser_shard);
        } catch (const support::TransportTimeoutError&) {
          {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            transport_timeouts_ += 1;
          }
          record_outcome(loser_shard, false);
        } catch (const std::exception&) {
          record_outcome(loser_shard, false);
        }
        if (success) record_outcome(loser_shard, true);
        if (shed) record_shed(loser_shard);
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        // Count the shed fleet-wide too, matching interpret(): the two
        // paths must agree or shard_sheds undercounts the per-shard sum.
        if (shed) shard_sheds_ += 1;
        wire_reply_bytes_ += bytes.size();
        hedges_discarded_ += 1;
      } else {
        // Still rendering; the shard resolves it unobserved. Dropping the
        // handle cannot strand the request — only this router held it.
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        hedges_discarded_ += 1;
      }
      loser = nullptr;
    };

    const auto interpret =
        [&](PendingReply& reply,
            int reply_shard) -> std::optional<serve::RenderResponse> {
      const WireBuffer bytes = reply.take();
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        wire_reply_bytes_ += bytes.size();
      }
      try {
        serve::RenderResponse response = decode_reply(bytes);
        record_outcome(reply_shard, true);
        return response;
      } catch (const support::OverloadShedError&) {
        // Pressure, not failure: fail over without charging the breaker.
        record_shed(reply_shard);
        {
          const std::lock_guard<std::mutex> lock(stats_mutex_);
          shard_sheds_ += 1;
        }
        last_error = std::current_exception();
      } catch (const support::DeadlineExceededError&) {
        // Re-rendering cannot un-expire the request: terminal, no failover.
        last_error = std::current_exception();
        throw;
      } catch (const support::ShardDownError&) {
        // The transport lost its peer mid-request (EOF, reset, kill).
        // Route into the ladder without charging the breaker — the shard
        // is gone, not misbehaving — and fail over.
        note_unreachable(reply_shard);
        last_error = std::current_exception();
      } catch (const support::TransportTimeoutError&) {
        // A hung shard burned this request's I/O budget. Charge the
        // breaker (repeat offenders quarantine) and fail over; the hang
        // detector handles the process itself.
        {
          const std::lock_guard<std::mutex> lock(stats_mutex_);
          transport_timeouts_ += 1;
        }
        record_outcome(reply_shard, false);
        last_error = std::current_exception();
      } catch (const std::exception&) {
        record_outcome(reply_shard, false);
        last_error = std::current_exception();
      }
      return std::nullopt;
    };

    try {
      std::optional<serve::RenderResponse> response =
          interpret(*winner, winner_shard);
      if (!response.has_value() && loser != nullptr) {
        // Winner failed but the hedge pair is still live: the loser is a
        // fully-formed failover attempt already in flight — use it. Clear
        // `loser` before interpret() consumes the reply: a rethrown
        // DeadlineExceededError lands in the catch below, and settle_loser
        // must not take an already-taken reply twice.
        PendingReply& backup_reply = *loser;
        loser = nullptr;
        std::optional<serve::RenderResponse> backup =
            interpret(backup_reply, loser_shard);
        {
          const std::lock_guard<std::mutex> lock(stats_mutex_);
          failovers_ += 1;
          failed_over = true;
        }
        if (backup.has_value()) response = std::move(backup);
      }
      if (response.has_value()) {
        settle_loser();
        span.arg("shard", winner_shard).arg("hedged", hedge_shard >= 0);
        if (failed_over) {
          span.arg("failover", true);
          const std::lock_guard<std::mutex> lock(stats_mutex_);
          failover_successes_ += 1;
        }
        deliver(task, std::move(*response));
        return;
      }
    } catch (const support::DeadlineExceededError&) {
      settle_loser();
      fail_task(task, std::current_exception());
      return;
    }
    settle_loser();
    if (next < plan.size()) {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      failovers_ += 1;
      failed_over = true;
    }
  }

  fail_task(task, last_error != nullptr
                      ? last_error
                      : std::make_exception_ptr(support::ShardDownError(
                            "no shard could serve the request")));
}

void ShardRouter::stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Close admission, let the router threads drain every queued task
  // through still-running shards (every admitted future resolves), then
  // stop the shards themselves. The probe thread joins before the shards
  // stop (an in-flight probe resolves through a still-running shard), and
  // the supervisor stops before the transports so a shutdown is never
  // mistaken for a crash and respawned.
  queue_.close();
  {
    const std::lock_guard<std::mutex> lock(probe_mutex_);
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  if (probe_thread_.joinable()) probe_thread_.join();
  if (supervisor_) supervisor_->stop();
  std::vector<Transport*> transports;
  {
    const std::lock_guard<std::mutex> lock(slots_mutex_);
    transports.reserve(slots_.size());
    for (const std::unique_ptr<Transport>& slot : slots_) {
      transports.push_back(slot.get());
    }
  }
  for (Transport* transport : transports) transport->shutdown();
}

void ShardRouter::kill_shard(int index) {
  // Terminal before lethal: the supervisor must never respawn a shard the
  // test (or operator) deliberately killed.
  if (supervisor_) supervisor_->mark_terminal(index);
  transport_at(index)->crash();
  const std::lock_guard<std::mutex> lock(health_mutex_);
  health_.at(static_cast<std::size_t>(index)).state = ShardState::kDown;
}

void ShardRouter::crash_shard(int index) {
  // No state change here: the point is that the *ladder* notices — via
  // the supervisor's waitpid poll or a submit's ShardDownError.
  transport_at(index)->crash();
}

void ShardRouter::wedge_shard(int index) {
  transport_at(index)->wedge();
}

void ShardRouter::note_unreachable(int index) {
  bool enter_ladder = false;
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    HealthSlot& slot = health_.at(static_cast<std::size_t>(index));
    if (slot.state == ShardState::kDown ||
        slot.state == ShardState::kRetired) {
      return;  // terminal states stay terminal
    }
    if (supervisor_ != nullptr) {
      if (slot.state != ShardState::kRespawning) {
        slot.state = ShardState::kRespawning;
        enter_ladder = true;
      }
    } else {
      slot.state = ShardState::kDown;
    }
  }
  if (enter_ladder) {
    trace::instant("fleet", "shard_unreachable");
    supervisor_->note_unreachable(index);
  }
}

void ShardRouter::on_shard_unreachable(int index) {
  const std::lock_guard<std::mutex> lock(health_mutex_);
  HealthSlot& slot = health_.at(static_cast<std::size_t>(index));
  if (slot.state == ShardState::kDown || slot.state == ShardState::kRetired) {
    return;
  }
  slot.state = ShardState::kRespawning;
}

void ShardRouter::on_shard_respawned(int index) {
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    HealthSlot& slot = health_.at(static_cast<std::size_t>(index));
    if (slot.state == ShardState::kDown ||
        slot.state == ShardState::kRetired) {
      return;
    }
    // A respawned shard earns its way back: quarantined until the shadow
    // probe passes, with a clean breaker window (its past errors died with
    // the old process).
    slot.state = ShardState::kQuarantined;
    slot.quarantined_at = std::chrono::steady_clock::now();
    slot.quarantines += 1;
    slot.window_count = 0;
    slot.window_next = 0;
  }
  trace::instant("fleet", "shard_respawned");
}

void ShardRouter::on_shard_exhausted(int index) {
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    HealthSlot& slot = health_.at(static_cast<std::size_t>(index));
    if (slot.state == ShardState::kRetired) return;
    slot.state = ShardState::kDown;
  }
  trace::instant("fleet", "shard_exhausted");
}

void ShardRouter::on_shard_partitioned(int index) {
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    HealthSlot& slot = health_.at(static_cast<std::size_t>(index));
    // Terminal states stay terminal, and a shard already in the respawn
    // ladder has the harder diagnosis — don't downgrade it to partitioned.
    if (slot.state == ShardState::kDown ||
        slot.state == ShardState::kRetired ||
        slot.state == ShardState::kRespawning) {
      return;
    }
    slot.state = ShardState::kPartitioned;
  }
  trace::instant("fleet", "shard_partitioned",
                 {{"instance", transport_at(index)->instance()}});
}

void ShardRouter::on_shard_partition_healed(int index) {
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    HealthSlot& slot = health_.at(static_cast<std::size_t>(index));
    if (slot.state != ShardState::kPartitioned) return;
    // Healed, not trusted: the shard re-enters through the probe ladder
    // with a clean breaker window — stale in-flight wreckage from the
    // partition must not count against the healed link.
    slot.state = ShardState::kQuarantined;
    slot.quarantined_at = std::chrono::steady_clock::now();
    slot.quarantines += 1;
    slot.window_count = 0;
    slot.window_next = 0;
  }
  trace::instant("fleet", "shard_partition_healed",
                 {{"instance", transport_at(index)->instance()}});
}

void ShardRouter::warm_shard(
    int target, const std::vector<std::pair<std::uint64_t, int>>& ring) {
  if (options_.hot_scene_capacity == 0) return;
  std::vector<serve::RenderRequest> replay;
  {
    const std::lock_guard<std::mutex> lock(hot_mutex_);
    for (const auto& [key, request] : hot_scenes_) {
      const std::vector<int> owners = replicas_in(ring, key);
      if (std::find(owners.begin(), owners.end(), target) != owners.end()) {
        replay.push_back(request);
      }
    }
  }
  for (serve::RenderRequest& request : replay) {
    // Warm renders are shadow traffic: no deadline, lowest priority, the
    // frame is discarded — the point is the target's scene cache.
    request.deadline_s.reset();
    request.priority = serve::RequestPriority::kLow;
    bool ok = false;
    try {
      const WireBuffer frame = encode_request(request);
      PendingReply reply = transport_at(target)->submit(frame, std::nullopt);
      const WireBuffer bytes = reply.take();
      (void)decode_reply(bytes);
      ok = true;
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      wire_request_bytes_ += frame.size();
      wire_reply_bytes_ += bytes.size();
    } catch (const std::exception&) {
      // Best effort: a failed warm costs the new owner a cold first
      // render, nothing else.
    }
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    warm_replays_ += 1;
    if (!ok) warm_failures_ += 1;
  }
}

int ShardRouter::add_shard() {
  // Build (and for process fleets, spawn) the shard before taking any
  // router lock — a spawn takes milliseconds and must not stall routing.
  int index = 0;
  {
    const std::lock_guard<std::mutex> lock(slots_mutex_);
    index = static_cast<int>(slots_.size());
  }
  std::unique_ptr<Transport> built = make_transport(index);
  Transport* transport = built.get();
  {
    const std::lock_guard<std::mutex> lock(slots_mutex_);
    STARSIM_REQUIRE(index == static_cast<int>(slots_.size()),
                    "concurrent add_shard calls are not supported");
    slots_.push_back(std::move(built));
  }
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    health_.emplace_back();
    HealthSlot& slot = health_.back();
    slot.window.assign(std::max<std::size_t>(options_.breaker_window, 1),
                       true);
    // Unroutable until warmed and on the ring.
    slot.state = ShardState::kRespawning;
  }
  // Plan the post-resize ring, warm the newcomer against it, and only then
  // cut over. Consistent hashing moves keys only *onto* the new shard, so
  // requests keep resolving against the old ring throughout the warm.
  std::vector<std::pair<std::uint64_t, int>> candidate;
  {
    const std::lock_guard<std::mutex> lock(ring_mutex_);
    candidate = ring_;
  }
  append_ring_points(candidate, index);
  std::sort(candidate.begin(), candidate.end());
  warm_shard(index, candidate);
  {
    const std::lock_guard<std::mutex> lock(ring_mutex_);
    ring_ = std::move(candidate);
  }
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    health_.at(static_cast<std::size_t>(index)).state = ShardState::kHealthy;
  }
  if (supervisor_) supervisor_->watch(index, transport);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    shards_added_ += 1;
  }
  trace::instant("fleet", "shard_added");
  return index;
}

void ShardRouter::remove_shard(int index) {
  // Terminal first: a retirement that races a crash must win — the
  // supervisor would otherwise respawn a shard we are tearing down.
  if (supervisor_) supervisor_->mark_terminal(index);
  std::vector<std::pair<std::uint64_t, int>> current;
  {
    const std::lock_guard<std::mutex> lock(ring_mutex_);
    current = ring_;
  }
  std::vector<std::pair<std::uint64_t, int>> candidate;
  candidate.reserve(current.size());
  for (const auto& point : current) {
    if (point.second != index) candidate.push_back(point);
  }
  STARSIM_REQUIRE(!candidate.empty(), "cannot retire the last shard");
  // Hot scenes the retiree owned gain new owners under the candidate
  // ring; warm those owners before the cutover strands their caches cold.
  std::vector<int> gainers;
  {
    const std::lock_guard<std::mutex> lock(hot_mutex_);
    for (const auto& [key, request] : hot_scenes_) {
      const std::vector<int> before = replicas_in(current, key);
      if (std::find(before.begin(), before.end(), index) == before.end()) {
        continue;
      }
      for (const int owner : replicas_in(candidate, key)) {
        if (std::find(before.begin(), before.end(), owner) == before.end() &&
            std::find(gainers.begin(), gainers.end(), owner) ==
                gainers.end()) {
          gainers.push_back(owner);
        }
      }
    }
  }
  for (const int gainer : gainers) warm_shard(gainer, candidate);
  {
    const std::lock_guard<std::mutex> lock(ring_mutex_);
    ring_ = std::move(candidate);
  }
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    health_.at(static_cast<std::size_t>(index)).state = ShardState::kRetired;
  }
  // In-flight work routed before the swap drains through the transport;
  // shutdown() is a graceful stop, not a kill.
  transport_at(index)->shutdown();
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    shards_removed_ += 1;
  }
  trace::instant("fleet", "shard_removed");
}

void ShardRouter::quarantine_shard(int index) {
  const std::lock_guard<std::mutex> lock(health_mutex_);
  HealthSlot& slot = health_.at(static_cast<std::size_t>(index));
  if (slot.state == ShardState::kDown) return;
  slot.state = ShardState::kQuarantined;
  slot.quarantined_at = std::chrono::steady_clock::now();
  slot.quarantines += 1;
}

ShardState ShardRouter::shard_state(int index) const {
  const std::lock_guard<std::mutex> lock(health_mutex_);
  return health_.at(static_cast<std::size_t>(index)).state;
}

FleetStats ShardRouter::stats() const {
  FleetStats s;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.rejected = rejected_;
    s.backpressure_rejected = backpressure_rejected_;
    s.router_shed = router_shed_;
    s.expired_router = expired_router_;
    s.hedges_launched = hedges_launched_;
    s.hedges_won = hedges_won_;
    s.hedges_discarded = hedges_discarded_;
    s.failovers = failovers_;
    s.failover_successes = failover_successes_;
    s.shard_sheds = shard_sheds_;
    s.wire_request_bytes = wire_request_bytes_;
    s.wire_reply_bytes = wire_reply_bytes_;
    s.transport_timeouts = transport_timeouts_;
    s.shards_added = shards_added_;
    s.shards_removed = shards_removed_;
    s.warm_replays = warm_replays_;
    s.warm_failures = warm_failures_;
    s.latency = support::tail_quantiles(latency_samples_);
    double sum = 0.0;
    for (const double sample : latency_samples_) sum += sample;
    s.mean_latency_s =
        latency_samples_.empty()
            ? 0.0
            : sum / static_cast<double>(latency_samples_.size());
  }
  std::vector<std::pair<int, SupervisorShardStats>> ladder;
  if (supervisor_) ladder = supervisor_->all_stats();
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    s.shards.reserve(health_.size());
    for (std::size_t i = 0; i < health_.size(); ++i) {
      const HealthSlot& slot = health_[i];
      Transport* transport = transport_at(static_cast<int>(i));
      ShardSnapshot snapshot;
      snapshot.index = static_cast<int>(i);
      snapshot.state = slot.state;
      snapshot.queue_depth = transport->queue_depth();
      snapshot.heartbeat_age_ms = transport->heartbeat_age_ms();
      snapshot.routed = slot.routed;
      snapshot.errors = slot.errors;
      snapshot.sheds = slot.sheds;
      snapshot.quarantines = slot.quarantines;
      snapshot.probes = slot.probes;
      snapshot.reinstates = slot.reinstates;
      for (const auto& [index, stats] : ladder) {
        if (index == snapshot.index) {
          snapshot.respawns = stats.respawns_succeeded;
          break;
        }
      }
      s.shards.push_back(snapshot);
      s.quarantines += slot.quarantines;
      s.probes += slot.probes;
      s.reinstates += slot.reinstates;
      const TransportStats transport_stats = transport->stats();
      s.reconnects += transport_stats.reconnects;
      s.heartbeats_sent += transport_stats.heartbeats_sent;
      s.heartbeats_missed += transport_stats.heartbeats_missed;
    }
  }
  for (const auto& [index, stats] : ladder) {
    (void)index;
    s.crashes_detected += stats.crashes_detected;
    s.hangs_detected += stats.hangs_detected;
    s.respawns_attempted += stats.respawns_attempted;
    s.respawns_succeeded += stats.respawns_succeeded;
    s.partitions_detected += stats.partitions_detected;
    s.partitions_healed += stats.partitions_healed;
    if (stats.exhausted) s.respawns_exhausted += 1;
    s.last_respawn_s = std::max(s.last_respawn_s, stats.last_respawn_s);
  }
  s.elapsed_s = lifetime_.seconds();
  s.throughput_rps = s.elapsed_s > 0.0
                         ? static_cast<double>(s.completed) / s.elapsed_s
                         : 0.0;
  return s;
}

std::string ShardRouter::scrape_metrics() const {
  using trace::MetricFamily;
  using trace::MetricType;
  const FleetStats s = stats();
  std::vector<MetricFamily> families;

  {
    MetricFamily f{"starsim_fleet_requests_total",
                   "Fleet requests by terminal outcome",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.submitted), {{"outcome", "submitted"}})
        .add(static_cast<double>(s.completed), {{"outcome", "completed"}})
        .add(static_cast<double>(s.failed), {{"outcome", "failed"}})
        .add(static_cast<double>(s.rejected), {{"outcome", "rejected"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_router_shed_total",
                   "Requests refused or displaced at the router, by reason",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.router_shed), {{"reason", "displaced"}})
        .add(static_cast<double>(s.backpressure_rejected),
             {{"reason", "backpressure"}})
        .add(static_cast<double>(s.expired_router), {{"reason", "expired"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_hedges_total",
                   "Hedged requests by lifecycle event",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.hedges_launched), {{"result", "launched"}})
        .add(static_cast<double>(s.hedges_won), {{"result", "won"}})
        .add(static_cast<double>(s.hedges_discarded),
             {{"result", "discarded"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_failovers_total",
                   "Replica failovers attempted and recovered",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.failovers), {{"result", "attempted"}})
        .add(static_cast<double>(s.failover_successes),
             {{"result", "recovered"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_shard_sheds_total",
                   "OverloadShedError replies received from shards",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.shard_sheds));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_health_transitions_total",
                   "Shard health-ladder transitions by event",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.quarantines), {{"event", "quarantine"}})
        .add(static_cast<double>(s.probes), {{"event", "probe"}})
        .add(static_cast<double>(s.reinstates), {{"event", "reinstate"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_shard_state",
                   "Health-ladder position per shard (0 healthy, 1 "
                   "quarantined, 2 probing, 3 down, 4 respawning, "
                   "5 retired, 6 partitioned)",
                   MetricType::kGauge, {}};
    for (const ShardSnapshot& shard : s.shards) {
      f.add(static_cast<double>(shard.state),
            {{"instance", transport_at(shard.index)->instance()}});
    }
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_shard_queue_depth",
                   "Requests waiting inside each shard service",
                   MetricType::kGauge, {}};
    for (const ShardSnapshot& shard : s.shards) {
      f.add(static_cast<double>(shard.queue_depth),
            {{"instance", transport_at(shard.index)->instance()}});
    }
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_shard_heartbeat_age_ms",
                   "Milliseconds since each shard's last liveness signal",
                   MetricType::kGauge, {}};
    for (const ShardSnapshot& shard : s.shards) {
      f.add(shard.heartbeat_age_ms,
            {{"instance", transport_at(shard.index)->instance()}});
    }
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_proc_failures_total",
                   "Shard crashes and hangs detected by the supervisor",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.crashes_detected), {{"kind", "crash"}})
        .add(static_cast<double>(s.hangs_detected), {{"kind", "hang"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_proc_respawns_total",
                   "Supervision-ladder respawns by outcome",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.respawns_attempted),
          {{"result", "attempted"}})
        .add(static_cast<double>(s.respawns_succeeded),
             {{"result", "succeeded"}})
        .add(static_cast<double>(s.respawns_exhausted),
             {{"result", "exhausted"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_proc_transport_timeouts_total",
                   "Request I/O budgets burned by unresponsive shards",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.transport_timeouts));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_proc_reconnects_total",
                   "Fresh shard connections dialed (first contact and "
                   "post-respawn redials)",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.reconnects));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_heartbeats_total",
                   "Shard heartbeat round trips by outcome",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.heartbeats_sent), {{"result", "sent"}})
        .add(static_cast<double>(s.heartbeats_missed),
             {{"result", "missed"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_ring_resizes_total",
                   "Runtime hash-ring membership changes",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.shards_added), {{"op", "add"}})
        .add(static_cast<double>(s.shards_removed), {{"op", "remove"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_warm_replays_total",
                   "Hot-scene replays during ring resizes",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.warm_replays), {{"result", "replayed"}})
        .add(static_cast<double>(s.warm_failures), {{"result", "failed"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_wire_bytes_total",
                   "Bytes crossing the wire boundary by direction",
                   MetricType::kCounter, {}};
    f.add(static_cast<double>(s.wire_request_bytes),
          {{"direction", "request"}})
        .add(static_cast<double>(s.wire_reply_bytes),
             {{"direction", "reply"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_latency_seconds",
                   "Fleet request latency quantiles (submit to delivery)",
                   MetricType::kGauge, {}};
    f.add(s.latency.p50, {{"quantile", "0.5"}})
        .add(s.latency.p95, {{"quantile", "0.95"}})
        .add(s.latency.p99, {{"quantile", "0.99"}});
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_queue_depth",
                   "Requests waiting in the router admission queue",
                   MetricType::kGauge, {}};
    f.add(static_cast<double>(queue_depth()));
    families.push_back(std::move(f));
  }
  {
    MetricFamily f{"starsim_fleet_throughput_rps",
                   "Completed fleet requests per second of router lifetime",
                   MetricType::kGauge, {}};
    f.add(s.throughput_rps);
    families.push_back(std::move(f));
  }

  // Network liveness families (fleet stage 3). Emitted for every fleet —
  // loopback transports report zeros — so trace-check --fleet can require
  // the family names unconditionally.
  {
    std::vector<std::pair<std::string, TransportNetStats>> net;
    {
      const std::lock_guard<std::mutex> lock(slots_mutex_);
      net.reserve(slots_.size());
      for (const std::unique_ptr<Transport>& slot : slots_) {
        net.emplace_back(slot->instance(), slot->net_stats());
      }
    }
    TransportNetStats total{};
    {
      MetricFamily f{"starsim_fleet_net_rtt_seconds",
                     "Per-shard smoothed round-trip estimate (srtt), "
                     "variance (rttvar), and retransmission timeout (rto)",
                     MetricType::kGauge, {}};
      for (const auto& [instance, stats] : net) {
        f.add(stats.srtt_ms * 1e-3,
              {{"instance", instance}, {"stat", "srtt"}})
            .add(stats.rttvar_ms * 1e-3,
                 {{"instance", instance}, {"stat", "rttvar"}})
            .add(stats.rto_ms * 1e-3,
                 {{"instance", instance}, {"stat", "rto"}});
        total.handshakes_ok += stats.handshakes_ok;
        total.handshakes_failed += stats.handshakes_failed;
        total.dial_backoffs += stats.dial_backoffs;
        total.faults_dropped += stats.faults_dropped;
        total.faults_delayed += stats.faults_delayed;
        total.faults_duplicated += stats.faults_duplicated;
        total.faults_reordered += stats.faults_reordered;
        total.faults_corrupted += stats.faults_corrupted;
        total.faults_partitioned += stats.faults_partitioned;
      }
      families.push_back(std::move(f));
    }
    {
      MetricFamily f{"starsim_fleet_net_handshakes_total",
                     "Connection handshakes (version + shard id + token) "
                     "by outcome",
                     MetricType::kCounter, {}};
      f.add(static_cast<double>(total.handshakes_ok), {{"result", "ok"}})
          .add(static_cast<double>(total.handshakes_failed),
               {{"result", "failed"}});
      families.push_back(std::move(f));
    }
    {
      MetricFamily f{"starsim_fleet_net_dial_backoffs_total",
                     "Dial attempts refused locally while the reconnect "
                     "backoff window was open",
                     MetricType::kCounter, {}};
      f.add(static_cast<double>(total.dial_backoffs));
      families.push_back(std::move(f));
    }
    {
      MetricFamily f{"starsim_fleet_net_partitions_total",
                     "Network partitions walked by the supervision ladder",
                     MetricType::kCounter, {}};
      f.add(static_cast<double>(s.partitions_detected),
            {{"event", "detected"}})
          .add(static_cast<double>(s.partitions_healed),
               {{"event", "healed"}});
      families.push_back(std::move(f));
    }
    {
      MetricFamily f{"starsim_fleet_net_faults_injected_total",
                     "Deterministic chaos faults injected, by kind",
                     MetricType::kCounter, {}};
      f.add(static_cast<double>(total.faults_dropped),
            {{"kind", "dropped"}})
          .add(static_cast<double>(total.faults_delayed),
               {{"kind", "delayed"}})
          .add(static_cast<double>(total.faults_duplicated),
               {{"kind", "duplicated"}})
          .add(static_cast<double>(total.faults_reordered),
               {{"kind", "reordered"}})
          .add(static_cast<double>(total.faults_corrupted),
               {{"kind", "corrupted"}})
          .add(static_cast<double>(total.faults_partitioned),
               {{"kind", "partitioned"}});
      families.push_back(std::move(f));
    }
  }

  // Merge shard-level serve families name-wise: Prometheus allows each
  // family once per exposition, so N shards contribute instance-labeled
  // samples to one shared family instead of N duplicate renders.
  std::map<std::string, std::size_t> merged;
  std::vector<Transport*> transports;
  {
    const std::lock_guard<std::mutex> lock(slots_mutex_);
    transports.reserve(slots_.size());
    for (const std::unique_ptr<Transport>& slot : slots_) {
      transports.push_back(slot.get());
    }
  }
  for (Transport* transport : transports) {
    for (trace::MetricFamily& family : transport->metric_families()) {
      const auto it = merged.find(family.name);
      if (it == merged.end()) {
        merged.emplace(family.name, families.size());
        families.push_back(std::move(family));
      } else {
        trace::MetricFamily& target = families[it->second];
        target.samples.insert(target.samples.end(),
                              std::make_move_iterator(family.samples.begin()),
                              std::make_move_iterator(family.samples.end()));
      }
    }
  }
  return trace::render_prometheus(families);
}

}  // namespace starsim::fleet
