#include "fleet/socket.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "support/error.h"

namespace starsim::fleet {

namespace {

[[nodiscard]] double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Milliseconds until the absolute deadline, clamped for poll(): at least
/// 1ms while any time remains (a 0 would busy-spin), -1-free — an expired
/// deadline returns 0 so callers throw instead of blocking.
[[nodiscard]] int poll_budget_ms(double deadline_s) {
  const double remaining = deadline_s - steady_now_s();
  if (remaining <= 0.0) return 0;
  const double ms = remaining * 1e3;
  if (ms < 1.0) return 1;
  if (ms > 60'000.0) return 60'000;
  return static_cast<int>(ms);
}

/// Wait until `fd` is ready for `events` or the deadline passes. Throws
/// TransportTimeoutError on deadline, ShardDownError on hangup/error.
void wait_ready(int fd, short events, double deadline_s, const char* verb) {
  for (;;) {
    const int budget = poll_budget_ms(deadline_s);
    if (budget == 0) {
      STARSIM_THROW(support::TransportTimeoutError,
                    std::string("socket ") + verb + " deadline expired");
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int ready = ::poll(&pfd, 1, budget);
    if (ready < 0) {
      if (errno == EINTR) continue;  // re-check the deadline and re-arm
      STARSIM_THROW(support::ShardDownError,
                    std::string("socket poll failed: ") +
                        std::strerror(errno));
    }
    if (ready == 0) {
      STARSIM_THROW(support::TransportTimeoutError,
                    std::string("socket ") + verb + " deadline expired");
    }
    // POLLHUP with readable data still delivers the data; let read()
    // observe the EOF. POLLERR alone means the connection is gone.
    if ((pfd.revents & POLLERR) != 0 &&
        (pfd.revents & (POLLIN | POLLOUT)) == 0) {
      STARSIM_THROW(support::ShardDownError, "socket peer error");
    }
    return;
  }
}

void set_nonblocking(int fd) {
  // All I/O goes through poll() + retry loops, so the descriptor must never
  // block inside read/write themselves.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Classify a connect-time errno. The distinction matters to the
/// supervision ladder: "nothing is listening there" (refused, absent path,
/// backlog overflow, reset during the attempt, unreachable host) is the
/// same retryable shard-is-down signal a killed process raises and charges
/// the respawn rung, while only ETIMEDOUT maps to the timeout family that
/// feeds RTT/RTO accounting. Everything unrecognized defaults to
/// ShardDownError: for a dial failure, "peer not available" is the honest
/// summary and retrying against another replica is the right reflex.
[[noreturn]] void throw_connect_error(const std::string& where, int err) {
  if (err == ETIMEDOUT) {
    STARSIM_THROW(support::TransportTimeoutError,
                  "connect to " + where + " timed out: " +
                      std::strerror(err));
  }
  STARSIM_THROW(support::ShardDownError,
                "connect to " + where + " failed: " + std::strerror(err));
}

[[nodiscard]] sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    STARSIM_THROW(support::IoError,
                  "socket path too long for sockaddr_un: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Nonblocking dial of one concrete address with the shared errno
/// classification; returns the connected fd or throws.
[[nodiscard]] int dial(int domain, const sockaddr* addr, socklen_t addr_len,
                       double deadline_s, const std::string& where) {
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) {
    STARSIM_THROW(support::IoError,
                  std::string("socket() failed: ") + std::strerror(errno));
  }
  set_nonblocking(fd);
  if (::connect(fd, addr, addr_len) != 0) {
    if (errno != EINPROGRESS) {
      // Includes EAGAIN: on AF_UNIX that means the listener's backlog is
      // full — the peer exists but is not accepting, which is refusal, not
      // a timeout. Waiting here would burn the whole connect budget and
      // misreport a down shard as a slow network.
      const int err = errno;
      ::close(fd);
      throw_connect_error(where, err);
    }
    // Async connect: wait for writability, then read the final status.
    try {
      wait_ready(fd, POLLOUT, deadline_s, "connect");
    } catch (...) {
      ::close(fd);
      throw;
    }
    int status = 0;
    socklen_t len = sizeof(status);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &status, &len) != 0 ||
        status != 0) {
      const int err = status != 0 ? status : errno;
      ::close(fd);
      throw_connect_error(where, err);
    }
  }
  return fd;
}

/// Small request/response frames dominate fleet traffic; Nagle would add
/// up to one RTT of batching delay per frame, which the RTT estimator
/// would then dutifully bake into every RTO.
void set_tcp_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

[[nodiscard]] int dial_tcp(const Endpoint& endpoint, double deadline_s) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  const std::string port = std::to_string(endpoint.port);
  addrinfo* results = nullptr;
  const int rc =
      ::getaddrinfo(endpoint.host.c_str(), port.c_str(), &hints, &results);
  if (rc != 0 || results == nullptr) {
    // Resolution failure is "that shard is not reachable", same retryable
    // family as a refused connect — DNS may heal, another replica serves.
    STARSIM_THROW(support::ShardDownError,
                  "resolve " + endpoint.to_string() +
                      " failed: " + ::gai_strerror(rc));
  }
  int fd = -1;
  std::exception_ptr last_error;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    try {
      fd = dial(ai->ai_family, ai->ai_addr,
                static_cast<socklen_t>(ai->ai_addrlen), deadline_s,
                endpoint.to_string());
      break;
    } catch (...) {
      last_error = std::current_exception();
    }
  }
  ::freeaddrinfo(results);
  if (fd < 0) std::rethrow_exception(last_error);
  set_tcp_nodelay(fd);
  return fd;
}

}  // namespace

FrameSocket::~FrameSocket() { close(); }

FrameSocket::FrameSocket(FrameSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

FrameSocket& FrameSocket::operator=(FrameSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void FrameSocket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FrameSocket FrameSocket::connect(const Endpoint& endpoint, double timeout_s) {
  const double deadline_s = steady_now_s() + timeout_s;
  if (endpoint.is_tcp()) {
    return FrameSocket(dial_tcp(endpoint, deadline_s));
  }
  const sockaddr_un addr = unix_address(endpoint.path);
  return FrameSocket(dial(AF_UNIX,
                          reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr), deadline_s, endpoint.path));
}

FrameSocket FrameSocket::connect(const std::string& spec, double timeout_s) {
  return connect(Endpoint::parse(spec), timeout_s);
}

FrameSocket FrameSocket::adopt(int fd) {
  set_nonblocking(fd);
  return FrameSocket(fd);
}

void FrameSocket::send_frame(const WireBuffer& frame, double deadline_s) {
  STARSIM_REQUIRE(valid(), "send_frame on a closed socket");
  if (frame.size() > kMaxFrameBytes) {
    STARSIM_THROW(support::WireFormatError,
                  "frame exceeds transport ceiling: " +
                      std::to_string(frame.size()) + " bytes");
  }
  // Length prefix + payload as one logical message; loop over partial
  // writes on each piece.
  std::uint8_t prefix[4];
  const auto size = static_cast<std::uint32_t>(frame.size());
  for (int shift = 0; shift < 32; shift += 8) {
    prefix[shift / 8] = static_cast<std::uint8_t>(size >> shift);
  }
  const auto send_all = [&](const std::uint8_t* data, std::size_t count) {
    std::size_t sent = 0;
    while (sent < count) {
      const ssize_t n =
          ::send(fd_, data + sent, count - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        wait_ready(fd_, POLLOUT, deadline_s, "send");
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      STARSIM_THROW(support::ShardDownError,
                    std::string("socket send failed: ") +
                        std::strerror(errno));
    }
  };
  send_all(prefix, sizeof(prefix));
  send_all(frame.data(), frame.size());
}

std::optional<WireBuffer> FrameSocket::recv_frame(double deadline_s) {
  STARSIM_REQUIRE(valid(), "recv_frame on a closed socket");
  // Receive exactly `count` bytes; at_boundary=true permits a clean EOF
  // before the first byte (peer closed between frames).
  const auto recv_all = [&](std::uint8_t* data, std::size_t count,
                            bool at_boundary) -> bool {
    std::size_t got = 0;
    while (got < count) {
      const ssize_t n = ::recv(fd_, data + got, count - got, 0);
      if (n > 0) {
        got += static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0) {
        if (at_boundary && got == 0) return false;  // orderly EOF
        STARSIM_THROW(support::ShardDownError,
                      "socket peer closed mid-frame");
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_ready(fd_, POLLIN, deadline_s, "recv");
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == ECONNRESET || errno == EPIPE) {
        STARSIM_THROW(support::ShardDownError,
                      "socket peer reset mid-frame");
      }
      STARSIM_THROW(support::ShardDownError,
                    std::string("socket recv failed: ") +
                        std::strerror(errno));
    }
    return true;
  };

  std::uint8_t prefix[4];
  if (!recv_all(prefix, sizeof(prefix), /*at_boundary=*/true)) {
    return std::nullopt;
  }
  std::uint32_t size = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    size |= static_cast<std::uint32_t>(prefix[shift / 8]) << shift;
  }
  if (size > kMaxFrameBytes) {
    STARSIM_THROW(support::WireFormatError,
                  "frame length prefix exceeds transport ceiling: " +
                      std::to_string(size) + " bytes");
  }
  WireBuffer frame(size);
  if (size > 0) {
    (void)recv_all(frame.data(), frame.size(), /*at_boundary=*/false);
  }
  return frame;
}

bool FrameSocket::readable(double wait_s) const {
  if (!valid()) return false;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int budget =
      wait_s <= 0.0 ? 0 : std::max(1, static_cast<int>(wait_s * 1e3));
  return ::poll(&pfd, 1, budget) > 0 &&
         (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

FrameListener::~FrameListener() { close(); }

FrameListener::FrameListener(FrameListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      endpoint_(std::move(other.endpoint_)) {
  other.endpoint_ = Endpoint{};
}

FrameListener& FrameListener::operator=(FrameListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    endpoint_ = std::move(other.endpoint_);
    other.endpoint_ = Endpoint{};
  }
  return *this;
}

void FrameListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (endpoint_.kind == Endpoint::Kind::kUnix && !endpoint_.path.empty()) {
    ::unlink(endpoint_.path.c_str());
  }
  endpoint_ = Endpoint{};
}

FrameListener FrameListener::bind(const Endpoint& endpoint) {
  if (endpoint.is_tcp()) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_NUMERICSERV | AI_PASSIVE;
    const std::string port = std::to_string(endpoint.port);
    addrinfo* results = nullptr;
    const int rc = ::getaddrinfo(
        endpoint.host.empty() ? nullptr : endpoint.host.c_str(),
        port.c_str(), &hints, &results);
    if (rc != 0 || results == nullptr) {
      STARSIM_THROW(support::IoError,
                    "resolve " + endpoint.to_string() +
                        " failed: " + ::gai_strerror(rc));
    }
    int fd = -1;
    int last_err = 0;
    for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, SOCK_STREAM, 0);
      if (fd < 0) {
        last_err = errno;
        continue;
      }
      int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, ai->ai_addr,
                 static_cast<socklen_t>(ai->ai_addrlen)) == 0) {
        break;
      }
      last_err = errno;
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(results);
    if (fd < 0) {
      STARSIM_THROW(support::IoError,
                    "bind to " + endpoint.to_string() +
                        " failed: " + std::strerror(last_err));
    }
    if (::listen(fd, 64) != 0) {
      const int err = errno;
      ::close(fd);
      STARSIM_THROW(support::IoError,
                    "listen on " + endpoint.to_string() +
                        " failed: " + std::strerror(err));
    }
    set_nonblocking(fd);
    Endpoint bound = endpoint;
    // Port 0 asked the kernel to pick; read back the real port so tests
    // (and discovery) can dial the listener.
    sockaddr_storage local{};
    socklen_t local_len = sizeof(local);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&local),
                      &local_len) == 0) {
      if (local.ss_family == AF_INET) {
        bound.port = ntohs(
            reinterpret_cast<const sockaddr_in*>(&local)->sin_port);
      } else if (local.ss_family == AF_INET6) {
        bound.port = ntohs(
            reinterpret_cast<const sockaddr_in6*>(&local)->sin6_port);
      }
    }
    return FrameListener(fd, std::move(bound));
  }

  const sockaddr_un addr = unix_address(endpoint.path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    STARSIM_THROW(support::IoError,
                  std::string("socket() failed: ") + std::strerror(errno));
  }
  ::unlink(endpoint.path.c_str());  // a stale path from a crashed predecessor
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    STARSIM_THROW(support::IoError,
                  "bind to " + endpoint.path +
                      " failed: " + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(endpoint.path.c_str());
    STARSIM_THROW(support::IoError,
                  "listen on " + endpoint.path +
                      " failed: " + std::strerror(err));
  }
  set_nonblocking(fd);
  return FrameListener(fd, endpoint);
}

FrameListener FrameListener::bind(const std::string& spec) {
  return bind(Endpoint::parse(spec));
}

std::optional<FrameSocket> FrameListener::accept(double wait_s) {
  STARSIM_REQUIRE(valid(), "accept on a closed listener");
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int budget =
      wait_s <= 0.0 ? 0 : std::max(1, static_cast<int>(wait_s * 1e3));
  const int ready = ::poll(&pfd, 1, budget);
  if (ready <= 0) return std::nullopt;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return std::nullopt;
  if (endpoint_.is_tcp()) set_tcp_nodelay(client);
  return FrameSocket::adopt(client);
}

}  // namespace starsim::fleet
