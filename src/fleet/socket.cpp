#include "fleet/socket.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "support/error.h"

namespace starsim::fleet {

namespace {

[[nodiscard]] double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Milliseconds until the absolute deadline, clamped for poll(): at least
/// 1ms while any time remains (a 0 would busy-spin), -1-free — an expired
/// deadline returns 0 so callers throw instead of blocking.
[[nodiscard]] int poll_budget_ms(double deadline_s) {
  const double remaining = deadline_s - steady_now_s();
  if (remaining <= 0.0) return 0;
  const double ms = remaining * 1e3;
  if (ms < 1.0) return 1;
  if (ms > 60'000.0) return 60'000;
  return static_cast<int>(ms);
}

/// Wait until `fd` is ready for `events` or the deadline passes. Throws
/// TransportTimeoutError on deadline, ShardDownError on hangup/error.
void wait_ready(int fd, short events, double deadline_s, const char* verb) {
  for (;;) {
    const int budget = poll_budget_ms(deadline_s);
    if (budget == 0) {
      STARSIM_THROW(support::TransportTimeoutError,
                    std::string("socket ") + verb + " deadline expired");
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int ready = ::poll(&pfd, 1, budget);
    if (ready < 0) {
      if (errno == EINTR) continue;  // re-check the deadline and re-arm
      STARSIM_THROW(support::ShardDownError,
                    std::string("socket poll failed: ") +
                        std::strerror(errno));
    }
    if (ready == 0) {
      STARSIM_THROW(support::TransportTimeoutError,
                    std::string("socket ") + verb + " deadline expired");
    }
    // POLLHUP with readable data still delivers the data; let read()
    // observe the EOF. POLLERR alone means the connection is gone.
    if ((pfd.revents & POLLERR) != 0 &&
        (pfd.revents & (POLLIN | POLLOUT)) == 0) {
      STARSIM_THROW(support::ShardDownError, "socket peer error");
    }
    return;
  }
}

void set_nonblocking(int fd) {
  // All I/O goes through poll() + retry loops, so the descriptor must never
  // block inside read/write themselves.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

FrameSocket::~FrameSocket() { close(); }

FrameSocket::FrameSocket(FrameSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

FrameSocket& FrameSocket::operator=(FrameSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void FrameSocket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FrameSocket FrameSocket::connect(const std::string& path, double timeout_s) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    STARSIM_THROW(support::IoError,
                  "socket path too long for sockaddr_un: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    STARSIM_THROW(support::IoError,
                  std::string("socket() failed: ") + std::strerror(errno));
  }
  set_nonblocking(fd);

  const double deadline_s = steady_now_s() + timeout_s;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      const int err = errno;
      ::close(fd);
      // ENOENT / ECONNREFUSED: the shard process is not there (yet) — the
      // same "peer absent" signal as a killed shard, so retryable.
      STARSIM_THROW(support::ShardDownError,
                    "connect to " + path + " failed: " + std::strerror(err));
    }
    // Async connect: wait for writability, then read the final status.
    try {
      wait_ready(fd, POLLOUT, deadline_s, "connect");
    } catch (...) {
      ::close(fd);
      throw;
    }
    int status = 0;
    socklen_t len = sizeof(status);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &status, &len) != 0 ||
        status != 0) {
      ::close(fd);
      STARSIM_THROW(support::ShardDownError,
                    "connect to " + path +
                        " failed: " + std::strerror(status != 0 ? status
                                                                : errno));
    }
  }
  return FrameSocket(fd);
}

FrameSocket FrameSocket::adopt(int fd) {
  set_nonblocking(fd);
  return FrameSocket(fd);
}

void FrameSocket::send_frame(const WireBuffer& frame, double deadline_s) {
  STARSIM_REQUIRE(valid(), "send_frame on a closed socket");
  if (frame.size() > kMaxFrameBytes) {
    STARSIM_THROW(support::WireFormatError,
                  "frame exceeds transport ceiling: " +
                      std::to_string(frame.size()) + " bytes");
  }
  // Length prefix + payload as one logical message; loop over partial
  // writes on each piece.
  std::uint8_t prefix[4];
  const auto size = static_cast<std::uint32_t>(frame.size());
  for (int shift = 0; shift < 32; shift += 8) {
    prefix[shift / 8] = static_cast<std::uint8_t>(size >> shift);
  }
  const auto send_all = [&](const std::uint8_t* data, std::size_t count) {
    std::size_t sent = 0;
    while (sent < count) {
      const ssize_t n =
          ::send(fd_, data + sent, count - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        wait_ready(fd_, POLLOUT, deadline_s, "send");
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      STARSIM_THROW(support::ShardDownError,
                    std::string("socket send failed: ") +
                        std::strerror(errno));
    }
  };
  send_all(prefix, sizeof(prefix));
  send_all(frame.data(), frame.size());
}

std::optional<WireBuffer> FrameSocket::recv_frame(double deadline_s) {
  STARSIM_REQUIRE(valid(), "recv_frame on a closed socket");
  // Receive exactly `count` bytes; at_boundary=true permits a clean EOF
  // before the first byte (peer closed between frames).
  const auto recv_all = [&](std::uint8_t* data, std::size_t count,
                            bool at_boundary) -> bool {
    std::size_t got = 0;
    while (got < count) {
      const ssize_t n = ::recv(fd_, data + got, count - got, 0);
      if (n > 0) {
        got += static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0) {
        if (at_boundary && got == 0) return false;  // orderly EOF
        STARSIM_THROW(support::ShardDownError,
                      "socket peer closed mid-frame");
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_ready(fd_, POLLIN, deadline_s, "recv");
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == ECONNRESET || errno == EPIPE) {
        STARSIM_THROW(support::ShardDownError,
                      "socket peer reset mid-frame");
      }
      STARSIM_THROW(support::ShardDownError,
                    std::string("socket recv failed: ") +
                        std::strerror(errno));
    }
    return true;
  };

  std::uint8_t prefix[4];
  if (!recv_all(prefix, sizeof(prefix), /*at_boundary=*/true)) {
    return std::nullopt;
  }
  std::uint32_t size = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    size |= static_cast<std::uint32_t>(prefix[shift / 8]) << shift;
  }
  if (size > kMaxFrameBytes) {
    STARSIM_THROW(support::WireFormatError,
                  "frame length prefix exceeds transport ceiling: " +
                      std::to_string(size) + " bytes");
  }
  WireBuffer frame(size);
  if (size > 0) {
    (void)recv_all(frame.data(), frame.size(), /*at_boundary=*/false);
  }
  return frame;
}

bool FrameSocket::readable(double wait_s) const {
  if (!valid()) return false;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int budget =
      wait_s <= 0.0 ? 0 : std::max(1, static_cast<int>(wait_s * 1e3));
  return ::poll(&pfd, 1, budget) > 0 &&
         (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

FrameListener::~FrameListener() { close(); }

FrameListener::FrameListener(FrameListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {
  other.path_.clear();
}

FrameListener& FrameListener::operator=(FrameListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

void FrameListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

FrameListener FrameListener::bind(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    STARSIM_THROW(support::IoError,
                  "socket path too long for sockaddr_un: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    STARSIM_THROW(support::IoError,
                  std::string("socket() failed: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // a stale path from a crashed predecessor
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    STARSIM_THROW(support::IoError,
                  "bind to " + path + " failed: " + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    STARSIM_THROW(support::IoError,
                  "listen on " + path + " failed: " + std::strerror(err));
  }
  set_nonblocking(fd);
  return FrameListener(fd, path);
}

std::optional<FrameSocket> FrameListener::accept(double wait_s) {
  STARSIM_REQUIRE(valid(), "accept on a closed listener");
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int budget =
      wait_s <= 0.0 ? 0 : std::max(1, static_cast<int>(wait_s * 1e3));
  const int ready = ::poll(&pfd, 1, budget);
  if (ready <= 0) return std::nullopt;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return std::nullopt;
  return FrameSocket::adopt(client);
}

}  // namespace starsim::fleet
