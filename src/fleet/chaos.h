// ChaosTransport — seeded, deterministic network-fault injection over any
// Transport.
//
// PR 8 proved the fleet survives process failure (SIGKILL, SIGSTOP, crash
// loops); this decorator makes network failure testable with the same
// rigor. It wraps an inner Transport and injects the faults a real network
// produces — drop, delay (fixed plus jittered), duplicate, reorder,
// bit-corruption, and full or asymmetric partition — from a seeded PRNG,
// so a chaos run is a pure function of (seed, request order): a failure
// reproduces from its seed, and CI can assert exact invariants instead of
// statistical ones.
//
// Faults act on whole frames at the transport boundary, which keeps the
// semantics honest:
//
//  - drop / partition-blocked frames surface as TransportTimeoutError,
//    exactly what a vanished packet costs a dialer — but *immediately*,
//    not after burning the wall-clock deadline, so chaos suites stay fast
//    and no request can outlive its budget.
//  - an asymmetric partition (requests pass, replies blocked) still
//    delivers the request to the shard — the shard renders, the reply
//    evaporates. That asymmetry is what distinguishes "partitioned" from
//    "dead": the process is alive and working, only unreachable, and the
//    supervisor must route around it rather than respawn it.
//  - corruption flips exactly one seeded-random bit of the reply frame;
//    the wire header's CRC must turn every such frame into
//    WireFormatError (tests/test_fleet_net.cpp sweeps this 10k deep).
//  - reorder holds a reply until the next one passes, swapping delivery
//    order without ever crossing reply bytes between requests.
//
// dead() delegates to the inner transport untouched: a partitioned shard
// is NOT dead, and the supervisor's partition rung (route around, keep
// the process) keys off heartbeat_age_ms() — which, while partitioned,
// reports the partition's age, modeling the heartbeats the network ate.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "fleet/transport.h"

namespace starsim::fleet {

/// Fault rates and shapes. All rates are per-request probabilities in
/// [0, 1]; everything draws from one seeded PRNG stream so runs replay.
struct ChaosNetOptions {
  std::uint64_t seed = 0;
  double drop_rate = 0.0;        ///< request vanishes; dialer times out
  double delay_ms = 0.0;         ///< fixed reply delay (every request)
  double delay_jitter_ms = 0.0;  ///< uniform extra delay in [0, jitter)
  double duplicate_rate = 0.0;   ///< request sent twice; one reply wins
  double reorder_rate = 0.0;     ///< reply held until the next one passes
  /// Upper bound on a reorder hold: if no other reply passes within this,
  /// the held reply releases anyway — a hold must never strand a request
  /// on a quiet link.
  double reorder_hold_ms = 25.0;
  double corrupt_rate = 0.0;     ///< one reply bit flipped
  /// Heartbeat-age threshold (ms) reported to the supervisor when the
  /// inner transport has no network of its own (loopback): how stale
  /// liveness must look before the partition rung fires.
  double partition_after_ms = 100.0;
};

/// Deterministic network-fault decorator. Owns the inner transport; a
/// small worker pool applies reply-side faults (delay, corrupt, reorder)
/// off the caller's thread so submit() never blocks on injected latency.
class ChaosTransport final : public Transport {
 public:
  ChaosTransport(std::unique_ptr<Transport> inner, ChaosNetOptions options);
  ~ChaosTransport() override;

  [[nodiscard]] PendingReply submit(
      const WireBuffer& frame, std::optional<double> io_budget_s) override;
  [[nodiscard]] bool dead() override { return inner_->dead(); }
  void crash() override { inner_->crash(); }
  void wedge() override { inner_->wedge(); }
  [[nodiscard]] bool respawn() override { return inner_->respawn(); }
  void shutdown() override;
  [[nodiscard]] std::size_t queue_depth() override {
    return inner_->queue_depth();
  }
  [[nodiscard]] std::size_t queue_capacity() override {
    return inner_->queue_capacity();
  }
  /// While partitioned: the partition's age (the heartbeats the network
  /// ate). Otherwise the inner transport's heartbeat age.
  [[nodiscard]] double heartbeat_age_ms() override;
  [[nodiscard]] std::vector<trace::MetricFamily> metric_families() override;
  [[nodiscard]] int index() const override { return inner_->index(); }
  [[nodiscard]] const std::string& instance() const override {
    return inner_->instance();
  }
  [[nodiscard]] TransportStats stats() override { return inner_->stats(); }
  [[nodiscard]] TransportNetStats net_stats() override;
  [[nodiscard]] double partition_after_ms() override;
  [[nodiscard]] Shard* loopback_shard() override {
    return inner_->loopback_shard();
  }

  /// Script a partition. `block_requests` stops frames reaching the shard;
  /// `block_replies` lets requests through but eats the replies
  /// (asymmetric — the shard renders for nobody). Both true is a full
  /// partition. Idempotent; the partition clock starts at the first call.
  void partition(bool block_requests, bool block_replies);
  /// Heal the partition: traffic flows, the partition clock resets.
  void heal();
  [[nodiscard]] bool partitioned() const;

  [[nodiscard]] Transport& inner() { return *inner_; }

 private:
  struct HeldReply {
    std::shared_ptr<std::promise<WireBuffer>> promise;
    WireBuffer bytes;
  };

  /// One uniform draw in [0, 1) from the seeded stream.
  [[nodiscard]] double roll();
  void enqueue(std::function<void()> task);
  void worker_loop();
  /// Settle `bytes` into `promise`, honouring a pending reorder hold.
  void settle(std::shared_ptr<std::promise<WireBuffer>> promise,
              WireBuffer bytes, bool reorder);

  std::unique_ptr<Transport> inner_;
  ChaosNetOptions options_;

  mutable std::mutex mutex_;  ///< RNG, partition state, counters, hold slot
  std::uint64_t rng_state_;
  bool block_requests_ = false;
  bool block_replies_ = false;
  double partition_since_s_ = 0.0;
  std::optional<HeldReply> held_;

  std::uint64_t faults_dropped_ = 0;
  std::uint64_t faults_delayed_ = 0;
  std::uint64_t faults_duplicated_ = 0;
  std::uint64_t faults_reordered_ = 0;
  std::uint64_t faults_corrupted_ = 0;
  std::uint64_t faults_partitioned_ = 0;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> tasks_;
  bool closed_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace starsim::fleet
