#include "fleet/wire.h"

#include <array>
#include <cstring>
#include <string>

#include "starsim/attitude.h"
#include "support/error.h"

namespace starsim::fleet {

namespace {

/// IEEE 802.3 CRC32 lookup table (reflected polynomial 0xEDB88320),
/// generated once on first use.
const std::uint32_t* crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table.data();
}

/// The CRC input is the kind byte plus the payload — everything after the
/// magic/version/crc fields — so a flipped dispatch byte fails integrity
/// instead of routing a response frame through the error decoder.
[[nodiscard]] std::uint32_t frame_crc(std::span<const std::uint8_t> frame) {
  std::uint32_t crc = wire_crc32(frame.subspan(3, 1));
  return wire_crc32(frame.subspan(kWireHeaderBytes), crc);
}

/// Append-only frame builder. All integers are written little-endian-style
/// byte by byte; floats travel as their raw bit patterns, so values
/// round-trip bit-exactly on any platform with IEEE-754 layout. take()
/// seals the frame: the header CRC is computed over the finished payload.
class Writer {
 public:
  explicit Writer(MessageKind kind) {
    buffer_.reserve(64);
    u8(kWireMagic0);
    u8(kWireMagic1);
    u8(kWireVersion);
    u8(static_cast<std::uint8_t>(kind));
    u32(0);  // CRC placeholder, patched by take()
  }

  void u8(std::uint8_t value) { buffer_.push_back(value); }

  void u32(std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  }

  void u64(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  }

  void i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }

  void f32(float value) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    u32(bits);
  }

  void f64(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    u64(bits);
  }

  void boolean(bool value) { u8(value ? 1 : 0); }

  void str(const std::string& value) {
    u32(static_cast<std::uint32_t>(value.size()));
    buffer_.insert(buffer_.end(), value.begin(), value.end());
  }

  [[nodiscard]] WireBuffer take() {
    const std::uint32_t crc = frame_crc(buffer_);
    for (int shift = 0; shift < 32; shift += 8) {
      buffer_[4 + static_cast<std::size_t>(shift / 8)] =
          static_cast<std::uint8_t>(crc >> shift);
    }
    return std::move(buffer_);
  }

 private:
  WireBuffer buffer_;
};

[[nodiscard]] std::uint32_t header_crc(std::span<const std::uint8_t> frame) {
  std::uint32_t crc = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    crc |= static_cast<std::uint32_t>(frame[4 + static_cast<std::size_t>(
                                              shift / 8)])
           << shift;
  }
  return crc;
}

/// Shared header validation for Reader and frame_kind: magic, version,
/// length, CRC — in that order, so the error message names the first
/// integrity layer that failed.
void check_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kWireHeaderBytes) {
    STARSIM_THROW(support::WireFormatError,
                  "wire frame shorter than its header");
  }
  if (bytes[0] != kWireMagic0 || bytes[1] != kWireMagic1) {
    STARSIM_THROW(support::WireFormatError, "wire frame has bad magic");
  }
  if (bytes[2] != kWireVersion) {
    STARSIM_THROW(support::WireFormatError,
                  "wire version mismatch: frame v" + std::to_string(bytes[2]) +
                      ", decoder v" + std::to_string(kWireVersion));
  }
  if (frame_crc(bytes) != header_crc(bytes)) {
    STARSIM_THROW(support::WireFormatError,
                  "wire frame failed CRC32 integrity check");
  }
}

/// Bounds-checked frame reader; every underrun throws WireFormatError
/// before any out-of-range access.
class Reader {
 public:
  Reader(std::span<const std::uint8_t> bytes, MessageKind expected)
      : bytes_(bytes) {
    check_header(bytes_);
    if (bytes_[3] != static_cast<std::uint8_t>(expected)) {
      STARSIM_THROW(support::WireFormatError,
                    "unexpected wire message kind " +
                        std::to_string(bytes_[3]));
    }
    offset_ = kWireHeaderBytes;
  }

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return bytes_[offset_++];
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(bytes_[offset_++]) << shift;
    }
    return value;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<std::uint64_t>(bytes_[offset_++]) << shift;
    }
    return value;
  }

  [[nodiscard]] std::int32_t i32() {
    return static_cast<std::int32_t>(u32());
  }

  [[nodiscard]] float f32() {
    const std::uint32_t bits = u32();
    float value = 0.0f;
    std::memcpy(&value, &bits, sizeof value);
    return value;
  }

  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof value);
    return value;
  }

  [[nodiscard]] bool boolean() { return u8() != 0; }

  [[nodiscard]] std::string str() {
    const std::uint32_t size = u32();
    need(size);
    std::string value(reinterpret_cast<const char*>(bytes_.data() + offset_),
                      size);
    offset_ += size;
    return value;
  }

  void expect_exhausted() const {
    if (offset_ != bytes_.size()) {
      STARSIM_THROW(support::WireFormatError,
                    "wire frame has " +
                        std::to_string(bytes_.size() - offset_) +
                        " trailing byte(s)");
    }
  }

 private:
  void need(std::size_t count) const {
    if (bytes_.size() - offset_ < count) {
      STARSIM_THROW(support::WireFormatError,
                    "wire frame truncated at offset " +
                        std::to_string(offset_));
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

void write_scene(Writer& w, const SceneConfig& scene) {
  w.i32(scene.image_width);
  w.i32(scene.image_height);
  w.i32(scene.roi_side);
  w.f64(scene.psf_sigma);
  w.boolean(scene.pixel_integration);
  w.f64(scene.brightness.proportion_factor);
  w.f64(scene.brightness.magnitude_base);
  w.f64(scene.magnitude_min);
  w.f64(scene.magnitude_max);
}

SceneConfig read_scene(Reader& r) {
  SceneConfig scene;
  scene.image_width = r.i32();
  scene.image_height = r.i32();
  scene.roi_side = r.i32();
  scene.psf_sigma = r.f64();
  scene.pixel_integration = r.boolean();
  scene.brightness.proportion_factor = r.f64();
  scene.brightness.magnitude_base = r.f64();
  scene.magnitude_min = r.f64();
  scene.magnitude_max = r.f64();
  return scene;
}

void write_counters(Writer& w, const gpusim::KernelCounters& c) {
  w.u64(c.blocks_launched);
  w.u64(c.threads_launched);
  w.u64(c.warps_launched);
  w.u64(c.flops);
  w.u64(c.global_reads);
  w.u64(c.global_writes);
  w.u64(c.global_bytes_read);
  w.u64(c.global_bytes_written);
  w.u64(c.global_transactions);
  w.u64(c.shared_reads);
  w.u64(c.shared_writes);
  w.u64(c.shared_bank_conflicts);
  w.u64(c.atomic_ops);
  w.u64(c.atomic_conflicts);
  w.u64(c.texture_fetches);
  w.u64(c.texture_hits);
  w.u64(c.texture_misses);
  w.u64(c.barriers);
  w.u64(c.branch_sites_evaluated);
  w.u64(c.divergent_warp_branches);
}

gpusim::KernelCounters read_counters(Reader& r) {
  gpusim::KernelCounters c;
  c.blocks_launched = r.u64();
  c.threads_launched = r.u64();
  c.warps_launched = r.u64();
  c.flops = r.u64();
  c.global_reads = r.u64();
  c.global_writes = r.u64();
  c.global_bytes_read = r.u64();
  c.global_bytes_written = r.u64();
  c.global_transactions = r.u64();
  c.shared_reads = r.u64();
  c.shared_writes = r.u64();
  c.shared_bank_conflicts = r.u64();
  c.atomic_ops = r.u64();
  c.atomic_conflicts = r.u64();
  c.texture_fetches = r.u64();
  c.texture_hits = r.u64();
  c.texture_misses = r.u64();
  c.barriers = r.u64();
  c.branch_sites_evaluated = r.u64();
  c.divergent_warp_branches = r.u64();
  return c;
}

[[nodiscard]] WireErrorKind classify(const std::exception& error) {
  // Most-derived first: the decoder reconstructs exactly this class.
  if (dynamic_cast<const support::HandshakeError*>(&error) != nullptr) {
    return WireErrorKind::kHandshake;
  }
  if (dynamic_cast<const support::TransportTimeoutError*>(&error) != nullptr) {
    return WireErrorKind::kTransportTimeout;
  }
  if (dynamic_cast<const support::ShardDownError*>(&error) != nullptr) {
    return WireErrorKind::kShardDown;
  }
  if (dynamic_cast<const support::OverloadShedError*>(&error) != nullptr) {
    return WireErrorKind::kOverloadShed;
  }
  if (dynamic_cast<const support::DeadlineExceededError*>(&error) != nullptr) {
    return WireErrorKind::kDeadlineExceeded;
  }
  if (dynamic_cast<const support::SanitizerError*>(&error) != nullptr) {
    return WireErrorKind::kSanitizer;
  }
  if (dynamic_cast<const support::DeviceLostError*>(&error) != nullptr) {
    return WireErrorKind::kDeviceLost;
  }
  if (dynamic_cast<const support::KernelTimeoutError*>(&error) != nullptr) {
    return WireErrorKind::kKernelTimeout;
  }
  if (dynamic_cast<const support::TransferError*>(&error) != nullptr) {
    return WireErrorKind::kTransfer;
  }
  if (dynamic_cast<const support::DeviceError*>(&error) != nullptr) {
    return WireErrorKind::kDevice;
  }
  if (dynamic_cast<const support::IoError*>(&error) != nullptr) {
    return WireErrorKind::kIo;
  }
  if (dynamic_cast<const support::PreconditionError*>(&error) != nullptr) {
    return WireErrorKind::kPrecondition;
  }
  return WireErrorKind::kGeneric;
}

[[noreturn]] void rethrow(WireErrorKind kind, const std::string& what,
                          bool retryable) {
  switch (kind) {
    case WireErrorKind::kHandshake:
      throw support::HandshakeError(what);
    case WireErrorKind::kTransportTimeout:
      throw support::TransportTimeoutError(what);
    case WireErrorKind::kShardDown:
      throw support::ShardDownError(what);
    case WireErrorKind::kOverloadShed:
      throw support::OverloadShedError(what);
    case WireErrorKind::kDeadlineExceeded:
      throw support::DeadlineExceededError(what);
    case WireErrorKind::kSanitizer:
      throw support::SanitizerError(what);
    case WireErrorKind::kDeviceLost:
      throw support::DeviceLostError(what);
    case WireErrorKind::kKernelTimeout:
      throw support::KernelTimeoutError(what, retryable);
    case WireErrorKind::kTransfer:
      throw support::TransferError(what, retryable);
    case WireErrorKind::kDevice:
      throw support::DeviceError(what, retryable);
    case WireErrorKind::kIo:
      throw support::IoError(what);
    case WireErrorKind::kPrecondition:
      throw support::PreconditionError(what);
    case WireErrorKind::kGeneric:
      break;
  }
  throw support::Error(what, retryable);
}

/// Range-checked enum reads: the header promises malformed frames always
/// throw WireFormatError, so a raw byte must never become an out-of-range
/// enumerator that downstream switches would misdispatch.
[[nodiscard]] SimulatorKind read_simulator(Reader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(SimulatorKind::kCpuParallel)) {
    STARSIM_THROW(support::WireFormatError,
                  "wire simulator kind out of range");
  }
  return static_cast<SimulatorKind>(raw);
}

[[nodiscard]] serve::RequestPriority read_priority(Reader& r) {
  const std::uint8_t raw = r.u8();
  if (raw >= serve::kPriorityClasses) {
    STARSIM_THROW(support::WireFormatError, "wire priority out of range");
  }
  return static_cast<serve::RequestPriority>(raw);
}

}  // namespace

std::uint32_t wire_crc32(std::span<const std::uint8_t> bytes,
                         std::uint32_t seed) {
  const std::uint32_t* table = crc_table();
  std::uint32_t crc = ~seed;
  for (const std::uint8_t byte : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xffu];
  }
  return ~crc;
}

void reseal_frame(WireBuffer& frame) {
  if (frame.size() < kWireHeaderBytes) {
    STARSIM_THROW(support::WireFormatError,
                  "cannot reseal a frame shorter than its header");
  }
  const std::uint32_t crc = frame_crc(frame);
  for (int shift = 0; shift < 32; shift += 8) {
    frame[4 + static_cast<std::size_t>(shift / 8)] =
        static_cast<std::uint8_t>(crc >> shift);
  }
}

MessageKind frame_kind(std::span<const std::uint8_t> bytes) {
  check_header(bytes);
  const std::uint8_t raw = bytes[3];
  if (raw < static_cast<std::uint8_t>(MessageKind::kRequest) ||
      raw > static_cast<std::uint8_t>(MessageKind::kHelloAck)) {
    STARSIM_THROW(support::WireFormatError,
                  "wire message kind out of range: " + std::to_string(raw));
  }
  return static_cast<MessageKind>(raw);
}

WireBuffer encode_heartbeat(const Heartbeat& beat) {
  Writer w(MessageKind::kHeartbeat);
  w.u64(beat.sequence);
  return w.take();
}

Heartbeat decode_heartbeat(std::span<const std::uint8_t> bytes) {
  Reader r(bytes, MessageKind::kHeartbeat);
  Heartbeat beat;
  beat.sequence = r.u64();
  r.expect_exhausted();
  return beat;
}

WireBuffer encode_heartbeat_ack(const HeartbeatAck& ack) {
  Writer w(MessageKind::kHeartbeatAck);
  w.u64(ack.sequence);
  w.u64(ack.queue_depth);
  w.u64(ack.queue_capacity);
  w.u64(ack.completed);
  return w.take();
}

HeartbeatAck decode_heartbeat_ack(std::span<const std::uint8_t> bytes) {
  Reader r(bytes, MessageKind::kHeartbeatAck);
  HeartbeatAck ack;
  ack.sequence = r.u64();
  ack.queue_depth = r.u64();
  ack.queue_capacity = r.u64();
  ack.completed = r.u64();
  r.expect_exhausted();
  return ack;
}

WireBuffer encode_hello(const Hello& hello) {
  Writer w(MessageKind::kHello);
  w.u8(hello.protocol_version);
  w.i32(hello.shard_index);
  w.str(hello.token);
  return w.take();
}

Hello decode_hello(std::span<const std::uint8_t> bytes) {
  Reader r(bytes, MessageKind::kHello);
  Hello hello;
  hello.protocol_version = r.u8();
  hello.shard_index = r.i32();
  hello.token = r.str();
  r.expect_exhausted();
  return hello;
}

WireBuffer encode_hello_ack(const HelloAck& ack) {
  Writer w(MessageKind::kHelloAck);
  w.u8(ack.protocol_version);
  w.i32(ack.shard_index);
  return w.take();
}

HelloAck decode_hello_ack(std::span<const std::uint8_t> bytes) {
  Reader r(bytes, MessageKind::kHelloAck);
  HelloAck ack;
  ack.protocol_version = r.u8();
  ack.shard_index = r.i32();
  r.expect_exhausted();
  return ack;
}

WireBuffer encode_stats_request() {
  Writer w(MessageKind::kStatsRequest);
  return w.take();
}

WireBuffer encode_stats_reply(
    const std::vector<trace::MetricFamily>& families) {
  Writer w(MessageKind::kStatsReply);
  w.u32(static_cast<std::uint32_t>(families.size()));
  for (const trace::MetricFamily& family : families) {
    w.str(family.name);
    w.str(family.help);
    w.u8(static_cast<std::uint8_t>(family.type));
    w.u32(static_cast<std::uint32_t>(family.samples.size()));
    for (const trace::MetricSample& sample : family.samples) {
      w.str(sample.suffix);
      w.u32(static_cast<std::uint32_t>(sample.labels.size()));
      for (const trace::MetricLabel& label : sample.labels) {
        w.str(label.name);
        w.str(label.value);
      }
      w.f64(sample.value);
    }
  }
  return w.take();
}

std::vector<trace::MetricFamily> decode_stats_reply(
    std::span<const std::uint8_t> bytes) {
  Reader r(bytes, MessageKind::kStatsReply);
  const std::uint32_t family_count = r.u32();
  // A family needs at least its two length-prefixed strings, a type byte
  // and a sample count (13 bytes empty) — reject impossible counts before
  // reserving.
  if (family_count > bytes.size() / 13) {
    STARSIM_THROW(support::WireFormatError,
                  "wire stats family count exceeds frame size");
  }
  std::vector<trace::MetricFamily> families;
  families.reserve(family_count);
  for (std::uint32_t i = 0; i < family_count; ++i) {
    trace::MetricFamily family;
    family.name = r.str();
    family.help = r.str();
    const std::uint8_t raw_type = r.u8();
    if (raw_type > static_cast<std::uint8_t>(trace::MetricType::kHistogram)) {
      STARSIM_THROW(support::WireFormatError,
                    "wire metric type out of range");
    }
    family.type = static_cast<trace::MetricType>(raw_type);
    const std::uint32_t sample_count = r.u32();
    if (sample_count > bytes.size() / 16) {
      STARSIM_THROW(support::WireFormatError,
                    "wire stats sample count exceeds frame size");
    }
    family.samples.reserve(sample_count);
    for (std::uint32_t s = 0; s < sample_count; ++s) {
      trace::MetricSample sample;
      sample.suffix = r.str();
      const std::uint32_t label_count = r.u32();
      if (label_count > bytes.size() / 8) {
        STARSIM_THROW(support::WireFormatError,
                      "wire stats label count exceeds frame size");
      }
      sample.labels.reserve(label_count);
      for (std::uint32_t l = 0; l < label_count; ++l) {
        trace::MetricLabel label;
        label.name = r.str();
        label.value = r.str();
        sample.labels.push_back(std::move(label));
      }
      sample.value = r.f64();
      family.samples.push_back(std::move(sample));
    }
    families.push_back(std::move(family));
  }
  r.expect_exhausted();
  return families;
}

WireBuffer encode_request(const serve::RenderRequest& request) {
  Writer w(MessageKind::kRequest);
  write_scene(w, request.scene);
  w.u64(request.stars.size());
  for (const Star& star : request.stars) {
    w.f32(star.magnitude);
    w.f32(star.x);
    w.f32(star.y);
    w.f32(star.weight);
  }
  w.boolean(request.attitude.has_value());
  if (request.attitude.has_value()) {
    w.f64(request.attitude->w());
    w.f64(request.attitude->x());
    w.f64(request.attitude->y());
    w.f64(request.attitude->z());
  }
  w.boolean(request.simulator.has_value());
  if (request.simulator.has_value()) {
    w.u8(static_cast<std::uint8_t>(*request.simulator));
  }
  w.u8(static_cast<std::uint8_t>(request.priority));
  w.boolean(request.deadline_s.has_value());
  if (request.deadline_s.has_value()) w.f64(*request.deadline_s);
  w.boolean(request.sanitize);
  return w.take();
}

serve::RenderRequest decode_request(std::span<const std::uint8_t> bytes) {
  Reader r(bytes, MessageKind::kRequest);
  serve::RenderRequest request;
  request.scene = read_scene(r);
  const std::uint64_t star_count = r.u64();
  // 16 encoded bytes per star: a frame cannot legitimately promise more
  // stars than it has bytes, so reject early instead of allocating.
  if (star_count > bytes.size() / 16) {
    STARSIM_THROW(support::WireFormatError,
                  "wire star count exceeds frame size");
  }
  request.stars.reserve(static_cast<std::size_t>(star_count));
  for (std::uint64_t i = 0; i < star_count; ++i) {
    Star star;
    star.magnitude = r.f32();
    star.x = r.f32();
    star.y = r.f32();
    star.weight = r.f32();
    request.stars.push_back(star);
  }
  if (r.boolean()) {
    const double qw = r.f64();
    const double qx = r.f64();
    const double qy = r.f64();
    const double qz = r.f64();
    request.attitude = Quaternion(qw, qx, qy, qz);
  }
  if (r.boolean()) {
    request.simulator = read_simulator(r);
  }
  request.priority = read_priority(r);
  if (r.boolean()) request.deadline_s = r.f64();
  request.sanitize = r.boolean();
  r.expect_exhausted();
  return request;
}

WireBuffer encode_response(const serve::RenderResponse& response) {
  STARSIM_REQUIRE(response.result != nullptr,
                  "cannot encode a response without a result");
  Writer w(MessageKind::kResponse);
  const SimulationResult& result = *response.result;
  w.i32(result.image.width());
  w.i32(result.image.height());
  for (const float pixel : result.image.pixels()) w.f32(pixel);
  const TimingBreakdown& t = result.timing;
  w.f64(t.kernel_s);
  w.f64(t.h2d_s);
  w.f64(t.d2h_s);
  w.f64(t.lut_build_s);
  w.f64(t.texture_bind_s);
  w.f64(t.host_compute_s);
  w.f64(t.host_reduce_s);
  w.f64(t.wall_s);
  write_counters(w, t.counters);
  w.f64(t.utilization);
  w.f64(t.achieved_gflops);
  w.u8(static_cast<std::uint8_t>(response.simulator));
  w.f64(response.latency.queue_wait_s);
  w.f64(response.latency.batch_wait_s);
  w.f64(response.latency.render_wall_s);
  w.f64(response.latency.kernel_s);
  w.f64(response.latency.non_kernel_s);
  w.f64(response.latency.total_s);
  w.u64(response.fingerprint);
  w.u64(response.batch_size);
  w.boolean(response.from_cache);
  w.boolean(response.degraded);
  return w.take();
}

WireBuffer encode_error(const std::exception& error) {
  Writer w(MessageKind::kError);
  const WireErrorKind kind = classify(error);
  const auto* typed = dynamic_cast<const support::Error*>(&error);
  w.u8(static_cast<std::uint8_t>(kind));
  w.boolean(typed != nullptr && typed->retryable());
  w.str(error.what());
  return w.take();
}

bool reply_is_error(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kWireHeaderBytes) {
    STARSIM_THROW(support::WireFormatError,
                  "wire frame shorter than its header");
  }
  return bytes[3] == static_cast<std::uint8_t>(MessageKind::kError);
}

serve::RenderResponse decode_reply(std::span<const std::uint8_t> bytes) {
  if (reply_is_error(bytes)) {
    Reader r(bytes, MessageKind::kError);
    const auto kind = static_cast<WireErrorKind>(r.u8());
    const bool retryable = r.boolean();
    const std::string what = r.str();
    r.expect_exhausted();
    rethrow(kind, what, retryable);
  }
  Reader r(bytes, MessageKind::kResponse);
  serve::RenderResponse response;
  const int width = r.i32();
  const int height = r.i32();
  if (width <= 0 || height <= 0 ||
      static_cast<std::uint64_t>(width) * static_cast<std::uint64_t>(height) >
          bytes.size() / sizeof(float)) {
    STARSIM_THROW(support::WireFormatError,
                  "wire image dimensions exceed frame size");
  }
  SimulationResult result;
  result.image = imageio::ImageF(width, height);
  for (float& pixel : result.image.pixels()) pixel = r.f32();
  TimingBreakdown& t = result.timing;
  t.kernel_s = r.f64();
  t.h2d_s = r.f64();
  t.d2h_s = r.f64();
  t.lut_build_s = r.f64();
  t.texture_bind_s = r.f64();
  t.host_compute_s = r.f64();
  t.host_reduce_s = r.f64();
  t.wall_s = r.f64();
  t.counters = read_counters(r);
  t.utilization = r.f64();
  t.achieved_gflops = r.f64();
  response.simulator = read_simulator(r);
  response.latency.queue_wait_s = r.f64();
  response.latency.batch_wait_s = r.f64();
  response.latency.render_wall_s = r.f64();
  response.latency.kernel_s = r.f64();
  response.latency.non_kernel_s = r.f64();
  response.latency.total_s = r.f64();
  response.fingerprint = r.u64();
  response.batch_size = static_cast<std::size_t>(r.u64());
  response.from_cache = r.boolean();
  response.degraded = r.boolean();
  r.expect_exhausted();
  response.result = std::make_shared<const SimulationResult>(std::move(result));
  return response;
}

}  // namespace starsim::fleet
