// ShardProcess — lifecycle of one out-of-process shard: spawn the
// starsim_shardd binary, watch it via waitpid, signal it for chaos and
// shutdown.
//
// This is deliberately mechanics-only: no health policy lives here. The
// ProcessSupervisor (fleet/supervisor.h) decides *when* to kill, respawn or
// give up; ShardProcess only knows *how* — posix_spawn with an argv built
// from the config, non-blocking waitpid to detect exits without reaping
// races, SIGKILL+reap for crash(), SIGSTOP/SIGCONT for hang chaos, and a
// connect-probe loop after spawn so callers only see a process once its
// socket actually answers.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>

namespace starsim::fleet {

/// Everything needed to exec one shard host. Mirrors the starsim_shardd
/// flag surface; extend both together.
struct ShardProcessConfig {
  std::string shardd_path;   ///< path to the starsim_shardd binary
  std::string socket_path;   ///< Unix socket the shard will listen on
  /// Endpoint spec ("unix:/path" | "tcp:host:port") the shard listens on.
  /// When set it wins over socket_path; empty keeps the Unix-socket
  /// default so every pre-endpoint caller stays valid.
  std::string endpoint;
  int index = 0;
  int workers = 2;
  std::size_t queue_capacity = 64;
  std::size_t max_batch_size = 8;
  std::size_t cache_capacity = 32;
  bool inject_faults = false;
  double fault_rate = 0.0;
  double lost_rate = 0.0;
  std::uint64_t fault_seed = 0;
  double straggler_ms = 0.0;    ///< debug straggler injection (hedging tests)
  double frame_timeout_ms = 30000.0;
  /// How long spawn() waits for the child's socket to answer a connect
  /// before declaring the spawn failed.
  double spawn_wait_s = 10.0;

  /// The spec dialers should connect to: `endpoint` when set, else the
  /// Unix socket path.
  [[nodiscard]] const std::string& endpoint_spec() const {
    return endpoint.empty() ? socket_path : endpoint;
  }
};

class ShardProcess {
 public:
  explicit ShardProcess(ShardProcessConfig config);
  ~ShardProcess();

  ShardProcess(const ShardProcess&) = delete;
  ShardProcess& operator=(const ShardProcess&) = delete;

  /// Spawn the shardd binary and wait until its socket accepts a
  /// connection. Throws support::ShardDownError when the exec fails, the
  /// child exits early, or the socket never comes up within spawn_wait_s.
  void spawn();

  /// True when a child has been spawned and has not been observed to exit.
  /// Performs a non-blocking waitpid, so a crashed child is detected (and
  /// reaped) on the first call after its death.
  [[nodiscard]] bool running();

  /// SIGKILL and reap. The chaos primitive — and the bottom rung of the
  /// supervision ladder (a hung process gets no graceful window).
  void kill_now();

  /// SIGSTOP: wedge the process without killing it (hang chaos — the
  /// process holds its socket open but stops answering).
  void pause();
  /// SIGCONT after pause().
  void resume();

  /// Graceful stop: SIGTERM, wait up to grace_s for exit, then SIGKILL.
  void stop(double grace_s = 5.0);

  [[nodiscard]] pid_t pid() const { return pid_; }
  [[nodiscard]] const ShardProcessConfig& config() const { return config_; }
  /// Spawns attempted over this object's lifetime (respawns increment it).
  [[nodiscard]] std::uint64_t spawn_count() const { return spawn_count_; }

 private:
  void reap_blocking();

  ShardProcessConfig config_;
  pid_t pid_ = -1;
  bool exited_ = true;
  std::uint64_t spawn_count_ = 0;
};

}  // namespace starsim::fleet
