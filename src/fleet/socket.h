// starsim::fleet socket layer — framed message streams over Unix-domain or
// TCP stream sockets, the byte transport under out-of-process shards.
//
// A FrameSocket carries whole wire frames (fleet/wire.h) over a SOCK_STREAM
// connection: each frame travels as a 4-byte little-endian length prefix
// followed by the frame bytes. Stream sockets deliver bytes, not messages,
// so both send and receive loop over partial transfers; every loop iteration
// re-checks an absolute deadline via poll(), so a peer that stops draining
// (or stops sending) costs at most the remaining deadline, never a wedged
// thread. Deadline misses throw support::TransportTimeoutError (retryable —
// another replica or the respawned process can serve the request); peer
// disconnects (EOF, ECONNRESET, EPIPE) throw support::ShardDownError, the
// same signal an in-process killed shard raises, so the router's failover
// path needs no transport-specific cases.
//
// Connect failures are classified by errno, not lumped together: a refused
// or absent peer (ECONNREFUSED, ENOENT, EAGAIN backlog overflow,
// ECONNRESET, EHOSTUNREACH, ENETUNREACH) throws retryable ShardDownError —
// the "shard is not there" signal that charges the supervisor's respawn
// rung — while only a genuinely expired deadline throws
// TransportTimeoutError, the signal that feeds the RTT/RTO path. Before
// this split a refused connection burned the full connect timeout and was
// misclassified as a timeout.
//
// The length prefix is a transport framing concern only — integrity is the
// wire header's job (magic + version + CRC32), which is why recv_frame
// returns raw bytes for the caller to decode rather than trusting the
// prefix. A prefix larger than kMaxFrameBytes fails fast as
// WireFormatError: no peer, however corrupt, can make us allocate
// unboundedly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fleet/endpoint.h"
#include "fleet/wire.h"

namespace starsim::fleet {

/// Hard ceiling on a single frame crossing a socket (64 MiB — comfortably
/// above the largest 4k-image response, far below anything sane a corrupt
/// length prefix could demand).
inline constexpr std::uint32_t kMaxFrameBytes = 64u * 1024u * 1024u;

/// One connected stream carrying length-prefixed wire frames. Movable, not
/// copyable; closes its descriptor on destruction. All deadline parameters
/// are absolute steady-clock seconds (support::WallTimer domain) — callers
/// derive them once from the request's remaining deadline and every
/// partial-transfer loop honours the same instant.
class FrameSocket {
 public:
  FrameSocket() = default;
  ~FrameSocket();

  FrameSocket(FrameSocket&& other) noexcept;
  FrameSocket& operator=(FrameSocket&& other) noexcept;
  FrameSocket(const FrameSocket&) = delete;
  FrameSocket& operator=(const FrameSocket&) = delete;

  /// Connect to an endpoint (Unix path or TCP host:port) within
  /// `timeout_s` seconds. Throws retryable ShardDownError when the peer
  /// refuses, is absent, or resets during the attempt;
  /// TransportTimeoutError only when the deadline genuinely expires.
  [[nodiscard]] static FrameSocket connect(const Endpoint& endpoint,
                                           double timeout_s);

  /// Spec-string convenience: parses `unix:...` / `tcp:...` / bare path.
  [[nodiscard]] static FrameSocket connect(const std::string& spec,
                                           double timeout_s);

  /// Adopt an already-connected descriptor (listener side).
  [[nodiscard]] static FrameSocket adopt(int fd);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Send one frame (length prefix + bytes), finishing before the absolute
  /// deadline `deadline_s` (steady-clock seconds).
  void send_frame(const WireBuffer& frame, double deadline_s);

  /// Receive one frame before the absolute deadline. Returns std::nullopt
  /// on orderly EOF at a frame boundary (peer closed between frames);
  /// throws ShardDownError on mid-frame EOF or reset.
  [[nodiscard]] std::optional<WireBuffer> recv_frame(double deadline_s);

  /// True when the socket has at least one byte readable right now — the
  /// cheap "is the peer talking" poll used by serial request loops.
  [[nodiscard]] bool readable(double wait_s) const;

  void close() noexcept;

 private:
  explicit FrameSocket(int fd) : fd_(fd) {}

  int fd_ = -1;
};

/// Listening stream socket — Unix-domain (unlinks a stale path on bind,
/// removes the path on destruction) or TCP (SO_REUSEADDR; port 0 asks the
/// kernel for an ephemeral port, reported by endpoint()).
class FrameListener {
 public:
  FrameListener() = default;
  ~FrameListener();

  FrameListener(FrameListener&& other) noexcept;
  FrameListener& operator=(FrameListener&& other) noexcept;
  FrameListener(const FrameListener&) = delete;
  FrameListener& operator=(const FrameListener&) = delete;

  /// Bind + listen on `endpoint`. Throws IoError on failure (bad
  /// directory, permissions, path too long for sockaddr_un, port in use).
  [[nodiscard]] static FrameListener bind(const Endpoint& endpoint);

  /// Spec-string convenience: parses `unix:...` / `tcp:...` / bare path.
  [[nodiscard]] static FrameListener bind(const std::string& spec);

  /// Accept one connection, waiting at most `wait_s` seconds. Returns
  /// std::nullopt on timeout so accept loops can poll a stop flag.
  [[nodiscard]] std::optional<FrameSocket> accept(double wait_s);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// The bound address. For TCP with a requested port of 0 this carries
  /// the kernel-assigned port (tests bind tcp:127.0.0.1:0 and read it
  /// back here).
  [[nodiscard]] const Endpoint& endpoint() const { return endpoint_; }

  /// Unix path ("" for TCP listeners) — kept for pre-endpoint callers.
  [[nodiscard]] const std::string& path() const { return endpoint_.path; }

  void close() noexcept;

 private:
  FrameListener(int fd, Endpoint endpoint)
      : fd_(fd), endpoint_(std::move(endpoint)) {}

  int fd_ = -1;
  Endpoint endpoint_;
};

}  // namespace starsim::fleet
