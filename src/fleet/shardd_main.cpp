// starsim_shardd — one fleet shard as a standalone process.
//
// Wraps a single FrameService behind a Unix-domain or TCP socket
// (fleet/shardd.h) so the router's SocketTransport can reach it from
// another process or another machine. The flag set mirrors
// ShardProcessConfig field for field: the router builds this argv in
// fleet/process.cpp, so the two must stay in lockstep.
//
// The handshake token comes from STARSIM_FLEET_TOKEN in the environment,
// never argv — command lines are world-readable via ps.
//
// SIGTERM/SIGINT request an orderly stop: the accept loop closes, admitted
// work drains through the service, and main returns 0. A SIGKILL (the chaos
// suites' crash) skips all of that — which is the point: the supervisor's
// waitpid ladder must notice and respawn.

#include <csignal>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <optional>

#include "fleet/shardd.h"
#include "gpusim/fault_injector.h"
#include "support/cli.h"

namespace {

starsim::fleet::ShardHost* g_host = nullptr;

void handle_signal(int) {
  // Async-signal-safe: request_stop only stores an atomic.
  if (g_host != nullptr) g_host->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  starsim::support::Cli cli(
      "starsim_shardd",
      "Serve one starsim FrameService over a Unix-domain socket");
  cli.add_option("socket",
                 "endpoint to listen on (unix:/path | tcp:host:port | bare "
                 "Unix path)",
                 "");
  cli.add_option("listen",
                 "alias for --socket; wins when both are given", "");
  cli.add_option("index", "shard index (metrics instance label)", "0");
  cli.add_option("workers", "render worker threads", "2");
  cli.add_option("queue", "admission queue capacity", "64");
  cli.add_option("batch", "dynamic batching cap", "8");
  cli.add_option("cache", "rendered-frame LRU capacity", "32");
  cli.add_flag("inject-faults", "enable chaos fault injection");
  cli.add_option("fault-rate", "transient fault rate (with --inject-faults)",
                 "0");
  cli.add_option("lost-rate", "device-lost rate (with --inject-faults)", "0");
  cli.add_option("fault-seed", "fault injection seed", "0");
  cli.add_option("straggler-ms", "sleep per render (slow-replica chaos)",
                 "0");
  cli.add_option("frame-timeout-ms", "mid-frame transfer budget", "30000");

  try {
    if (!cli.parse(argc, argv)) return 0;

    starsim::fleet::ShardHostOptions options;
    options.socket_path = cli.str("socket");
    options.listen = cli.str("listen");
    if (options.socket_path.empty() && options.listen.empty()) {
      std::cerr << "starsim_shardd: --socket or --listen is required\n";
      return 2;
    }
    if (const char* token = std::getenv("STARSIM_FLEET_TOKEN");
        token != nullptr) {
      options.token = token;
    }
    options.index = static_cast<int>(cli.integer("index"));
    options.frame_timeout_s = cli.real("frame-timeout-ms") * 1e-3;
    options.service.workers = static_cast<int>(cli.integer("workers"));
    options.service.queue_capacity =
        static_cast<std::size_t>(cli.integer("queue"));
    options.service.max_batch_size =
        static_cast<std::size_t>(cli.integer("batch"));
    options.service.cache_capacity =
        static_cast<std::size_t>(cli.integer("cache"));
    options.service.worker.debug_straggler_ms = cli.real("straggler-ms");
    if (cli.flag("inject-faults")) {
      options.service.worker.fault_policy = starsim::gpusim::FaultPolicy::chaos(
          cli.real("fault-rate"), cli.real("lost-rate"),
          static_cast<std::uint64_t>(cli.integer("fault-seed")));
    }

    starsim::fleet::ShardHost host(std::move(options));
    g_host = &host;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    // The router drops connections mid-write during failover/timeout chaos;
    // dying on EPIPE would turn every dropped connection into a "crash".
    std::signal(SIGPIPE, SIG_IGN);

    host.run();
    g_host = nullptr;
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "starsim_shardd: " << error.what() << "\n";
    return 1;
  }
}
