#include "fleet/process.h"

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "fleet/socket.h"
#include "support/error.h"

extern char** environ;

namespace starsim::fleet {

namespace {

[[nodiscard]] double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

ShardProcess::ShardProcess(ShardProcessConfig config)
    : config_(std::move(config)) {
  STARSIM_REQUIRE(!config_.shardd_path.empty(),
                  "ShardProcess requires a shardd binary path");
  STARSIM_REQUIRE(!config_.socket_path.empty() || !config_.endpoint.empty(),
                  "ShardProcess requires a socket path or endpoint");
}

ShardProcess::~ShardProcess() {
  if (running()) stop(/*grace_s=*/2.0);
}

void ShardProcess::spawn() {
  STARSIM_REQUIRE(!running(), "spawn() while a child is still running");
  ++spawn_count_;

  std::vector<std::string> args = {
      config_.shardd_path,
      "--socket", config_.endpoint_spec(),
      "--index", std::to_string(config_.index),
      "--workers", std::to_string(config_.workers),
      "--queue", std::to_string(config_.queue_capacity),
      "--batch", std::to_string(config_.max_batch_size),
      "--cache", std::to_string(config_.cache_capacity),
      "--fault-rate", fmt(config_.fault_rate),
      "--lost-rate", fmt(config_.lost_rate),
      "--fault-seed", std::to_string(config_.fault_seed),
      "--straggler-ms", fmt(config_.straggler_ms),
      "--frame-timeout-ms", fmt(config_.frame_timeout_ms),
  };
  // --socket carries a full endpoint spec (unix:/path | tcp:host:port |
  // bare path); the auth token is deliberately NOT an argv flag — argv is
  // visible to every user via ps. The child reads STARSIM_FLEET_TOKEN from
  // the environment it inherits through posix_spawn below.
  if (config_.inject_faults) args.emplace_back("--inject-faults");

  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  pid_t child = -1;
  const int rc = ::posix_spawn(&child, config_.shardd_path.c_str(),
                               /*file_actions=*/nullptr, /*attrp=*/nullptr,
                               argv.data(), environ);
  if (rc != 0) {
    STARSIM_THROW(support::ShardDownError,
                  "posix_spawn(" + config_.shardd_path +
                      ") failed: " + std::strerror(rc));
  }
  pid_ = child;
  exited_ = false;

  // A spawned process is only useful once its socket answers. Probe with
  // short connects; a child that dies during startup is caught here, not
  // left for the first real request to trip over.
  const double deadline = steady_now_s() + config_.spawn_wait_s;
  while (steady_now_s() < deadline) {
    if (!running()) {
      STARSIM_THROW(support::ShardDownError,
                    "shardd " + std::to_string(config_.index) +
                        " exited during startup");
    }
    try {
      FrameSocket probe = FrameSocket::connect(config_.endpoint_spec(), 0.1);
      return;  // connectable — ready for traffic
    } catch (const support::Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  kill_now();
  STARSIM_THROW(support::ShardDownError,
                "shardd " + std::to_string(config_.index) +
                    " socket never came up at " + config_.endpoint_spec());
}

bool ShardProcess::running() {
  if (pid_ < 0 || exited_) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == pid_) {
    exited_ = true;  // reaped
    return false;
  }
  if (r < 0 && errno == ECHILD) {
    exited_ = true;  // someone else reaped it; treat as gone
    return false;
  }
  return true;
}

void ShardProcess::kill_now() {
  if (pid_ < 0 || exited_) return;
  ::kill(pid_, SIGKILL);
  reap_blocking();
}

void ShardProcess::pause() {
  if (pid_ >= 0 && !exited_) ::kill(pid_, SIGSTOP);
}

void ShardProcess::resume() {
  if (pid_ >= 0 && !exited_) ::kill(pid_, SIGCONT);
}

void ShardProcess::stop(double grace_s) {
  if (pid_ < 0 || exited_) return;
  ::kill(pid_, SIGTERM);
  const double deadline = steady_now_s() + grace_s;
  while (steady_now_s() < deadline) {
    if (!running()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  kill_now();
}

void ShardProcess::reap_blocking() {
  if (pid_ < 0 || exited_) return;
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid_, &status, 0);
    if (r == pid_ || (r < 0 && errno != EINTR)) break;
  }
  exited_ = true;
}

}  // namespace starsim::fleet
