// ProcessSupervisor — the crash/hang half of the fleet health ladder.
//
// PR 6's ladder (breaker -> quarantine -> shadow-probe -> reinstate)
// handled shards that answer badly; this supervisor extends it to shards
// that stop answering at all. A monitor thread watches every registered
// transport for two signals: dead() (the process exited — waitpid — or the
// in-process shard was killed) and a heartbeat age beyond the hang
// threshold (the process is alive but wedged: SIGSTOP, a stuck accept
// loop, a deadlocked worker). Either one walks the extended ladder:
//
//   detect -> on_unreachable (router routes around: state kRespawning)
//     -> kill/reap whatever is left (a hung process gets no grace)
//     -> respawn under an exponential-backoff budget
//        -> success: on_respawned (router sets kQuarantined; the existing
//           shadow-probe path reinstates on live traffic — a respawned
//           shard earns its way back, it is never trusted blindly)
//        -> budget exhausted: on_exhausted (router sets kDown, terminal)
//
// PR 9 splits "unreachable" in two. A shard whose process is alive
// (dead() false) but whose liveness has been dark past the transport's
// partition_after_ms() is *network-partitioned*, not hung: the partition
// rung fires on_partitioned (the router routes around it) and respawns
// nothing — the far side may be healthily rendering, and killing it would
// trade a transient link fault for a lost cache. When liveness returns the
// rung fires on_partition_healed and the probe ladder reinstates the
// shard. Only past the (larger) hang_after_ms threshold does the classic
// kill-and-respawn ladder take over — the harder diagnosis wins.
//
// The supervisor is transport-agnostic on purpose: LoopbackTransport's
// respawn() rebuilds an in-process FrameService, SocketTransport's
// re-spawns the shardd process — so the same chaos suite certifies the
// ladder against both. Policy lives here; process mechanics live in
// fleet/process.h; routing decisions stay in the router via the callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "fleet/transport.h"

namespace starsim::fleet {

struct SupervisorOptions {
  /// Monitor poll period.
  double poll_ms = 20.0;
  /// Heartbeat age beyond which a live process counts as hung. <= 0
  /// disables hang detection (crash detection stays on).
  double hang_after_ms = 2000.0;
  /// Respawns allowed per shard over the fleet's lifetime; 0 means a
  /// crashed shard goes straight to exhausted (kDown), reproducing the
  /// pre-supervision behaviour.
  int respawn_budget = 3;
  /// First respawn delay; doubles per consecutive failure up to the max.
  double respawn_backoff_ms = 50.0;
  double respawn_backoff_max_ms = 2000.0;
};

/// Routing-side reactions to ladder transitions. All callbacks fire on the
/// monitor thread and must not call back into the supervisor.
struct SupervisorEvents {
  std::function<void(int)> on_unreachable;  ///< detected crash/hang
  std::function<void(int)> on_respawned;    ///< respawn succeeded
  std::function<void(int)> on_exhausted;    ///< budget spent; shard is gone
  /// Network partition detected: the process is alive (dead() false) but
  /// liveness has been dark past the transport's partition threshold.
  /// Route around it; do NOT respawn — the far side may be rendering.
  std::function<void(int)> on_partitioned;
  /// Liveness returned while partitioned: the partition healed without
  /// the process ever dying. Route back in (via the probe ladder).
  std::function<void(int)> on_partition_healed;
};

/// Per-shard ladder counters (folded into FleetStats by the router).
struct SupervisorShardStats {
  std::uint64_t crashes_detected = 0;
  std::uint64_t hangs_detected = 0;
  std::uint64_t respawns_attempted = 0;
  std::uint64_t respawns_succeeded = 0;
  std::uint64_t partitions_detected = 0;
  std::uint64_t partitions_healed = 0;
  bool exhausted = false;
  /// Seconds the most recent successful respawn took, detect-to-ready.
  double last_respawn_s = 0.0;
};

class ProcessSupervisor {
 public:
  ProcessSupervisor(SupervisorOptions options, SupervisorEvents events);
  ~ProcessSupervisor();

  ProcessSupervisor(const ProcessSupervisor&) = delete;
  ProcessSupervisor& operator=(const ProcessSupervisor&) = delete;

  /// Register a shard. The transport must outlive the supervisor (the
  /// router owns both; transports are never destroyed while watched).
  void watch(int index, Transport* transport);

  /// Start the monitor thread (after all initial watch() calls).
  void start();

  /// Stop monitoring and join. Idempotent; never respawns after return.
  void stop();

  /// Mark a shard terminal: deliberately killed (kill_shard) or retired
  /// (remove_shard). The ladder never respawns a terminal shard.
  void mark_terminal(int index);

  /// Router fast path: a submit just threw ShardDownError, so skip the
  /// next poll's detection latency and enter the ladder now.
  void note_unreachable(int index);

  [[nodiscard]] SupervisorShardStats shard_stats(int index);
  [[nodiscard]] std::vector<std::pair<int, SupervisorShardStats>> all_stats();

 private:
  struct Slot {
    Transport* transport = nullptr;
    bool terminal = false;
    bool in_ladder = false;
    bool partitioned = false;  ///< partition rung active (no respawn)
    int respawns_used = 0;
    double backoff_ms = 0.0;
    double next_attempt_s = 0.0;
    double detected_at_s = 0.0;
    SupervisorShardStats stats;
  };

  void monitor_loop();
  /// Detection + ladder step for one shard; called with mutex_ held,
  /// releases it around the (slow) respawn attempt.
  void step(int index, std::unique_lock<std::mutex>& lock);

  SupervisorOptions options_;
  SupervisorEvents events_;

  std::mutex mutex_;
  std::map<int, Slot> slots_;
  bool stop_requested_ = false;
  bool started_ = false;
  std::thread monitor_;
};

}  // namespace starsim::fleet
