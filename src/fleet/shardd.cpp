#include "fleet/shardd.h"

#include <chrono>
#include <exception>
#include <utility>

#include "support/error.h"

namespace starsim::fleet {

namespace {

[[nodiscard]] double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardHost::ShardHost(ShardHostOptions options)
    : options_(std::move(options)),
      instance_("shard-" + std::to_string(options_.index)),
      service_(std::make_unique<serve::FrameService>(options_.service)) {
  STARSIM_REQUIRE(!options_.socket_path.empty() || !options_.listen.empty(),
                  "ShardHost requires a socket path or listen endpoint");
}

ShardHost::~ShardHost() {
  request_stop();
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  if (service_ != nullptr) service_->stop();
}

std::uint64_t ShardHost::completed() const {
  return service_->stats().completed;
}

std::optional<Endpoint> ShardHost::bound_endpoint() const {
  const std::lock_guard<std::mutex> lock(bound_mutex_);
  return bound_;
}

void ShardHost::run() {
  const std::string& spec =
      options_.listen.empty() ? options_.socket_path : options_.listen;
  FrameListener listener = FrameListener::bind(spec);
  {
    // Publish the bound address (with any kernel-assigned TCP port) before
    // the first accept, so a test that polls bound_endpoint() can dial as
    // soon as it sees one.
    const std::lock_guard<std::mutex> lock(bound_mutex_);
    bound_ = listener.endpoint();
  }
  while (!stop_.load()) {
    std::optional<FrameSocket> client = listener.accept(options_.accept_poll_s);
    if (!client.has_value()) continue;
    connections_.emplace_back(
        [this, sock = std::move(*client)]() mutable {
          serve_connection(std::move(sock));
        });
  }
  // Stop admission and drain: every request a connection already submitted
  // resolves (frame or typed error) before the workers join.
  listener.close();
  service_->stop();
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  connections_.clear();
}

void ShardHost::serve_connection(FrameSocket socket) {
  bool greeted = false;
  while (!stop_.load()) {
    // Idle wait is cheap and interruptible; only once bytes start flowing
    // does the mid-frame budget apply.
    if (!socket.readable(options_.idle_poll_s)) continue;
    WireBuffer reply;
    try {
      std::optional<WireBuffer> frame =
          socket.recv_frame(steady_now_s() + options_.frame_timeout_s);
      if (!frame.has_value()) return;  // peer closed between frames
      reply = handle_frame(*frame, greeted);
    } catch (const std::exception&) {
      // Mid-frame timeout, reset, or an unframeable byte stream: nothing
      // sensible can be sent back on this connection — drop it. The
      // transport's reply deadline turns the silence into a typed error.
      return;
    }
    try {
      socket.send_frame(reply, steady_now_s() + options_.frame_timeout_s);
    } catch (const std::exception&) {
      return;  // peer gone or wedged; it will fail over
    }
  }
}

WireBuffer ShardHost::handle_frame(const WireBuffer& frame, bool& greeted) {
  try {
    const MessageKind kind = frame_kind(frame);
    if (kind == MessageKind::kHello) {
      const Hello hello = decode_hello(frame);
      if (hello.protocol_version != kWireVersion) {
        STARSIM_THROW(support::HandshakeError,
                      instance_ + " speaks wire version " +
                          std::to_string(kWireVersion) + ", dialer sent " +
                          std::to_string(hello.protocol_version));
      }
      // A negative index means "don't care" (ad-hoc tools); a concrete one
      // must match — a dialer that expected a different shard has a stale
      // or corrupt routing table and must not get its frames rendered here.
      if (hello.shard_index >= 0 && hello.shard_index != options_.index) {
        STARSIM_THROW(support::HandshakeError,
                      instance_ + " answered a dialer expecting shard " +
                          std::to_string(hello.shard_index));
      }
      // Never echo tokens into error text — they land in logs and traces.
      if (!options_.token.empty() && hello.token != options_.token) {
        STARSIM_THROW(support::HandshakeError,
                      instance_ + " rejected the handshake token");
      }
      greeted = true;
      HelloAck ack;
      ack.shard_index = options_.index;
      return encode_hello_ack(ack);
    }
    if (!options_.token.empty() && !greeted) {
      STARSIM_THROW(support::HandshakeError,
                    instance_ + " requires a handshake before traffic");
    }
    switch (kind) {
      case MessageKind::kRequest: {
        serve::RenderRequest request = decode_request(frame);
        std::future<serve::RenderResponse> future =
            service_->submit(std::move(request));
        return encode_response(future.get());
      }
      case MessageKind::kHeartbeat: {
        const Heartbeat beat = decode_heartbeat(frame);
        heartbeats_.fetch_add(1);
        HeartbeatAck ack;
        ack.sequence = beat.sequence;
        ack.queue_depth = service_->queue_depth();
        ack.queue_capacity = options_.service.queue_capacity;
        ack.completed = service_->stats().completed;
        return encode_heartbeat_ack(ack);
      }
      case MessageKind::kStatsRequest:
        return encode_stats_reply(service_->metric_families(instance_));
      default:
        STARSIM_THROW(support::WireFormatError,
                      "shard host cannot serve this message kind");
    }
  } catch (const std::exception& error) {
    // Everything — malformed frames, admission rejections, render
    // failures — answers as a typed error frame; the router's decode_reply
    // rethrows the exact class.
    return encode_error(error);
  }
}

}  // namespace starsim::fleet
