#include "fleet/shardd.h"

#include <chrono>
#include <exception>
#include <utility>

#include "support/error.h"

namespace starsim::fleet {

namespace {

[[nodiscard]] double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardHost::ShardHost(ShardHostOptions options)
    : options_(std::move(options)),
      instance_("shard-" + std::to_string(options_.index)),
      service_(std::make_unique<serve::FrameService>(options_.service)) {
  STARSIM_REQUIRE(!options_.socket_path.empty(),
                  "ShardHost requires a socket path");
}

ShardHost::~ShardHost() {
  request_stop();
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  if (service_ != nullptr) service_->stop();
}

std::uint64_t ShardHost::completed() const {
  return service_->stats().completed;
}

void ShardHost::run() {
  FrameListener listener = FrameListener::bind(options_.socket_path);
  while (!stop_.load()) {
    std::optional<FrameSocket> client = listener.accept(options_.accept_poll_s);
    if (!client.has_value()) continue;
    connections_.emplace_back(
        [this, sock = std::move(*client)]() mutable {
          serve_connection(std::move(sock));
        });
  }
  // Stop admission and drain: every request a connection already submitted
  // resolves (frame or typed error) before the workers join.
  listener.close();
  service_->stop();
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  connections_.clear();
}

void ShardHost::serve_connection(FrameSocket socket) {
  while (!stop_.load()) {
    // Idle wait is cheap and interruptible; only once bytes start flowing
    // does the mid-frame budget apply.
    if (!socket.readable(options_.idle_poll_s)) continue;
    WireBuffer reply;
    try {
      std::optional<WireBuffer> frame =
          socket.recv_frame(steady_now_s() + options_.frame_timeout_s);
      if (!frame.has_value()) return;  // peer closed between frames
      reply = handle_frame(*frame);
    } catch (const std::exception&) {
      // Mid-frame timeout, reset, or an unframeable byte stream: nothing
      // sensible can be sent back on this connection — drop it. The
      // transport's reply deadline turns the silence into a typed error.
      return;
    }
    try {
      socket.send_frame(reply, steady_now_s() + options_.frame_timeout_s);
    } catch (const std::exception&) {
      return;  // peer gone or wedged; it will fail over
    }
  }
}

WireBuffer ShardHost::handle_frame(const WireBuffer& frame) {
  try {
    switch (frame_kind(frame)) {
      case MessageKind::kRequest: {
        serve::RenderRequest request = decode_request(frame);
        std::future<serve::RenderResponse> future =
            service_->submit(std::move(request));
        return encode_response(future.get());
      }
      case MessageKind::kHeartbeat: {
        const Heartbeat beat = decode_heartbeat(frame);
        heartbeats_.fetch_add(1);
        HeartbeatAck ack;
        ack.sequence = beat.sequence;
        ack.queue_depth = service_->queue_depth();
        ack.queue_capacity = options_.service.queue_capacity;
        ack.completed = service_->stats().completed;
        return encode_heartbeat_ack(ack);
      }
      case MessageKind::kStatsRequest:
        return encode_stats_reply(service_->metric_families(instance_));
      default:
        STARSIM_THROW(support::WireFormatError,
                      "shard host cannot serve this message kind");
    }
  } catch (const std::exception& error) {
    // Everything — malformed frames, admission rejections, render
    // failures — answers as a typed error frame; the router's decode_reply
    // rethrows the exact class.
    return encode_error(error);
  }
}

}  // namespace starsim::fleet
