#include "fleet/chaos.h"

#include <chrono>
#include <utility>

#include "support/error.h"

namespace starsim::fleet {

namespace {

[[nodiscard]] double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// splitmix64 — whitens the user seed so seed=0 and seed=1 produce
/// unrelated streams.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ChaosTransport::ChaosTransport(std::unique_ptr<Transport> inner,
                               ChaosNetOptions options)
    : inner_(std::move(inner)),
      options_(options),
      rng_state_(mix64(options.seed)) {
  STARSIM_REQUIRE(inner_ != nullptr, "ChaosTransport needs an inner transport");
  // Two workers: reply-side faults block on take() (the inner render), and
  // a single worker would serialize a delayed reply behind a slow one.
  for (int i = 0; i < 2; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ChaosTransport::~ChaosTransport() { shutdown(); }

double ChaosTransport::roll() {
  // Caller holds mutex_. xorshift64* — tiny, deterministic, good enough
  // for fault rolls (this is chaos, not cryptography).
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  const std::uint64_t bits = rng_state_ * 0x2545F4914F6CDD1DULL;
  return static_cast<double>(bits >> 11) / 9007199254740992.0;  // [0, 1)
}

void ChaosTransport::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (closed_) return;  // shutting down; the promise holder sees an error
    tasks_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void ChaosTransport::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return closed_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // closed and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ChaosTransport::settle(std::shared_ptr<std::promise<WireBuffer>> promise,
                            WireBuffer bytes, bool reorder) {
  if (reorder) {
    bool stashed = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!held_.has_value()) {
        // Hold this reply until the next one passes; delivery order swaps,
        // reply bytes never cross requests.
        held_ = HeldReply{std::move(promise), std::move(bytes)};
        ++faults_reordered_;
        stashed = true;
      }
    }
    if (stashed) {
      // Bounded hold: on a quiet link no "next reply" ever passes, and a
      // held reply must not strand its router worker past the hold cap.
      const double hold_s = options_.reorder_hold_ms * 1e-3;
      enqueue([this, hold_s] {
        std::this_thread::sleep_for(std::chrono::duration<double>(hold_s));
        std::optional<HeldReply> release;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (held_.has_value()) {
            release = std::move(held_);
            held_.reset();
          }
        }
        if (release.has_value()) {
          release->promise->set_value(std::move(release->bytes));
        }
      });
      return;
    }
  }
  promise->set_value(std::move(bytes));
  std::optional<HeldReply> release;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (held_.has_value()) {
      release = std::move(held_);
      held_.reset();
    }
  }
  if (release.has_value()) {
    release->promise->set_value(std::move(release->bytes));
  }
}

PendingReply ChaosTransport::submit(const WireBuffer& frame,
                                    std::optional<double> io_budget_s) {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  bool corrupt = false;
  bool block_requests = false;
  bool block_replies = false;
  double delay_s = 0.0;
  std::uint64_t corrupt_bits = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    block_requests = block_requests_;
    block_replies = block_replies_;
    if (!block_requests) {
      drop = roll() < options_.drop_rate;
      duplicate = roll() < options_.duplicate_rate;
      reorder = roll() < options_.reorder_rate;
      corrupt = roll() < options_.corrupt_rate;
      if (options_.delay_ms > 0.0 || options_.delay_jitter_ms > 0.0) {
        delay_s = (options_.delay_ms +
                   roll() * options_.delay_jitter_ms) *
                  1e-3;
      }
      if (corrupt) corrupt_bits = rng_state_;
      if (drop) ++faults_dropped_;
    } else {
      ++faults_partitioned_;
    }
  }
  if (block_requests) {
    // The frame never reaches the shard; to the dialer that is exactly a
    // burned I/O budget — surfaced immediately so nothing outlives its
    // deadline waiting on a partition.
    return PendingReply::failed(
        std::make_exception_ptr(support::TransportTimeoutError(
            instance() + " request blocked by injected partition")));
  }
  if (drop) {
    return PendingReply::failed(
        std::make_exception_ptr(support::TransportTimeoutError(
            instance() + " request dropped by chaos injection")));
  }

  PendingReply reply = inner_->submit(frame, io_budget_s);

  if (duplicate) {
    // The retransmitted copy reaches the shard too; its reply is taken and
    // discarded — first (original) reply wins, as on a real network.
    try {
      PendingReply copy = inner_->submit(frame, io_budget_s);
      auto discarded = std::make_shared<PendingReply>(std::move(copy));
      enqueue([discarded] { (void)discarded->take(); });
      std::lock_guard<std::mutex> lock(mutex_);
      ++faults_duplicated_;
    } catch (const std::exception&) {
      // The duplicate failing to send is itself realistic; ignore.
    }
  }

  if (block_replies) {
    // Asymmetric partition: the shard got the frame and renders, but its
    // answer evaporates. Drain the real reply off-thread so the inner
    // transport never wedges on an untaken handle.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++faults_partitioned_;
    }
    auto eaten = std::make_shared<PendingReply>(std::move(reply));
    enqueue([eaten] { (void)eaten->take(); });
    return PendingReply::failed(
        std::make_exception_ptr(support::TransportTimeoutError(
            instance() + " reply blocked by injected partition")));
  }

  if (delay_s <= 0.0 && !corrupt && !reorder) return std::move(reply);

  // Reply-side faults: a worker takes the real reply (take() folds any
  // transport failure into a typed error frame, so the pipeline below is
  // uniform), mutates or holds it, and settles the caller's future.
  auto promise = std::make_shared<std::promise<WireBuffer>>();
  std::future<WireBuffer> future = promise->get_future();
  auto pending = std::make_shared<PendingReply>(std::move(reply));
  const double submitted_s = steady_now_s();
  enqueue([this, pending, promise, delay_s, corrupt, corrupt_bits, reorder,
           submitted_s]() mutable {
    WireBuffer bytes = pending->take();
    if (corrupt && !bytes.empty()) {
      // Flip exactly one seeded-random bit anywhere in the frame. The wire
      // header CRC (kind + payload) plus the magic/version checks must
      // turn every such frame into WireFormatError at decode.
      const std::uint64_t bit_index =
          corrupt_bits % (static_cast<std::uint64_t>(bytes.size()) * 8u);
      bytes[static_cast<std::size_t>(bit_index / 8)] ^=
          static_cast<std::uint8_t>(1u << (bit_index % 8));
      std::lock_guard<std::mutex> lock(mutex_);
      ++faults_corrupted_;
    }
    if (delay_s > 0.0) {
      // Delay is measured from submit, not from reply readiness: a render
      // slower than the injected delay already "absorbed" it.
      const double release_s = submitted_s + delay_s;
      const double wait_s = release_s - steady_now_s();
      if (wait_s > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
      }
      std::lock_guard<std::mutex> lock(mutex_);
      ++faults_delayed_;
    }
    settle(std::move(promise), std::move(bytes), reorder);
  });
  return PendingReply::wire(std::move(future));
}

double ChaosTransport::heartbeat_age_ms() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (block_requests_ || block_replies_) {
      // The partition eats heartbeats in at least one direction; liveness
      // has been dark since it started.
      return (steady_now_s() - partition_since_s_) * 1e3;
    }
  }
  return inner_->heartbeat_age_ms();
}

std::vector<trace::MetricFamily> ChaosTransport::metric_families() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A scrape cannot cross a partition either.
    if (block_requests_ || block_replies_) return {};
  }
  return inner_->metric_families();
}

TransportNetStats ChaosTransport::net_stats() {
  TransportNetStats net = inner_->net_stats();
  std::lock_guard<std::mutex> lock(mutex_);
  net.faults_dropped += faults_dropped_;
  net.faults_delayed += faults_delayed_;
  net.faults_duplicated += faults_duplicated_;
  net.faults_reordered += faults_reordered_;
  net.faults_corrupted += faults_corrupted_;
  net.faults_partitioned += faults_partitioned_;
  return net;
}

double ChaosTransport::partition_after_ms() {
  const double inner_threshold = inner_->partition_after_ms();
  if (inner_threshold >= 0.0) return inner_threshold;
  return options_.partition_after_ms;
}

void ChaosTransport::partition(bool block_requests, bool block_replies) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!block_requests_ && !block_replies_ &&
      (block_requests || block_replies)) {
    partition_since_s_ = steady_now_s();
  }
  block_requests_ = block_requests;
  block_replies_ = block_replies;
}

void ChaosTransport::heal() {
  std::lock_guard<std::mutex> lock(mutex_);
  block_requests_ = false;
  block_replies_ = false;
  partition_since_s_ = 0.0;
}

bool ChaosTransport::partitioned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return block_requests_ || block_replies_;
}

void ChaosTransport::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (closed_ && workers_.empty()) {
      inner_->shutdown();  // idempotent on both sides
      return;
    }
    closed_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // A reply held for reorder when the fleet stops must still resolve —
  // every admitted future settles, partitioned or not.
  std::optional<HeldReply> release;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (held_.has_value()) {
      release = std::move(held_);
      held_.reset();
    }
  }
  if (release.has_value()) {
    release->promise->set_value(std::move(release->bytes));
  }
  inner_->shutdown();
}

}  // namespace starsim::fleet
