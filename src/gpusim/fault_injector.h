// Deterministic fault injection for the simulated device.
//
// A production star-image service must survive the faults a real GPU fleet
// throws at it: allocator failures at the 1.5 GB cap, PCIe transfer errors
// (outright failures and corrupted payloads), kernels killed by the driver
// watchdog, and devices dropping off the bus entirely. The FaultInjector
// models all of these as a seeded, policy-driven oracle that the runtime
// consults at each fault site: Device (transfers, launches, texture binds),
// DeviceMemoryManager (allocations) and StreamScheduler (enqueues) each hold
// an optional non-owning pointer and ask it before/around the real work.
//
// Design constraints (mirrored by tests):
//  - Deterministic: the injector draws from one Pcg32 seeded by the policy,
//    so the same seed and the same operation sequence produce the same fault
//    sequence, recorded in `history()`.
//  - Zero overhead when disabled: no injector attached means exactly one
//    predictable null-pointer check per fault site and nothing else.
//  - Latched device loss: once a fault escalates to kDeviceLost (or
//    mark_device_lost() is called), every subsequent consult throws
//    DeviceLostError immediately — the device is gone until reset().
//  - Cleanup paths never consult the injector: frees and texture unbinds
//    always succeed, so RAII recovery cannot itself fault (the CUDA analogue
//    is ignoring cudaFree errors on a lost device).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "support/rng.h"

namespace starsim::gpusim {

/// Where in the runtime a fault can be injected.
enum class FaultSite : std::uint8_t {
  kMalloc,
  kMemcpyH2D,
  kMemcpyD2H,
  kKernelLaunch,
  kTextureBind,
  kStreamEnqueue,
};

[[nodiscard]] std::string_view to_string(FaultSite site);

/// What kind of fault was injected.
enum class FaultKind : std::uint8_t {
  kOutOfMemory,         ///< transient allocator failure (retryable)
  kTransferFailure,     ///< PCIe copy aborted, destination torn
  kTransferCorruption,  ///< copy completed but payload corrupted (detected)
  kKernelTimeout,       ///< random watchdog kill (transient contention)
  kWatchdogOverrun,     ///< modeled kernel time exceeded the budget
  kBindFailure,         ///< texture binding failed
  kStreamFailure,       ///< stream enqueue rejected
  kDeviceLost,          ///< device dropped off the bus (latched)
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

/// Per-site fault probabilities plus the watchdog budget. All rates are in
/// [0, 1] per consulted operation; 0 disables that site.
struct FaultPolicy {
  std::uint64_t seed = 0;
  double malloc_oom_rate = 0.0;
  double h2d_fault_rate = 0.0;
  double d2h_fault_rate = 0.0;
  /// Of the injected transfer faults, the fraction that complete the copy
  /// and corrupt one payload byte (caught by the modeled end-to-end
  /// checksum) instead of failing outright.
  double corruption_fraction = 0.5;
  double kernel_timeout_rate = 0.0;
  double texture_bind_fault_rate = 0.0;
  double stream_fault_rate = 0.0;
  /// Probability that any injected fault escalates to losing the device.
  double device_lost_rate = 0.0;
  /// Kernel watchdog budget in modeled seconds: launches whose modeled
  /// kernel time exceeds it time out deterministically (every attempt).
  /// <= 0 disables the watchdog.
  double watchdog_budget_s = 0.0;

  /// Uniform transient-fault policy: every retryable site faults at `rate`,
  /// no device loss, no watchdog. The standard knob for the CLI and bench.
  [[nodiscard]] static FaultPolicy transient(double rate, std::uint64_t seed);

  /// Chaos policy: every transient site faults at `rate` AND any injected
  /// fault may escalate to losing the device with probability `lost_rate`.
  /// The shape the service-level chaos harness drives — it exercises the
  /// full recovery ladder including worker quarantine and replacement.
  [[nodiscard]] static FaultPolicy chaos(double rate, double lost_rate,
                                         std::uint64_t seed);
};

/// One injected fault, recorded for determinism checks and reports.
struct InjectedFault {
  FaultSite site = FaultSite::kMalloc;
  FaultKind kind = FaultKind::kOutOfMemory;
  /// Index of the consult (across all sites) that produced this fault.
  std::uint64_t consult_index = 0;

  bool operator==(const InjectedFault&) const = default;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPolicy policy);

  /// Re-arm from the policy seed: clears the latched lost state, the
  /// history, and the consult counter. The next run replays identically.
  void reset();

  /// Re-arm with a *new* seed: same clearing as reset(), but the fault
  /// stream diverges. This is how a supervisor models swapping a failed
  /// physical device for a fresh one — the replacement shares the fault
  /// rates but not the fault schedule of the unit it replaced.
  void reseed(std::uint64_t seed);

  [[nodiscard]] const FaultPolicy& policy() const { return policy_; }
  [[nodiscard]] bool device_lost() const { return device_lost_; }
  /// Force the latched lost state (e.g. to script a mid-run device loss).
  void mark_device_lost();

  [[nodiscard]] std::uint64_t consult_count() const { return consults_; }
  [[nodiscard]] const std::vector<InjectedFault>& history() const {
    return history_;
  }

  // --- Fault sites -----------------------------------------------------------
  // Each hook either returns normally (no fault) or throws the matching
  // support error. All throws carry file:line-bearing messages.

  /// Consulted by DeviceMemoryManager before reserving capacity.
  void on_malloc(std::size_t bytes);

  /// Consulted by Device after the functional copy: may tear the
  /// destination and throw TransferError (failure), or corrupt one byte and
  /// throw TransferError (detected corruption). `site` is kMemcpyH2D or
  /// kMemcpyD2H; `data` the destination bytes (null skips the scribble).
  void on_transfer(FaultSite site, std::byte* data, std::size_t bytes);

  /// Consulted by Device after a launch completes functionally; throws
  /// KernelTimeoutError when the modeled time overruns the watchdog budget
  /// or a random timeout fires.
  void on_kernel_launch(double modeled_kernel_s);

  /// Consulted by Device::bind_texture_2d.
  void on_texture_bind();

  /// Consulted by StreamScheduler::enqueue.
  void on_stream_enqueue();

 private:
  /// Rolls the per-site rate; returns true when a fault fires. Escalates to
  /// a thrown DeviceLostError when the device-lost roll also fires.
  bool roll(FaultSite site, double rate);
  void record(FaultSite site, FaultKind kind);
  /// Latched-state check, run first in every hook.
  void throw_if_lost(FaultSite site);
  [[noreturn]] void lose_device(FaultSite site);

  FaultPolicy policy_;
  support::Pcg32 rng_;
  bool device_lost_ = false;
  std::uint64_t consults_ = 0;
  std::vector<InjectedFault> history_;
};

}  // namespace starsim::gpusim
