// The per-thread kernel execution context — gpusim's equivalent of CUDA's
// implicit thread environment (threadIdx/blockIdx/blockDim/gridDim, global
// and shared memory access, atomics, textures, __syncthreads).
//
// Every operation with a timing consequence goes through a ThreadCtx method
// so it is tallied in the block's KernelCounters; the performance model
// prices those tallies afterwards. Plain arithmetic is declared by the
// kernel via count_flops()/exp()/pow(), the same convention the sequential
// simulator uses through FlopMeter, so CPU and GPU work is measured in the
// same unit (fp64 flop-equivalents).
//
// The same methods are the sanitizer's instrumentation points (see
// gpusim/sanitizer.h): with a launch's SanitizerMode off, each access pays
// exactly one predictable branch; with memcheck/racecheck on, defective
// accesses are recorded as findings and suppressed (loads return 0, stores
// are dropped) so one run reports every defect instead of throwing on the
// first.
#pragma once

#include <cmath>
#include <coroutine>
#include <cstdint>
#include <span>
#include <string>

#include "gpusim/launch_state.h"
#include "gpusim/device_memory.h"

namespace starsim::gpusim {

class ThreadCtx;

/// Counted shared-memory array handle (see ThreadCtx::shared_array).
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;

  [[nodiscard]] std::size_t size() const { return count_; }

  /// Counted read of element `i`.
  [[nodiscard]] T get(std::size_t i) const;

  /// Counted write of element `i`.
  void set(std::size_t i, T value) const;

 private:
  friend class ThreadCtx;
  SharedArray(T* data, std::size_t count, std::size_t base_offset,
              std::size_t slot, ThreadCtx* ctx)
      : data_(data),
        count_(count),
        base_offset_(base_offset),
        slot_(slot),
        ctx_(ctx) {}

  T* data_ = nullptr;
  std::size_t count_ = 0;
  /// Byte offset of element 0 within the block's shared-memory arena —
  /// the address space bank indices are derived from.
  std::size_t base_offset_ = 0;
  /// Index into BlockState::shared_allocs (the racecheck shadow lives there).
  std::size_t slot_ = 0;
  ThreadCtx* ctx_ = nullptr;
};

class ThreadCtx {
 public:
  ThreadCtx(BlockState* block, const Dim3& thread_idx)
      : block_(block), thread_idx_(thread_idx) {
    linear_thread_ = static_cast<std::uint32_t>(
        block->launch->config.block.linear(thread_idx));
    warp_id_ = linear_thread_ /
               static_cast<std::uint32_t>(block->launch->spec->warp_size);
  }

  ThreadCtx(const ThreadCtx&) = delete;
  ThreadCtx& operator=(const ThreadCtx&) = delete;
  ThreadCtx(ThreadCtx&&) = default;
  ThreadCtx& operator=(ThreadCtx&&) = delete;

  // --- Identity -------------------------------------------------------------
  [[nodiscard]] const Dim3& thread_idx() const { return thread_idx_; }
  [[nodiscard]] const Dim3& block_idx() const { return block_->block_idx; }
  [[nodiscard]] const Dim3& block_dim() const {
    return block_->launch->config.block;
  }
  [[nodiscard]] const Dim3& grid_dim() const {
    return block_->launch->config.grid;
  }
  /// Linearized block index within the grid (the paper's blockId).
  [[nodiscard]] std::uint64_t block_linear() const {
    return block_->block_linear;
  }
  [[nodiscard]] std::uint32_t thread_linear() const { return linear_thread_; }
  [[nodiscard]] std::uint32_t warp_id() const { return warp_id_; }

  // --- Arithmetic accounting --------------------------------------------------
  /// Declare `n` fp64 flop-equivalents of plain arithmetic.
  void count_flops(std::uint64_t n) { block_->counters.flops += n; }

  /// Counted transcendentals (software fp64 on the modeled device).
  double exp(double x) {
    block_->counters.flops +=
        static_cast<std::uint64_t>(block_->launch->spec->exp_flop_equiv);
    return std::exp(x);
  }
  double pow(double base, double exponent) {
    block_->counters.flops +=
        static_cast<std::uint64_t>(block_->launch->spec->pow_flop_equiv);
    return std::pow(base, exponent);
  }
  double sqrt(double x) {
    block_->counters.flops +=
        static_cast<std::uint64_t>(block_->launch->spec->sqrt_flop_equiv);
    return std::sqrt(x);
  }
  double erf(double x) {
    block_->counters.flops +=
        static_cast<std::uint64_t>(block_->launch->spec->erf_flop_equiv);
    return std::erf(x);
  }

  // --- Global memory ----------------------------------------------------------
  template <typename T>
  [[nodiscard]] T load(const DevicePtr<T>& ptr, std::size_t i) {
    if (sanitizing()) [[unlikely]] {
      if (!memcheck_global(ptr, i, /*is_write=*/false)) return T{};
    }
    STARSIM_REQUIRE(i < ptr.size(), "global read out of bounds");
    ++block_->counters.global_reads;
    block_->counters.global_bytes_read += sizeof(T);
    record_global_access(ptr.allocation_id(), i * sizeof(T));
    return ptr.raw()[i];
  }

  template <typename T>
  void store(const DevicePtr<T>& ptr, std::size_t i, T value) {
    if (sanitizing()) [[unlikely]] {
      if (!memcheck_global(ptr, i, /*is_write=*/true)) return;
    }
    STARSIM_REQUIRE(i < ptr.size(), "global write out of bounds");
    ++block_->counters.global_writes;
    block_->counters.global_bytes_written += sizeof(T);
    record_global_access(ptr.allocation_id(), i * sizeof(T));
    ptr.raw()[i] = value;
  }

  /// atomicAdd on a float in global memory: thread-safe across concurrently
  /// executing blocks, with exact per-address conflict accounting.
  float atomic_add(const DevicePtr<float>& ptr, std::size_t i, float value) {
    if (sanitizing()) [[unlikely]] {
      if (!memcheck_global(ptr, i, /*is_write=*/true)) return 0.0f;
    }
    STARSIM_REQUIRE(i < ptr.size(), "atomic add out of bounds");
    ++block_->counters.atomic_ops;
    block_->counters.global_bytes_read += sizeof(float);
    block_->counters.global_bytes_written += sizeof(float);
    std::atomic<std::uint32_t>* shadow = shadow_counts(ptr);
    shadow[i].fetch_add(1, std::memory_order_relaxed);
    float* target = ptr.raw() + i;
    if (block_->launch->parallel_blocks) {
      std::atomic_ref<float> cell(*target);
      float expected = cell.load(std::memory_order_relaxed);
      while (!cell.compare_exchange_weak(expected, expected + value,
                                         std::memory_order_relaxed)) {
      }
      return expected;
    }
    const float previous = *target;
    *target = previous + value;
    return previous;
  }

  // --- Shared memory ----------------------------------------------------------
  /// Attach to (or, for the first thread to get here, create) the block's
  /// next shared-memory array. All threads of a block must make the same
  /// shared_array calls in the same order, as with static __shared__
  /// declarations in CUDA.
  template <typename T>
  [[nodiscard]] SharedArray<T> shared_array(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    auto& allocs = block_->shared_allocs;
    const std::size_t slot = shared_cursor_++;
    if (slot < allocs.size()) {
      STARSIM_REQUIRE(allocs[slot].bytes == bytes,
                      "shared_array sequence mismatch across threads");
      return SharedArray<T>(reinterpret_cast<T*>(allocs[slot].data.get()),
                            count, allocs[slot].base_offset, slot, this);
    }
    STARSIM_REQUIRE(slot == allocs.size(),
                    "shared_array sequence mismatch across threads");
    BlockState::SharedAlloc alloc;
    alloc.base_offset = block_->shared_used;
    block_->shared_used += bytes;
    STARSIM_REQUIRE(
        block_->shared_used <= block_->launch->spec->shared_memory_per_block,
        "shared memory per block exceeded");
    alloc.data = std::make_unique<std::byte[]>(bytes);
    std::fill_n(alloc.data.get(), bytes, std::byte{0});
    alloc.bytes = bytes;
    allocs.push_back(std::move(alloc));
    return SharedArray<T>(reinterpret_cast<T*>(allocs.back().data.get()),
                          count, allocs.back().base_offset, slot, this);
  }

  // --- Texture ----------------------------------------------------------------
  /// Nearest-sample fetch through the block's SM texture cache.
  float tex2d(TextureHandle handle, int x, int y) {
    if (sanitizer_enabled(block_->launch->sanitize, SanitizerMode::kMemcheck))
        [[unlikely]] {
      const Texture2D* pre = block_->launch->texture_or_null(handle);
      if (pre == nullptr) {
        report_finding(SanitizerFindingKind::kInvalidTextureFetch,
                       0xffffffffu, 0,
                       "fetch through invalid or unbound texture handle #" +
                           std::to_string(handle.index));
        return 0.0f;
      }
      if (!pre->backing_live()) {
        report_finding(SanitizerFindingKind::kUseAfterFree,
                       pre->allocation_id(), 0,
                       "texture fetch through a freed backing allocation");
        return 0.0f;
      }
    }
    const Texture2D& tex = block_->launch->texture(handle);
    ++block_->counters.texture_fetches;
    if (!tex.resolve(x, y)) {
      // Border fetches are satisfied without a cache transaction.
      ++block_->counters.texture_hits;
      return tex.border_value();
    }
    const std::uint64_t address = tex.cache_address(x, y);
    bool hit = false;
    SetAssociativeCache& cache = (*block_->launch->sm_caches)[
        static_cast<std::size_t>(block_->sm_id)];
    if (block_->launch->parallel_blocks) {
      const std::lock_guard<std::mutex> lock(
          block_->launch->sm_cache_mutexes[block_->sm_id]);
      hit = cache.access(address);
    } else {
      hit = cache.access(address);
    }
    if (hit) {
      ++block_->counters.texture_hits;
    } else {
      ++block_->counters.texture_misses;
    }
    return tex.value(x, y);
  }

  // --- Control ----------------------------------------------------------------
  /// Record the outcome of a potentially warp-divergent branch. `site`
  /// identifies the branch location (0..BlockState::kMaxBranchSites-1).
  void branch(int site, bool taken) {
    STARSIM_REQUIRE(site >= 0 && site < BlockState::kMaxBranchSites,
                    "branch site id out of range");
    ++block_->branch_counts[warp_id_][static_cast<std::size_t>(site)]
                           [taken ? 1 : 0];
  }

  /// Block-wide barrier; usable only as `co_await ctx.syncthreads()`.
  struct BarrierAwaiter {
    ThreadCtx* ctx;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {
      ctx->at_barrier_ = true;
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] BarrierAwaiter syncthreads() { return BarrierAwaiter{this}; }

  // --- Runner interface ---------------------------------------------------------
  [[nodiscard]] bool at_barrier() const { return at_barrier_; }
  void clear_barrier() { at_barrier_ = false; }
  [[nodiscard]] BlockState& block_state() { return *block_; }

  // --- Sanitizer hooks ----------------------------------------------------------
  /// True when any sanitizer tool is active for this launch (the single
  /// branch every instrumented site pays in off mode).
  [[nodiscard]] bool sanitizing() const {
    return block_->launch->sanitize != SanitizerMode::kOff;
  }

  /// Record a finding at this thread's coordinates and barrier epoch.
  void report_finding(SanitizerFindingKind kind, std::uint32_t alloc_id,
                      std::uint64_t address, std::string message) {
    SanitizerFinding finding;
    finding.kind = kind;
    finding.block = block_->block_idx;
    finding.thread = thread_idx_;
    finding.allocation_id = alloc_id;
    finding.address = address;
    finding.epoch = block_->sync_epoch;
    finding.message = std::move(message);
    block_->launch->report_finding(std::move(finding));
  }

  /// Memcheck a global access. True = proceed; false = a finding was
  /// recorded and the access must be suppressed.
  template <typename T>
  [[nodiscard]] bool memcheck_global(const DevicePtr<T>& ptr, std::size_t i,
                                     bool is_write) {
    if (!sanitizer_enabled(block_->launch->sanitize,
                           SanitizerMode::kMemcheck)) {
      return true;
    }
    const char* op = is_write ? "write" : "read";
    if (!ptr.is_live()) {
      report_finding(SanitizerFindingKind::kUseAfterFree, ptr.allocation_id(),
                     i * sizeof(T),
                     std::string("global ") + op +
                         " through a freed or null device pointer");
      return false;
    }
    if (i >= ptr.size()) {
      report_finding(SanitizerFindingKind::kGlobalOutOfBounds,
                     ptr.allocation_id(), i * sizeof(T),
                     std::string("global ") + op + " at element " +
                         std::to_string(i) + " beyond extent " +
                         std::to_string(ptr.size()));
      return false;
    }
    if (is_write) {
      ptr.sanitizer_mark_initialized(i * sizeof(T), sizeof(T));
    } else if (!ptr.sanitizer_initialized(i * sizeof(T), sizeof(T))) {
      // The bytes are deterministically zero, so the read itself is safe;
      // report and proceed so one run surfaces every uninitialized site.
      report_finding(SanitizerFindingKind::kUninitializedRead,
                     ptr.allocation_id(), i * sizeof(T),
                     "global read of " + std::to_string(sizeof(T)) +
                         " byte(s) never written since allocation");
    }
    return true;
  }

  /// Memcheck a shared access (bounds only; shared arrays are zero-filled
  /// at creation by construction). Same proceed/suppress contract.
  [[nodiscard]] bool memcheck_shared(std::size_t slot, std::size_t i,
                                     std::size_t count,
                                     std::size_t elem_bytes, bool is_write) {
    if (!sanitizer_enabled(block_->launch->sanitize,
                           SanitizerMode::kMemcheck)) {
      return true;
    }
    if (i >= count) {
      report_finding(SanitizerFindingKind::kSharedOutOfBounds,
                     static_cast<std::uint32_t>(slot),
                     block_->shared_allocs[slot].base_offset + i * elem_bytes,
                     std::string("shared ") + (is_write ? "write" : "read") +
                         " at element " + std::to_string(i) +
                         " beyond extent " + std::to_string(count));
      return false;
    }
    return true;
  }

  // --- Access-class bookkeeping (SharedArray + load/store) -----------------------
  void record_shared_access(std::size_t slot, std::size_t byte_in_alloc,
                            std::size_t arena_offset, std::size_t bytes,
                            bool is_write) {
    if (is_write) {
      ++block_->counters.shared_writes;
    } else {
      ++block_->counters.shared_reads;
    }
    if (block_->launch->track_warp_access) {
      block_->shared_access.record(warp_id_, shared_seq_++, arena_offset);
    }
    if (sanitizer_enabled(block_->launch->sanitize,
                          SanitizerMode::kRacecheck)) [[unlikely]] {
      check_shared_race(slot, byte_in_alloc, arena_offset, bytes, is_write);
    }
  }

 private:
  /// Racecheck: per-4-byte-word shadow cells record the last write and the
  /// readers of the current barrier epoch; a second thread touching the
  /// same word in the same epoch with at least one write is a hazard. One
  /// finding per word (the cell is then flagged) keeps reports readable.
  void check_shared_race(std::size_t slot, std::size_t byte_in_alloc,
                         std::size_t arena_offset, std::size_t bytes,
                         bool is_write) {
    BlockState::SharedAlloc& alloc = block_->shared_allocs[slot];
    if (alloc.race.empty()) alloc.race.resize((alloc.bytes + 3) / 4);
    const auto epoch = static_cast<std::int64_t>(block_->sync_epoch);
    const std::uint32_t me = linear_thread_;
    const std::size_t first = byte_in_alloc / 4;
    const std::size_t last = (byte_in_alloc + bytes - 1) / 4;
    for (std::size_t w = first; w <= last && w < alloc.race.size(); ++w) {
      BlockState::SharedAlloc::RaceCell& cell = alloc.race[w];
      if (is_write) {
        const bool write_write = cell.write_epoch == epoch && cell.writer != me;
        const bool read_write =
            cell.read_epoch == epoch &&
            (cell.reader != me || cell.multiple_readers);
        if ((write_write || read_write) && !cell.flagged) {
          cell.flagged = true;
          const std::uint32_t other = write_write ? cell.writer : cell.reader;
          report_finding(
              SanitizerFindingKind::kSharedRace,
              static_cast<std::uint32_t>(slot), arena_offset,
              std::string(write_write ? "write-after-write"
                                      : "write-after-read") +
                  " hazard on shared word " + std::to_string(w) +
                  ": threads " + std::to_string(other) + " and " +
                  std::to_string(me) +
                  " with no __syncthreads between them");
        }
        cell.write_epoch = epoch;
        cell.writer = me;
      } else {
        if (cell.write_epoch == epoch && cell.writer != me && !cell.flagged) {
          cell.flagged = true;
          report_finding(
              SanitizerFindingKind::kSharedRace,
              static_cast<std::uint32_t>(slot), arena_offset,
              "read-after-write hazard on shared word " + std::to_string(w) +
                  ": threads " + std::to_string(cell.writer) + " and " +
                  std::to_string(me) +
                  " with no __syncthreads between them");
        }
        if (cell.read_epoch != epoch) {
          cell.read_epoch = epoch;
          cell.reader = me;
          cell.multiple_readers = false;
        } else if (cell.reader != me) {
          cell.multiple_readers = true;
        }
      }
    }
  }

  void record_global_access(std::uint32_t alloc_id, std::size_t byte_offset) {
    if (block_->launch->track_warp_access) {
      // Distinct allocations cannot coalesce: offset them far apart in the
      // tracker's address space.
      block_->global_access.record(
          warp_id_, global_seq_++,
          (static_cast<std::uint64_t>(alloc_id) << 40) + byte_offset);
    }
  }

  std::atomic<std::uint32_t>* shadow_counts(const DevicePtr<float>& ptr) {
    // Consult the block-level cache first: kernels almost always direct all
    // their atomics at one destination (the image), so the launch-wide
    // lookup (which takes a lock) happens once per block, not per op.
    if (ptr.allocation_id() != block_->shadow_alloc_id) {
      block_->shadow = block_->launch->shadow_for(ptr.allocation_id(),
                                                  ptr.size());
      block_->shadow_alloc_id = ptr.allocation_id();
    }
    return block_->shadow;
  }

  BlockState* block_;
  Dim3 thread_idx_;
  std::uint32_t linear_thread_ = 0;
  std::uint32_t warp_id_ = 0;
  std::size_t shared_cursor_ = 0;
  bool at_barrier_ = false;
  std::uint32_t shared_seq_ = 0;
  std::uint32_t global_seq_ = 0;
};

template <typename T>
T SharedArray<T>::get(std::size_t i) const {
  if (ctx_->sanitizing()) [[unlikely]] {
    if (!ctx_->memcheck_shared(slot_, i, count_, sizeof(T),
                               /*is_write=*/false)) {
      return T{};
    }
  }
  STARSIM_REQUIRE(i < count_, "shared memory read out of bounds");
  ctx_->record_shared_access(slot_, i * sizeof(T),
                             base_offset_ + i * sizeof(T), sizeof(T),
                             /*is_write=*/false);
  return data_[i];
}

template <typename T>
void SharedArray<T>::set(std::size_t i, T value) const {
  if (ctx_->sanitizing()) [[unlikely]] {
    if (!ctx_->memcheck_shared(slot_, i, count_, sizeof(T),
                               /*is_write=*/true)) {
      return;
    }
  }
  STARSIM_REQUIRE(i < count_, "shared memory write out of bounds");
  ctx_->record_shared_access(slot_, i * sizeof(T),
                             base_offset_ + i * sizeof(T), sizeof(T),
                             /*is_write=*/true);
  data_[i] = value;
}

}  // namespace starsim::gpusim
