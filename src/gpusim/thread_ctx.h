// The per-thread kernel execution context — gpusim's equivalent of CUDA's
// implicit thread environment (threadIdx/blockIdx/blockDim/gridDim, global
// and shared memory access, atomics, textures, __syncthreads).
//
// Every operation with a timing consequence goes through a ThreadCtx method
// so it is tallied in the block's KernelCounters; the performance model
// prices those tallies afterwards. Plain arithmetic is declared by the
// kernel via count_flops()/exp()/pow(), the same convention the sequential
// simulator uses through FlopMeter, so CPU and GPU work is measured in the
// same unit (fp64 flop-equivalents).
#pragma once

#include <cmath>
#include <coroutine>
#include <cstdint>
#include <span>

#include "gpusim/launch_state.h"
#include "gpusim/device_memory.h"

namespace starsim::gpusim {

class ThreadCtx;

/// Counted shared-memory array handle (see ThreadCtx::shared_array).
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;

  [[nodiscard]] std::size_t size() const { return count_; }

  /// Counted read of element `i`.
  [[nodiscard]] T get(std::size_t i) const;

  /// Counted write of element `i`.
  void set(std::size_t i, T value) const;

 private:
  friend class ThreadCtx;
  SharedArray(T* data, std::size_t count, std::size_t base_offset,
              ThreadCtx* ctx)
      : data_(data), count_(count), base_offset_(base_offset), ctx_(ctx) {}

  T* data_ = nullptr;
  std::size_t count_ = 0;
  /// Byte offset of element 0 within the block's shared-memory arena —
  /// the address space bank indices are derived from.
  std::size_t base_offset_ = 0;
  ThreadCtx* ctx_ = nullptr;
};

class ThreadCtx {
 public:
  ThreadCtx(BlockState* block, const Dim3& thread_idx)
      : block_(block), thread_idx_(thread_idx) {
    linear_thread_ = static_cast<std::uint32_t>(
        block->launch->config.block.linear(thread_idx));
    warp_id_ = linear_thread_ /
               static_cast<std::uint32_t>(block->launch->spec->warp_size);
  }

  ThreadCtx(const ThreadCtx&) = delete;
  ThreadCtx& operator=(const ThreadCtx&) = delete;
  ThreadCtx(ThreadCtx&&) = default;
  ThreadCtx& operator=(ThreadCtx&&) = delete;

  // --- Identity -------------------------------------------------------------
  [[nodiscard]] const Dim3& thread_idx() const { return thread_idx_; }
  [[nodiscard]] const Dim3& block_idx() const { return block_->block_idx; }
  [[nodiscard]] const Dim3& block_dim() const {
    return block_->launch->config.block;
  }
  [[nodiscard]] const Dim3& grid_dim() const {
    return block_->launch->config.grid;
  }
  /// Linearized block index within the grid (the paper's blockId).
  [[nodiscard]] std::uint64_t block_linear() const {
    return block_->block_linear;
  }
  [[nodiscard]] std::uint32_t thread_linear() const { return linear_thread_; }
  [[nodiscard]] std::uint32_t warp_id() const { return warp_id_; }

  // --- Arithmetic accounting --------------------------------------------------
  /// Declare `n` fp64 flop-equivalents of plain arithmetic.
  void count_flops(std::uint64_t n) { block_->counters.flops += n; }

  /// Counted transcendentals (software fp64 on the modeled device).
  double exp(double x) {
    block_->counters.flops +=
        static_cast<std::uint64_t>(block_->launch->spec->exp_flop_equiv);
    return std::exp(x);
  }
  double pow(double base, double exponent) {
    block_->counters.flops +=
        static_cast<std::uint64_t>(block_->launch->spec->pow_flop_equiv);
    return std::pow(base, exponent);
  }
  double sqrt(double x) {
    block_->counters.flops +=
        static_cast<std::uint64_t>(block_->launch->spec->sqrt_flop_equiv);
    return std::sqrt(x);
  }
  double erf(double x) {
    block_->counters.flops +=
        static_cast<std::uint64_t>(block_->launch->spec->erf_flop_equiv);
    return std::erf(x);
  }

  // --- Global memory ----------------------------------------------------------
  template <typename T>
  [[nodiscard]] T load(const DevicePtr<T>& ptr, std::size_t i) {
    STARSIM_REQUIRE(i < ptr.size(), "global read out of bounds");
    ++block_->counters.global_reads;
    block_->counters.global_bytes_read += sizeof(T);
    record_global_access(ptr.allocation_id(), i * sizeof(T));
    return ptr.raw()[i];
  }

  template <typename T>
  void store(const DevicePtr<T>& ptr, std::size_t i, T value) {
    STARSIM_REQUIRE(i < ptr.size(), "global write out of bounds");
    ++block_->counters.global_writes;
    block_->counters.global_bytes_written += sizeof(T);
    record_global_access(ptr.allocation_id(), i * sizeof(T));
    ptr.raw()[i] = value;
  }

  /// atomicAdd on a float in global memory: thread-safe across concurrently
  /// executing blocks, with exact per-address conflict accounting.
  float atomic_add(const DevicePtr<float>& ptr, std::size_t i, float value) {
    STARSIM_REQUIRE(i < ptr.size(), "atomic add out of bounds");
    ++block_->counters.atomic_ops;
    block_->counters.global_bytes_read += sizeof(float);
    block_->counters.global_bytes_written += sizeof(float);
    std::atomic<std::uint32_t>* shadow = shadow_counts(ptr);
    shadow[i].fetch_add(1, std::memory_order_relaxed);
    float* target = ptr.raw() + i;
    if (block_->launch->parallel_blocks) {
      std::atomic_ref<float> cell(*target);
      float expected = cell.load(std::memory_order_relaxed);
      while (!cell.compare_exchange_weak(expected, expected + value,
                                         std::memory_order_relaxed)) {
      }
      return expected;
    }
    const float previous = *target;
    *target = previous + value;
    return previous;
  }

  // --- Shared memory ----------------------------------------------------------
  /// Attach to (or, for the first thread to get here, create) the block's
  /// next shared-memory array. All threads of a block must make the same
  /// shared_array calls in the same order, as with static __shared__
  /// declarations in CUDA.
  template <typename T>
  [[nodiscard]] SharedArray<T> shared_array(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    auto& allocs = block_->shared_allocs;
    const std::size_t slot = shared_cursor_++;
    if (slot < allocs.size()) {
      STARSIM_REQUIRE(allocs[slot].bytes == bytes,
                      "shared_array sequence mismatch across threads");
      return SharedArray<T>(reinterpret_cast<T*>(allocs[slot].data.get()),
                            count, allocs[slot].base_offset, this);
    }
    STARSIM_REQUIRE(slot == allocs.size(),
                    "shared_array sequence mismatch across threads");
    BlockState::SharedAlloc alloc;
    alloc.base_offset = block_->shared_used;
    block_->shared_used += bytes;
    STARSIM_REQUIRE(
        block_->shared_used <= block_->launch->spec->shared_memory_per_block,
        "shared memory per block exceeded");
    alloc.data = std::make_unique<std::byte[]>(bytes);
    std::fill_n(alloc.data.get(), bytes, std::byte{0});
    alloc.bytes = bytes;
    allocs.push_back(std::move(alloc));
    return SharedArray<T>(reinterpret_cast<T*>(allocs.back().data.get()),
                          count, allocs.back().base_offset, this);
  }

  // --- Texture ----------------------------------------------------------------
  /// Nearest-sample fetch through the block's SM texture cache.
  float tex2d(TextureHandle handle, int x, int y) {
    const Texture2D& tex = block_->launch->texture(handle);
    ++block_->counters.texture_fetches;
    if (!tex.resolve(x, y)) {
      // Border fetches are satisfied without a cache transaction.
      ++block_->counters.texture_hits;
      return tex.border_value();
    }
    const std::uint64_t address = tex.cache_address(x, y);
    bool hit = false;
    SetAssociativeCache& cache = (*block_->launch->sm_caches)[
        static_cast<std::size_t>(block_->sm_id)];
    if (block_->launch->parallel_blocks) {
      const std::lock_guard<std::mutex> lock(
          block_->launch->sm_cache_mutexes[block_->sm_id]);
      hit = cache.access(address);
    } else {
      hit = cache.access(address);
    }
    if (hit) {
      ++block_->counters.texture_hits;
    } else {
      ++block_->counters.texture_misses;
    }
    return tex.value(x, y);
  }

  // --- Control ----------------------------------------------------------------
  /// Record the outcome of a potentially warp-divergent branch. `site`
  /// identifies the branch location (0..BlockState::kMaxBranchSites-1).
  void branch(int site, bool taken) {
    STARSIM_REQUIRE(site >= 0 && site < BlockState::kMaxBranchSites,
                    "branch site id out of range");
    ++block_->branch_counts[warp_id_][static_cast<std::size_t>(site)]
                           [taken ? 1 : 0];
  }

  /// Block-wide barrier; usable only as `co_await ctx.syncthreads()`.
  struct BarrierAwaiter {
    ThreadCtx* ctx;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {
      ctx->at_barrier_ = true;
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] BarrierAwaiter syncthreads() { return BarrierAwaiter{this}; }

  // --- Runner interface ---------------------------------------------------------
  [[nodiscard]] bool at_barrier() const { return at_barrier_; }
  void clear_barrier() { at_barrier_ = false; }
  [[nodiscard]] BlockState& block_state() { return *block_; }

  // --- Access-class bookkeeping (SharedArray + load/store) -----------------------
  void record_shared_access(std::size_t byte_offset, bool is_write) {
    if (is_write) {
      ++block_->counters.shared_writes;
    } else {
      ++block_->counters.shared_reads;
    }
    if (block_->launch->track_warp_access) {
      block_->shared_access.record(warp_id_, shared_seq_++, byte_offset);
    }
  }

 private:
  void record_global_access(std::uint32_t alloc_id, std::size_t byte_offset) {
    if (block_->launch->track_warp_access) {
      // Distinct allocations cannot coalesce: offset them far apart in the
      // tracker's address space.
      block_->global_access.record(
          warp_id_, global_seq_++,
          (static_cast<std::uint64_t>(alloc_id) << 40) + byte_offset);
    }
  }

  std::atomic<std::uint32_t>* shadow_counts(const DevicePtr<float>& ptr) {
    // Consult the block-level cache first: kernels almost always direct all
    // their atomics at one destination (the image), so the launch-wide
    // lookup (which takes a lock) happens once per block, not per op.
    if (ptr.allocation_id() != block_->shadow_alloc_id) {
      block_->shadow = block_->launch->shadow_for(ptr.allocation_id(),
                                                  ptr.size());
      block_->shadow_alloc_id = ptr.allocation_id();
    }
    return block_->shadow;
  }

  BlockState* block_;
  Dim3 thread_idx_;
  std::uint32_t linear_thread_ = 0;
  std::uint32_t warp_id_ = 0;
  std::size_t shared_cursor_ = 0;
  bool at_barrier_ = false;
  std::uint32_t shared_seq_ = 0;
  std::uint32_t global_seq_ = 0;
};

template <typename T>
T SharedArray<T>::get(std::size_t i) const {
  STARSIM_REQUIRE(i < count_, "shared memory read out of bounds");
  ctx_->record_shared_access(base_offset_ + i * sizeof(T),
                             /*is_write=*/false);
  return data_[i];
}

template <typename T>
void SharedArray<T>::set(std::size_t i, T value) const {
  STARSIM_REQUIRE(i < count_, "shared memory write out of bounds");
  ctx_->record_shared_access(base_offset_ + i * sizeof(T), /*is_write=*/true);
  data_[i] = value;
}

}  // namespace starsim::gpusim
