// Occupancy: how much of the device a launch configuration can keep busy.
//
// The paper's Figs 9/10 hinge on this — "when the number of threads is low
// ... we cannot fully take advantage of the massive computing resources
// available on the GPU". Occupancy feeds the performance model's
// utilization ramp: a launch saturates the device only once it can keep
// `DeviceSpec::warps_to_saturate_per_sm` warps resident on every SM.
#pragma once

#include <cstdint>

#include "gpusim/device_spec.h"
#include "gpusim/dim.h"

namespace starsim::gpusim {

struct Occupancy {
  std::uint64_t warps_per_block = 0;
  /// Blocks one SM can host concurrently for this configuration.
  int resident_blocks_per_sm = 0;
  /// Warps one SM hosts concurrently (resident blocks x warps per block,
  /// capped by the SM warp limit).
  int resident_warps_per_sm = 0;
  /// Warps the whole device can execute concurrently for this launch
  /// (bounded by the grid itself for small launches).
  double concurrent_warps = 0.0;
  /// 0..1: concurrent warps relative to the device's saturation point.
  double utilization = 0.0;
};

/// Compute occupancy of `config` on `spec`. The configuration must already
/// be valid (Device::launch validates before calling).
[[nodiscard]] Occupancy compute_occupancy(const DeviceSpec& spec,
                                          const LaunchConfig& config);

}  // namespace starsim::gpusim
