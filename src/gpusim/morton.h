// Morton (Z-order) index interleaving.
//
// GPU texture units store 2-D textures in a tiled/block-linear layout so that
// spatially adjacent texels land in the same cache line. We model that layout
// with Morton order: the texture-cache address of texel (x, y) interleaves
// the bits of x and y, which is what gives the texture path its 2-D locality
// advantage over a row-major global-memory walk (the paper's first stated
// reason for using texture memory).
#pragma once

#include <cstdint>

namespace starsim::gpusim {

/// Spread the low 16 bits of `v` so bit i lands at position 2*i.
[[nodiscard]] constexpr std::uint32_t morton_part1by1(std::uint32_t v) {
  v &= 0x0000ffffu;
  v = (v | (v << 8)) & 0x00ff00ffu;
  v = (v | (v << 4)) & 0x0f0f0f0fu;
  v = (v | (v << 2)) & 0x33333333u;
  v = (v | (v << 1)) & 0x55555555u;
  return v;
}

/// Z-order index of (x, y); both coordinates must fit in 16 bits.
[[nodiscard]] constexpr std::uint32_t morton_encode(std::uint32_t x,
                                                    std::uint32_t y) {
  return morton_part1by1(x) | (morton_part1by1(y) << 1);
}

/// Compact every second bit (inverse of morton_part1by1).
[[nodiscard]] constexpr std::uint32_t morton_compact1by1(std::uint32_t v) {
  v &= 0x55555555u;
  v = (v | (v >> 1)) & 0x33333333u;
  v = (v | (v >> 2)) & 0x0f0f0f0fu;
  v = (v | (v >> 4)) & 0x00ff00ffu;
  v = (v | (v >> 8)) & 0x0000ffffu;
  return v;
}

/// X coordinate encoded in a Morton index.
[[nodiscard]] constexpr std::uint32_t morton_decode_x(std::uint32_t code) {
  return morton_compact1by1(code);
}

/// Y coordinate encoded in a Morton index.
[[nodiscard]] constexpr std::uint32_t morton_decode_y(std::uint32_t code) {
  return morton_compact1by1(code >> 1);
}

}  // namespace starsim::gpusim
