// The simulated GPU device — gpusim's equivalent of the CUDA runtime.
//
// Host code uses a Device the way the paper's host code uses CUDA:
//
//   Device dev(DeviceSpec::gtx480());
//   auto stars = dev.malloc<Star>(n);
//   dev.memcpy_h2d(stars, host_stars);                  // modeled PCIe cost
//   auto result = dev.launch(config, kernel);           // functional + timed
//   dev.memcpy_d2h(host_image, image);                  // modeled PCIe cost
//
// Kernels execute functionally (real data, bounds-checked, barrier-correct);
// every launch returns the counters gathered during execution and the
// modeled KernelTiming derived from them. Host<->device transfers move real
// bytes and accrue modeled PCIe time into TransferStats — the "non-kernel
// overhead" that the paper's evaluation revolves around.
#pragma once

#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "gpusim/block_runner.h"
#include "gpusim/device_memory.h"
#include "gpusim/device_spec.h"
#include "gpusim/fault_injector.h"
#include "gpusim/launch_state.h"
#include "gpusim/perf_model.h"
#include "gpusim/sanitizer.h"
#include "gpusim/texture.h"
#include "trace/trace.h"

namespace starsim::gpusim {

/// Accumulated host<->device traffic and its modeled cost.
struct TransferStats {
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint32_t h2d_calls = 0;
  std::uint32_t d2h_calls = 0;
  double h2d_s = 0.0;
  double d2h_s = 0.0;
  std::uint32_t texture_binds = 0;
  double texture_bind_s = 0.0;

  [[nodiscard]] double transfer_s() const { return h2d_s + d2h_s; }
  [[nodiscard]] double total_s() const { return transfer_s() + texture_bind_s; }
};

/// Everything known about one completed kernel launch.
struct LaunchResult {
  LaunchConfig config;
  KernelCounters counters;
  KernelTiming timing;
  /// Findings of this launch; empty (and cost-free) when sanitizing is off.
  SanitizerReport sanitizer;
};

class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::gtx480());
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] const DeviceMemoryManager& memory() const { return memory_; }

  // --- Fault injection ---------------------------------------------------------
  /// Attach a fault-injection oracle (see gpusim/fault_injector.h) consulted
  /// at every allocation, transfer, launch and texture bind. nullptr
  /// detaches. Non-owning; the injector must outlive the device. Disabled
  /// (the default) costs exactly one predictable null check per site.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_ = injector;
    memory_.set_fault_injector(injector);
  }
  [[nodiscard]] FaultInjector* fault_injector() const {
    return fault_injector_;
  }
  /// True when an attached injector has latched the device as lost.
  [[nodiscard]] bool lost() const {
    return fault_injector_ != nullptr && fault_injector_->device_lost();
  }

  // --- Sanitizer ---------------------------------------------------------------
  /// Default SanitizerMode for subsequent launches; also arms the memory
  /// manager (memcheck gives *future* allocations an initialization
  /// shadow, so enable before allocating for full coverage). kOff (the
  /// default) keeps every instrumented site to one predictable branch.
  void set_sanitizer(SanitizerMode mode) {
    sanitize_ = mode;
    memory_.set_sanitizer(mode);
  }
  [[nodiscard]] SanitizerMode sanitizer() const { return sanitize_; }

  /// Findings accumulated across launches (and host-side checks) since
  /// construction or the last clear.
  [[nodiscard]] const SanitizerReport& sanitizer_report() const {
    return sanitizer_report_;
  }
  void clear_sanitizer_report() { sanitizer_report_ = SanitizerReport{}; }

  /// Leakcheck: every still-live allocation and still-bound texture, as of
  /// now. Callers run it when the device *should* be empty (teardown, end
  /// of a frame loop); the destructor logs it when leakcheck is armed.
  [[nodiscard]] SanitizerReport leak_report() const;

  // --- Memory ------------------------------------------------------------------
  template <typename T>
  [[nodiscard]] DevicePtr<T> malloc(std::size_t count) {
    if (trace::tracing_on()) [[unlikely]] {
      trace::instant(
          "gpusim", "malloc",
          {{"bytes", static_cast<std::int64_t>(count * sizeof(T))}});
    }
    return memory_.allocate<T>(count);
  }

  template <typename T>
  void free(DevicePtr<T>& ptr) {
    if (trace::tracing_on()) [[unlikely]] {
      trace::instant("gpusim", "free",
                     {{"bytes", static_cast<std::int64_t>(ptr.bytes())},
                      {"allocation_id",
                       static_cast<std::int64_t>(ptr.allocation_id())}});
    }
    memory_.release(ptr);
  }

  /// Copy host -> device; accrues modeled PCIe time. An oversized copy is
  /// a real defect (SanitizerError, never retryable), with the offending
  /// handle and extents in the message.
  template <typename T>
  void memcpy_h2d(const DevicePtr<T>& dst, std::span<const T> src) {
    if (src.size() > dst.size()) {
      STARSIM_THROW(support::SanitizerError,
                    "h2d copy of " + std::to_string(src.size()) +
                        " element(s) overflows device allocation #" +
                        std::to_string(dst.allocation_id()) + " of " +
                        std::to_string(dst.size()) + " element(s)");
    }
    trace::TraceSpan span("gpusim", "memcpy_h2d");
    std::memcpy(dst.raw(), src.data(), src.size_bytes());
    dst.sanitizer_mark_initialized(0, src.size_bytes());
    const double modeled_s =
        estimate_transfer_time(spec_, src.size_bytes(), pinned_transfers_);
    transfers_.h2d_bytes += src.size_bytes();
    transfers_.h2d_calls += 1;
    transfers_.h2d_s += modeled_s;
    if (span.armed()) [[unlikely]] {
      span.arg("bytes", src.size_bytes())
          .arg("modeled_s", modeled_s)
          .arg("pinned", pinned_transfers_);
    }
    if (fault_injector_ != nullptr) [[unlikely]] {
      fault_injector_->on_transfer(FaultSite::kMemcpyH2D,
                                   reinterpret_cast<std::byte*>(dst.raw()),
                                   src.size_bytes());
    }
  }

  /// Copy device -> host; accrues modeled PCIe time. Same typed-error
  /// contract as memcpy_h2d; with memcheck armed, reading back bytes no
  /// store/copy/memset ever wrote is reported as an uninitialized read.
  template <typename T>
  void memcpy_d2h(std::span<T> dst, const DevicePtr<T>& src) {
    if (dst.size() < src.size()) {
      STARSIM_THROW(support::SanitizerError,
                    "d2h copy of device allocation #" +
                        std::to_string(src.allocation_id()) + " (" +
                        std::to_string(src.size()) +
                        " element(s)) overflows a host buffer of " +
                        std::to_string(dst.size()) + " element(s)");
    }
    if (!src.sanitizer_initialized(0, src.bytes())) [[unlikely]] {
      SanitizerFinding finding;
      finding.kind = SanitizerFindingKind::kUninitializedRead;
      finding.allocation_id = src.allocation_id();
      finding.message =
          "d2h copy reads device allocation #" +
          std::to_string(src.allocation_id()) +
          " containing byte(s) never written since allocation";
      sanitizer_report_.add(std::move(finding));
    }
    trace::TraceSpan span("gpusim", "memcpy_d2h");
    std::memcpy(dst.data(), src.raw(), src.bytes());
    const double modeled_s =
        estimate_transfer_time(spec_, src.bytes(), pinned_transfers_);
    transfers_.d2h_bytes += src.bytes();
    transfers_.d2h_calls += 1;
    transfers_.d2h_s += modeled_s;
    if (span.armed()) [[unlikely]] {
      span.arg("bytes", src.bytes())
          .arg("modeled_s", modeled_s)
          .arg("pinned", pinned_transfers_);
    }
    if (fault_injector_ != nullptr) [[unlikely]] {
      fault_injector_->on_transfer(FaultSite::kMemcpyD2H,
                                   reinterpret_cast<std::byte*>(dst.data()),
                                   src.bytes());
    }
  }

  /// Stage transfers through page-locked host memory (the transmission
  /// optimization of the paper's reference [10]); raises the modeled PCIe
  /// bandwidth for subsequent copies.
  void set_pinned_transfers(bool enabled) { pinned_transfers_ = enabled; }
  [[nodiscard]] bool pinned_transfers() const { return pinned_transfers_; }

  /// Device-side fill with zero bytes (cudaMemset); no PCIe traffic.
  template <typename T>
  void memset_zero(const DevicePtr<T>& ptr) {
    std::memset(ptr.raw(), 0, ptr.bytes());
    ptr.sanitizer_mark_initialized(0, ptr.bytes());
  }

  // --- Textures -------------------------------------------------------------------
  /// Bind a row-major float region as a 2-D texture; accrues the modeled
  /// binding cost (Table I's "Texture Memory Binding" row).
  TextureHandle bind_texture_2d(const DevicePtr<float>& data, int width,
                                int height, AddressMode mode,
                                float border_value = 0.0f);
  void unbind_texture(TextureHandle handle);
  [[nodiscard]] std::size_t bound_texture_count() const;

  // --- Execution -------------------------------------------------------------------
  /// Launch `kernel` over `config`. The kernel is any callable
  /// `ThreadProgram(ThreadCtx&)`. Blocks run concurrently across host
  /// threads when parallel_blocks() is enabled (OpenMP builds only).
  template <typename KernelFn>
  LaunchResult launch(const LaunchConfig& config, const KernelFn& kernel) {
    return launch_sanitized(config, kernel, sanitize_);
  }

  /// launch() with a per-launch SanitizerMode override (e.g. sanitize one
  /// suspect kernel without paying for the whole frame loop).
  template <typename KernelFn>
  LaunchResult launch_sanitized(const LaunchConfig& config,
                                const KernelFn& kernel, SanitizerMode mode) {
    trace::TraceSpan span("gpusim", "kernel_launch");
    validate_launch(config);
    for (SetAssociativeCache& cache : sm_caches_) cache.reset();

    LaunchState state;
    state.spec = &spec_;
    state.config = config;
    state.parallel_blocks = parallel_blocks_;
    state.track_warp_access = track_warp_access_;
    state.sanitize = mode;
    state.textures = &textures_;
    state.sm_caches = &sm_caches_;
    state.sm_cache_mutexes = sm_cache_mutexes_.get();

    const std::uint64_t block_count = config.total_blocks();
#ifdef _OPENMP
    if (parallel_blocks_) {
      std::exception_ptr first_error;
      std::mutex error_mutex;
#pragma omp parallel for schedule(dynamic, 8)
      for (long long b = 0; b < static_cast<long long>(block_count); ++b) {
        try {
          run_block(state,
                    config.grid.delinearize(static_cast<std::uint64_t>(b)),
                    kernel);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
    } else
#endif
    {
      for (std::uint64_t b = 0; b < block_count; ++b) {
        run_block(state, config.grid.delinearize(b), kernel);
      }
    }

    state.totals.atomic_conflicts = state.total_atomic_conflicts();
    LaunchResult result{config, state.totals,
                        estimate_kernel_time(spec_, config, state.totals)};
    if (span.armed()) [[unlikely]] {
      span.arg("grid_x", config.grid.x)
          .arg("grid_y", config.grid.y)
          .arg("block_x", config.block.x)
          .arg("block_y", config.block.y)
          .arg("blocks", block_count)
          .arg("threads", config.total_threads())
          .arg("kernel_s", result.timing.kernel_s)
          .arg("utilization", result.timing.utilization)
          .arg("achieved_gflops", result.timing.achieved_gflops)
          .arg("flops", result.counters.flops)
          .arg("global_bytes", result.counters.global_bytes())
          .arg("sanitize", to_string(mode));
      // A few sampled per-block markers so a timeline shows the block-level
      // structure of the launch without emitting one event per block. The
      // modeled per-block cost assumes the uniform work distribution that
      // estimate_kernel_time itself assumes.
      if (block_count > 0) {
        const std::uint64_t samples = block_count < 4 ? block_count : 4;
        const std::uint64_t stride = block_count / samples;
        const double per_block_s =
            result.timing.kernel_s / static_cast<double>(block_count);
        for (std::uint64_t i = 0; i < samples; ++i) {
          trace::instant("gpusim", "block_sample",
                         {{"block", static_cast<std::int64_t>(i * stride)},
                          {"modeled_block_s", per_block_s}});
        }
      }
    }
    if (mode != SanitizerMode::kOff) [[unlikely]] {
      state.sanitizer_report.mode = mode;
      result.sanitizer = std::move(state.sanitizer_report);
      sanitizer_report_.merge(result.sanitizer);
    }
    // A launch killed by the (injected) watchdog never retires: it leaves
    // no last_launch_ record, as if cudaDeviceSynchronize returned an error.
    if (fault_injector_ != nullptr) [[unlikely]] {
      fault_injector_->on_kernel_launch(result.timing.kernel_s);
    }
    last_launch_ = result;
    ++launch_count_;
    return result;
  }

  // --- Statistics --------------------------------------------------------------------
  [[nodiscard]] const TransferStats& transfer_stats() const {
    return transfers_;
  }
  void reset_transfer_stats() { transfers_ = TransferStats{}; }

  [[nodiscard]] const LaunchResult& last_launch() const;
  [[nodiscard]] std::size_t launch_count() const { return launch_count_; }

  /// Per-SM texture cache state after the most recent launch.
  [[nodiscard]] const std::vector<SetAssociativeCache>& texture_caches()
      const {
    return sm_caches_;
  }

  /// Enable/disable concurrent block execution (effective in OpenMP builds;
  /// serial execution is fully deterministic, including cache statistics).
  void set_parallel_blocks(bool enabled) { parallel_blocks_ = enabled; }
  [[nodiscard]] bool parallel_blocks() const { return parallel_blocks_; }

  /// Enable/disable warp-level access grouping (bank-conflict and
  /// coalescing counters). On by default; disabling speeds up functional
  /// execution slightly and zeroes those two counters.
  void set_warp_access_tracking(bool enabled) {
    track_warp_access_ = enabled;
  }
  [[nodiscard]] bool warp_access_tracking() const {
    return track_warp_access_;
  }

 private:
  void validate_launch(const LaunchConfig& config) const;

  DeviceSpec spec_;
  DeviceMemoryManager memory_;
  std::vector<std::optional<Texture2D>> textures_;
  std::vector<SetAssociativeCache> sm_caches_;
  std::unique_ptr<std::mutex[]> sm_cache_mutexes_;
  TransferStats transfers_;
  FaultInjector* fault_injector_ = nullptr;  // non-owning, may be null
  std::optional<LaunchResult> last_launch_;
  std::size_t launch_count_ = 0;
  bool parallel_blocks_ = false;
  bool track_warp_access_ = true;
  bool pinned_transfers_ = false;
  SanitizerMode sanitize_ = SanitizerMode::kOff;
  SanitizerReport sanitizer_report_;
};

}  // namespace starsim::gpusim
