// Execution counters gathered while a kernel runs functionally.
//
// These are the *inputs* to the performance model (perf_model.h): the
// functional engine executes the kernel on real data and tallies the work it
// actually performed; the model converts the tallies into modeled time using
// DeviceSpec parameters. Nothing in the timing path is hard-coded per
// kernel — change the kernel and the counters (hence the time) change.
#pragma once

#include <cstdint>
#include <string>

namespace starsim::gpusim {

struct KernelCounters {
  // Launch geometry.
  std::uint64_t blocks_launched = 0;
  std::uint64_t threads_launched = 0;
  std::uint64_t warps_launched = 0;

  // Arithmetic, in fp64 flop-equivalents. Transcendentals are counted at
  // the DeviceSpec's flop-equivalent cost (software fp64 exp/pow on Fermi).
  std::uint64_t flops = 0;

  // Global (device) memory.
  std::uint64_t global_reads = 0;
  std::uint64_t global_writes = 0;
  std::uint64_t global_bytes_read = 0;
  std::uint64_t global_bytes_written = 0;
  /// Memory transactions after warp-level coalescing: accesses issued by
  /// the threads of a warp at the same program point that fall in the same
  /// 128-byte segment are serviced together (zero when warp-access
  /// tracking is disabled).
  std::uint64_t global_transactions = 0;

  // On-chip shared memory.
  std::uint64_t shared_reads = 0;
  std::uint64_t shared_writes = 0;
  /// Extra serialized passes caused by warp-simultaneous accesses to
  /// *distinct* addresses in the same bank (same-address broadcasts are
  /// free, as on real hardware). Zero when tracking is disabled.
  std::uint64_t shared_bank_conflicts = 0;

  // Atomic read-modify-write operations on global memory, and how many of
  // them landed on an address some other atomic in the same launch also
  // touched (exact count from per-address shadow counters).
  std::uint64_t atomic_ops = 0;
  std::uint64_t atomic_conflicts = 0;

  // Texture unit.
  std::uint64_t texture_fetches = 0;
  std::uint64_t texture_hits = 0;
  std::uint64_t texture_misses = 0;

  // Control.
  std::uint64_t barriers = 0;  ///< warp-barrier crossings (warps x epochs)
  std::uint64_t branch_sites_evaluated = 0;  ///< warp x site evaluations
  std::uint64_t divergent_warp_branches = 0;  ///< of those, mixed outcomes

  /// Accumulate another counter set (per-block -> per-launch merging).
  void merge(const KernelCounters& other);

  /// Total global memory traffic in bytes.
  [[nodiscard]] std::uint64_t global_bytes() const {
    return global_bytes_read + global_bytes_written;
  }

  /// Fraction of evaluated warp-branch sites that diverged (0 when none).
  [[nodiscard]] double divergence_rate() const {
    return branch_sites_evaluated == 0
               ? 0.0
               : static_cast<double>(divergent_warp_branches) /
                     static_cast<double>(branch_sites_evaluated);
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace starsim::gpusim
